// df3trace — journey-tree reconstruction and critical-path analysis over a
// df3run Chrome trace export.
//
// Reads the JSON written by `df3run --trace`, pairs every journey-linked
// record (args carry seq/parent/attr, see DESIGN.md section 14) back into
// causal trees, and reports where each flow's requests spent their time:
//
//   ./build/tools/df3trace trace.json
//   ./build/tools/df3trace trace.json --json | jq .flows
//   ./build/tools/df3run scenarios/winter_city.cfg --trace trace.json &&
//       ./build/tools/df3trace trace.json --json
//
// Flags:
//   --json       machine-readable report instead of the human tables
//   --partial    analyze even when spans are missing (ring overwrote
//                journey records, or links lost their partner); without it
//                such traces are refused with exit code 2
//   --top N      show the N slowest complete journeys with their critical
//                paths (human report only; default 3, 0 disables)
//
// Exit codes: 0 report written, 1 usage / IO / parse error, 2 the trace has
// incomplete journey trees and --partial was not given.
//
// The per-flow / per-rung / per-peer percentiles share the exact
// `obs::LogHistogram::quantile` implementation used by the in-process SLO
// monitor, so offline and live numbers are bucket-for-bucket comparable.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "df3/obs/journey.hpp"
#include "df3/obs/metrics.hpp"
#include "df3/obs/trace.hpp"
#include "df3/util/table.hpp"

namespace {

namespace obs = df3::obs;

// --- minimal JSON scanner ----------------------------------------------------
//
// The export schema is in-tree (obs/export.cpp), so a small recursive
// scanner that pulls out the handful of fields we need beats a general DOM:
// a 1M-event trace parses in one pass without materializing anything.

struct Cursor {
  const char* p;
  const char* end;
  [[nodiscard]] bool eof() const { return p >= end; }
  void ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool accept(char c) {
    ws();
    if (eof() || *p != c) return false;
    ++p;
    return true;
  }
};

[[noreturn]] void parse_fail(const Cursor& c, const char* what) {
  std::fprintf(stderr, "df3trace: malformed trace JSON (%s at byte %zu)\n", what,
               static_cast<std::size_t>(c.end - c.p));
  std::exit(1);
}

std::string parse_string(Cursor& c) {
  if (!c.accept('"')) parse_fail(c, "expected string");
  std::string out;
  while (!c.eof() && *c.p != '"') {
    char ch = *c.p++;
    if (ch == '\\' && !c.eof()) {
      const char esc = *c.p++;
      switch (esc) {
        case 'n': ch = '\n'; break;
        case 't': ch = '\t'; break;
        case 'u':
          // Only control characters are \u-escaped by the exporter; decode
          // the low byte and move past the four hex digits.
          if (c.end - c.p >= 4) {
            char hex[5] = {c.p[0], c.p[1], c.p[2], c.p[3], 0};
            ch = static_cast<char>(std::strtol(hex, nullptr, 16));
            c.p += 4;
          }
          break;
        default: ch = esc; break;
      }
    }
    out += ch;
  }
  if (!c.accept('"')) parse_fail(c, "unterminated string");
  return out;
}

double parse_number(Cursor& c) {
  c.ws();
  char* next = nullptr;
  const double v = std::strtod(c.p, &next);
  if (next == c.p) parse_fail(c, "expected number");
  c.p = next;
  return v;
}

/// Request/journey ids use all 64 bits (hashed source name in the high
/// word); going through a double would collapse ids above 2^53.
std::uint64_t parse_u64(Cursor& c) {
  c.ws();
  char* next = nullptr;
  const std::uint64_t v = std::strtoull(c.p, &next, 10);
  if (next == c.p) parse_fail(c, "expected integer");
  c.p = next;
  return v;
}

void skip_value(Cursor& c);

void skip_composite(Cursor& c, char open, char close) {
  if (!c.accept(open)) parse_fail(c, "expected composite");
  if (c.accept(close)) return;
  do {
    if (open == '{') {
      parse_string(c);
      if (!c.accept(':')) parse_fail(c, "expected ':'");
    }
    skip_value(c);
  } while (c.accept(','));
  if (!c.accept(close)) parse_fail(c, "unterminated composite");
}

void skip_value(Cursor& c) {
  c.ws();
  if (c.eof()) parse_fail(c, "unexpected end");
  switch (*c.p) {
    case '"': parse_string(c); return;
    case '{': skip_composite(c, '{', '}'); return;
    case '[': skip_composite(c, '[', ']'); return;
    case 't': c.p += 4; return;
    case 'f': c.p += 5; return;
    case 'n': c.p += 4; return;
    default: parse_number(c); return;
  }
}

/// One trace event, only the fields the journey plane needs.
struct Ev {
  std::string name;
  std::string args_name;  ///< metadata payload (thread/process names)
  char ph = 0;
  long pid = 0;
  long tid = 0;
  double ts_us = 0.0;
  double dur_us = -1.0;
  std::uint64_t id = 0;
  long long seq = -1;     ///< -1: not a journey-linked record
  long long parent = -1;  ///< -1: journey root
  std::uint64_t attr = 0;
  bool orphan = false;
};

void parse_args(Cursor& c, Ev& ev) {
  if (!c.accept('{')) parse_fail(c, "expected args object");
  if (c.accept('}')) return;
  do {
    const std::string key = parse_string(c);
    if (!c.accept(':')) parse_fail(c, "expected ':'");
    if (key == "id") {
      ev.id = parse_u64(c);
    } else if (key == "seq") {
      ev.seq = static_cast<long long>(parse_number(c));
    } else if (key == "parent") {
      ev.parent = static_cast<long long>(parse_number(c));
    } else if (key == "attr") {
      ev.attr = static_cast<std::uint64_t>(parse_number(c));
    } else if (key == "orphan") {
      ev.orphan = parse_number(c) != 0.0;
    } else if (key == "name") {
      ev.args_name = parse_string(c);
    } else {
      skip_value(c);
    }
  } while (c.accept(','));
  if (!c.accept('}')) parse_fail(c, "unterminated args");
}

void parse_event(Cursor& c, Ev& ev) {
  if (!c.accept('{')) parse_fail(c, "expected event object");
  if (c.accept('}')) return;
  do {
    const std::string key = parse_string(c);
    if (!c.accept(':')) parse_fail(c, "expected ':'");
    if (key == "name") {
      ev.name = parse_string(c);
    } else if (key == "ph") {
      const std::string v = parse_string(c);
      ev.ph = v.empty() ? 0 : v[0];
    } else if (key == "pid") {
      ev.pid = static_cast<long>(parse_number(c));
    } else if (key == "tid") {
      ev.tid = static_cast<long>(parse_number(c));
    } else if (key == "ts") {
      ev.ts_us = parse_number(c);
    } else if (key == "dur") {
      ev.dur_us = parse_number(c);
    } else if (key == "args") {
      parse_args(c, ev);
    } else {
      skip_value(c);
    }
  } while (c.accept(','));
  if (!c.accept('}')) parse_fail(c, "unterminated event");
}

obs::Phase phase_by_name(const std::string& name, bool& known) {
  known = true;
  for (int p = 0; p <= static_cast<int>(obs::Phase::kSpanLink); ++p) {
    const auto ph = static_cast<obs::Phase>(p);
    if (name == obs::phase_name(ph)) return ph;
  }
  known = false;
  return obs::Phase::kArrival;
}

struct ParsedTrace {
  std::vector<obs::JourneySpan> spans;
  std::vector<std::string> tracks;
  std::uint64_t dropped = 0;
  std::uint64_t orphan_links = 0;
};

constexpr int kSimPid = 1;  ///< simulated-clock process group in the export

ParsedTrace parse_trace(const std::string& text) {
  ParsedTrace out;
  Cursor c{text.data(), text.data() + text.size()};
  if (!c.accept('{')) parse_fail(c, "expected top-level object");
  bool saw_events = false;
  do {
    const std::string key = parse_string(c);
    if (!c.accept(':')) parse_fail(c, "expected ':'");
    if (key == "droppedEvents") {
      out.dropped = static_cast<std::uint64_t>(parse_number(c));
    } else if (key == "traceEvents") {
      saw_events = true;
      if (!c.accept('[')) parse_fail(c, "expected event array");
      if (!c.accept(']')) {
        do {
          Ev ev;
          parse_event(c, ev);
          if (ev.ph == 'M') {
            if (ev.name == "thread_name" && ev.pid == kSimPid && ev.tid >= 0) {
              const auto t = static_cast<std::size_t>(ev.tid);
              if (out.tracks.size() <= t) out.tracks.resize(t + 1);
              out.tracks[t] = ev.args_name;
            }
            continue;
          }
          if (ev.seq < 0 || ev.pid != kSimPid) continue;  // not journey-linked
          if (ev.orphan) {
            ++out.orphan_links;
            continue;
          }
          bool known = false;
          const obs::Phase phase = phase_by_name(ev.name, known);
          if (!known) continue;
          obs::JourneySpan s;
          s.t0 = ev.ts_us * 1e-6;
          s.t1 = ev.dur_us >= 0.0 ? (ev.ts_us + ev.dur_us) * 1e-6 : s.t0;
          s.journey = ev.id;
          s.seq = static_cast<std::uint32_t>(ev.seq);
          s.parent = ev.parent < 0 ? obs::kNoParent : static_cast<std::uint32_t>(ev.parent);
          s.attr = static_cast<std::uint32_t>(ev.attr);
          s.track = static_cast<std::uint32_t>(ev.tid);
          s.phase = phase;
          s.instant = ev.dur_us < 0.0;
          out.spans.push_back(s);
        } while (c.accept(','));
        if (!c.accept(']')) parse_fail(c, "unterminated event array");
      }
    } else {
      skip_value(c);
    }
  } while (c.accept(','));
  if (!saw_events) {
    std::fprintf(stderr, "df3trace: no traceEvents array — is this a df3run trace export?\n");
    std::exit(1);
  }
  return out;
}

// --- aggregation -------------------------------------------------------------

/// Timestamps round-tripped through the %.3f-microsecond export text; give
/// the contiguity check two nanoseconds of slack.
constexpr double kGapTolerance = 2e-9;

const char* flow_label(std::uint32_t flow_attr) {
  switch (flow_attr) {
    case 1: return "cloud";
    case 2: return "edge-direct";
    case 3: return "edge-indirect";
    default: return "unknown";
  }
}

struct Agg {
  std::uint64_t journeys = 0;
  std::uint64_t completed = 0;
  obs::LogHistogram e2e{1e-3, 2.0};
  obs::JourneyBreakdown breakdown;  ///< summed over critical paths
};

struct Report {
  std::map<std::uint32_t, Agg> by_flow;
  std::map<obs::Phase, Agg> by_rung;
  std::map<std::string, Agg> by_peer;
  std::uint64_t trees = 0;
  std::uint64_t terminated = 0;
  std::uint64_t complete = 0;
  std::uint64_t contiguous = 0;
  std::vector<const obs::JourneyTree*> slowest;
};

void feed(Agg& a, const obs::JourneyTree& t) {
  ++a.journeys;
  if (t.terminal == obs::Phase::kCompleted) ++a.completed;
  a.e2e.observe(t.t_end - t.t_begin);
  a.breakdown.queue_s += t.breakdown.queue_s;
  a.breakdown.run_s += t.breakdown.run_s;
  a.breakdown.net_s += t.breakdown.net_s;
  a.breakdown.offload_s += t.breakdown.offload_s;
  a.breakdown.other_s += t.breakdown.other_s;
}

Report aggregate(const obs::JourneyForest& f) {
  Report r;
  r.trees = f.trees.size();
  for (const obs::JourneyTree& t : f.trees) {
    if (t.complete) ++r.complete;
    if (!t.terminated) continue;
    ++r.terminated;
    if (t.contiguous) ++r.contiguous;
    feed(r.by_flow[t.flow_attr], t);
    for (const obs::Phase p : t.rungs_fired) feed(r.by_rung[p], t);
    // Arrivals past the first are peer clusters chosen by hand-off or the
    // datacenter chosen by vertical offload — the per-decision attribution.
    for (std::size_t i = 1; i < t.visit_tracks.size(); ++i) {
      const std::uint32_t track = t.visit_tracks[i];
      const std::string name =
          track < f.tracks.size() && !f.tracks[track].empty() ? f.tracks[track] : "?";
      feed(r.by_peer[name], t);
    }
    r.slowest.push_back(&t);
  }
  std::sort(r.slowest.begin(), r.slowest.end(),
            [](const obs::JourneyTree* a, const obs::JourneyTree* b) {
              const double da = a->t_end - a->t_begin;
              const double db = b->t_end - b->t_begin;
              if (da != db) return da > db;
              return a->id < b->id;  // deterministic tie-break
            });
  return r;
}

// --- output ------------------------------------------------------------------

void append_json_agg(std::string& out, const Agg& a) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"journeys\":%llu,\"completed\":%llu,\"p50_s\":%.9g,\"p99_s\":%.9g,"
                "\"max_s\":%.9g,\"breakdown\":{\"queue_s\":%.9g,\"run_s\":%.9g,"
                "\"net_s\":%.9g,\"offload_s\":%.9g,\"other_s\":%.9g}",
                static_cast<unsigned long long>(a.journeys),
                static_cast<unsigned long long>(a.completed), a.e2e.quantile(0.50),
                a.e2e.quantile(0.99), a.e2e.max(), a.breakdown.queue_s, a.breakdown.run_s,
                a.breakdown.net_s, a.breakdown.offload_s, a.breakdown.other_s);
  out += buf;
}

void print_json(const ParsedTrace& in, const obs::JourneyForest& f, const Report& r) {
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"journeys\":%llu,\"terminated\":%llu,\"complete\":%llu,"
                "\"contiguous\":%llu,\"orphan_links\":%llu,\"dropped_events\":%llu,"
                "\"linked_spans\":%llu",
                static_cast<unsigned long long>(r.trees),
                static_cast<unsigned long long>(r.terminated),
                static_cast<unsigned long long>(r.complete),
                static_cast<unsigned long long>(r.contiguous),
                static_cast<unsigned long long>(in.orphan_links),
                static_cast<unsigned long long>(in.dropped),
                static_cast<unsigned long long>(f.span_count));
  out += buf;
  out += ",\"flows\":[";
  bool first = true;
  for (const auto& [flow, agg] : r.by_flow) {
    if (!first) out += ',';
    first = false;
    out += "{\"flow\":\"";
    out += flow_label(flow);
    out += "\",";
    append_json_agg(out, agg);
    out += '}';
  }
  out += "],\"rungs\":[";
  first = true;
  for (const auto& [rung, agg] : r.by_rung) {
    if (!first) out += ',';
    first = false;
    out += "{\"rung\":\"";
    out += obs::phase_name(rung);
    out += "\",";
    append_json_agg(out, agg);
    out += '}';
  }
  out += "],\"peers\":[";
  first = true;
  for (const auto& [peer, agg] : r.by_peer) {
    if (!first) out += ',';
    first = false;
    out += "{\"peer\":\"";
    out += peer;
    out += "\",";
    append_json_agg(out, agg);
    out += '}';
  }
  out += "]}";
  std::printf("%s\n", out.c_str());
}

void add_agg_row(df3::util::Table& tbl, const std::string& label, const Agg& a) {
  const double total = a.breakdown.total();
  const double denom = total > 0.0 ? total : 1.0;
  tbl.add_row({label, static_cast<std::int64_t>(a.journeys),
               a.e2e.quantile(0.50) * 1e3, a.e2e.quantile(0.99) * 1e3, a.e2e.max() * 1e3,
               100.0 * a.breakdown.queue_s / denom, 100.0 * a.breakdown.run_s / denom,
               100.0 * a.breakdown.net_s / denom, 100.0 * a.breakdown.offload_s / denom});
}

void print_human(const ParsedTrace& in, const obs::JourneyForest& f, const Report& r,
                 long top) {
  std::printf("df3trace: %llu journeys (%llu terminated, %llu complete, %llu contiguous), "
              "%llu linked spans, %llu orphan links, %llu dropped events\n\n",
              static_cast<unsigned long long>(r.trees),
              static_cast<unsigned long long>(r.terminated),
              static_cast<unsigned long long>(r.complete),
              static_cast<unsigned long long>(r.contiguous),
              static_cast<unsigned long long>(f.span_count),
              static_cast<unsigned long long>(in.orphan_links),
              static_cast<unsigned long long>(in.dropped));

  const std::vector<std::string> headers = {"",          "journeys", "p50_ms", "p99_ms",
                                            "max_ms",    "queue_%",  "run_%",  "net_%",
                                            "offload_%"};
  df3::util::Table flows(headers, "per-flow latency breakdown (critical path)");
  flows.set_precision(1);
  for (const auto& [flow, agg] : r.by_flow) add_agg_row(flows, flow_label(flow), agg);
  flows.print(std::cout);

  if (!r.by_rung.empty()) {
    df3::util::Table rungs(headers, "per-rung attribution (journeys where the rung fired)");
    rungs.set_precision(1);
    for (const auto& [rung, agg] : r.by_rung) add_agg_row(rungs, obs::phase_name(rung), agg);
    std::printf("\n");
    rungs.print(std::cout);
  }
  if (!r.by_peer.empty()) {
    df3::util::Table peers(headers, "per-peer attribution (hand-off / offload targets)");
    peers.set_precision(1);
    for (const auto& [peer, agg] : r.by_peer) add_agg_row(peers, peer, agg);
    std::printf("\n");
    peers.print(std::cout);
  }

  const long n = std::min<long>(top, static_cast<long>(r.slowest.size()));
  for (long i = 0; i < n; ++i) {
    const obs::JourneyTree& t = *r.slowest[static_cast<std::size_t>(i)];
    std::printf("\nslow journey #%ld: id=%llu flow=%s latency=%.3f ms terminal=%s\n",
                i + 1, static_cast<unsigned long long>(t.id), flow_label(t.flow_attr),
                (t.t_end - t.t_begin) * 1e3, obs::phase_name(t.terminal));
    for (const std::uint32_t seq : t.critical) {
      const obs::JourneySpan& s = t.spans[seq];
      const std::string track =
          s.track < f.tracks.size() && !f.tracks[s.track].empty() ? f.tracks[s.track] : "?";
      std::printf("  %-18s %10.3f ms  @%s\n", obs::phase_name(s.phase), (s.t1 - s.t0) * 1e3,
                  track.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  bool partial = false;
  long top = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--json") {
      json = true;
    } else if (arg == "--partial") {
      partial = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top = std::strtol(argv[++i], nullptr, 10);
    } else if (!arg.empty() && (arg[0] != '-' || arg == "-")) {
      path = arg;
    } else {
      std::fprintf(stderr, "df3trace: unknown flag %s\n", arg.c_str());
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: df3trace <trace.json|-> [--json] [--partial] [--top N]\n"
                 "  reconstructs causal journey trees from a df3run --trace export\n");
    return 1;
  }

  std::string text;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream is(path, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "df3trace: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    text = ss.str();
  }

  const ParsedTrace in = parse_trace(text);
  const obs::JourneyForest f = obs::build_journey_forest(
      in.spans, in.tracks, in.orphan_links, in.dropped, kGapTolerance);

  std::uint64_t incomplete = 0;
  for (const obs::JourneyTree& t : f.trees) {
    if (!t.complete) ++incomplete;
  }
  if ((incomplete > 0 || in.orphan_links > 0) && !partial) {
    std::fprintf(stderr,
                 "df3trace: %llu journey tree(s) are missing spans and %llu link(s) lost "
                 "their record (ring overwrote %llu events).\n"
                 "df3trace: refusing to report on incomplete trees; raise trace_capacity= "
                 "(or DF3_TRACE_CAPACITY) in df3run, or pass --partial to analyze anyway.\n",
                 static_cast<unsigned long long>(incomplete),
                 static_cast<unsigned long long>(in.orphan_links),
                 static_cast<unsigned long long>(in.dropped));
    return 2;
  }

  const Report r = aggregate(f);
  if (json) {
    print_json(in, f, r);
  } else {
    print_human(in, f, r, top);
  }
  return 0;
}
