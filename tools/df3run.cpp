// df3run — scenario-driven DF3 city runner.
//
// Turns the library into a tool: describe a city and its workloads in a
// small key=value file (see scenarios/*.cfg), run it, get a service /
// energy / comfort report and optionally telemetry exports for plotting
// and trace inspection.
//
//   ./build/tools/df3run scenarios/winter_city.cfg
//   ./build/tools/df3run scenarios/winter_city.cfg --csv out.csv
//   ./build/tools/df3run scenarios/winter_city.cfg --trace trace.json --metrics metrics.csv
//   ./build/tools/df3run scenarios/winter_city.cfg --report json
//
// Command-line flags (each overrides the same-named scenario key):
//   --csv <path>      per-tick telemetry series CSV (time, room mean, cores,
//                     demand, outdoor)
//   --trace <path>    Chrome trace-event JSON of the request lifecycle —
//                     open in Perfetto (ui.perfetto.dev) or chrome://tracing
//   --metrics <path>  metric-registry time series; .json extension selects
//                     JSON, anything else CSV
//   --report json     append a machine-readable JSON summary (service /
//                     energy / comfort) to stdout after the human report
//
// `df3run --list-policies` (no scenario) prints every policy name known to
// the registry — one line per seam — and exits.
//
// Recognized scenario keys (defaults in parentheses):
//   seed (1)                 start_month (0 = Jan)    days (7)
//   tick_s (60)              gating (keepwarm|aggressive)
//   climate (paris|amsterdam|dresden|stockholm|seville)
//   buildings (4)            rooms (4)                high_fidelity (false)
//   boiler_plant (false)     daily_hot_water_l (1500)
//   edge_alarm_rate (0.02)   edge_map_rate (0)        telemetry_period_s (0)
//   cloud_render_interval_s (0)   cloud_risk_interval_s (1800)
//   routing (df-first; also dc-only|season-aware|heat-aware|least-loaded|
//              carbon-aware|price-aware)
//   peak_ladder (preempt,delay — comma-separated rungs from
//              preempt|horizontal|vertical|delay|grid-shed)
//   peer_select (ring|least-loaded|greenest)   placement (first-fit|best-fit)
//   csv ("" = no export)     trace ("" = no export)   metrics ("" = no export)
//   telemetry (off|counters|full; default inferred: full when a trace is
//              requested, counters when only metrics are, off otherwise)
//   trace_capacity (0 = auto: DF3_TRACE_CAPACITY env, else 1M records) —
//              size the trace ring for long soaks; when journey spans are
//              overwritten a loud warning reports the dropped() count and
//              df3trace will refuse the export without --partial
//   slo_window_s (3600)      rolling SLO window for the per-flow report
//   report (""|json)
//   grid_signals ("" = no grid plane) — per-region carbon/price/renewables
//              CSV (see df3/grid/signal.hpp for the format); resolved as
//              given, then relative to the scenario file's directory
//   region ("" = all buildings on region 0) — comma-separated region names
//              assigned to buildings round-robin
//   grid_events ("" = none) — demand-response injectors, ';'-separated
//              region:mean_up_s:mean_down_s:shed_fraction specs (needs
//              grid_signals); with peak_ladder including grid-shed the
//              fleet sheds load during each curtailment window
//
// Policy names resolve through policy::Registry::global(); unknown names —
// and unrecognized scenario keys (typos) — abort with a loud error.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "df3/df3.hpp"
#include "df3/util/config.hpp"

namespace {

using namespace df3;

thermal::ClimateNormals climate_by_name(const std::string& name) {
  if (name == "paris") return thermal::paris_climate();
  if (name == "amsterdam") return thermal::amsterdam_climate();
  if (name == "dresden") return thermal::dresden_climate();
  if (name == "stockholm") return thermal::stockholm_climate();
  if (name == "seville") return thermal::seville_climate();
  throw std::invalid_argument("unknown climate: " + name);
}

/// CLI overrides; empty string = not given, fall back to the scenario key.
struct Options {
  std::string csv;
  std::string trace;
  std::string metrics;
  std::string report;
};

obs::TraceLevel telemetry_level(const std::string& name) {
  if (name == "off") return obs::TraceLevel::kOff;
  if (name == "counters") return obs::TraceLevel::kCounters;
  if (name == "full") return obs::TraceLevel::kFull;
  throw std::invalid_argument("unknown telemetry level: " + name);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Resolve a scenario-referenced data file: the path as given first, then
/// relative to the scenario file's directory (so bundled scenarios work
/// from any cwd).
std::string resolve_near(const std::string& path, const std::string& config_path) {
  if (std::ifstream probe(path); probe) return path;
  const auto slash = config_path.find_last_of('/');
  if (slash == std::string::npos) return path;
  return config_path.substr(0, slash + 1) + path;
}

/// One demand-response injector, parsed from the grid_events= key:
/// region:mean_up_s:mean_down_s:shed_fraction, ';'-separated.
struct GridEventSpec {
  std::string region;
  double mean_up_s = 0.0;
  double mean_down_s = 0.0;
  double shed_fraction = 0.5;
};

std::vector<GridEventSpec> parse_grid_events(const std::string& text) {
  std::vector<GridEventSpec> specs;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string item =
        text.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? text.size() : semi + 1;
    std::vector<std::string> fields;
    std::size_t fpos = 0;
    while (true) {
      const std::size_t colon = item.find(':', fpos);
      std::string f =
          item.substr(fpos, colon == std::string::npos ? std::string::npos : colon - fpos);
      const auto b = f.find_first_not_of(" \t");
      f = b == std::string::npos ? "" : f.substr(b, f.find_last_not_of(" \t") - b + 1);
      fields.push_back(std::move(f));
      if (colon == std::string::npos) break;
      fpos = colon + 1;
    }
    if (fields.size() == 1 && fields[0].empty()) continue;
    if (fields.size() != 4) {
      throw std::invalid_argument(
          "grid_events spec '" + item +
          "' — want region:mean_up_s:mean_down_s:shed_fraction");
    }
    GridEventSpec s;
    s.region = fields[0];
    try {
      s.mean_up_s = std::stod(fields[1]);
      s.mean_down_s = std::stod(fields[2]);
      s.shed_fraction = std::stod(fields[3]);
    } catch (const std::exception&) {
      throw std::invalid_argument("grid_events spec '" + item + "': malformed number");
    }
    specs.push_back(std::move(s));
  }
  return specs;
}

void print_json_report(core::Df3Platform& city, bool boiler, std::uint64_t grid_windows) {
  const struct {
    const char* label;
    workload::Flow flow;
  } rows[] = {{"edge-indirect", workload::Flow::kEdgeIndirect},
              {"edge-direct", workload::Flow::kEdgeDirect},
              {"cloud", workload::Flow::kCloud}};
  std::string out = "{\"flows\":[";
  char buf[256];
  bool first = true;
  for (const auto& row : rows) {
    const auto& s = city.flow_metrics().by_flow(row.flow);
    if (s.total() == 0) continue;
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"flow\":\"%s\",\"requests\":%llu,\"completed\":%llu,"
                  "\"deadline_missed\":%llu,\"rejected\":%llu,\"dropped\":%llu,"
                  "\"success_rate\":%.6f,\"p50_s\":%.9g,\"p99_s\":%.9g}",
                  row.label, static_cast<unsigned long long>(s.total()),
                  static_cast<unsigned long long>(s.completed),
                  static_cast<unsigned long long>(s.deadline_missed),
                  static_cast<unsigned long long>(s.rejected),
                  static_cast<unsigned long long>(s.dropped), s.success_rate(),
                  s.response_s.percentile(50.0), s.response_s.p99());
    out += buf;
  }
  // Rolling-window SLO plane (DESIGN.md section 14): the trailing-window
  // health of each flow, as opposed to the whole-run aggregates above.
  out += "],\"slo\":[";
  first = true;
  if (obs::Observability* o = city.observability()) {
    const double now = city.now();
    for (const auto& row : rows) {
      const auto flow = static_cast<std::uint32_t>(row.flow);
      if (flow >= o->slo().flows()) continue;
      const auto rep = o->slo().report(flow, now);
      if (rep.total == 0 && rep.last_event_s < 0.0) continue;
      if (!first) out += ',';
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"flow\":\"%s\",\"window_s\":%.9g,\"total\":%llu,"
                    "\"miss_ratio\":%.6f,\"fail_ratio\":%.6f,\"p50_s\":%.9g,"
                    "\"p99_s\":%.9g,\"stale\":%s}",
                    row.label, o->slo().window_s(),
                    static_cast<unsigned long long>(rep.total), rep.miss_ratio,
                    rep.fail_ratio, rep.p50_s, rep.p99_s, rep.stale ? "true" : "false");
      out += buf;
    }
  }
  const auto& energy = city.df_energy();
  std::snprintf(buf, sizeof(buf),
                "],\"energy\":{\"it_kwh\":%.6f,\"pue\":%.6f,\"heat_reuse_fraction\":%.6f},",
                energy.it().kwh(), energy.pue(), energy.heat_reuse_fraction());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"comfort\":{\"kind\":\"%s\",\"mean_abs_deviation_k\":%.6f,"
                "\"mean_temperature_c\":%.6f},",
                boiler ? "store" : "rooms", city.comfort(0).mean_abs_deviation_k(city.now()),
                city.comfort(0).mean_temperature_c(city.now()));
  out += buf;
  // Grid economics block (DESIGN.md §15): spend-time-attributed cost and
  // carbon per region plus the whole-run €/job and gCO2/job figures the
  // e14 bench compares policies on. Present only when a plane is installed,
  // so no-grid reports are byte-identical to before.
  if (const grid::GridPlane* plane = city.grid_plane()) {
    out += "\"grid\":{\"regions\":[";
    const auto& accounts = city.grid_accounts();
    for (std::size_t r = 0; r < accounts.size(); ++r) {
      if (r > 0) out += ',';
      std::snprintf(buf, sizeof(buf),
                    "{\"region\":\"%s\",\"energy_kwh\":%.6f,\"cost_eur\":%.6f,"
                    "\"co2_g\":%.6f,\"curtailed_ticks\":%llu}",
                    plane->region_name(r).c_str(), accounts[r].energy_j / 3.6e6,
                    accounts[r].cost_eur, accounts[r].co2_g,
                    static_cast<unsigned long long>(accounts[r].curtailed_ticks));
      out += buf;
    }
    const std::uint64_t jobs = city.flow_metrics().overall().completed;
    std::snprintf(buf, sizeof(buf),
                  "],\"cost_eur\":%.6f,\"co2_g\":%.6f,\"eur_per_job\":%.9g,"
                  "\"gco2_per_job\":%.9g,\"windows\":%llu},",
                  energy.grid_cost_eur(), energy.grid_co2_g(),
                  jobs > 0 ? energy.grid_cost_eur() / static_cast<double>(jobs) : 0.0,
                  jobs > 0 ? energy.grid_co2_g() / static_cast<double>(jobs) : 0.0,
                  static_cast<unsigned long long>(grid_windows));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "\"regulator_relative_error\":%.6f}",
                city.regulator_relative_error());
  out += buf;
  std::printf("%s\n", out.c_str());
}

int run(const std::string& config_path, const Options& opts) {
  const auto cfg = util::KeyValueConfig::parse_file(config_path);

  // Read every recognized key up front (even ones a branch below may not
  // use), then demand exhaustion: a typo like `routting =` fails loudly
  // instead of silently running the default.
  const std::string csv_key = cfg.get_string("csv", "");
  const std::string trace_key = cfg.get_string("trace", "");
  const std::string metrics_key = cfg.get_string("metrics", "");
  const std::string report_key = cfg.get_string("report", "");
  const long seed = cfg.get_int("seed", 1);
  const long start_month = cfg.get_int("start_month", 0);
  const double tick_s = cfg.get_double("tick_s", 60.0);
  const std::string climate = cfg.get_string("climate", "paris");
  const std::string gating = cfg.get_string("gating", "keepwarm");
  const bool has_telemetry_key = cfg.has("telemetry");
  const std::string telemetry = cfg.get_string("telemetry", "off");
  const long buildings = cfg.get_int("buildings", 4);
  const long rooms = cfg.get_int("rooms", 4);
  const bool high_fidelity = cfg.get_bool("high_fidelity", false);
  const bool boiler = cfg.get_bool("boiler_plant", false);
  const double daily_hot_water_l = cfg.get_double("daily_hot_water_l", 1500.0);
  const std::string routing = cfg.get_string("routing", "df-first");
  const std::string peak_ladder = cfg.get_string("peak_ladder", "preempt,delay");
  const std::string peer_select = cfg.get_string("peer_select", "ring");
  const std::string placement = cfg.get_string("placement", "first-fit");
  const double edge_alarm_rate = cfg.get_double("edge_alarm_rate", 0.02);
  const double edge_map_rate = cfg.get_double("edge_map_rate", 0.0);
  const double telemetry_period_s = cfg.get_double("telemetry_period_s", 0.0);
  const double cloud_render_interval_s = cfg.get_double("cloud_render_interval_s", 0.0);
  const double cloud_risk_interval_s = cfg.get_double("cloud_risk_interval_s", 1800.0);
  const double days = cfg.get_double("days", 7.0);
  const long physics_threads = cfg.get_int("physics_threads", 0);
  const long control_threads = cfg.get_int("control_threads", 0);
  const long shard_rooms = cfg.get_int("shard_rooms", 4096);
  const bool activity_gating = cfg.get_bool("activity_gating", true);
  const long federation_degree = cfg.get_int("federation_degree", 0);
  const long trace_capacity = cfg.get_int("trace_capacity", 0);
  const double slo_window_s = cfg.get_double("slo_window_s", 3600.0);
  const std::string grid_signals = cfg.get_string("grid_signals", "");
  const std::string region_list = cfg.get_string("region", "");
  const std::string grid_events = cfg.get_string("grid_events", "");
  cfg.check_exhausted();
  if (trace_capacity < 0) throw std::invalid_argument("trace_capacity must be >= 0");
  if (slo_window_s <= 0.0) throw std::invalid_argument("slo_window_s must be > 0");
  if (physics_threads < 0) throw std::invalid_argument("physics_threads must be >= 0");
  if (control_threads < 0) throw std::invalid_argument("control_threads must be >= 0");
  if (shard_rooms <= 0) throw std::invalid_argument("shard_rooms must be > 0");
  if (federation_degree < 0) throw std::invalid_argument("federation_degree must be >= 0");

  const std::string csv = !opts.csv.empty() ? opts.csv : csv_key;
  const std::string trace = !opts.trace.empty() ? opts.trace : trace_key;
  const std::string metrics = !opts.metrics.empty() ? opts.metrics : metrics_key;
  const std::string report = !opts.report.empty() ? opts.report : report_key;
  if (!report.empty() && report != "json") {
    throw std::invalid_argument("unknown report format: " + report);
  }
  if (!grid_events.empty() && grid_signals.empty()) {
    throw std::invalid_argument("grid_events needs grid_signals");
  }
  if (!region_list.empty() && grid_signals.empty()) {
    throw std::invalid_argument("region needs grid_signals");
  }

  core::PlatformConfig pc;
  pc.seed = static_cast<std::uint64_t>(seed);
  pc.start_time = thermal::start_of_month(static_cast<int>(start_month));
  pc.tick_s = tick_s;
  pc.climate = climate_by_name(climate);
  // Sharded-kernel knobs (DESIGN.md section 8.1). Shard size, thread count
  // and gating are bit-for-bit neutral; federation_degree keeps the
  // full-mesh default bit-identical, while a nonzero ring degree is a real
  // topology choice that changes peer hand-offs.
  pc.physics_threads = static_cast<std::size_t>(physics_threads);
  pc.control_threads = static_cast<std::size_t>(control_threads);
  pc.shard_rooms = static_cast<std::size_t>(shard_rooms);
  pc.activity_gating = activity_gating;
  pc.federation_degree = static_cast<std::size_t>(federation_degree);
  if (gating == "keepwarm") {
    pc.regulator.gating = core::GatingPolicy::kKeepWarm;
  } else if (gating == "aggressive") {
    pc.regulator.gating = core::GatingPolicy::kAggressive;
  } else {
    throw std::invalid_argument("unknown gating: " + gating);
  }
  // Decision plane: ladder rungs, peer selector and placement apply to
  // every cluster; routing is installed on the platform below. Unknown
  // policy names throw from the registry, naming the known ones.
  pc.cluster.edge_peak_ladder = policy::Registry::split_list(peak_ladder);
  pc.cluster.peer_select = peer_select;
  pc.cluster.placement = placement;
  // Telemetry level: explicit key wins; otherwise infer the cheapest level
  // that can satisfy the requested exports.
  if (has_telemetry_key) {
    pc.obs.level = telemetry_level(telemetry);
  } else if (!trace.empty()) {
    pc.obs.level = obs::TraceLevel::kFull;
  } else if (!metrics.empty()) {
    pc.obs.level = obs::TraceLevel::kCounters;
  }
  if (!trace.empty() && pc.obs.level != obs::TraceLevel::kFull) {
    std::fprintf(stderr, "df3run: --trace needs telemetry=full; raising level\n");
    pc.obs.level = obs::TraceLevel::kFull;
  }
  pc.obs.trace_capacity = static_cast<std::size_t>(trace_capacity);
  pc.obs.slo_window_s = slo_window_s;

  core::Df3Platform city(pc);
  const std::vector<std::string> regions = policy::Registry::split_list(region_list);
  for (long i = 0; i < buildings; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = static_cast<int>(rooms);
    b.high_fidelity_rooms = high_fidelity;
    if (!regions.empty()) {
      b.grid_region = regions[static_cast<std::size_t>(i) % regions.size()];
    }
    if (boiler) {
      b.server = hw::stimergy_boiler_spec();
      thermal::WaterTankParams tank;
      tank.volume_l = 2500.0;
      tank.setpoint = util::celsius(58.0);
      b.water_tank = tank;
      b.daily_hot_water_l = daily_hot_water_l;
    }
    city.add_building(b);
  }

  city.set_cloud_routing(routing);

  // Grid plane + demand-response injectors (DESIGN.md §15). Installed after
  // the buildings so their region names resolve; event sources live outside
  // the platform (PR-3 injector idiom) and stop after the run.
  std::vector<std::unique_ptr<core::GridEventSource>> grid_sources;
  if (!grid_signals.empty()) {
    city.install_grid(grid::load_signals_csv_file(resolve_near(grid_signals, config_path)));
    for (const GridEventSpec& spec : parse_grid_events(grid_events)) {
      const std::size_t r = city.grid_plane()->region_index(spec.region);
      std::vector<core::Cluster*> clusters;
      for (std::size_t b = 0; b < city.building_count(); ++b) {
        if (city.building_region(b) == r) clusters.push_back(&city.cluster(b));
      }
      core::GridEventConfig ec;
      ec.region = r;
      ec.mean_up_s = spec.mean_up_s;
      ec.mean_down_s = spec.mean_down_s;
      ec.shed_fraction = spec.shed_fraction;
      const std::string ename = "grid-event/" + spec.region;
      grid_sources.push_back(std::make_unique<core::GridEventSource>(
          city.simulation(), ename, *city.grid_plane(), std::move(clusters), ec,
          util::RngStream(pc.seed, ename)));
      grid_sources.back()->start();
    }
  }

  if (edge_alarm_rate > 0.0) {
    city.add_edge_source(0, workload::alarm_detection_factory(), edge_alarm_rate);
  }
  if (edge_map_rate > 0.0) {
    city.add_edge_source(0, workload::map_serving_factory(), edge_map_rate, false,
                         /*via_wifi=*/true);
  }
  if (telemetry_period_s > 0.0) {
    city.add_edge_source(0, workload::telemetry_factory(),
                         std::make_unique<workload::FixedIntervalArrivals>(telemetry_period_s));
  }
  if (cloud_render_interval_s > 0.0) {
    city.add_cloud_source(workload::render_batch_factory(), 1.0 / cloud_render_interval_s);
  }
  if (cloud_risk_interval_s > 0.0) {
    city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / cloud_risk_interval_s);
  }

  std::printf("df3run: %s — %ld building(s), %.0f day(s) from month %ld, %s climate\n\n",
              config_path.c_str(), buildings, days, start_month, climate.c_str());
  city.run(util::days(days));
  // End any open curtailment window (restores gated chassis) so the report
  // reads a recovered fleet.
  for (auto& src : grid_sources) src->stop();
  std::uint64_t grid_windows = 0;
  for (const auto& src : grid_sources) grid_windows += src->windows();

  // --- report ---------------------------------------------------------------
  util::Table flows({"flow", "requests", "success", "p50_ms", "p99_ms"}, "service quality");
  flows.set_precision(1);
  const struct {
    const char* label;
    workload::Flow flow;
  } rows[] = {{"edge-indirect", workload::Flow::kEdgeIndirect},
              {"edge-direct", workload::Flow::kEdgeDirect},
              {"cloud", workload::Flow::kCloud}};
  for (const auto& row : rows) {
    const auto& s = city.flow_metrics().by_flow(row.flow);
    if (s.total() == 0) continue;
    flows.add_row({std::string(row.label), static_cast<std::int64_t>(s.total()),
                   s.success_rate(), s.response_s.percentile(50.0) * 1e3,
                   s.response_s.p99() * 1e3});
  }
  flows.print(std::cout);

  // Rolling-window SLO plane: trailing-window health per flow, which the
  // cumulative table above cannot show (an early-run incident stops
  // dominating once it leaves the window).
  if (obs::Observability* o = city.observability(); o != nullptr && o->slo().flows() > 0) {
    util::Table slo({"flow", "window_total", "miss_%", "fail_%", "p50_ms", "p99_ms", "stale"},
                    "SLO window (trailing " + std::to_string(static_cast<long>(slo_window_s)) +
                        " s)");
    slo.set_precision(1);
    const double now = city.now();
    for (const auto& row : rows) {
      const auto flow = static_cast<std::uint32_t>(row.flow);
      if (flow >= o->slo().flows()) continue;
      const auto rep = o->slo().report(flow, now);
      if (rep.total == 0 && rep.last_event_s < 0.0) continue;
      slo.add_row({std::string(row.label), static_cast<std::int64_t>(rep.total),
                   100.0 * rep.miss_ratio, 100.0 * rep.fail_ratio, rep.p50_s * 1e3,
                   rep.p99_s * 1e3, std::string(rep.stale ? "yes" : "no")});
    }
    std::printf("\n");
    slo.print(std::cout);
  }

  const auto& energy = city.df_energy();
  std::printf("\nenergy: %.1f kWh IT, PUE %.3f, useful heat %.0f%%\n", energy.it().kwh(),
              energy.pue(), 100.0 * energy.heat_reuse_fraction());
  if (const grid::GridPlane* plane = city.grid_plane()) {
    util::Table gt({"region", "energy_kwh", "cost_eur", "co2_kg", "curtailed_ticks"},
                   "grid economics");
    gt.set_precision(2);
    const auto& accounts = city.grid_accounts();
    for (std::size_t r = 0; r < accounts.size(); ++r) {
      gt.add_row({plane->region_name(r), accounts[r].energy_j / 3.6e6, accounts[r].cost_eur,
                  accounts[r].co2_g / 1e3,
                  static_cast<std::int64_t>(accounts[r].curtailed_ticks)});
    }
    std::printf("\n");
    gt.print(std::cout);
    const std::uint64_t jobs = city.flow_metrics().overall().completed;
    std::printf("grid  : %.2f EUR, %.2f kg CO2 (%g EUR/job, %g gCO2/job), %llu window(s)\n",
                energy.grid_cost_eur(), energy.grid_co2_g() / 1e3,
                jobs > 0 ? energy.grid_cost_eur() / static_cast<double>(jobs) : 0.0,
                jobs > 0 ? energy.grid_co2_g() / static_cast<double>(jobs) : 0.0,
                static_cast<unsigned long long>(grid_windows));
  }
  if (boiler) {
    std::printf("store : %.1f degC mean\n", city.comfort(0).mean_temperature_c(city.now()));
  } else {
    std::printf("comfort: %.2f K mean deviation, %.1f degC mean room\n",
                city.comfort(0).mean_abs_deviation_k(city.now()),
                city.comfort(0).mean_temperature_c(city.now()));
  }
  std::printf("regulator tracking error: %.1f%%\n", 100.0 * city.regulator_relative_error());
  if (report == "json") print_json_report(city, boiler, grid_windows);

  // --- exports --------------------------------------------------------------
  if (!csv.empty()) {
    std::ofstream out(csv);
    if (!out) throw std::runtime_error("cannot write csv: " + csv);
    city.export_series_csv(out);
    std::printf("telemetry series written to %s\n", csv.c_str());
  }
  if (!trace.empty() || !metrics.empty()) {
    obs::Observability* o = city.observability();
    if (o == nullptr) {
      std::fprintf(stderr,
                   "df3run: telemetry exports requested but observability is unavailable "
                   "(built with -DDF3_OBS=OFF?)\n");
      return 1;
    }
    if (!trace.empty()) {
      if (!obs::write_chrome_trace_file(trace, o->trace())) {
        throw std::runtime_error("cannot write trace: " + trace);
      }
      std::printf("trace written to %s (%zu events", trace.c_str(), o->trace().size());
      if (o->trace().dropped() > 0) {
        std::printf(", %llu oldest dropped by the ring",
                    static_cast<unsigned long long>(o->trace().dropped()));
      }
      std::printf(") — open in ui.perfetto.dev\n");
      if (o->trace().dropped() > 0) {
        std::fprintf(stderr,
                     "\ndf3run: WARNING — the trace ring overwrote %llu event(s); journey "
                     "spans are\n"
                     "df3run: incomplete and df3trace will refuse this export without "
                     "--partial.\n"
                     "df3run: Raise trace_capacity= in the scenario (current ring: %zu "
                     "records) or set\n"
                     "df3run: the DF3_TRACE_CAPACITY environment variable.\n\n",
                     static_cast<unsigned long long>(o->trace().dropped()),
                     o->trace().capacity());
      }
    }
    if (!metrics.empty()) {
      const bool ok = ends_with(metrics, ".json")
                          ? obs::write_metrics_json_file(metrics, o->registry())
                          : obs::write_metrics_csv_file(metrics, o->registry());
      if (!ok) throw std::runtime_error("cannot write metrics: " + metrics);
      std::printf("metrics written to %s (%zu instruments, %zu snapshots)\n", metrics.c_str(),
                  o->registry().size(), o->registry().snapshots());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: df3run <scenario.cfg> [--csv <path>] [--trace <path>]\n"
                 "              [--metrics <path>] [--report json]\n"
                 "       df3run --list-policies\n");
    return 2;
  }
  if (std::string(argv[1]) == "--list-policies") {
    const auto& reg = policy::Registry::global();
    const auto print = [](const char* seam, const std::vector<std::string>& names) {
      std::printf("%s:", seam);
      for (const auto& n : names) std::printf(" %s", n.c_str());
      std::printf("\n");
    };
    print("rung", reg.rung_names());
    print("routing", reg.routing_names());
    print("peer", reg.peer_selector_names());
    print("placement", reg.placement_names());
    return 0;
  }
  Options opts;
  for (int i = 2; i + 1 < argc; ++i) {
    const std::string flag(argv[i]);
    if (flag == "--csv") opts.csv = argv[i + 1];
    if (flag == "--trace") opts.trace = argv[i + 1];
    if (flag == "--metrics") opts.metrics = argv[i + 1];
    if (flag == "--report") opts.report = argv[i + 1];
  }
  try {
    return run(argv[1], opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "df3run: %s\n", e.what());
    return 1;
  }
}
