/// \file df3mc.cpp
/// \brief Decision-plane model checker CLI (DESIGN.md §13).
///
/// Exhaustively explores interleavings of exogenous decision-relevant
/// events (fault-injector toggles, peak-rung-triggering submissions,
/// horizontal hand-offs) over a small fixed fleet, asserting the full
/// lifecycle-conservation identity on every branch.
///
/// Exit codes: 0 clean; 1 invariant violation(s) found (minimal witnesses
/// printed); 2 required coverage missing; 3 state-count bound exceeded;
/// 64 usage error.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "df3/core/scheduler.hpp"
#include "df3/mc/explorer.hpp"
#include "df3/mc/fleet_world.hpp"

namespace {

void usage(std::ostream& os) {
  os << "usage: df3mc [options]\n"
        "  --depth N              max actions per branch (default 3)\n"
        "  --max-states N         abort past N explored states; 0 = unlimited (default 0).\n"
        "                         CI pins this as the state-count bound: exceeding it\n"
        "                         exits 3.\n"
        "  --clusters N           fleet size, 2 or 3 (default 2)\n"
        "  --seed S               experiment seed (default 1)\n"
        "  --dedup                collapse digest-identical states (UNSOUND for\n"
        "                         certification: the digest cannot observe same-instant\n"
        "                         event-calendar order; default off = full tree)\n"
        "  --actions a,b,...      restrict the alphabet to these labels\n"
        "  --require-coverage k,... exit 2 unless every named coverage counter is > 0\n"
        "  --plant-edf-bug        re-introduce the pre-fix blind EDF push_front\n"
        "                         (checker self-test: the run must find it)\n"
        "  --list-actions         print the full action alphabet and exit\n"
        "  --quiet                suppress progress lines\n";
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  df3::mc::FleetWorldConfig wc;
  df3::mc::ExplorerConfig ec;
  std::vector<std::string> require_coverage;
  bool plant = false;
  bool list_actions = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "df3mc: " << flag << " needs a value\n";
        std::exit(64);
      }
      return argv[++i];
    };
    try {
      if (arg == "--depth") {
        ec.max_depth = std::stoul(need_value("--depth"));
      } else if (arg == "--max-states") {
        ec.max_states = std::stoull(need_value("--max-states"));
      } else if (arg == "--clusters") {
        wc.clusters = std::stoul(need_value("--clusters"));
      } else if (arg == "--seed") {
        wc.seed = std::stoull(need_value("--seed"));
      } else if (arg == "--dedup") {
        ec.dedup = true;
      } else if (arg == "--actions") {
        wc.alphabet = split_csv(need_value("--actions"));
      } else if (arg == "--require-coverage") {
        require_coverage = split_csv(need_value("--require-coverage"));
      } else if (arg == "--plant-edf-bug") {
        plant = true;
      } else if (arg == "--list-actions") {
        list_actions = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else {
        std::cerr << "df3mc: unknown option '" << arg << "'\n";
        usage(std::cerr);
        return 64;
      }
    } catch (const std::exception& e) {
      std::cerr << "df3mc: bad value for " << arg << ": " << e.what() << "\n";
      return 64;
    }
  }

  try {
    df3::mc::FleetWorld world(wc);
    if (list_actions) {
      world.reset();
      for (const auto& a : world.enabled()) std::cout << a << "\n";
      return 0;
    }
    if (plant) {
      std::cout << "df3mc: planting the pre-fix blind EDF push_front (self-test)\n";
      df3::core::TaskQueue::set_test_unsorted_push_front(true);
    }
    if (!quiet) {
      ec.progress_every = 500;
      ec.on_progress = [](std::uint64_t states, std::size_t frontier) {
        std::cout << "  ... " << states << " states explored, " << frontier
                  << " frontier nodes\n";
      };
    }

    const auto result = df3::mc::Explorer(ec).run(world);
    df3::core::TaskQueue::set_test_unsorted_push_front(false);

    std::cout << "df3mc: " << result.states_explored << " states explored (depth <= "
              << result.max_depth_reached << ", " << result.states_deduped << " deduped"
              << (ec.dedup ? "" : ", dedup off: full tree") << ")\n";
    std::cout << "coverage:\n";
    for (const auto& [key, count] : result.coverage) {
      std::cout << "  " << key << " = " << count << "\n";
    }

    int exit_code = 0;
    if (!result.clean()) {
      std::cout << result.violation_count << " violating interleaving(s); minimal witnesses:\n";
      for (const auto& v : result.violations) {
        std::cout << "  witness: " << df3::mc::format_witness(v.witness) << "\n";
        for (const auto& m : v.messages) std::cout << "    " << m << "\n";
      }
      exit_code = 1;
    }
    for (const auto& key : require_coverage) {
      const auto it = result.coverage.find(key);
      if (it == result.coverage.end() || it->second == 0) {
        std::cout << "required coverage '" << key << "' was not exercised\n";
        if (exit_code == 0) exit_code = 2;
      }
    }
    if (result.truncated) {
      std::cout << "state-count bound (" << ec.max_states
                << ") exceeded before the tree was exhausted\n";
      if (exit_code == 0) exit_code = 3;
    }
    if (exit_code == 0) {
      std::cout << "all explored interleavings preserve the lifecycle conservation identity\n";
    }
    return exit_code;
  } catch (const std::exception& e) {
    std::cerr << "df3mc: " << e.what() << "\n";
    return 64;
  }
}
