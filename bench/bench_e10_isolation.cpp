// E10 — network sharing vs segmentation inside a cluster (section III-B).
//
// "For performance in DCC applications, it is better to define a single
//  local network between workers ... However, to guarantee the privacy of
//  edge data, it is preferable to have two local networks, one for edge and
//  one for DCC."
//
// With a fixed 1 Gb/s LAN budget between gateway and workers we compare:
//   shared     — one 1 Gb/s LAN carries DCC bulk transfers and edge traffic;
//   segmented  — 0.8 Gb/s for DCC, a dedicated 0.2 Gb/s lane for edge.
// Measured: DCC dataset distribution time (the parallel app's startup) and
// edge message latency while the bulk transfer is in flight.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct Result {
  double bulk_s;       // time to stage the DCC dataset to all workers
  double edge_p50_ms;  // edge request network RTT during the transfer
  double edge_p99_ms;
};

Result run(bool segmented) {
  sim::Simulation sim;
  net::Network netw(sim, segmented ? "segmented" : "shared");
  const auto gw = netw.add_node("gw");
  const auto dev = netw.add_node("dev");
  constexpr int kWorkers = 8;
  std::vector<net::NodeId> workers;
  net::LinkProfile dcc_lan = net::ethernet_lan();
  net::LinkProfile edge_lan = net::ethernet_lan();
  if (segmented) {
    dcc_lan.bandwidth = util::mbps(800.0);
    edge_lan.bandwidth = util::mbps(200.0);
  }
  // Device reaches the gateway over Wi-Fi either way.
  netw.add_link(dev, gw, net::wifi());
  std::vector<std::size_t> edge_links;
  for (int i = 0; i < kWorkers; ++i) {
    const auto w = netw.add_node("w" + std::to_string(i));
    workers.push_back(w);
    netw.add_link(gw, w, dcc_lan);
    if (segmented) {
      // A second, edge-only lane. The router prefers the fat DCC lane for
      // bulk (lower serialization) and we steer edge probes onto the thin
      // lane by sizing: tiny messages see nearly equal unloaded delay, so
      // force the choice by disabling the fat lane for the probe's route
      // computation... instead we model the edge lane as a separate
      // gateway port: dev connects to it directly.
      edge_links.push_back(netw.add_link(dev, w, edge_lan));
    }
  }

  // DCC bulk: stage a 250 MiB dataset shard to every worker at t=0.
  util::PercentileSampler bulk_done;
  for (const auto w : workers) {
    netw.send(net::Message{gw, w, util::mebibytes(250.0), 1},
              [&bulk_done](sim::Time t) { bulk_done.add(t); });
  }
  // Edge probes: 4 KiB request to a worker every 100 ms during the window.
  util::PercentileSampler edge_rtt;
  for (int i = 0; i < 100; ++i) {
    const double t0 = 0.05 + i * 0.1;
    sim.schedule_at(t0, [&netw, &edge_rtt, &workers, dev, t0, i] {
      netw.send(net::Message{dev, workers[static_cast<std::size_t>(i) % workers.size()],
                             util::kibibytes(4.0), 2},
                [&edge_rtt, t0](sim::Time t) { edge_rtt.add(t - t0); });
    });
  }
  sim.run();
  return {bulk_done.max(), edge_rtt.percentile(50.0) * 1e3, edge_rtt.p99() * 1e3};
}

}  // namespace

int main() {
  bench::banner("E10: shared LAN vs segmented edge/DCC networks",
                "one LAN speeds the parallel DCC app; segmentation isolates edge "
                "latency (and data) from the bulk traffic");

  util::Table table({"topology", "dcc_staging_s", "edge_p50_ms", "edge_p99_ms"},
                    "250 MiB/worker DCC staging + 4 KiB edge probes, 8 workers");
  table.set_precision(2);
  const auto shared = run(false);
  const auto segmented = run(true);
  table.add_row({std::string("shared 1 Gb/s"), shared.bulk_s, shared.edge_p50_ms,
                 shared.edge_p99_ms});
  table.add_row({std::string("segmented 0.8 + 0.2 Gb/s"), segmented.bulk_s,
                 segmented.edge_p50_ms, segmented.edge_p99_ms});
  table.print(std::cout);

  std::printf("\nshape checks: the shared LAN finishes DCC staging ~%.0f%% faster, but\n"
              "edge p99 balloons %.0fx while the transfer runs; the segmented design\n"
              "keeps edge flat (and its traffic never shares a wire with DCC data).\n",
              100.0 * (segmented.bulk_s - shared.bulk_s) / segmented.bulk_s,
              shared.edge_p99_ms / segmented.edge_p99_ms);
  return 0;
}
