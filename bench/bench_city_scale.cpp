// Scaling sweep of the sharded, vectorized, activity-gated fleet kernel
// (DESIGN.md section 8): full-city tick cost from 1e3 to 1e6 rooms, winter
// vs summer. In January the gate never fires and every tick runs the full
// thermostat -> regulate control sweep; in July the fleet goes quiet after
// the first control pass and districts coast on the gated fast path, so the
// winter/summer pair brackets the kernel's cost envelope.
//
// Room counts come from DF3_SCALE_ROOMS (csv, default
// "1000,10000,100000,1000000") and thread points from DF3_SCALE_THREADS
// (csv, default "1,2,8"; a bare "N" drives both the physics fan-out and the
// control lanes with N threads, "P:C" sets them independently). Every size
// runs a fixed warm-up, then a
// timed window sized to ~4e7 room-ticks (clamped to [30, one-week] ticks)
// so a million-room row costs seconds, not hours, while the small sizes
// still integrate over enough ticks to be stable. Cities mix fidelities —
// every third building is 2R2C — so both vector kernels and the dispatch
// between them are on the measured path. Peer federation uses the
// two-neighbor ring: the full-mesh default is O(buildings^2) pointers,
// which at 100k buildings is wiring cost, not kernel cost.
//
// Output: a console table plus BENCH_scale.json (path overridable with
// DF3_BENCH_JSON): ns/room-tick, items/s, gated district fraction, shard
// count and the physics/control thread counts per row.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "df3/core/platform.hpp"
#include "df3/thermal/calendar.hpp"
#include "df3/thermal/weather.hpp"
#include "df3/util/units.hpp"

namespace {

using namespace df3;

constexpr std::size_t kRoomsPerBuilding = 10;
constexpr std::uint64_t kWarmupTicks = 30;
constexpr std::uint64_t kTargetItems = 40'000'000;
constexpr std::uint64_t kMinTicks = 30;
constexpr std::uint64_t kMaxTicks = 10'080;  // one simulated week at 60 s

std::vector<std::size_t> scale_rooms() {
  const char* env = std::getenv("DF3_SCALE_ROOMS");
  const std::string csv = env != nullptr ? env : "1000,10000,100000,1000000";
  std::vector<std::size_t> rooms;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string tok = csv.substr(pos, end - pos);
    if (!tok.empty()) {
      const unsigned long long v = std::strtoull(tok.c_str(), nullptr, 10);
      if (v > 0) rooms.push_back(static_cast<std::size_t>(v));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return rooms;
}

/// One point on the threads axis: the physics fan-out and control-lane
/// counts handed to PlatformConfig (explicit, so the bench is independent
/// of DF3_PHYSICS_THREADS / DF3_CONTROL_THREADS in the environment).
struct ThreadPoint {
  std::size_t physics;
  std::size_t control;
};

std::vector<ThreadPoint> scale_threads() {
  const char* env = std::getenv("DF3_SCALE_THREADS");
  const std::string csv = env != nullptr ? env : "1,2,8";
  std::vector<ThreadPoint> pts;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    const std::string tok = csv.substr(pos, end - pos);
    if (!tok.empty()) {
      const std::size_t colon = tok.find(':');
      const unsigned long p = std::strtoul(tok.c_str(), nullptr, 10);
      const unsigned long c = colon == std::string::npos
                                  ? p
                                  : std::strtoul(tok.c_str() + colon + 1, nullptr, 10);
      if (p > 0 && c > 0) {
        pts.push_back({static_cast<std::size_t>(p), static_cast<std::size_t>(c)});
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (pts.empty()) pts.push_back({1, 1});
  return pts;
}

core::PlatformConfig scale_config(int month, ThreadPoint tp) {
  core::PlatformConfig pc;
  pc.seed = 2016;
  pc.start_time = thermal::start_of_month(month);
  pc.climate = thermal::paris_climate();
  pc.with_datacenter = false;
  pc.federation_degree = 2;
  pc.physics_threads = tp.physics;
  pc.control_threads = tp.control;
  return pc;
}

struct Row {
  std::size_t rooms;
  const char* season;
  double ns_per_room_tick;
  double items_per_s;
  double gated_fraction;
  std::size_t shards;
  std::size_t physics_threads;
  std::size_t control_threads;
};

Row run_row(std::size_t rooms, int month, const char* season, ThreadPoint tp) {
  const std::size_t buildings = std::max<std::size_t>(1, rooms / kRoomsPerBuilding);
  core::Df3Platform city(scale_config(month, tp));
  for (std::size_t i = 0; i < buildings; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = static_cast<int>(kRoomsPerBuilding);
    b.high_fidelity_rooms = (i % 3 == 2);
    city.add_building(b);
  }
  const double tick_s = scale_config(month, tp).tick_s;
  city.run(util::Seconds{static_cast<double>(kWarmupTicks) * tick_s});

  const std::size_t total_rooms = buildings * kRoomsPerBuilding;
  const std::uint64_t ticks =
      std::clamp(kTargetItems / std::max<std::uint64_t>(1, total_rooms), kMinTicks, kMaxTicks);

  const std::uint64_t d0 = city.district_ticks();
  const std::uint64_t g0 = city.gated_district_ticks();
  const auto start = std::chrono::steady_clock::now();
  city.run(util::Seconds{static_cast<double>(ticks) * tick_s});
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t dd = city.district_ticks() - d0;
  const std::uint64_t dg = city.gated_district_ticks() - g0;

  const double secs = std::chrono::duration<double>(stop - start).count();
  const double items = static_cast<double>(total_rooms) * static_cast<double>(ticks);
  Row r;
  r.rooms = total_rooms;
  r.season = season;
  r.ns_per_room_tick = secs / items * 1e9;
  r.items_per_s = items / secs;
  r.gated_fraction = dd > 0 ? static_cast<double>(dg) / static_cast<double>(dd) : 0.0;
  r.shards = city.shard_count();
  // Report the *effective* counts: the platform clamps both fan-outs to the
  // shard/lane count, so an 8-thread request over 3 shards runs (and is
  // recorded as) 3.
  r.physics_threads = std::min(tp.physics, std::max<std::size_t>(1, r.shards));
  r.control_threads = std::min(tp.control, std::max<std::size_t>(1, r.shards));
  return r;
}

}  // namespace

int main() {
  std::printf("bench_city_scale: sharded fleet kernel, %zu rooms/building, "
              "timed window ~%llu room-ticks\n\n",
              kRoomsPerBuilding, static_cast<unsigned long long>(kTargetItems));
  std::printf("%9s %7s %12s %14s %8s %7s %8s %8s\n", "rooms", "season", "ns/room-tick",
              "items/s", "gated", "shards", "phys", "ctrl");

  std::vector<Row> rows;
  for (const std::size_t rooms : scale_rooms()) {
    for (const auto& [month, season] : {std::pair{0, "winter"}, std::pair{6, "summer"}}) {
      for (const ThreadPoint tp : scale_threads()) {
        const Row r = run_row(rooms, month, season, tp);
        rows.push_back(r);
        std::printf("%9zu %7s %12.1f %14.3e %7.1f%% %7zu %8zu %8zu\n", r.rooms, r.season,
                    r.ns_per_room_tick, r.items_per_s, 100.0 * r.gated_fraction, r.shards,
                    r.physics_threads, r.control_threads);
      }
    }
  }

  const char* env = std::getenv("DF3_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_scale.json";
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"name\": \"city_scale/rooms:" << r.rooms << "/season:" << r.season
        << "/pt:" << r.physics_threads << "/ct:" << r.control_threads << "\""
        << ", \"rooms\": " << r.rooms << ", \"season\": \"" << r.season << "\""
        << ", \"ns_per_room_tick\": " << r.ns_per_room_tick
        << ", \"items_per_s\": " << r.items_per_s
        << ", \"gated_fraction\": " << r.gated_fraction << ", \"shards\": " << r.shards
        << ", \"threads\": " << r.physics_threads
        << ", \"physics_threads\": " << r.physics_threads
        << ", \"control_threads\": " << r.control_threads << '}'
        << (i + 1 < rows.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
