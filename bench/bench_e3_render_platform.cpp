// E3 — the Qarnot rendering platform at 2016 scale.
//
// Paper section III: "In 2016, the Qarnot rendering platform had 1100 users
// that rendered 600,000 images for 11,000,000 hours of computations" on a
// French fleet of <= 30,000 cores. We run a scaled instance of the platform
// (winter fleet, business-hours render submissions from a user population),
// then scale the measured throughput to fleet size x one year and check the
// order of magnitude against the reported figures.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("E3: rendering platform throughput at 2016 scale",
                "1100 users / 600k images / 11M compute-hours on <= 30k cores in a year");

  constexpr int kBuildings = 16;
  constexpr int kRooms = 4;
  constexpr double kDays = 14.0;
  const int cores = kBuildings * kRooms * 16;

  core::PlatformConfig base;
  base.tick_s = 300.0;
  auto city = bench::make_city(2016, 0, core::GatingPolicy::kKeepWarm, kBuildings, kRooms, base);
  // ~90 submitting studios; renders arrive mostly in office hours. Frame
  // weights match the platform's 2016 economics: 11M compute-hours over
  // 600k images is ~18 core-hours per image, so per-frame work is a heavy
  // tail centred on tens of hours of gigacycles.
  auto heavy_frames = [](util::RngStream& rng) {
    workload::Request r;
    r.flow = workload::Flow::kCloud;
    r.app = "render";
    r.tasks = static_cast<int>(rng.uniform_int(8, 48));
    r.work_gigacycles = rng.bounded_pareto(1.15, 36000.0, 720000.0);
    r.input_size = util::mebibytes(rng.uniform(5.0, 50.0));
    r.output_size = util::mebibytes(rng.uniform(2.0, 10.0));
    r.preemptible = true;
    return r;
  };
  // Arrival rate reproduces the fleet's real 2016 duty: 11M core-hours on
  // 30k cores is ~4% annual utilization, i.e. ~2 batches/day at this scale.
  city->add_cloud_source(heavy_frames,
                         workload::business_hours_arrivals(1.0 / 100000.0, 6.0));
  city->run(util::days(kDays));

  const auto& render = city->flow_metrics().by_app("render");
  std::uint64_t frames = 0;
  double core_seconds = 0.0;
  for (std::size_t b = 0; b < city->building_count(); ++b) {
    auto& cl = city->cluster(b);
    for (std::size_t w = 0; w < cl.worker_count(); ++w) {
      frames += cl.worker(w).tasks_completed();
      core_seconds += cl.worker(w).busy_core_seconds();
    }
  }
  const double core_hours = core_seconds / 3600.0;
  const double scale = (30000.0 / cores) * (365.0 / kDays);

  util::Table table({"metric", "measured_run", "scaled_to_2016_fleet", "paper_2016"},
                    "14 January days, " + std::to_string(cores) + " cores");
  table.set_precision(0);
  table.add_row({std::string("render batches"), static_cast<std::int64_t>(render.completed),
                 static_cast<double>(render.completed) * scale, std::string("~1100 users")});
  table.add_row({std::string("frames/images"), static_cast<std::int64_t>(frames),
                 static_cast<double>(frames) * scale, std::string("600,000")});
  table.add_row({std::string("core-hours"), core_hours, core_hours * scale,
                 std::string("11,000,000 h")});
  table.print(std::cout);

  std::printf("\np50 batch turnaround: %.1f min; p99: %.1f h\n",
              render.response_s.percentile(50.0) / 60.0, render.response_s.p99() / 3600.0);
  std::printf("shape check: the year-scaled volume lands within ~1 order of magnitude of\n"
              "the paper's 0.6M images / 11M hours (their 'hours' are wall hours of\n"
              "multi-core jobs; ours are core-hours of pure compute).\n");
  return 0;
}
