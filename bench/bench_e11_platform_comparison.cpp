// E11 — DF servers vs the alternative edge substrates (section V).
//
// "There exist alternatives to DF servers for edge computing ...
//  micro-datacenters ... clusters of raspberry pi ... CDN ... However, let
//  us observe that DF servers are more energy efficient."
//
// The same edge request stream (0.5 Gc, 8 KiB in, 1 s deadline) is served
// by: a DF3 building cluster, a metro micro-datacenter, a CDN PoP, a
// desktop grid, and a remote-region datacenter. We compare latency,
// deadline success, and what each joule of electricity became.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

workload::Request probe_request(util::RngStream& rng) {
  workload::Request r;
  r.app = "edge-probe";
  r.flow = workload::Flow::kEdgeIndirect;
  r.work_gigacycles = rng.uniform(0.3, 0.7);
  r.input_size = util::kibibytes(8.0);
  r.output_size = util::kibibytes(2.0);
  r.deadline_s = 1.0;
  r.preemptible = false;
  return r;
}

struct Row {
  std::string platform;
  double p50_ms, p99_ms, success;
  double waste_wh_per_req;  // watt-hours of non-useful heat per request
};

/// Shared request schedule so every platform sees the identical stream.
std::vector<workload::Request> make_stream(double horizon_s) {
  util::RngStream rng(31, "e11-stream");
  std::vector<workload::Request> out;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(0.05);
    if (t >= horizon_s) break;
    auto r = probe_request(rng);
    r.arrival = t;
    r.id = out.size();
    out.push_back(std::move(r));
  }
  return out;
}

template <class SubmitFn>
Row run_service(const std::string& name, sim::Simulation& sim, SubmitFn submit,
                const std::vector<workload::Request>& stream, double horizon_s,
                std::function<double(std::uint64_t)> waste_wh) {
  auto metrics = std::make_shared<metrics::FlowMetrics>();
  for (const auto& r : stream) {
    sim.schedule_at(r.arrival, [submit, r, metrics] {
      submit(r, [metrics](workload::CompletionRecord rec) { metrics->record(rec); });
    });
  }
  // Generous drain window (the grid's churn events recur forever, so a
  // plain run-to-empty would never return).
  sim.run_until(horizon_s + 2.0 * 86400.0);
  const auto& s = metrics->by_app("edge-probe");
  return {name, s.response_s.percentile(50.0) * 1e3, s.response_s.p99() * 1e3,
          s.success_rate(), waste_wh(std::max<std::uint64_t>(1, s.total()))};
}

}  // namespace

int main() {
  bench::banner("E11: the same edge workload on five substrates",
                "DF wins on energy (heat is the product) and matches the best latencies; "
                "the desktop grid cannot hold deadlines at all");

  const double horizon = 6.0 * 3600.0;
  const auto stream = make_stream(horizon);
  std::vector<Row> rows;

  // --- DF3 building cluster (winter: its heat is all wanted) --------------
  {
    auto city = bench::make_city(31, 0, core::GatingPolicy::kKeepWarm, 1, 4);
    // Deterministic replay of the shared stream through the building's
    // Wi-Fi path (real transport + gateway staging).
    auto& cl = city->cluster(0);
    const auto wifi = city->network().node("b0/wifi");
    for (const auto& r : stream) {
      city->simulation().schedule_at(r.arrival, [&cl, r, wifi, &city] {
        city->network().send(
            net::Message{wifi, cl.gateway_node(), r.input_size, r.id},
            [&cl, r, wifi](sim::Time) mutable { cl.submit(r, wifi); });
      });
    }
    city->run(util::Seconds{horizon + 3600.0});
    const auto& s = city->flow_metrics().by_app("edge-probe");
    const double waste_wh =
        city->df_energy().waste_heat().value() / 3600.0 /
        static_cast<double>(std::max<std::uint64_t>(1, s.total()));
    rows.push_back({"DF3 cluster (winter)", s.response_s.percentile(50.0) * 1e3,
                    s.response_s.p99() * 1e3, s.success_rate(), waste_wh});
  }

  // --- datacenter-family substrates ---------------------------------------
  struct DcCase {
    const char* name;
    baselines::DatacenterConfig cfg;
  };
  DcCase cases[] = {{"micro-datacenter", baselines::micro_datacenter_config()},
                    {"cdn-pop", baselines::cdn_pop_config()},
                    {"remote datacenter", baselines::DatacenterConfig{}}};
  cases[2].cfg.extra_latency_s = 0.05;
  cases[2].cfg.cores = 64;  // slice of a shared region comparable to the others
  for (auto& c : cases) {
    sim::Simulation sim;
    baselines::Datacenter dc(sim, c.cfg);
    auto row = run_service(
        c.name, sim,
        [&dc](const workload::Request& r, core::ComputeService::Done done) {
          dc.submit(r, 0, std::move(done));
        },
        stream, horizon,
        [&dc](std::uint64_t n) {
          return dc.energy().waste_heat().value() / 3600.0 / static_cast<double>(n);
        });
    rows.push_back(std::move(row));
  }

  // --- desktop grid --------------------------------------------------------
  {
    sim::Simulation sim;
    baselines::DesktopGridConfig cfg;
    // A realistic volunteer pool: few donors, volatile, already carrying
    // BOINC-style batch work (the opportunistic workloads desktop grids
    // were validated on — paper section I).
    cfg.hosts = 6;
    cfg.cores_per_host = 2;
    cfg.mean_available_s = 1200.0;
    cfg.mean_reclaimed_s = 2400.0;
    baselines::DesktopGrid grid(sim, cfg, 31);
    workload::Request background;
    background.app = "boinc-batch";
    background.work_gigacycles = 1800.0;
    background.tasks = 24;
    grid.submit(background, 0, [](workload::CompletionRecord) {});
    auto row = run_service(
        "desktop grid (contended)", sim,
        [&grid](const workload::Request& r, core::ComputeService::Done done) {
          grid.submit(r, 0, std::move(done));
        },
        stream, horizon,
        [&grid](std::uint64_t n) {
          return grid.energy().waste_heat().value() / 3600.0 / static_cast<double>(n);
        });
    rows.push_back(std::move(row));
  }

  util::Table table({"platform", "p50_ms", "p99_ms", "deadline_success", "waste_Wh_per_req"},
                    "identical 6 h edge stream (0.3-0.7 Gc, 1 s deadline)");
  table.set_precision(2);
  for (const auto& r : rows) {
    table.add_row({r.platform, r.p50_ms, r.p99_ms, r.success, r.waste_wh_per_req});
  }
  table.print(std::cout);

  std::printf("\nshape checks: DF and the in-city substrates hold the deadline; the\n"
              "remote DC pays the WAN; the contended volunteer pool drops ~a fifth of\n"
              "deadlines to reclaim churn. On waste energy DF is the outlier: its\n"
              "joules were heating someone's home on request.\n");
  return 0;
}
