// E14 — digital boilers: year-round availability vs waste heat (§II-B.2,
// §III-C).
//
// "With digital boilers, the problem might not be important because we can
//  continue to produce hot water independently of heating requests.
//  However, this will generate waste heat."
//
// A Stimergy-class 4 kW boiler charges an 800 l hot-water store against a
// residential draw profile for a year. Unlike space heaters, hot water is
// wanted every month — so the boiler's compute capacity barely breathes
// with the seasons. The comparison row is a Q.rad fleet of equal rating
// whose demand dies in summer.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("E14: digital boiler — year-round heat demand, year-round capacity",
                "boilers keep computing through summer (hot water is aseasonal); "
                "space heaters cannot");

  // --- boiler + tank closed loop over a year -------------------------------
  const thermal::WeatherModel weather(thermal::ClimateNormals{}, 14);
  hw::DfServer boiler(hw::stimergy_boiler_spec());
  core::HeatRegulator regulator({core::GatingPolicy::kAggressive});
  thermal::WaterTankParams tank_params;
  // Block-sized store: ~1.7x the daily draw, charged to 58 degC. (The
  // lumped single-node tank mixes every draw into the whole volume, so it
  // understates outlet temperature vs a real stratified tank — the
  // below-sanitary column is therefore a conservative bound.)
  tank_params.volume_l = 2500.0;
  tank_params.setpoint = util::celsius(58.0);
  tank_params.ua_w_per_k = 5.0;
  thermal::WaterTank tank(tank_params, util::celsius(58.0));
  const auto rating = boiler.spec().rated_power();

  // Q.rad comparison: one room of equal comfort demand.
  thermal::Room room(thermal::RoomParams{}, util::celsius(20.0));
  hw::DfServer qrad(hw::qrad_spec());
  core::HeatRegulator qreg({core::GatingPolicy::kAggressive});
  const thermal::ComfortProfile comfort;

  util::Table table({"month", "boiler_usable_cores", "qrad_usable_cores", "tank_mean_c",
                     "below_sanitary_h"},
                    "4 kW Stimergy boiler (320 cores) vs Q.rad (16 cores), daily draws");
  table.set_precision(1);

  const double tick = 600.0;
  double sanitary_mark = 0.0;
  for (int m = 0; m < 12; ++m) {
    const double t0 = thermal::start_of_month(m);
    const double t1 = t0 + thermal::kDaysInMonth[static_cast<std::size_t>(m)] *
                               thermal::kSecondsPerDay;
    util::StreamingStats boiler_cores, qrad_cores, tank_c;
    for (double t = t0; t < t1; t += tick) {
      const auto t_out = weather.outdoor_temperature(t);
      // Boiler: tank demand (always in season).
      const double draw = thermal::hot_water_draw_lps(t, 1500.0);  // small apartment block
      const auto tank_demand = tank.demand(draw, rating);
      regulator.regulate(boiler, tank_demand);
      boiler.advance(util::Seconds{tick}, true);
      tank.advance(util::Seconds{tick}, boiler.power(), draw);
      boiler_cores.add(boiler.usable_cores());
      tank_c.add(tank.temperature().value());
      // Q.rad: room comfort demand with the seasonal cutoff.
      const bool season = weather.seasonal_component(t) < comfort.heating_cutoff_outdoor;
      thermal::HeatDemand room_demand{util::watts(0.0), false};
      if (season) {
        const auto target = comfort.target_at_hour(thermal::hour_of_day(t));
        thermal::ModulatingThermostat thermostat(target, 250.0, qrad.spec().rated_power());
        room_demand = thermostat.demand(room.temperature(), room.holding_power(target, t_out));
      }
      qreg.regulate(qrad, room_demand);
      qrad.advance(util::Seconds{tick}, season);
      room.advance(util::Seconds{tick}, qrad.power(), t_out);
      qrad_cores.add(qrad.usable_cores());
    }
    table.add_row({std::string(thermal::month_name(m)), boiler_cores.mean(),
                   qrad_cores.mean(), tank_c.mean(),
                   (tank.seconds_below_sanitary() - sanitary_mark) / 3600.0});
    sanitary_mark = tank.seconds_below_sanitary();
  }
  table.print(std::cout);

  std::printf("\nlitres served: %.0f over the year; boiler energy %.0f kWh\n",
              tank.litres_served(), boiler.energy_consumed().kwh());
  std::printf("reading: the boiler's usable cores stay high all twelve months (hot\n"
              "water is aseasonal) while the Q.rad's collapse in summer — the paper's\n"
              "availability argument for boilers, with the waste-heat caveat priced in\n"
              "E8's always-on row.\n");
  return 0;
}
