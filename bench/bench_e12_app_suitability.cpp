// E12 — which applications suit data furnace (section VI + Liu et al.).
//
// "Tightly coupled applications will have poor network performance on data
//  furnace systems. Compute intensive jobs with a huge running time are
//  also not appropriate [free cooling] ... storage services are not
//  interesting because they do not produce heat."
//
// Each application class runs once on a DF building cluster (1 Gb/s LAN,
// free-cooled Q.rads) and once on a classic datacenter (10 Gb/s fabric,
// chilled). We report the DF/DC slowdown and the heat produced per job —
// the two axes of the paper's suitability verdicts.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct AppCase {
  const char* name;
  workload::Request request;
  const char* paper_verdict;
};

double run_on_df(const workload::Request& r, double& heat_kwh, bool hot_room) {
  sim::Simulation sim;
  net::Network netw(sim, "df");
  const auto gw = netw.add_node("gw");
  std::vector<net::NodeId> nodes;
  core::ClusterConfig cfg;
  cfg.fabric_gbps = 1.0;
  cfg.reference_fabric_gbps = 10.0;
  double done_at = -1.0;
  core::Cluster cluster(sim, "df", cfg, netw, gw,
                        [&](workload::CompletionRecord rec) { done_at = rec.completed_at; });
  for (int i = 0; i < 4; ++i) {
    const auto n = netw.add_node("w" + std::to_string(i));
    netw.add_link(gw, n, net::ethernet_lan());
    cluster.add_worker(hw::qrad_spec(), n);
  }
  if (hot_room) {
    // Marathon jobs meet the free-cooling reality: a small room heated by
    // the server itself creeps into the throttle window. We emulate the
    // warm shoulder-season room with a fixed hot inlet.
    for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
      cluster.worker(w).server().set_inlet_temperature(util::celsius(31.5));
      cluster.worker(w).sync_speed();
    }
  }
  cluster.submit(r, gw);
  sim.run();
  // Heat emitted by the job: busy core-seconds priced at the per-core
  // power of a fully loaded Q.rad (~31 W/core). The standalone cluster has
  // no physics tick, so we account from the workers' execution records.
  double busy_core_s = 0.0;
  for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
    busy_core_s += cluster.worker(w).busy_core_seconds();
  }
  const double per_core_w = hw::qrad_spec().rated_power().value() /
                            hw::qrad_spec().total_cores();
  heat_kwh = busy_core_s * per_core_w / 3.6e6;
  return done_at;
}

double run_on_dc(const workload::Request& r) {
  sim::Simulation sim;
  baselines::DatacenterConfig cfg;
  cfg.cores = 64;
  baselines::Datacenter dc(sim, cfg);
  double done_at = -1.0;
  dc.submit(r, 0, [&](workload::CompletionRecord rec) { done_at = rec.completed_at; });
  sim.run();
  return done_at;
}

}  // namespace

int main() {
  bench::banner("E12: application-suitability taxonomy, DF vs datacenter",
                "embarrassingly parallel batch fits; tightly coupled and marathon jobs "
                "suffer; storage produces no heat");

  util::RngStream rng(12, "e12");
  std::vector<AppCase> cases;
  {
    auto r = workload::render_batch_factory(16, 16)(rng);
    cases.push_back({"render batch (EP)", std::move(r), "good fit"});
  }
  {
    auto r = workload::risk_simulation_factory()(rng);
    r.tasks = 48;
    cases.push_back({"risk simulation (EP)", std::move(r), "good fit"});
  }
  {
    auto r = workload::coupled_solver_factory(16, 0.35)(rng);
    cases.push_back({"coupled solver (35% comm)", std::move(r), "poor: network"});
  }
  {
    workload::Request r;
    r.app = "marathon";
    r.work_gigacycles = 500000.0;  // ~43 h on one 3.2 GHz core
    r.tasks = 1;
    cases.push_back({"marathon single job", std::move(r), "poor: free cooling"});
  }
  {
    auto r = workload::storage_request_factory()(rng);
    cases.push_back({"storage put (500 MB)", std::move(r), "uninteresting: no heat"});
  }

  util::Table table({"application", "df_hours", "dc_hours", "df/dc", "df_heat_kwh",
                     "paper_verdict"},
                    "one request per class; DF = 4 Q.rads, DC = 64 chilled cores");
  table.set_precision(2);
  for (const auto& c : cases) {
    double heat_kwh = 0.0;
    const bool hot = std::string_view(c.name).find("marathon") != std::string_view::npos;
    const double df_t = run_on_df(c.request, heat_kwh, hot);
    const double dc_t = run_on_dc(c.request);
    table.add_row({std::string(c.name), df_t / 3600.0, dc_t / 3600.0, df_t / dc_t, heat_kwh,
                   std::string(c.paper_verdict)});
  }
  table.print(std::cout);

  std::printf("\nshape checks: the coupled solver's DF/DC ratio carries the ~%.0fx fabric\n"
              "stretch; the marathon job pays the thermal throttle on top of the clock\n"
              "gap; storage moves half a gigabyte to produce milliwatt-hours of heat.\n",
              10.0 * 0.35 + 0.65);
  return 0;
}
