// Microbenchmarks of the discrete-event engine: scheduling throughput,
// calendar churn under cancellation, periodic-process overhead, and a mixed
// workload that exercises all three at once. These bound how large a city we
// can simulate per wall-clock second.
//
// Besides wall-clock throughput, every benchmark reports an
// `allocs_per_item` counter (heap allocations per event, measured by a
// replacement global operator new), which is what the record pool + SBO
// callback work is meant to drive to ~zero.
//
// The binary has a custom main: after the normal console output it writes
// `BENCH_engine.json` (override the path with DF3_BENCH_JSON) so future PRs
// can track the perf trajectory machine-readably.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

// ---------------------------------------------------------------------------
// Allocation accounting: replace global operator new/delete with counting
// versions. Only the count is instrumented; storage still comes from malloc.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

double alloc_count() { return static_cast<double>(g_alloc_count.load(std::memory_order_relaxed)); }
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  df3::util::RngStream rng(1, "bench");
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  const double allocs_before = alloc_count();
  for (auto _ : state) {
    df3::sim::Simulation sim;
    std::size_t sink = 0;
    for (double t : times) sim.schedule_at(t, [&sink] { ++sink; });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  const auto items = static_cast<std::int64_t>(n) * state.iterations();
  state.SetItemsProcessed(items);
  state.counters["allocs_per_item"] =
      (alloc_count() - allocs_before) / static_cast<double>(items);
}
BENCHMARK(BM_ScheduleAndRun)->Range(1 << 10, 1 << 18);

void BM_CancellationChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double allocs_before = alloc_count();
  for (auto _ : state) {
    df3::sim::Simulation sim;
    df3::util::RngStream rng(2, "bench-cancel");
    std::vector<df3::sim::EventHandle> handles;
    handles.reserve(n);
    std::size_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(sim.schedule_at(rng.uniform(0.0, 1e6), [&sink] { ++sink; }));
    }
    for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  const auto items = static_cast<std::int64_t>(n) * state.iterations();
  state.SetItemsProcessed(items);
  state.counters["allocs_per_item"] =
      (alloc_count() - allocs_before) / static_cast<double>(items);
}
BENCHMARK(BM_CancellationChurn)->Range(1 << 10, 1 << 16);

void BM_PeriodicProcesses(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  const double allocs_before = alloc_count();
  std::int64_t ticks = 0;
  for (auto _ : state) {
    df3::sim::Simulation sim;
    std::size_t sink = 0;
    std::vector<std::unique_ptr<df3::sim::PeriodicProcess>> ps;
    ps.reserve(procs);
    for (std::size_t i = 0; i < procs; ++i) {
      ps.push_back(std::make_unique<df3::sim::PeriodicProcess>(
          sim, static_cast<double>(i % 60), 60.0, [&sink](double) { ++sink; }));
    }
    sim.run_until(3600.0);  // one simulated hour of 1-minute ticks
    benchmark::DoNotOptimize(sink);
    ticks += static_cast<std::int64_t>(sink);
  }
  state.SetItemsProcessed(ticks);
  state.counters["allocs_per_item"] =
      ticks > 0 ? (alloc_count() - allocs_before) / static_cast<double>(ticks) : 0.0;
}
BENCHMARK(BM_PeriodicProcesses)->Range(8, 1 << 12);

// Mixed workload: one-shot events that randomly reschedule and cancel each
// other while a pool of periodic processes ticks underneath — the shape of a
// real building simulation (sensor events + control loops), and the
// worst case for the calendar: pushes, pops, ghosts and re-arms interleave.
struct MixedCtx {
  df3::sim::Simulation& sim;
  df3::util::RngStream& rng;
  std::vector<df3::sim::EventHandle>& handles;
  std::size_t budget;  // remaining reschedules; bounds the run
  std::size_t fired = 0;
};

void mixed_fire(MixedCtx& ctx) {
  ++ctx.fired;
  const auto last = static_cast<std::int64_t>(ctx.handles.size()) - 1;
  if (ctx.rng.uniform01() < 0.4) {
    ctx.handles[static_cast<std::size_t>(ctx.rng.uniform_int(0, last))].cancel();
  }
  if (ctx.budget > 0) {
    --ctx.budget;
    ctx.handles[static_cast<std::size_t>(ctx.rng.uniform_int(0, last))] =
        ctx.sim.schedule_in(ctx.rng.uniform(0.0, 100.0), [&ctx] { mixed_fire(ctx); });
  }
}

void BM_MixedChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double allocs_before = alloc_count();
  std::int64_t executed = 0;
  for (auto _ : state) {
    df3::sim::Simulation sim;
    df3::util::RngStream rng(7, "bench-mixed");
    std::vector<df3::sim::EventHandle> handles(n);
    MixedCtx ctx{sim, rng, handles, /*budget=*/3 * n};
    std::vector<std::unique_ptr<df3::sim::PeriodicProcess>> procs;
    procs.reserve(16);
    for (std::size_t i = 0; i < 16; ++i) {
      procs.push_back(std::make_unique<df3::sim::PeriodicProcess>(
          sim, static_cast<double>(i), 25.0, [&ctx](double) { ++ctx.fired; }));
    }
    for (std::size_t i = 0; i < n; ++i) {
      handles[i] = sim.schedule_in(rng.uniform(0.0, 100.0), [&ctx] { mixed_fire(ctx); });
    }
    sim.run_until(400.0);
    for (auto& p : procs) p->stop();
    sim.run();  // drain remaining one-shots
    benchmark::DoNotOptimize(ctx.fired);
    executed += static_cast<std::int64_t>(sim.events_executed());
  }
  state.SetItemsProcessed(executed);
  state.counters["allocs_per_item"] =
      executed > 0 ? (alloc_count() - allocs_before) / static_cast<double>(executed) : 0.0;
}
BENCHMARK(BM_MixedChurn)->Range(1 << 10, 1 << 15);

// ---------------------------------------------------------------------------
// Custom main: normal console output plus a machine-readable JSON dump of
// items/s (and every other counter) per benchmark.

class JsonExportReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      if (run.iterations > 0) {
        row.real_ns_per_iter = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
      }
      for (const auto& [key, counter] : run.counters) {
        row.counters.emplace_back(key, static_cast<double>(counter));
      }
      rows_.push_back(std::move(row));
    }
  }

  bool write_json(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "    {\"name\": \"" << row.name << "\", \"real_ns_per_iter\": "
          << row.real_ns_per_iter;
      for (const auto& [key, value] : row.counters) {
        out << ", \"" << key << "\": " << value;
      }
      out << '}' << (i + 1 < rows_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Row {
    std::string name;
    double real_ns_per_iter = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonExportReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* env_path = std::getenv("DF3_BENCH_JSON");
  const std::string path = env_path != nullptr ? env_path : "BENCH_engine.json";
  if (!reporter.write_json(path)) {
    std::fprintf(stderr, "bench_engine_micro: failed to write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}
