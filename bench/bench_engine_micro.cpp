// Microbenchmarks of the discrete-event engine: scheduling throughput,
// calendar churn under cancellation, and periodic-process overhead. These
// bound how large a city we can simulate per wall-clock second.
#include <benchmark/benchmark.h>

#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  df3::util::RngStream rng(1, "bench");
  std::vector<double> times(n);
  for (auto& t : times) t = rng.uniform(0.0, 1e6);
  for (auto _ : state) {
    df3::sim::Simulation sim;
    std::size_t sink = 0;
    for (double t : times) sim.schedule_at(t, [&sink] { ++sink; });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun)->Range(1 << 10, 1 << 18);

void BM_CancellationChurn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    df3::sim::Simulation sim;
    df3::util::RngStream rng(2, "bench-cancel");
    std::vector<df3::sim::EventHandle> handles;
    handles.reserve(n);
    std::size_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(sim.schedule_at(rng.uniform(0.0, 1e6), [&sink] { ++sink; }));
    }
    for (std::size_t i = 0; i < n; i += 2) handles[i].cancel();
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_CancellationChurn)->Range(1 << 10, 1 << 16);

void BM_PeriodicProcesses(benchmark::State& state) {
  const auto procs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    df3::sim::Simulation sim;
    std::size_t sink = 0;
    std::vector<std::unique_ptr<df3::sim::PeriodicProcess>> ps;
    ps.reserve(procs);
    for (std::size_t i = 0; i < procs; ++i) {
      ps.push_back(std::make_unique<df3::sim::PeriodicProcess>(
          sim, static_cast<double>(i % 60), 60.0, [&sink](double) { ++sink; }));
    }
    sim.run_until(3600.0);  // one simulated hour of 1-minute ticks
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_PeriodicProcesses)->Range(8, 1 << 12);

}  // namespace
