// E7 — the DVFS heat regulator tracking the heat demand (section III-B).
//
// "The heat regulator implements a DVFS based technique to guarantee that
//  the energy consumed corresponds to the heat demand." We drive one Q.rad
// through a demand staircase and a realistic thermostat day, and measure
// how closely emitted power follows the request under both gating policies.
// Compute throughput is reported alongside: heat tracked = cycles sold.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct PhaseResult {
  double requested_w;
  double delivered_w;
  double speed_gcps;  // whole-chassis throughput while the phase held
};

/// Drive `server` at constant demand for `seconds`; return means.
PhaseResult run_phase(hw::DfServer& server, core::HeatRegulator& reg, double demand_w,
                      double seconds) {
  const thermal::HeatDemand demand{util::watts(demand_w), true};
  const double tick = 60.0;
  double delivered_j = 0.0;
  const double e0 = server.energy_consumed().value();
  for (double t = 0.0; t < seconds; t += tick) {
    reg.regulate(server, demand);
    server.advance(util::Seconds{tick}, true);
  }
  delivered_j = server.energy_consumed().value() - e0;
  const double delivered_w = delivered_j / seconds;
  reg.record(util::Seconds{seconds}, util::watts(delivered_w), util::watts(demand_w));
  const double speed =
      server.core_speed_gcps() * server.usable_cores();
  return {demand_w, delivered_w, speed};
}

}  // namespace

int main() {
  bench::banner("E7: DVFS heat regulator tracking",
                "energy consumed follows the heat demand; capacity is the by-product");

  // --- staircase ----------------------------------------------------------
  util::Table stair({"demand_w", "delivered_w", "error_pct", "chassis_gcps"},
                    "demand staircase, one Q.rad, aggressive gating");
  stair.set_precision(1);
  {
    hw::DfServer server(hw::qrad_spec());
    core::HeatRegulator reg({core::GatingPolicy::kAggressive});
    for (const double demand : {0.0, 60.0, 150.0, 300.0, 450.0, 500.0, 200.0, 0.0}) {
      const auto r = run_phase(server, reg, demand, 3600.0);
      const double err = demand > 0.0
                             ? 100.0 * std::abs(r.delivered_w - demand) / demand
                             : r.delivered_w;  // watts leaked when zero asked
      stair.add_row({r.requested_w, r.delivered_w, err, r.speed_gcps});
    }
    std::printf("staircase energy-weighted relative error: %.1f%%\n\n",
                100.0 * reg.relative_error());
  }
  stair.print(std::cout);

  // --- thermostat day: both gating policies --------------------------------
  std::printf("\nthermostat-day comparison (modulating thermostat on the default room):\n");
  util::Table day({"gating", "rel_error_pct", "delivered_kwh", "requested_kwh",
                   "mean_room_c"},
                  "96 h closed loop across the season cutoff (early June)");
  day.set_precision(2);
  for (const auto policy : {core::GatingPolicy::kAggressive, core::GatingPolicy::kKeepWarm}) {
    hw::DfServer server(hw::qrad_spec());
    core::HeatRegulator reg({policy});
    thermal::Room room(thermal::RoomParams{}, util::celsius(19.0));
    thermal::ModulatingThermostat thermostat(util::celsius(20.5), 250.0, util::watts(500.0));
    const thermal::WeatherModel weather(thermal::ClimateNormals{}, 3);
    util::StreamingStats room_c;
    const double tick = 60.0;
    double e_mark = server.energy_consumed().value();
    // Early June: the seasonal cutoff ends the heating season, so the two
    // gating policies actually diverge (standby vs keep-warm idle).
    const double t0 = thermal::start_of_month(5);
    const thermal::ComfortProfile comfort;
    for (double t = t0; t < t0 + 96.0 * 3600.0; t += tick) {
      const auto t_out = weather.outdoor_temperature(t);
      const bool season =
          weather.seasonal_component(t) < comfort.heating_cutoff_outdoor;
      thermal::HeatDemand demand{util::watts(0.0), false};
      if (season) {
        demand = thermostat.demand(room.temperature(),
                                   room.holding_power(thermostat.target(), t_out));
      }
      reg.regulate(server, demand);
      server.set_inlet_temperature(room.temperature());
      server.advance(util::Seconds{tick}, true);
      const double delta = server.energy_consumed().value() - e_mark;
      e_mark = server.energy_consumed().value();
      room.advance(util::Seconds{tick}, util::watts(delta / tick), t_out);
      reg.record(util::Seconds{tick}, util::watts(delta / tick), demand.power);
      room_c.add(room.temperature().value());
    }
    day.add_row({std::string(policy == core::GatingPolicy::kAggressive ? "aggressive"
                                                                       : "keep-warm"),
                 100.0 * reg.relative_error(), reg.delivered_total().kwh(),
                 reg.requested_total().kwh(), room_c.mean()});
  }
  day.print(std::cout);

  std::printf("\nshape checks: mid-range demands track within P-state quantization;\n"
              "zero demand leaks only standby watts under aggressive gating; the\n"
              "keep-warm policy trades a little over-delivery for retained capacity.\n");
  return 0;
}
