// A2 — ablation: cluster size (gateway fan-out).
//
// Section III-B leaves open how many workers a gateway should control ("we
// can either use clustering techniques ... or define clusters as the set of
// DF servers of a physical building"). Bigger clusters absorb DCC bursts
// without hurting edge; smaller ones isolate failures but saturate. We
// sweep rooms-per-building under a fixed per-cluster workload.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("A2 (ablation): workers per gateway (cluster size)",
                "burst absorption grows with fan-out; edge latency stays flat once the "
                "cluster outsizes the burst");

  util::Table table({"rooms(=servers)", "cores", "edge_p99_ms", "edge_success",
                     "cloud_p50_min", "preemptions"},
                    "per-cluster load fixed: alarm stream + MMPP render bursts, 1 day");
  table.set_precision(1);

  for (const int rooms : {1, 2, 4, 8, 16}) {
    core::PlatformConfig base;
    base.cluster.edge_peak_ladder = {"preempt", "delay"};
    auto city = bench::make_city(23, 0, core::GatingPolicy::kKeepWarm, 1, rooms, base);
    city->add_edge_source(0, workload::alarm_detection_factory(), 0.05);
    city->add_cloud_source(
        workload::render_batch_factory(16, 32),
        std::make_unique<workload::MmppArrivals>(1.0 / 7200.0, 1.0 / 300.0, 3600.0, 1800.0));
    city->run(util::days(1.0));
    const auto& edge = city->flow_metrics().by_flow(workload::Flow::kEdgeIndirect);
    const auto& cloud = city->flow_metrics().by_flow(workload::Flow::kCloud);
    table.add_row({static_cast<std::int64_t>(rooms), static_cast<std::int64_t>(rooms * 16),
                   edge.response_s.p99() * 1e3, edge.success_rate(),
                   cloud.response_s.percentile(50.0) / 60.0,
                   static_cast<std::int64_t>(city->cluster(0).stats().preemptions)});
  }
  table.print(std::cout);

  std::printf("\nreading: a one-server 'cluster' survives only by preempting thousands\n"
              "of render shards and its cloud median explodes; beyond ~8 servers per\n"
              "gateway the building-sized cluster absorbs bursts without touching\n"
              "anyone — the paper's per-building clustering is enough.\n");
  return 0;
}
