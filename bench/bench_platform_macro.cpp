// Macro-benchmark of the fleet-physics kernel (DESIGN.md, "Fleet-physics
// kernel"): full-city tick throughput, old sweep vs new, at 30 / 300 /
// 1000 / 10000 rooms over one simulated week. (bench_city_scale picks up
// from 1e3 and sweeps the sharded kernel alone to 1e6 rooms.)
//
// The A side is a faithful port of the pre-refactor hot path — the
// per-object AoS sweep with per-call DVFS ratio math, a P-state scan that
// mutates the server per candidate, exp() recomputed every room step and
// pow(2,x) aging — driven by the same discrete-event engine, weather model,
// metrics collectors and control flow as the real platform, so the two
// sides do identical simulation work and differ only in the physics/control
// kernel. The B side is the real `Df3Platform`. Rounds are interleaved
// A,B,A,B,... and medians reported, so thermal/frequency drift of the host
// machine hits both sides equally.
//
// Output: a console table plus BENCH_platform.json (path overridable with
// DF3_BENCH_JSON) with ns/room-tick, items/s and the speedup per city size.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <deque>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "df3/core/platform.hpp"
#include "df3/metrics/collectors.hpp"
#include "df3/thermal/calendar.hpp"
#include "df3/sim/engine.hpp"
#include "df3/thermal/room.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/thermal/weather.hpp"
#include "df3/util/stats.hpp"
#include "df3/util/units.hpp"

namespace {

using namespace df3;

constexpr double kDfOverheadFraction = 0.026;
constexpr double kWeekS = 7.0 * 24.0 * 3600.0;
constexpr int kRoomsPerBuilding = 10;
constexpr int kRounds = 5;

// ---------------------------------------------------------------------------
// Legacy replica: the pre-refactor hot path, ported verbatim. Kept in its
// own namespace so the benchmark keeps measuring the *old* cost model even
// as the production classes evolve.

namespace legacy {

// The pre-refactor classes lived in separate translation units (no LTO), so
// every hot call crossed a TU boundary. Annotating the replica's methods
// keeps the optimizer from fusing them across what used to be link-time
// seams -- without this the A side measures an idealized old sweep that
// never shipped.
#define LEGACY_OUTLINE __attribute__((noinline))

class CpuModel {
 public:
  explicit CpuModel(hw::CpuSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] LEGACY_OUTLINE util::Watts power(std::size_t ps, double util) const {
    if (ps >= spec_.pstates.size()) throw std::out_of_range("legacy power: bad P-state");
    if (util < 0.0 || util > 1.0) throw std::invalid_argument("legacy power: bad util");
    const hw::PState& top = spec_.pstates.back();
    const hw::PState& cur = spec_.pstates[ps];
    const double f_ratio = cur.freq_ghz / top.freq_ghz;
    const double v_ratio = cur.voltage_v / top.voltage_v;
    return util::Watts{spec_.static_power.value() +
                       spec_.dynamic_power_max.value() * f_ratio * v_ratio * v_ratio * util};
  }

  [[nodiscard]] LEGACY_OUTLINE double core_speed_gcps(std::size_t ps) const {
    if (ps >= spec_.pstates.size()) throw std::out_of_range("legacy core_speed: bad P-state");
    return spec_.pstates[ps].freq_ghz;
  }

  [[nodiscard]] const hw::CpuSpec& spec() const { return spec_; }

 private:
  hw::CpuSpec spec_;
};

class Server {
 public:
  explicit Server(hw::ServerSpec spec)
      : spec_(std::move(spec)), cpu_model_(spec_.cpu), pstate_(spec_.cpu.top_pstate()) {}

  [[nodiscard]] const hw::ServerSpec& spec() const { return spec_; }

  LEGACY_OUTLINE void set_powered(bool on) {
    powered_ = on;
    if (!on) {
      busy_cores_ = 0;
      filler_cores_ = 0;
    }
  }
  LEGACY_OUTLINE void set_pstate(std::size_t ps) {
    if (ps >= spec_.cpu.pstates.size()) throw std::out_of_range("legacy set_pstate");
    pstate_ = ps;
  }
  LEGACY_OUTLINE void set_filler_cores(int cores) { filler_cores_ = cores; }
  LEGACY_OUTLINE void set_busy_cores(int cores) {
    if (cores < 0 || cores > spec_.total_cores()) {
      throw std::invalid_argument("legacy set_busy_cores: out of range");
    }
    busy_cores_ = cores;
  }
  [[nodiscard]] int busy_cores() const { return busy_cores_; }

  LEGACY_OUTLINE void set_inlet_temperature(util::Celsius t) {
    inlet_ = t;
    if (thermally_shut_down()) {
      busy_cores_ = 0;
      filler_cores_ = 0;
    }
  }

  [[nodiscard]] LEGACY_OUTLINE bool thermally_shut_down() const { return inlet_ >= spec_.shutdown_temp; }

  [[nodiscard]] LEGACY_OUTLINE std::size_t effective_pstate() const {
    if (inlet_ <= spec_.throttle_start) return pstate_;
    if (thermally_shut_down()) return 0;
    const double window = spec_.shutdown_temp.value() - spec_.throttle_start.value();
    const double excess = inlet_.value() - spec_.throttle_start.value();
    const double fraction = 1.0 - excess / window;
    const auto ladder = static_cast<double>(spec_.cpu.pstates.size() - 1);
    const auto cap = static_cast<std::size_t>(std::floor(ladder * fraction));
    return std::min(pstate_, cap);
  }

  [[nodiscard]] LEGACY_OUTLINE int loaded_cores() const {
    if (!powered_ || thermally_shut_down()) return 0;
    return std::min(spec_.total_cores(), busy_cores_ + filler_cores_);
  }
  [[nodiscard]] LEGACY_OUTLINE int usable_cores() const {
    if (!powered_ || thermally_shut_down()) return 0;
    return spec_.total_cores();
  }
  [[nodiscard]] LEGACY_OUTLINE double core_speed_gcps() const {
    if (usable_cores() == 0) return 0.0;
    return cpu_model_.core_speed_gcps(effective_pstate());
  }

  [[nodiscard]] LEGACY_OUTLINE util::Watts power() const {
    if (!powered_) return spec_.standby_power;
    if (thermally_shut_down()) return spec_.standby_power;
    const double util_frac =
        static_cast<double>(loaded_cores()) / static_cast<double>(spec_.total_cores());
    return cpu_model_.power(effective_pstate(), util_frac) * static_cast<double>(spec_.cpu_count);
  }
  [[nodiscard]] LEGACY_OUTLINE util::Watts max_power_now() const {
    if (usable_cores() == 0) return spec_.standby_power;
    return cpu_model_.power(effective_pstate(), 1.0) * static_cast<double>(spec_.cpu_count);
  }
  [[nodiscard]] LEGACY_OUTLINE util::Watts idle_power() const {
    if (usable_cores() == 0) return spec_.standby_power;
    return cpu_model_.power(effective_pstate(), 0.0) * static_cast<double>(spec_.cpu_count);
  }

  LEGACY_OUTLINE void advance(util::Seconds dt, bool heating_season) {
    const util::Joules e = power() * dt;
    energy_ += e;
    switch (spec_.routing) {
      case hw::HeatRouting::kIndoor:
      case hw::HeatRouting::kWaterLoop:
        heat_indoor_ += e;
        break;
      case hw::HeatRouting::kDualPipe:
        (heating_season ? heat_indoor_ : heat_outdoor_) += e;
        break;
    }
    const double tj = junction_temperature().value();
    const double accel = std::pow(2.0, (tj - spec_.aging_reference_junction.value()) / 10.0);
    stress_hours_ += accel * dt.value() / 3600.0;
  }

  [[nodiscard]] LEGACY_OUTLINE util::Celsius junction_temperature() const {
    if (usable_cores() == 0 || !powered_) return inlet_;
    const double util_frac =
        static_cast<double>(loaded_cores()) / static_cast<double>(spec_.total_cores());
    const double freq_ratio = cpu_model_.core_speed_gcps(effective_pstate()) /
                              cpu_model_.core_speed_gcps(spec_.cpu.top_pstate());
    return util::Celsius{inlet_.value() + 25.0 + 20.0 * util_frac * freq_ratio};
  }

  [[nodiscard]] util::Joules energy_consumed() const { return energy_; }
  [[nodiscard]] double stress_hours() const { return stress_hours_; }

 private:
  hw::ServerSpec spec_;
  CpuModel cpu_model_;
  std::size_t pstate_;
  bool powered_ = true;
  int busy_cores_ = 0;
  int filler_cores_ = 0;
  util::Celsius inlet_{20.0};
  util::Joules energy_{0.0};
  util::Joules heat_indoor_{0.0};
  util::Joules heat_outdoor_{0.0};
  double stress_hours_ = 0.0;
};

class Room {
 public:
  Room(thermal::RoomParams params, util::Celsius initial)
      : params_(params), temp_(initial) {}

  [[nodiscard]] LEGACY_OUTLINE util::Celsius equilibrium(util::Watts q_heat, util::Celsius t_out) const {
    const double q_total = q_heat.value() + params_.internal_gains.value();
    return util::Celsius{t_out.value() + q_total * params_.resistance_k_per_w};
  }

  LEGACY_OUTLINE void advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out) {
    if (dt.value() < 0.0) throw std::invalid_argument("legacy Room::advance: negative dt");
    if (dt.value() == 0.0) return;
    const util::Celsius eq = equilibrium(q_heat, t_out);
    const double decay = std::exp(-dt.value() / params_.tau_s());
    temp_ = util::Celsius{eq.value() + (temp_.value() - eq.value()) * decay};
  }

  [[nodiscard]] util::Celsius temperature() const { return temp_; }
  [[nodiscard]] LEGACY_OUTLINE util::Watts holding_power(util::Celsius target,
                                                          util::Celsius t_out) const {
    const double needed = (target.value() - t_out.value()) / params_.resistance_k_per_w -
                          params_.internal_gains.value();
    return util::Watts{std::max(0.0, needed)};
  }

 private:
  thermal::RoomParams params_;
  util::Celsius temp_;
};

/// The old semi-implicit 2R2C integrator recomputed its stability bound and
/// step count inside the loop on every call (the fleet kernel precomputes
/// both per room at construction).
class Room2R2C {
 public:
  Room2R2C(thermal::Room2R2CParams params, util::Celsius initial)
      : params_(params), t_air_(initial), t_env_(initial) {}

  LEGACY_OUTLINE void advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out) {
    if (dt.value() < 0.0) throw std::invalid_argument("legacy Room2R2C::advance: negative dt");
    double remaining = dt.value();
    const double q_total = q_heat.value() + params_.internal_gains.value();
    const double tau_fast = params_.r_air_env_k_per_w * params_.c_air_j_per_k;
    const double max_step = std::max(1.0, tau_fast / 10.0);
    while (remaining > 0.0) {
      const double h = std::min(remaining, max_step);
      const double flow_ae = (t_air_.value() - t_env_.value()) / params_.r_air_env_k_per_w;
      const double flow_eo = (t_env_.value() - t_out.value()) / params_.r_env_out_k_per_w;
      const double d_air = (q_total - flow_ae) / params_.c_air_j_per_k;
      const double d_env = (flow_ae - flow_eo) / params_.c_env_j_per_k;
      t_air_ = util::Celsius{t_air_.value() + h * d_air};
      t_env_ = util::Celsius{t_env_.value() + h * d_env};
      remaining -= h;
    }
  }

  [[nodiscard]] util::Celsius air_temperature() const { return t_air_; }
  [[nodiscard]] LEGACY_OUTLINE util::Watts holding_power(util::Celsius target,
                                                          util::Celsius t_out) const {
    const double series_r = params_.r_air_env_k_per_w + params_.r_env_out_k_per_w;
    const double needed =
        (target.value() - t_out.value()) / series_r - params_.internal_gains.value();
    return util::Watts{std::max(0.0, needed)};
  }

 private:
  thermal::Room2R2CParams params_;
  util::Celsius t_air_;
  util::Celsius t_env_;
};

/// Fidelity-erased handle, exactly as the old platform stored per room: every
/// temperature/advance/holding_power goes through a std::visit dispatch (the
/// fleet kernel splits the two models into branch-predicted SoA lanes).
class AnyRoom {
 public:
  explicit AnyRoom(Room room) : impl_(std::move(room)) {}
  explicit AnyRoom(Room2R2C room) : impl_(std::move(room)) {}

  void advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out) {
    std::visit([&](auto& r) { r.advance(dt, q_heat, t_out); }, impl_);
  }
  [[nodiscard]] util::Celsius temperature() const {
    return std::visit(
        [](const auto& r) {
          if constexpr (std::is_same_v<std::decay_t<decltype(r)>, Room2R2C>) {
            return r.air_temperature();
          } else {
            return r.temperature();
          }
        },
        impl_);
  }
  [[nodiscard]] util::Watts holding_power(util::Celsius target, util::Celsius t_out) const {
    return std::visit([&](const auto& r) { return r.holding_power(target, t_out); }, impl_);
  }

 private:
  std::variant<Room, Room2R2C> impl_;
};

class Regulator {
 public:
  explicit Regulator(core::RegulatorConfig config) : config_(config) {}

  LEGACY_OUTLINE util::Watts regulate(Server& server, const thermal::HeatDemand& demand) {
    const double want = demand.power.value();
    if (!demand.heating_season || want <= config_.demand_epsilon_w) {
      if (config_.gating == core::GatingPolicy::kAggressive) {
        server.set_powered(false);
        return server.spec().standby_power;
      }
      server.set_powered(true);
      server.set_pstate(0);
      server.set_filler_cores(0);
      return server.max_power_now();
    }
    server.set_powered(true);
    const auto& pstates = server.spec().cpu.pstates;
    std::size_t chosen = pstates.size() - 1;
    // The old coarse stage walked the ladder *through the server*: one
    // mutation plus a fresh throttle/ratio evaluation per candidate.
    for (std::size_t ps = 0; ps < pstates.size(); ++ps) {
      server.set_pstate(ps);
      if (server.max_power_now() >= demand.power) {
        chosen = ps;
        break;
      }
    }
    server.set_pstate(chosen);
    const util::Watts ceiling = server.max_power_now();
    const double idle = server.idle_power().value();
    const double maxp = server.max_power_now().value();
    int filler = 0;
    if (maxp > idle) {
      const double util_target = std::clamp((want - idle) / (maxp - idle), 0.0, 1.0);
      const int desired_loaded =
          static_cast<int>(std::lround(util_target * server.spec().total_cores()));
      filler = std::max(0, desired_loaded - server.busy_cores());
    }
    server.set_filler_cores(filler);
    return ceiling;
  }

  LEGACY_OUTLINE void record(util::Seconds dt, util::Watts delivered, util::Watts requested) {
    abs_error_w_.add(std::abs(delivered.value() - requested.value()));
    delivered_ += delivered * dt;
    requested_ += requested * dt;
    abs_error_ += util::Watts{std::abs(delivered.value() - requested.value())} * dt;
  }

 private:
  core::RegulatorConfig config_;
  util::StreamingStats abs_error_w_;
  util::Joules delivered_{0.0};
  util::Joules requested_{0.0};
  util::Joules abs_error_{0.0};
};

struct Worker {
  Server server;
  double speed_gcps = 0.0;
  // Old Worker::sync_speed walked the running-task list (empty in a pure
  // physics city) and re-asserted busy cores after possible gating.
  std::vector<int> running;
  explicit Worker(const hw::ServerSpec& spec) : server(spec) {}

  [[nodiscard]] int busy_cores() const { return static_cast<int>(running.size()); }

  LEGACY_OUTLINE void sync_speed() {
    const double new_speed = server.core_speed_gcps();
    for (int& r : running) {
      (void)r;
      (void)new_speed;
    }
    speed_gcps = new_speed;
    if (server.usable_cores() > 0) {
      server.set_busy_cores(std::min(busy_cores(), server.usable_cores()));
    }
  }
};

struct RoomUnit {
  std::size_t worker_index;
  thermal::ModulatingThermostat thermostat;
  AnyRoom room;
  Regulator regulator;
  util::Watts last_demand{0.0};
  bool last_season = true;
  util::Joules energy_mark{0.0};
};

struct Building {
  core::BuildingConfig cfg;
  // Workers behind unique_ptr, looked up per room through .at(), mirroring
  // the Building -> Cluster -> Worker chain of the old sweep.
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<RoomUnit> rooms;
  metrics::ComfortMetrics comfort_metrics;

  std::deque<int> task_queue;  ///< always empty here; pump still polls it
  bool pumping = false;

  Worker& worker(std::size_t i) { return *workers.at(i); }

  LEGACY_OUTLINE void pump() {
    if (pumping) return;
    pumping = true;
    while (!task_queue.empty()) task_queue.pop_front();
    pumping = false;
  }

  LEGACY_OUTLINE void sync_workers() {
    for (auto& w : workers) w->sync_speed();
    pump();
  }
  [[nodiscard]] LEGACY_OUTLINE double usable_cores() const {
    double c = 0.0;
    for (const auto& w : workers) c += w->server.usable_cores();
    return c;
  }
};

/// The pre-refactor city: same engine, weather, metrics and telemetry as
/// the real platform, old AoS physics/control sweep.
class City {
 public:
  City(core::PlatformConfig config, int buildings, int rooms_per_building)
      // The platform ctor XORs the seed so weather decorrelates from the
      // workload streams; replicate it or the two sides simulate different
      // winters.
      : config_(config), weather_(config.climate, config.seed ^ 0x5ca1ab1eULL) {
    for (int bi = 0; bi < buildings; ++bi) {
      auto b = std::make_unique<Building>();
      b->cfg.name = "b" + std::to_string(bi);
      b->cfg.rooms = rooms_per_building;
      const util::Watts rating = b->cfg.server.rated_power();
      for (int r = 0; r < rooms_per_building; ++r) {
        b->workers.push_back(std::make_unique<Worker>(b->cfg.server));
        b->workers.back()->server.set_inlet_temperature(b->cfg.initial_temperature);
        AnyRoom room = b->cfg.high_fidelity_rooms
                           ? AnyRoom(Room2R2C(b->cfg.room_2r2c, b->cfg.initial_temperature))
                           : AnyRoom(Room(b->cfg.room, b->cfg.initial_temperature));
        b->rooms.push_back(RoomUnit{
            static_cast<std::size_t>(r),
            thermal::ModulatingThermostat(b->cfg.comfort.day_target,
                                          b->cfg.thermostat_gain_w_per_k, rating),
            std::move(room),
            Regulator(config_.regulator),
        });
      }
      buildings_.push_back(std::move(b));
    }
  }

  void run(double duration_s) {
    sim::PeriodicProcess physics(sim_, config_.start_time + config_.tick_s, config_.tick_s,
                                 [this](sim::Time t) { tick(t); });
    sim_.run_until(config_.start_time + duration_s);
    physics.stop();
  }

  [[nodiscard]] double mean_room_temperature() const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& b : buildings_) {
      for (const auto& u : b->rooms) {
        sum += u.room.temperature().value();
        ++n;
      }
    }
    return n > 0 ? sum / static_cast<double>(n) : 0.0;
  }

 private:
  void tick(sim::Time t) {
    const double dt = config_.tick_s;
    const util::Celsius t_out = weather_.outdoor_temperature(t);
    const util::Celsius seasonal = weather_.seasonal_component(t);
    const double hour = thermal::hour_of_day(t);

    double city_demand_w = 0.0;
    double city_cores = 0.0;
    double temp_sum = 0.0;
    std::size_t room_count = 0;

    for (auto& bptr : buildings_) {
      Building& b = *bptr;
      const bool heating_season = seasonal < b.cfg.comfort.heating_cutoff_outdoor;
      const util::Celsius target = b.cfg.comfort.target_at_hour(hour);
      for (auto& unit : b.rooms) {
        Server& server = b.worker(unit.worker_index).server;

        server.advance(util::Seconds{dt}, unit.last_season);
        const util::Joules delta{server.energy_consumed().value() - unit.energy_mark.value()};
        unit.energy_mark = server.energy_consumed();

        const util::Watts emitted{delta.value() / dt};
        const bool indoors =
            server.spec().routing != hw::HeatRouting::kDualPipe || unit.last_season;
        const double solar_frac = std::clamp((seasonal.value() - 5.0) / 12.0, 0.0, 1.0);
        const util::Watts solar{b.cfg.solar_gain_peak_w * solar_frac};
        unit.room.advance(util::Seconds{dt}, (indoors ? emitted : util::Watts{0.0}) + solar,
                          t_out);

        df_energy_.add_it(delta);
        df_energy_.add_overhead(delta * kDfOverheadFraction);
        const util::Joules wanted = unit.last_demand * util::Seconds{dt};
        const util::Joules useful{std::min(delta.value(), wanted.value())};
        if (indoors) {
          df_energy_.add_useful_heat(useful);
          df_energy_.add_waste_heat(delta - useful);
        } else {
          df_energy_.add_waste_heat(delta);
        }
        unit.regulator.record(util::Seconds{dt}, emitted, unit.last_demand);
        b.comfort_metrics.sample(t, unit.room.temperature(), target);

        unit.thermostat.set_target(target);
        thermal::HeatDemand demand{util::Watts{0.0}, false};
        if (heating_season) {
          demand = unit.thermostat.demand(unit.room.temperature(),
                                          unit.room.holding_power(target, t_out));
        }
        unit.regulator.regulate(server, demand);
        server.set_inlet_temperature(unit.room.temperature());
        unit.last_demand = demand.power;
        unit.last_season = heating_season;

        city_demand_w += demand.power.value();
        temp_sum += unit.room.temperature().value();
        ++room_count;
      }
      b.sync_workers();
      city_cores += b.usable_cores();
    }

    if (room_count > 0) temp_series_.add(t, temp_sum / static_cast<double>(room_count));
    capacity_series_.add(t, city_cores);
    demand_series_.add(t, city_demand_w);
    outdoor_series_.add(t, t_out.value());
  }

  core::PlatformConfig config_;
  sim::Simulation sim_;
  thermal::WeatherModel weather_;
  std::vector<std::unique_ptr<Building>> buildings_;
  metrics::EnergyLedger df_energy_;
  util::TimeSeries temp_series_;
  util::TimeSeries capacity_series_;
  util::TimeSeries demand_series_;
  util::TimeSeries outdoor_series_;
};

}  // namespace legacy

// ---------------------------------------------------------------------------

core::PlatformConfig city_config() {
  core::PlatformConfig pc;
  pc.seed = 2016;
  pc.start_time = thermal::start_of_month(0);  // January: heating in full swing
  pc.climate = thermal::paris_climate();
  pc.with_datacenter = false;
  return pc;
}

double run_legacy(int buildings, double& mean_temp_out) {
  legacy::City city(city_config(), buildings, kRoomsPerBuilding);
  const auto start = std::chrono::steady_clock::now();
  city.run(kWeekS);
  const auto stop = std::chrono::steady_clock::now();
  mean_temp_out = city.mean_room_temperature();
  return std::chrono::duration<double>(stop - start).count();
}

double run_fleet(int buildings, double& mean_temp_out) {
  core::Df3Platform city(city_config());
  for (int i = 0; i < buildings; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = kRoomsPerBuilding;
    city.add_building(b);
  }
  const auto start = std::chrono::steady_clock::now();
  city.run(util::Seconds{kWeekS});
  const auto stop = std::chrono::steady_clock::now();
  double sum = 0.0;
  const auto rooms = static_cast<std::size_t>(buildings) * kRoomsPerBuilding;
  for (int b = 0; b < buildings; ++b) {
    for (int r = 0; r < kRoomsPerBuilding; ++r) {
      sum += city.room_temperature(static_cast<std::size_t>(b), static_cast<std::size_t>(r))
                 .value();
    }
  }
  mean_temp_out = sum / static_cast<double>(rooms);
  return std::chrono::duration<double>(stop - start).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct SizeResult {
  int rooms;
  double legacy_ns_per_room_tick;
  double fleet_ns_per_room_tick;
  double legacy_items_per_s;
  double fleet_items_per_s;
  double speedup;
};

}  // namespace

int main() {
  std::printf("bench_platform_macro: one simulated week per round, %d interleaved rounds\n\n",
              kRounds);
  std::printf("%8s %14s %14s %14s %14s %9s\n", "rooms", "old ns/rt", "new ns/rt",
              "old items/s", "new items/s", "speedup");

  std::vector<SizeResult> results;
  for (const int rooms : {30, 300, 1000, 10000}) {
    const int buildings = rooms / kRoomsPerBuilding;
    const double ticks = kWeekS / city_config().tick_s;
    const double items = static_cast<double>(rooms) * ticks;

    std::vector<double> t_legacy;
    std::vector<double> t_fleet;
    double temp_legacy = 0.0;
    double temp_fleet = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      t_legacy.push_back(run_legacy(buildings, temp_legacy));
      t_fleet.push_back(run_fleet(buildings, temp_fleet));
    }
    // Both sides simulate the same city: the old sweep and the fleet kernel
    // must land on the same mean room temperature (the determinism test
    // pins the bits; this is the bench's cheap cross-check).
    if (std::abs(temp_legacy - temp_fleet) > 1e-9) {
      std::printf("WARNING: physics mismatch (old %.12f C vs new %.12f C)\n", temp_legacy,
                  temp_fleet);
    }

    const double med_a = median(t_legacy);
    const double med_b = median(t_fleet);
    SizeResult r;
    r.rooms = rooms;
    r.legacy_ns_per_room_tick = med_a / items * 1e9;
    r.fleet_ns_per_room_tick = med_b / items * 1e9;
    r.legacy_items_per_s = items / med_a;
    r.fleet_items_per_s = items / med_b;
    r.speedup = r.legacy_items_per_s > 0.0 ? r.fleet_items_per_s / r.legacy_items_per_s : 0.0;
    results.push_back(r);

    std::printf("%8d %14.1f %14.1f %14.3e %14.3e %8.2fx\n", r.rooms, r.legacy_ns_per_room_tick,
                r.fleet_ns_per_room_tick, r.legacy_items_per_s, r.fleet_items_per_s, r.speedup);
  }

  const char* env = std::getenv("DF3_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_platform.json";
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SizeResult& r = results[i];
    out << "    {\"name\": \"city_tick/rooms:" << r.rooms << "\""
        << ", \"legacy_ns_per_room_tick\": " << r.legacy_ns_per_room_tick
        << ", \"fleet_ns_per_room_tick\": " << r.fleet_ns_per_room_tick
        << ", \"legacy_items_per_s\": " << r.legacy_items_per_s
        << ", \"fleet_items_per_s\": " << r.fleet_items_per_s
        << ", \"speedup\": " << r.speedup << '}' << (i + 1 < results.size() ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
