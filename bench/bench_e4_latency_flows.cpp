// E4 — request latency across the three flows and their transports.
//
// Paper section II-C: direct local requests avoid the gateway; indirect
// requests "imply to pay an additional latency cost"; Internet requests pay
// the WAN. Two probe shapes expose the crossover the edge argument rests
// on: a *light* interactive probe (sense-compute-actuate: transport
// dominates, the edge wins big) and a *heavy* probe (compute dominates, the
// remote datacenter's faster cores catch up).

#include <iostream>

#include "harness.hpp"

namespace {
df3::workload::RequestFactory probe(std::string app, double gigacycles, double in_kib) {
  return [app = std::move(app), gigacycles, in_kib](df3::util::RngStream&) {
    df3::workload::Request r;
    r.app = app;
    r.work_gigacycles = gigacycles;
    r.input_size = df3::util::kibibytes(in_kib);
    r.output_size = df3::util::bytes(256.0);
    r.deadline_s = 30.0;
    r.preemptible = false;
    return r;
  };
}

struct DcResult {
  double p50_light, p99_light, p50_heavy, p99_heavy;
};

DcResult run_datacenter(double extra_latency_s, const char* tag) {
  using namespace df3;
  sim::Simulation sim;
  baselines::DatacenterConfig cfg;
  cfg.label = tag;
  cfg.extra_latency_s = extra_latency_s;
  baselines::Datacenter dc(sim, cfg);
  util::RngStream rng(7, tag);
  metrics::FlowMetrics m;
  auto light = probe("light", 0.05, 2.0);
  auto heavy = probe("heavy", 0.8, 8.0);
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += rng.exponential(0.02);
    auto r = (i % 2 == 0) ? light(rng) : heavy(rng);
    r.arrival = t;
    sim.schedule_at(t, [&dc, &m, r] {
      dc.submit(r, 0, [&m](workload::CompletionRecord rec) { m.record(rec); });
    });
  }
  sim.run();
  return {m.by_app("light").response_s.percentile(50.0) * 1e3,
          m.by_app("light").response_s.p99() * 1e3,
          m.by_app("heavy").response_s.percentile(50.0) * 1e3,
          m.by_app("heavy").response_s.p99() * 1e3};
}
}  // namespace

int main() {
  using namespace df3;
  bench::banner("E4: latency of direct / indirect / cloud request paths",
                "direct < indirect < cloud for interactive work; LPWAN hops dominate the edge");

  auto city = bench::make_city(7, 0, core::GatingPolicy::kKeepWarm, 2, 4);
  struct Path {
    const char* name;
    bool direct, wifi;
  };
  const Path paths[] = {{"edge-direct-wifi", true, true},
                        {"edge-indirect-wifi", false, true},
                        {"edge-direct-zigbee", true, false},
                        {"edge-indirect-zigbee", false, false}};
  for (const auto& p : paths) {
    city->add_edge_source(0, probe(std::string(p.name) + "/light", 0.05, 2.0), 0.005,
                          p.direct, p.wifi);
    city->add_edge_source(0, probe(std::string(p.name) + "/heavy", 0.8, 8.0), 0.005,
                          p.direct, p.wifi);
  }
  city->add_cloud_source(probe("cloud-df/light", 0.05, 2.0), 0.005);
  city->add_cloud_source(probe("cloud-df/heavy", 0.8, 8.0), 0.005);
  city->run(util::days(2.0));

  const auto metro = run_datacenter(0.012, "dc-metro");
  const auto remote = run_datacenter(0.050, "dc-remote-region");

  util::Table table({"path", "light_p50_ms", "light_p99_ms", "heavy_p50_ms", "heavy_p99_ms"},
                    "light = 0.05 Gc sense-compute-actuate; heavy = 0.8 Gc inference");
  table.set_precision(1);
  auto add_city_row = [&](const char* name) {
    const auto& l = city->flow_metrics().by_app(std::string(name) + "/light");
    const auto& h = city->flow_metrics().by_app(std::string(name) + "/heavy");
    table.add_row({std::string(name), l.response_s.percentile(50.0) * 1e3,
                   l.response_s.p99() * 1e3, h.response_s.percentile(50.0) * 1e3,
                   h.response_s.p99() * 1e3});
  };
  for (const auto& p : paths) add_city_row(p.name);
  add_city_row("cloud-df");
  table.add_row({std::string("cloud-dc-metro"), metro.p50_light, metro.p99_light,
                 metro.p50_heavy, metro.p99_heavy});
  table.add_row({std::string("cloud-dc-remote"), remote.p50_light, remote.p99_light,
                 remote.p50_heavy, remote.p99_heavy});
  table.print(std::cout);

  const double edge_light =
      city->flow_metrics().by_app("edge-direct-wifi/light").response_s.percentile(50.0) * 1e3;
  const double ind_light =
      city->flow_metrics().by_app("edge-indirect-wifi/light").response_s.percentile(50.0) * 1e3;
  std::printf("\nshape checks:\n");
  std::printf("  light probe: edge %.1f ms vs remote DC %.1f ms -> edge wins %.0fx\n",
              edge_light, remote.p50_light, remote.p50_light / edge_light);
  std::printf("  indirect premium (gateway staging): +%.2f ms\n", ind_light - edge_light);
  std::printf("  heavy probe: compute dominates and the DC's faster cores close the gap\n");
  return 0;
}
