// E13 — seasonal pricing and SLA design (paper §IV).
//
// "data furnace introduces another dimension to classical cloud pricing
//  models: the seasonality ... for SLAs designers, data furnace is a field
//  of research that can still lead to very innovative proposals."
//
// A simulated DF year (strict on-demand heat) produces the capacity series;
// a spot market clears monthly prices against flat demand, and an SLA
// portfolio (DC-backed guaranteed class + discounted DF-only seasonal
// class) is priced on top. The crypto-heater appendix values the same
// seasonality for a mining workload.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("E13: seasonal spot prices, SLA portfolio, crypto-heater economics",
                "winter cycles are nearly free, summer prices hit the datacenter cap; "
                "SLA classes split the difference");

  // --- capacity from a simulated year --------------------------------------
  core::PlatformConfig base;
  base.tick_s = 900.0;
  auto city = bench::make_city(41, 0, core::GatingPolicy::kAggressive, 6, 4, base);
  city->add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1800.0);
  city->run(util::days(365.0));

  // Monthly mean supply vs flat demand (60% of nameplate).
  util::TimeSeries supply, demand;
  const double nameplate = 6.0 * 4.0 * 16.0;
  for (int m = 0; m < 12; ++m) {
    const double t0 = thermal::start_of_month(m);
    const double t1 = t0 + thermal::kDaysInMonth[static_cast<std::size_t>(m)] *
                               thermal::kSecondsPerDay;
    supply.add(t0, city->capacity_series().mean_in_window(t0, t1));
    demand.add(t0, 0.6 * nameplate);
  }

  const analytics::SpotPriceModel market{analytics::SpotPriceConfig{}};
  // Monthly intervals: use the month length in hours via per-month runs.
  util::Table table({"month", "supply_cores", "spot_price", "vs_dc_price"},
                    "spot market: flat demand of 60% nameplate");
  table.set_precision(3);
  for (int m = 0; m < 12; ++m) {
    const double p = market.price(supply.values[static_cast<std::size_t>(m)],
                                  demand.values[static_cast<std::size_t>(m)]);
    table.add_row({std::string(thermal::month_name(m)),
                   supply.values[static_cast<std::size_t>(m)], p,
                   p / market.config().dc_price});
  }
  table.print(std::cout);

  // --- SLA portfolio --------------------------------------------------------
  util::TimeSeries guaranteed, seasonal;
  for (int m = 0; m < 12; ++m) {
    guaranteed.add(m, 0.3 * nameplate);
    seasonal.add(m, 0.5 * nameplate);
  }
  // Month-granular accounting with a representative 730 h interval.
  const auto sla = analytics::run_sla_portfolio(analytics::SlaConfig{}, supply, guaranteed,
                                                seasonal, 730.0 * 3600.0);
  std::printf("\nSLA portfolio (guaranteed 30%% + seasonal 50%% of nameplate):\n");
  std::printf("  revenue %.0f, DC backstop cost %.0f, profit %.0f\n", sla.revenue,
              sla.backstop_cost, sla.profit());
  std::printf("  seasonal-class availability: %.0f%% (the discount buys winter-only cycles)\n",
              100.0 * sla.seasonal_availability);

  // --- crypto-heater appendix ----------------------------------------------
  hw::DfServer rig(hw::crypto_heater_spec());
  rig.set_busy_cores(rig.spec().total_cores());
  const hw::MiningConfig mcfg;
  hw::MiningLedger heating_season(mcfg), off_season(mcfg);
  heating_season.advance(rig, util::days(30.0), /*heat_wanted=*/true);
  off_season.advance(rig, util::days(30.0), /*heat_wanted=*/false);
  std::printf("\ncrypto-heater, 30 days at full hash (650 W chassis):\n");
  std::printf("  coins %.2f, electricity %.2f -> bare miner profit %.2f (marginal)\n",
              heating_season.coin_revenue(), heating_season.electricity_cost(),
              heating_season.miner_profit());
  std::printf("  + displaced heating %.2f -> winter system value %.2f "
              "(summer: %.2f)\n",
              heating_season.heat_value(), heating_season.system_value(),
              off_season.system_value());
  std::printf("\nreading: the same seasonality that sets the spot price decides whether\n"
              "a crypto-heater is a business or a loss — winter heating credit flips it.\n");
  return 0;
}
