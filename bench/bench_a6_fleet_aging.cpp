// A6 — processor aging and fleet maintenance (§III-C).
//
// "the cooling approach of DF servers might cause the acceleration of
//  processor aging and consequently, the need to replace them ... The large
//  scale deployment of DF servers will also raise maintenance challenges."
//
// The Arrhenius-style stress model (x2 per +10 K of junction temperature)
// is integrated over a year for several deployment styles, and converted
// into an expected service life and an annual replacement rate for a
// 10,000-heater fleet — the maintenance number an operator plans around.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct AgingResult {
  double stress_hours;   ///< equivalent hours at the reference junction temp
  double accel_factor;   ///< stress hours per wall hour
};

/// Integrate one year of the given (inlet temperature, load) profile.
AgingResult run_profile(util::Celsius inlet, double duty_cycle, std::size_t pstate) {
  hw::DfServer server(hw::qrad_spec());
  server.set_inlet_temperature(inlet);
  server.set_pstate(pstate);
  const double tick = 3600.0;
  const int cores = server.spec().total_cores();
  df3::util::RngStream rng(6, "aging");
  for (int h = 0; h < 24 * 365; ++h) {
    const bool busy = rng.bernoulli(duty_cycle);
    if (server.usable_cores() > 0) server.set_busy_cores(busy ? cores : 0);
    server.advance(util::Seconds{tick}, true);
  }
  const double wall_hours = 24.0 * 365.0;
  return {server.aging_stress_hours(), server.aging_stress_hours() / wall_hours};
}

}  // namespace

int main() {
  bench::banner("A6 (ablation): free-cooling vs chilled aging, fleet replacement rate",
                "hot rooms and sustained load multiply wear; DVFS softens it");

  // A part rated for 5 years of continuous reference-temperature operation.
  const double rated_stress_hours = 5.0 * 365.0 * 24.0;
  constexpr int kFleet = 10000;

  struct Case {
    const char* name;
    util::Celsius inlet;
    double duty;
    std::size_t pstate;
  };
  const Case cases[] = {
      {"chilled datacenter (18C inlet, 60% duty)", util::celsius(18.0), 0.6, 4},
      {"DF winter room (20C, 60% duty)", util::celsius(20.0), 0.6, 4},
      {"DF winter room, DVFS-regulated (20C, 60%, mid P-state)", util::celsius(20.0), 0.6, 2},
      {"DF hot attic (28C, 60% duty)", util::celsius(28.0), 0.6, 4},
      {"DF hot attic, marathon load (28C, 95%)", util::celsius(28.0), 0.95, 4},
  };

  util::Table table({"deployment", "stress_h_per_year", "accel", "service_life_y",
                     "fleet_swaps_per_year"},
                    "Arrhenius x2/10K junction model; 10,000-heater fleet");
  table.set_precision(1);
  for (const auto& c : cases) {
    const auto r = run_profile(c.inlet, c.duty, c.pstate);
    const double life_years = rated_stress_hours / r.stress_hours;
    table.add_row({std::string(c.name), r.stress_hours, r.accel_factor, life_years,
                   static_cast<double>(kFleet) / life_years});
  }
  table.print(std::cout);

  std::printf("\nreading: free cooling in ordinary rooms costs little life vs a chilled\n"
              "hall, but hot placements under marathon load multiply replacements —\n"
              "quantifying both §III-C caveats (aging AND the maintenance burden) and\n"
              "showing the DVFS heat regulator doubles as a wear regulator.\n");
  return 0;
}
