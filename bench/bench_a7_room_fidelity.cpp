// A7 — ablation: 1R1C vs 2R2C room fidelity.
//
// DESIGN.md's thermal substrate offers two RC models. The question for
// every conclusion built on the cheap one: does the heavy envelope node
// change what the controller and the capacity figures see? One January
// week, identical workloads and controllers, both fidelities.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct Row {
  double comfort_dev_k;
  double mean_room_c;
  double regulator_err_pct;
  double useful_heat_pct;
  double mean_cores;
};

Row run(bool high_fidelity) {
  core::PlatformConfig cfg;
  cfg.seed = 27;
  cfg.start_time = thermal::start_of_month(0);
  cfg.regulator.gating = core::GatingPolicy::kAggressive;
  core::Df3Platform city(cfg);
  core::BuildingConfig b;
  b.name = "b0";
  b.rooms = 4;
  b.high_fidelity_rooms = high_fidelity;
  city.add_building(b);
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1800.0);
  city.run(util::days(7.0));
  double cores = 0.0;
  for (double v : city.capacity_series().values) cores += v;
  cores /= static_cast<double>(city.capacity_series().size());
  return {city.comfort(0).mean_abs_deviation_k(city.now()),
          city.comfort(0).mean_temperature_c(city.now()),
          100.0 * city.regulator_relative_error(),
          100.0 * city.df_energy().heat_reuse_fraction(), cores};
}

}  // namespace

int main() {
  bench::banner("A7 (ablation): 1R1C vs 2R2C room model",
                "the envelope mass slows transitions but leaves the platform-level "
                "conclusions (capacity, heat accounting, tracking) intact");

  util::Table table({"room model", "comfort_dev_k", "mean_room_c", "regulator_err_pct",
                     "useful_heat_pct", "mean_usable_cores"},
                    "one building, 7 January days, identical control & workload");
  table.set_precision(2);
  const auto lite = run(false);
  const auto heavy = run(true);
  table.add_row({std::string("1R1C (exact integration)"), lite.comfort_dev_k, lite.mean_room_c,
                 lite.regulator_err_pct, lite.useful_heat_pct, lite.mean_cores});
  table.add_row({std::string("2R2C (air + envelope mass)"), heavy.comfort_dev_k,
                 heavy.mean_room_c, heavy.regulator_err_pct, heavy.useful_heat_pct,
                 heavy.mean_cores});
  table.print(std::cout);

  std::printf("\nreading: the wall mass filters the day/night swing (larger deviation\n"
              "through setback transitions, same mean), while regulator error, useful-\n"
              "heat share and capacity move by at most a few points — the cheap model\n"
              "is safe for the fleet-level experiments, as DESIGN.md assumes.\n");
  return 0;
}
