// E14b — grid-aware economics: €/job and gCO2/job per decision policy
// (paper §III-B; PAPERS.md arXiv 2303.10572, arXiv 1805.01765).
//
// The urban-integration argument is that a building fleet should react to
// the grid it sits on. This harness extends the e13 economics with the
// grid-signal plane: a two-region city (hydro-backed "green" vs
// fossil-heavy "dirty", the bundled demo trace) runs the same workload
// under every routing policy, with and without the grid-shed rung armed
// behind a demand-response injector on the dirty region. Each (routing x
// ladder) point reports fleet kWh, €/job and gCO2/job attributed at spend
// time by region signal.
//
// Expected shape: carbon-aware routing beats least-loaded on gCO2/job
// (it steers cloud work to the green region), price-aware beats it on
// €/job, and the shed ladder trims kWh during curtailment windows.
//
// Output: a console table plus BENCH_grid.json (path overridable with
// DF3_BENCH_JSON) with one row per policy point.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

struct Row {
  std::string routing;
  std::string ladder;
  std::uint64_t jobs = 0;
  std::uint64_t windows = 0;
  double it_kwh = 0.0;
  double cost_eur = 0.0;
  double co2_g = 0.0;
  double eur_per_job() const { return jobs > 0 ? cost_eur / static_cast<double>(jobs) : 0.0; }
  double gco2_per_job() const { return jobs > 0 ? co2_g / static_cast<double>(jobs) : 0.0; }
};

Row run_point(const std::string& routing, const std::string& ladder, bool shed_events) {
  using namespace df3;
  core::PlatformConfig base;
  base.seed = 47;
  base.start_time = thermal::start_of_month(0);  // winter: fleet powered, heat wanted
  base.regulator.gating = core::GatingPolicy::kKeepWarm;
  base.cluster.edge_peak_ladder = policy::Registry::split_list(ladder);
  base.cluster.peer_select = "greenest";
  core::Df3Platform city(std::move(base));
  for (int i = 0; i < 6; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = 4;
    b.grid_region = (i % 2 == 0) ? "green" : "dirty";
    city.add_building(b);
  }
  city.set_cloud_routing(routing);
  city.install_grid(grid::two_region_demo_plane());
  // Cloud-dominated workload: routing decides which region's chassis burn
  // the compute joules, which is exactly what the per-region attribution
  // should expose.
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 600.0);

  // Demand-response on the dirty region: while curtailed, grid-shed (when
  // armed on the ladder) sheds the gated half of each dirty-region fleet.
  std::unique_ptr<core::GridEventSource> source;
  if (shed_events) {
    const std::size_t r = city.grid_plane()->region_index("dirty");
    std::vector<core::Cluster*> clusters;
    for (std::size_t b = 0; b < city.building_count(); ++b) {
      if (city.building_region(b) == r) clusters.push_back(&city.cluster(b));
    }
    core::GridEventConfig ec;
    ec.region = r;
    ec.mean_up_s = 4.0 * 3600.0;
    ec.mean_down_s = 3600.0;
    ec.shed_fraction = 0.5;
    source = std::make_unique<core::GridEventSource>(city.simulation(), "grid-event/dirty",
                                                     *city.grid_plane(), std::move(clusters), ec,
                                                     util::RngStream(47, "grid-event/dirty"));
    source->start();
  }

  city.run(util::days(3.0));
  if (source) source->stop();

  Row row;
  row.routing = routing;
  row.ladder = ladder;
  row.jobs = city.flow_metrics().overall().completed;
  row.windows = source ? source->windows() : 0;
  row.it_kwh = city.df_energy().it().kwh();
  row.cost_eur = city.df_energy().grid_cost_eur();
  row.co2_g = city.df_energy().grid_co2_g();
  return row;
}

}  // namespace

int main() {
  using namespace df3;
  bench::banner("E14b: grid-aware economics — EUR/job and gCO2/job per policy",
                "carbon intensity, dynamic price and renewables as first-class "
                "resource-management inputs, not after-the-fact reports");

  const std::vector<std::string> routings = {"df-first", "least-loaded", "heat-aware",
                                             "carbon-aware", "price-aware"};
  const struct {
    const char* name;
    const char* rungs;
    bool events;
  } ladders[] = {
      {"base", "preempt,delay", false},
      {"shed", "grid-shed,preempt,delay", true},
  };

  std::vector<Row> rows;
  util::Table table({"routing", "ladder", "jobs", "it_kwh", "eur_per_job", "gco2_per_job",
                     "windows"},
                    "two-region winter city, 3 days, demo grid trace");
  table.set_precision(4);
  for (const auto& ladder : ladders) {
    for (const auto& routing : routings) {
      rows.push_back(run_point(routing, ladder.rungs, ladder.events));
      const Row& r = rows.back();
      table.add_row({r.routing + "/" + ladder.name, std::string(ladder.rungs),
                     static_cast<double>(r.jobs), r.it_kwh, r.eur_per_job(), r.gco2_per_job(),
                     static_cast<double>(r.windows)});
    }
  }
  table.print(std::cout);

  // The acceptance check the CI perf tracker watches: routing by carbon
  // intensity must emit less CO2 per completed job than load balancing.
  const auto find = [&rows](const std::string& routing, const std::string& ladder) {
    for (const Row& r : rows) {
      if (r.routing == routing && r.ladder == ladder) return r;
    }
    return Row{};
  };
  const Row carbon = find("carbon-aware", "preempt,delay");
  const Row balanced = find("least-loaded", "preempt,delay");
  std::printf("\ncarbon-aware %.4f gCO2/job vs least-loaded %.4f gCO2/job -> %s\n",
              carbon.gco2_per_job(), balanced.gco2_per_job(),
              carbon.gco2_per_job() < balanced.gco2_per_job() ? "cleaner" : "NOT cleaner");

  const char* env = std::getenv("DF3_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_grid.json";
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"grid_economics/routing:%s/ladder:%s\", \"jobs\": %llu, "
                  "\"it_kwh\": %.6f, \"cost_eur\": %.6f, \"co2_g\": %.6f, "
                  "\"eur_per_job\": %.9g, \"gco2_per_job\": %.9g, \"windows\": %llu}%s\n",
                  r.routing.c_str(), r.ladder.c_str(), static_cast<unsigned long long>(r.jobs),
                  r.it_kwh, r.cost_eur, r.co2_g, r.eur_per_job(), r.gco2_per_job(),
                  static_cast<unsigned long long>(r.windows), i + 1 < rows.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}
