// Overhead of the observability layer (DESIGN.md section 10): full-platform
// run throughput with telemetry off / counters / full tracing / journeys.
//
// The four sides run the *same* city — buildings with edge workload, cloud
// batches, and the heat regulator active — differing only in
// `PlatformConfig::obs.level` (and, for the last pair, whether journey span
// links are emitted). Rounds are interleaved off,counters,full,journeys,...
// and medians reported, so host drift hits all sides equally. The mean room
// temperature is cross-checked between sides: observation must not perturb
// the simulation (the determinism test pins the digests; this is the cheap
// in-bench guard).
//
// `full` runs kFull tracing with journey_links=false; `journeys` is the
// default kFull configuration with span links on, so the full→journeys
// delta prices the causal-link records (DESIGN.md section 14).
//
// With -DDF3_OBS=OFF the hooks compile to nothing and all four sides
// measure the same binary path; the interesting numbers come from the
// default DF3_OBS=ON build, where `off` exercises the disabled-path check
// (a pointer load and branch per hook site).
//
// Output: a console table plus BENCH_obs.json (path overridable with
// DF3_BENCH_JSON) with ns/tick and the overhead per level relative to off.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "df3/core/platform.hpp"
#include "df3/obs/obs.hpp"
#include "df3/thermal/calendar.hpp"
#include "df3/util/units.hpp"
#include "df3/workload/generators.hpp"

namespace {

using namespace df3;

constexpr double kDays = 2.0;
constexpr int kBuildings = 4;
constexpr int kRoomsPerBuilding = 4;
constexpr int kRounds = 5;

struct RunResult {
  double seconds = 0.0;
  double mean_temp = 0.0;
  std::uint64_t trace_events = 0;
};

RunResult run_city(obs::TraceLevel level, bool journey_links) {
  core::PlatformConfig pc;
  pc.seed = 2016;
  pc.start_time = thermal::start_of_month(0);
  pc.climate = thermal::paris_climate();
  pc.obs.level = level;
  pc.obs.journey_links = journey_links;
  core::Df3Platform city(pc);
  for (int i = 0; i < kBuildings; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = kRoomsPerBuilding;
    city.add_building(b);
  }
  city.add_edge_source(0, workload::alarm_detection_factory(), 0.05);
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1800.0);

  const auto start = std::chrono::steady_clock::now();
  city.run(util::days(kDays));
  const auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(stop - start).count();
  double sum = 0.0;
  for (int b = 0; b < kBuildings; ++b) {
    for (int room = 0; room < kRoomsPerBuilding; ++room) {
      sum += city.room_temperature(static_cast<std::size_t>(b), static_cast<std::size_t>(room))
                 .value();
    }
  }
  r.mean_temp = sum / (kBuildings * kRoomsPerBuilding);
  if (const obs::Observability* o = city.observability(); o != nullptr) {
    r.trace_events = o->trace().recorded();
  }
  return r;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  const struct {
    const char* label;
    obs::TraceLevel level;
    bool journey_links;
  } sides[] = {{"off", obs::TraceLevel::kOff, false},
               {"counters", obs::TraceLevel::kCounters, false},
               {"full", obs::TraceLevel::kFull, false},
               {"journeys", obs::TraceLevel::kFull, true}};
  constexpr std::size_t kSides = 4;
  const double ticks = kDays * 24.0 * 3600.0 / 60.0;

  std::printf("bench_obs_overhead: %d buildings x %d rooms, %.0f simulated days, "
              "%d interleaved rounds\n\n",
              kBuildings, kRoomsPerBuilding, kDays, kRounds);

  std::vector<double> times[kSides];
  RunResult last[kSides];
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t s = 0; s < kSides; ++s) {
      last[s] = run_city(sides[s].level, sides[s].journey_links);
      times[s].push_back(last[s].seconds);
    }
  }
  for (std::size_t s = 1; s < kSides; ++s) {
    if (std::abs(last[s].mean_temp - last[0].mean_temp) > 1e-12) {
      std::printf("WARNING: observation perturbed the simulation "
                  "(%s %.12f C vs off %.12f C)\n",
                  sides[s].label, last[s].mean_temp, last[0].mean_temp);
    }
  }

  std::printf("%10s %12s %12s %10s %14s\n", "level", "ns/tick", "ticks/s", "overhead",
              "trace events");
  const double base = median(times[0]);
  double ns_per_tick[kSides];
  double overhead[kSides];
  for (std::size_t s = 0; s < kSides; ++s) {
    const double med = median(times[s]);
    ns_per_tick[s] = med / ticks * 1e9;
    overhead[s] = base > 0.0 ? (med - base) / base : 0.0;
    std::printf("%10s %12.1f %12.3e %9.1f%% %14llu\n", sides[s].label, ns_per_tick[s],
                ticks / med, 100.0 * overhead[s],
                static_cast<unsigned long long>(last[s].trace_events));
  }

  const char* env = std::getenv("DF3_BENCH_JSON");
  const std::string path = env != nullptr ? env : "BENCH_obs.json";
  std::ofstream out(path);
  out << "{\n  \"benchmarks\": [\n";
  for (std::size_t s = 0; s < kSides; ++s) {
    out << "    {\"name\": \"platform_tick/obs:" << sides[s].label << "\""
        << ", \"ns_per_tick\": " << ns_per_tick[s]
        << ", \"overhead_vs_off\": " << overhead[s]
        << ", \"trace_events\": " << last[s].trace_events << '}'
        << (s + 1 < kSides ? "," : "") << '\n';
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
