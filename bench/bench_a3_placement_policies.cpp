// A3 — ablation: cloud placement policy across seasons.
//
// Section III-A: "the main challenge still remains in the calibration of a
// decision system that states what to do locally and remotely". Every
// registered routing policy for the Internet flow, each evaluated in
// January and July:
//   df-first     — always try DF clusters; backlog overflows vertically;
//   dc-only      — classic cloud (ignore the heaters);
//   season-aware — DF during the heating season, datacenter otherwise;
//   heat-aware   — the building wanting the most heat per core;
//   least-loaded — the building with the smallest backlog per core.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct Result {
  double p50_min;
  double df_sold_core_h;  // real (paid) work executed on the heaters
  double dc_kwh;          // marginal energy bought from the elastic cloud
  double vertical_share;  // fraction of requests that ended in the DC
};

Result run(const std::string& routing, int month) {
  core::PlatformConfig base;
  base.cluster.cloud_offload_backlog_gc_per_core = 2000.0;
  base.tick_s = 300.0;
  // Elastic-cloud accounting: the datacenter bills only busy cores (its
  // idle fleet is amortized over other tenants).
  base.datacenter.cores = 512;
  base.datacenter.power_per_idle_core = util::Watts{0.0};
  auto city = bench::make_city(29, month, core::GatingPolicy::kAggressive, 4, 4, base);
  city->set_cloud_routing(routing);
  city->add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1200.0);
  city->run(util::days(4.0));
  const auto& cloud = city->flow_metrics().by_flow(workload::Flow::kCloud);
  double sold_core_s = 0.0;
  for (std::size_t b = 0; b < city->building_count(); ++b) {
    auto& cl = city->cluster(b);
    for (std::size_t w = 0; w < cl.worker_count(); ++w) {
      sold_core_s += cl.worker(w).busy_core_seconds();
    }
  }
  const double vertical =
      static_cast<double>(city->flow_metrics().served_by_prefix("vertical:")) /
      static_cast<double>(std::max<std::uint64_t>(1, cloud.total()));
  return {cloud.response_s.percentile(50.0) / 60.0, sold_core_s / 3600.0,
          city->datacenter()->energy().facility_total().kwh(), vertical};
}

}  // namespace

int main() {
  bench::banner("A3 (ablation): local-vs-remote placement of the Internet flow",
                "winter favours DF placement (heat is wanted); summer favours the "
                "datacenter; season-aware takes both");

  util::Table table({"policy", "month", "cloud_p50_min", "df_sold_core_h", "dc_kwh",
                     "vertical_share"},
                    "risk-simulation stream, 4 days, 4 buildings x 4 Q.rads");
  table.set_precision(1);
  const char* policies[] = {"df-first", "dc-only", "season-aware", "heat-aware",
                            "least-loaded"};
  for (const auto* p : policies) {
    for (const int month : {0, 6}) {
      const auto r = run(p, month);
      table.add_row({std::string(p), std::string(thermal::month_name(month)), r.p50_min,
                     r.df_sold_core_h, r.dc_kwh, r.vertical_share});
    }
  }
  table.print(std::cout);

  std::printf("\nreading: in January df-first sells thousands of heater core-hours whose\n"
              "energy was being bought for heating anyway, so almost nothing is bought\n"
              "from the cloud; in July its heaters are gated and the hybrid valve ships\n"
              "everything vertically, converging with dc-only. season-aware encodes\n"
              "exactly that switch — the decision system the paper asks for.\n");
  return 0;
}
