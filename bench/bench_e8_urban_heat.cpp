// E8 — urban heat island impact of DF deployment styles (section III-A).
//
// "it can be expected that a broad deployment of DF servers could create or
//  increase the intensity of urban heat island ... Fortunately, it is
//  possible to define the heat delivery in data furnace as an on demand
//  service ... In such an approach, we minimize waste heat."
//
// Four device classes heat (or cool) a 1 km2 district of 500 rooms for one
// winter week and one summer week:
//   * on-demand Q.rads           — heat only what thermostats request;
//   * dual-pipe e-radiators      — keep computing in summer, vent outdoors;
//   * always-on digital boilers  — constant hot water, excess rejected;
//   * air conditioners           — the comparison point from Tremeac et al.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct WeekResult {
  double indoor_kwh;
  double outdoor_kwh;
  double uhi_mk;  // milli-kelvin of UHI intensity
};

/// Integrate one device class over a week starting at `t0`.
WeekResult run_class(const char* klass, double t0) {
  const thermal::WeatherModel weather(thermal::ClimateNormals{}, 8);
  thermal::UrbanHeatLedger ledger(1.0e6, 0.02);  // 1 km2, Tremeac-calibrated
  const auto src = ledger.add_source(klass);
  constexpr int kRooms = 500;
  const thermal::ComfortProfile comfort;
  thermal::RoomParams params;
  const double week = 7.0 * 86400.0;
  const double tick = 600.0;
  thermal::Room room(params, util::celsius(20.0));  // representative room

  for (double t = t0; t < t0 + week; t += tick) {
    const auto t_out = weather.outdoor_temperature(t);
    const bool season = weather.seasonal_component(t) < comfort.heating_cutoff_outdoor;
    const auto target = comfort.target_at_hour(thermal::hour_of_day(t));
    const double hold = room.holding_power(target, t_out).value();
    const double demand_w = season ? std::min(500.0, hold) : 0.0;
    room.advance(util::Seconds{tick}, util::watts(demand_w), t_out);

    double indoor_w = 0.0, outdoor_w = 0.0;
    if (std::string_view(klass) == "qrad-on-demand") {
      indoor_w = demand_w;  // regulator gates off otherwise (4 W standby ignored)
    } else if (std::string_view(klass) == "eradiator-dual-pipe") {
      // Keeps earning cloud revenue at ~60% load year-round; winter heat
      // goes indoors, summer heat is vented to the street.
      const double power = 0.6 * 1000.0;
      (season ? indoor_w : outdoor_w) = power;
    } else if (std::string_view(klass) == "boiler-always-on") {
      // 4 kW per ~40 rooms: 100 W/room constant; whatever exceeds the
      // demand leaves with the waste water.
      const double power = 100.0;
      indoor_w = std::min(power, demand_w);
      outdoor_w = power - indoor_w;
    } else {  // air conditioner: rejects indoor heat + compressor work
      const double cooling_need = season ? 0.0 : std::max(0.0, (t_out.value() - 24.0)) * 80.0;
      outdoor_w = cooling_need * 1.4;  // COP overhead
    }
    ledger.record_indoor(src, util::watts(indoor_w * kRooms) * util::Seconds{tick});
    ledger.record_outdoor(src, util::watts(outdoor_w * kRooms) * util::Seconds{tick});
  }
  return {ledger.total_indoor().kwh(), ledger.total_outdoor().kwh(),
          ledger.uhi_intensity(util::Seconds{week}).value() * 1e3};
}

}  // namespace

int main() {
  bench::banner("E8: urban-heat-island impact by deployment style",
                "on-demand DF heat adds ~nothing to the UHI; always-on boilers, summer-"
                "venting e-radiators and ACs reject heat to the street");

  util::Table table({"device class", "season", "indoor_kwh", "street_kwh", "uhi_mK"},
                    "1 km2 district, 500 rooms, one week");
  table.set_precision(1);
  const double winter = thermal::start_of_month(0) + 7.0 * 86400.0;
  const double summer = thermal::start_of_month(6) + 7.0 * 86400.0;
  for (const char* klass : {"qrad-on-demand", "eradiator-dual-pipe", "boiler-always-on",
                            "air-conditioner"}) {
    for (const auto& [name, t0] : {std::pair{"winter", winter}, std::pair{"summer", summer}}) {
      const auto r = run_class(klass, t0);
      table.add_row({std::string(klass), std::string(name), r.indoor_kwh, r.outdoor_kwh,
                     r.uhi_mk});
    }
  }
  table.print(std::cout);

  std::printf("\nshape checks: the on-demand Q.rad's street-side flux is ~zero in both\n"
              "seasons; the summer rows of the dual-pipe and AC classes carry the UHI\n"
              "burden, and the always-on boiler wastes year-round — exactly the ranking\n"
              "the paper's urban-integration argument needs.\n");
  return 0;
}
