// A8 — ablation: climate sensitivity of the DF capacity model.
//
// The paper's companies span Paris (Qarnot, Stimergy), Delft (Nerdalize)
// and Dresden (CloudandHeat); §VI worries about the electric-heating market
// as the binding constraint. Climate decides how many sellable core-hours a
// heater produces per year: we run the same building in five climates and
// report annual capacity and the length of the dead (summer) season.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct Row {
  double annual_core_hours;
  int dead_months;     // months with <5% capacity
  double useful_kwh;
};

Row run(const thermal::ClimateNormals& climate) {
  core::PlatformConfig cfg;
  cfg.seed = 8;
  cfg.climate = climate;
  cfg.tick_s = 900.0;
  cfg.regulator.gating = core::GatingPolicy::kAggressive;
  core::Df3Platform city(cfg);
  city.add_building({.name = "b0", .rooms = 4});
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1800.0);
  city.run(util::days(365.0));
  const int total_cores = 4 * 16;
  double core_hours = 0.0;
  int dead = 0;
  for (int m = 0; m < 12; ++m) {
    const double t0 = thermal::start_of_month(m);
    const double days = thermal::kDaysInMonth[static_cast<std::size_t>(m)];
    const double mean = city.capacity_series().mean_in_window(
        t0, t0 + days * thermal::kSecondsPerDay);
    core_hours += mean * days * 24.0;
    if (mean < 0.05 * total_cores) ++dead;
  }
  return {core_hours, dead, city.df_energy().useful_heat().kwh()};
}

}  // namespace

int main() {
  bench::banner("A8 (ablation): climate sensitivity of heat-driven capacity",
                "colder markets sell more winter cycles and have shorter dead seasons");

  util::Table table({"climate", "annual_core_hours", "capacity_pct", "dead_months",
                     "useful_heat_kwh"},
                    "one 4-Q.rad building (64 cores), strict on-demand gating, 1 year");
  table.set_precision(0);
  struct City {
    const char* name;
    thermal::ClimateNormals climate;
  };
  const std::vector<City> cities = {{"stockholm", thermal::stockholm_climate()},
                                    {"dresden", thermal::dresden_climate()},
                                    {"amsterdam", thermal::amsterdam_climate()},
                                    {"paris", thermal::paris_climate()},
                                    {"seville", thermal::seville_climate()}};
  // Five independent year-long simulations: fan out on the thread pool.
  const auto results =
      util::parallel_map(cities.size(), [&cities](std::size_t i) { return run(cities[i].climate); });
  for (std::size_t i = 0; i < cities.size(); ++i) {
    const auto& r = results[i];
    table.add_row({std::string(cities[i].name), r.annual_core_hours,
                   100.0 * r.annual_core_hours / (64.0 * 8760.0),
                   static_cast<std::int64_t>(r.dead_months), r.useful_kwh});
  }
  table.print(std::cout);

  std::printf("\nreading: the north/south gradient is the DF business case in one table —\n"
              "Stockholm sells roughly twice Paris's core-hours and Seville nearly\n"
              "none, which is why the paper's market-size worry (§VI) is really a\n"
              "climate-geography question.\n");
  return 0;
}
