// E2 — power usage effectiveness: data furnace vs air-cooled datacenter.
//
// Paper section II-A: "CloudandHeat claims a PUE value of 1.026 in some of
// their datacenters. This is better than the one obtained by Google."
// We run the same cloud batch workload on (a) a DF city in January and
// (b) a classic air-cooled datacenter at several cooling intensities, and
// compare PUE and where the heat ends up.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("E2: PUE, data furnace vs air-cooled datacenter",
                "DF ~1.026 beats air-cooled 1.3-1.6; DF heat is useful, DC heat is waste");

  util::Table table({"platform", "pue", "it_kwh", "cooling_kwh", "useful_heat_pct"},
                    "identical risk-simulation stream, 5 January days");

  // (a) Data furnace city.
  {
    auto city = bench::make_city(42, 0, core::GatingPolicy::kKeepWarm, 6, 4);
    city->add_cloud_source(workload::risk_simulation_factory(), 1.0 / 900.0);
    city->run(util::days(5.0));
    const auto& led = city->df_energy();
    table.add_row({std::string("data-furnace (DF3)"), led.pue(), led.it().kwh(),
                   led.cooling().kwh(), 100.0 * led.heat_reuse_fraction()});
  }

  // (b) Air-cooled datacenters at three cooling intensities.
  for (const double cooling : {0.30, 0.45, 0.60}) {
    sim::Simulation sim;
    baselines::DatacenterConfig cfg;
    cfg.label = "dc-cool-" + std::to_string(static_cast<int>(cooling * 100));
    cfg.cores = 6 * 4 * 16;  // same core count as the DF city
    cfg.cooling_fraction = cooling;
    baselines::Datacenter dc(sim, cfg);
    util::RngStream rng(42, "e2-dc");
    auto factory = workload::risk_simulation_factory();
    // Same mean arrival process, same horizon.
    double t = 0.0;
    while (t < 5.0 * 86400.0) {
      t += rng.exponential(1.0 / 900.0);
      auto r = factory(rng);
      r.arrival = t;
      sim.schedule_at(t, [&dc, r] { dc.submit(r, 0, [](workload::CompletionRecord) {}); });
    }
    sim.run_until(5.0 * 86400.0);
    const auto& led = dc.energy();
    table.add_row({std::string("air-cooled DC (cooling ") +
                       std::to_string(static_cast<int>(cooling * 100)) + "% of IT)",
                   led.pue(), led.it().kwh(), led.cooling().kwh(),
                   100.0 * led.heat_reuse_fraction()});
  }

  table.print(std::cout);
  std::printf("\nshape check: DF PUE ~1.026 << every air-cooled configuration, and\n"
              "DF turns most facility energy into requested heating; the DC none.\n");
  return 0;
}
