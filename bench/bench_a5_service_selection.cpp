// A5 — resource-oriented service composition: selection objectives (§IV).
//
// The paper's ROC vision turns middleware design into "the problem of
// automatically composing resource functions", citing service selection
// that optimizes energy consumption and service response time [19]. We
// compose a 4-stage smart-building pipeline (decode -> features -> detect
// -> notify) over a heterogeneous cluster (fast workers, downclocked
// workers, a remote worker behind a slow link) and compare selection
// objectives against naive baselines, validating predictions by real
// execution.

#include <iostream>

#include "harness.hpp"
#include "df3/core/composition.hpp"

int main() {
  using namespace df3;
  bench::banner("A5 (ablation): service-selection objectives over a DF cluster",
                "optimal DP selection vs naive placements; latency/energy trade-off");

  sim::Simulation sim;
  net::Network netw(sim, "net");
  const auto origin = netw.add_node("origin");
  const auto gw = netw.add_node("gw");
  netw.add_link(origin, gw, net::wifi());
  core::Cluster cluster(sim, "c", {}, netw, gw, [](workload::CompletionRecord) {});
  // 6 workers: 0-1 top-clocked, 2-3 downclocked (efficient), 4-5 remote.
  for (int i = 0; i < 6; ++i) {
    const auto n = netw.add_node("n" + std::to_string(i));
    netw.add_link(gw, n, i >= 4 ? net::zigbee() : net::ethernet_lan());
    cluster.add_worker(hw::qrad_spec(), n);
  }
  for (std::size_t w : {2u, 3u}) {
    cluster.worker(w).server().set_pstate(0);
    cluster.worker(w).sync_speed();
  }

  core::ServiceComposer composer(cluster, netw, origin);
  core::ServiceChain chain;
  chain.name = "smart-building";
  chain.stages = {{"decode", 1.5, util::kibibytes(96.0)},
                  {"features", 3.0, util::kibibytes(16.0)},
                  {"detect", 8.0, util::kibibytes(2.0)},
                  {"notify", 0.3, util::bytes(200.0)}};
  chain.input = util::kibibytes(256.0);
  for (const auto& stage : chain.stages) {
    for (std::size_t w = 0; w < cluster.worker_count(); ++w) {
      composer.provide(stage.name, w);
    }
  }

  struct Policy {
    const char* name;
    core::SelectionResult selection;
  };
  std::vector<Policy> policies;
  policies.push_back({"optimal latency (DP)", composer.select(chain, core::Objective::kLatency)});
  policies.push_back({"optimal energy (DP)", composer.select(chain, core::Objective::kEnergy)});
  policies.push_back(
      {"balanced 50/50 (DP)", composer.select(chain, core::Objective::kBalanced, 0.5)});
  // Naive baselines: everything on one worker.
  core::SelectionResult all_fast{{0, 0, 0, 0}, 0.0, 0.0};
  core::SelectionResult all_remote{{4, 4, 4, 4}, 0.0, 0.0};
  {
    // Fill in the model predictions for the naive picks.
    auto predict = [&](core::SelectionResult& s) {
      net::NodeId at = origin;
      util::Bytes payload = chain.input;
      for (std::size_t i = 0; i < chain.stages.size(); ++i) {
        const auto w = s.worker_per_stage[i];
        s.predicted_latency_s +=
            composer.transfer_time_s(at, cluster.worker(w).node(), payload) +
            composer.compute_time_s(chain.stages[i], w);
        s.predicted_energy_j += composer.compute_energy_j(chain.stages[i], w);
        at = cluster.worker(w).node();
        payload = chain.stages[i].output;
      }
      s.predicted_latency_s += composer.transfer_time_s(at, origin, payload);
    };
    predict(all_fast);
    predict(all_remote);
  }
  policies.push_back({"naive: pin to fast worker", all_fast});
  policies.push_back({"naive: pin to remote worker", all_remote});

  util::Table table({"policy", "predicted_ms", "measured_ms", "energy_j"},
                    "4-stage pipeline, heterogeneous 6-worker cluster");
  table.set_precision(1);
  for (auto& p : policies) {
    double measured = -1.0;
    composer.execute(chain, p.selection, [&](double latency, bool) { measured = latency; });
    sim.run();
    table.add_row({std::string(p.name), p.selection.predicted_latency_s * 1e3, measured * 1e3,
                   p.selection.predicted_energy_j});
  }
  table.print(std::cout);

  std::printf("\nreading: the DP picks dominate both naive placements; the energy\n"
              "objective trades ~%.0f%% more latency for the downclocked workers'\n"
              "efficiency — the exact knob reference [19] optimizes.\n",
              100.0 * (policies[1].selection.predicted_latency_s /
                           policies[0].selection.predicted_latency_s -
                       1.0));
  return 0;
}
