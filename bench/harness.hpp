#pragma once
/// \file harness.hpp
/// \brief Shared helpers for the experiment harnesses (one binary per paper
///        figure/table/claim — see DESIGN.md section 4).

#include <cstdio>
#include <string_view>

#include "df3/df3.hpp"

namespace df3::bench {

/// Uniform banner: which experiment, what the paper says, what we measure.
inline void banner(std::string_view experiment, std::string_view paper_claim) {
  std::printf("################################################################\n");
  std::printf("# %.*s\n", static_cast<int>(experiment.size()), experiment.data());
  std::printf("# paper: %.*s\n", static_cast<int>(paper_claim.size()), paper_claim.data());
  std::printf("################################################################\n\n");
}

/// A city of identical Q.rad buildings with a common seed/season.
/// (unique_ptr because the platform owns a pinned Simulation.)
inline std::unique_ptr<core::Df3Platform> make_city(std::uint64_t seed, int start_month,
                                                    core::GatingPolicy gating, int buildings,
                                                    int rooms,
                                                    core::PlatformConfig base = {}) {
  base.seed = seed;
  base.start_time = thermal::start_of_month(start_month);
  base.regulator.gating = gating;
  auto city = std::make_unique<core::Df3Platform>(std::move(base));
  for (int i = 0; i < buildings; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = rooms;
    city->add_building(b);
  }
  return city;
}

}  // namespace df3::bench
