// E5 — architecture class 1 (shared workers) vs class 2 (dedicated edge
// workers), paper section III-B.
//
// Class 1 lets every worker serve both flows (better utilization, edge
// protected only by priority/preemption); class 2 reserves workers for edge
// ("we can guarantee a minimal quality of service, what is particularly
// interesting if there are few requests" — paid for in idle capacity).
// We sweep the edge share of a fixed offered load and compare edge tail
// latency, edge deadline misses and fleet utilization.

#include <iostream>

#include "harness.hpp"

namespace {

struct Result {
  double edge_p99_ms;
  double edge_success;
  double utilization;
  std::uint64_t preemptions;
};

Result run(int dedicated, double edge_rate, double cloud_rate, std::uint64_t seed) {
  using namespace df3;
  core::PlatformConfig base;
  base.cluster.dedicated_edge_workers = dedicated;
  base.cluster.edge_peak_ladder = {"preempt", "delay"};
  auto city = bench::make_city(seed, 0, core::GatingPolicy::kKeepWarm, 1, 4, base);
  city->add_edge_source(0, workload::alarm_detection_factory(), edge_rate);
  if (cloud_rate > 0.0) {
    city->add_cloud_source(workload::risk_simulation_factory(), cloud_rate);
  }
  const double days = 1.0;
  city->run(util::days(days));

  double busy = 0.0;
  auto& cl = city->cluster(0);
  for (std::size_t w = 0; w < cl.worker_count(); ++w) busy += cl.worker(w).busy_core_seconds();
  const double total = 4.0 * 16.0 * days * 86400.0;
  const auto& edge = city->flow_metrics().by_flow(workload::Flow::kEdgeIndirect);
  return {edge.response_s.p99() * 1e3, edge.success_rate(), busy / total,
          cl.stats().preemptions};
}

}  // namespace

int main() {
  using namespace df3;
  bench::banner("E5: shared workers (class 1) vs dedicated edge workers (class 2)",
                "dedicated pool guarantees edge QoS at light load but strands capacity");

  util::Table table({"edge:cloud mix", "arch", "edge_p99_ms", "edge_success",
                     "fleet_util_pct", "preemptions"},
                    "one building (4 Q.rads / 64 cores), 1 January day");
  table.set_precision(1);

  struct Mix {
    const char* label;
    double edge_rate;
    double cloud_rate;  // risk batches/s
  };
  // Cloud rate tuned so the shared fleet runs hot; edge rate scales up.
  const Mix mixes[] = {{"low edge / heavy cloud", 0.02, 1.0 / 500.0},
                       {"mid edge / heavy cloud", 0.10, 1.0 / 500.0},
                       {"high edge / heavy cloud", 0.40, 1.0 / 500.0},
                       {"low edge / no cloud", 0.02, 0.0}};
  for (const auto& mix : mixes) {
    const auto shared = run(0, mix.edge_rate, mix.cloud_rate, 5);
    const auto dedicated = run(1, mix.edge_rate, mix.cloud_rate, 5);
    table.add_row({std::string(mix.label), std::string("1: shared"), shared.edge_p99_ms,
                   shared.edge_success, shared.utilization * 100.0,
                   static_cast<std::int64_t>(shared.preemptions)});
    table.add_row({std::string(mix.label), std::string("2: dedicated"), dedicated.edge_p99_ms,
                   dedicated.edge_success, dedicated.utilization * 100.0,
                   static_cast<std::int64_t>(dedicated.preemptions)});
  }
  table.print(std::cout);

  std::printf(
      "\nshape checks: class 2 keeps edge p99 flat with zero preemptions at every mix;\n"
      "class 1 reaches higher fleet utilization but leans on preemption as edge grows;\n"
      "with few requests the dedicated pool's guarantee costs idle capacity.\n");
  return 0;
}
