// E1 / Figure 4 — monthly average room temperature on Qarnot-heated sites,
// November through May.
//
// The paper's only data figure plots the mean temperature of rooms heated
// by Q.rads from month 11 to month 5 (axis 17-26 degC): comfortable all
// winter, rising toward the mid-twenties as spring ends heating. We rebuild
// the deployment — 10 sites x 3 Q.rad rooms, thermostat-driven heating
// backfilled with real cloud work, DVFS regulation, aggressive gating — and
// regenerate the series.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("E1 / Figure 4: room temperature, November -> May",
                "monthly means stay in the 17-26 degC comfort band all season");

  core::PlatformConfig base;
  base.tick_s = 300.0;
  base.start_time = 0.0;  // overwritten below
  auto city = bench::make_city(2016, /*November*/ 10, core::GatingPolicy::kAggressive,
                               /*buildings=*/10, /*rooms=*/3, base);
  // The fleet earns its keep: steady cloud work rides the heat demand.
  city->add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1200.0);

  // November 1st of year 0 through May 31st of year 1.
  const double horizon = thermal::start_of_month(5, 1) +
                         31.0 * thermal::kSecondsPerDay - thermal::start_of_month(10);
  city->run(util::Seconds{horizon});

  const auto& series = city->room_temperature_series();
  util::Table table({"month", "mean_room_c", "paper_band"},
                    "fleet-mean room temperature by month");
  table.set_precision(1);
  const int months[] = {10, 11, 0, 1, 2, 3, 4};  // Nov..May
  bool in_band = true;
  for (std::size_t i = 0; i < std::size(months); ++i) {
    const int m = months[i];
    const int year = i < 2 ? 0 : 1;
    const double t0 = thermal::start_of_month(m, year);
    const double t1 = t0 + thermal::kDaysInMonth[static_cast<std::size_t>(m)] *
                               thermal::kSecondsPerDay;
    const double mean = series.mean_in_window(t0, t1);
    in_band = in_band && mean >= 17.0 && mean <= 26.0;
    table.add_row({std::string(thermal::month_name(m)), mean, std::string("17-26")});
  }
  table.print(std::cout);

  std::printf("\nresult: monthly means %s the paper's 17-26 degC Figure-4 band\n",
              in_band ? "all fall inside" : "ESCAPE");
  std::printf("comfort: %.2f K mean |deviation| from the thermostat target\n",
              city->comfort(0).mean_abs_deviation_k(city->now()));
  std::printf("useful heat: %.0f%% of the %.0f kWh consumed\n",
              100.0 * city->df_energy().heat_reuse_fraction(),
              city->df_energy().facility_total().kwh());
  return in_band ? 0 : 1;
}
