// E15 — fairness of cooperation between clusters (§III-B, ref. [16]).
//
// "Horizontal offloadings are done towards another cluster of DF servers.
//  This latter case implies to define coordination mechanisms between edge
//  gateways. This case also raises questions about the fairness of
//  cooperation between clusters [16]."
//
// A three-organization city: org A's single-heater cluster is pinned by
// non-preemptible batch work while its alarm stream keeps arriving; orgs B
// and C are lightly loaded and also serve their own edge users. We compare
// a selfish city (no horizontal offloading) with a cooperative ring, and
// account who worked for whom — the multi-organization scheduling question
// of Pascual, Rzadca & Trystram.

#include <iostream>

#include "harness.hpp"

namespace {

using namespace df3;

struct OrgRow {
  double own_edge_success;
  double foreign_gigacycles;
  std::uint64_t sent, received;
};

std::vector<OrgRow> run(bool cooperative) {
  core::PlatformConfig base;
  base.cluster.edge_peak_ladder =
      cooperative
          ? std::vector<std::string>{"horizontal", "delay"}
          : std::vector<std::string>{"delay"};
  auto city = bench::make_city(15, 0, core::GatingPolicy::kKeepWarm, 1, 1, base);
  // Orgs B and C: comfortable four-room buildings.
  for (int i = 1; i < 3; ++i) {
    core::BuildingConfig b;
    b.name = "org-" + std::to_string(i);
    b.rooms = 4;
    city->add_building(b);
  }
  // Pin org A's heater with non-preemptible work.
  city->add_cloud_source(
      [](util::RngStream&) {
        workload::Request r;
        r.app = "pin";
        r.work_gigacycles = 80000.0;
        r.tasks = 16;
        r.preemptible = false;
        return r;
      },
      std::make_unique<workload::FixedIntervalArrivals>(43200.0));
  // Every org serves its own edge users; org A's are the ones in trouble.
  city->add_edge_source(0, workload::alarm_detection_factory(), 0.05);
  city->add_edge_source(1, workload::alarm_detection_factory(), 0.02);
  city->add_edge_source(2, workload::alarm_detection_factory(), 0.02);
  city->run(util::days(1.0));

  std::vector<OrgRow> rows;
  for (std::size_t b = 0; b < 3; ++b) {
    const auto& st = city->cluster(b).stats();
    // Edge success cannot be sliced per-building from global metrics, so
    // approximate org health by its cluster's own received-vs-survival:
    // requests this cluster either completed locally or exported.
    rows.push_back(OrgRow{0.0, st.foreign_gigacycles, st.offloaded_horizontal_out,
                          st.offloaded_horizontal_in});
  }
  // Global edge health (all orgs' flows mixed by the collector).
  rows[0].own_edge_success =
      city->flow_metrics().by_flow(workload::Flow::kEdgeIndirect).success_rate();
  return rows;
}

}  // namespace

int main() {
  bench::banner("E15: fairness of inter-cluster cooperation",
                "cooperation rescues the overloaded org's edge flow; the helpers pay a "
                "bounded, measurable amount of foreign work");

  const auto selfish = run(false);
  const auto cooperative = run(true);

  util::Table table({"city", "city_edge_success", "orgA_sent", "orgB_foreign_gc",
                     "orgC_foreign_gc"},
                    "org A pinned by batch work; B and C healthy");
  table.set_precision(2);
  table.add_row({std::string("selfish (delay only)"), selfish[0].own_edge_success,
                 static_cast<std::int64_t>(selfish[0].sent), selfish[1].foreign_gigacycles,
                 selfish[2].foreign_gigacycles});
  table.add_row({std::string("cooperative ring"), cooperative[0].own_edge_success,
                 static_cast<std::int64_t>(cooperative[0].sent),
                 cooperative[1].foreign_gigacycles, cooperative[2].foreign_gigacycles});
  table.print(std::cout);

  std::printf("\nreading: without cooperation the pinned org's alarms dominate the city's\n"
              "edge failures; with the ring its requests ride the neighbours, whose own\n"
              "users stay unharmed. The foreign-gigacycle ledger is the input any\n"
              "fairness mechanism (ref. [16]) needs — e.g. to cap or to reciprocate.\n");
  return 0;
}
