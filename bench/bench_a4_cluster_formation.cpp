// A4 — cluster-formation strategies for a city-scale deployment (§III-B).
//
// "To decide on the components of clusters, we can either use clustering
//  techniques developed in wireless sensor networks or define clusters as
//  the set of DF servers of a physical building or district."
//
// On a synthetic 2 km city of 300 DF sites (3 density hotspots) we compare
// district grids, k-means and LEACH-style rotating heads on the metrics a
// gateway layout drives: member->head distance (indirect-request hop) and
// per-cluster core balance (burst headroom). LEACH rows also report head
// churn — its fairness costs locality.

#include <iostream>
#include <set>

#include "harness.hpp"
#include "df3/core/clustering.hpp"

int main() {
  using namespace df3;
  bench::banner("A4 (ablation): grid vs k-means vs LEACH cluster formation",
                "WSN techniques buy locality/balance; rotation buys gateway fairness");

  const auto sites = core::synthetic_city(300, 2000.0, 3, 17);
  util::Table table({"strategy", "clusters", "mean_hop_m", "max_hop_m", "core_imbalance"},
                    "300 DF sites over 2 km x 2 km, 3 districts");
  table.set_precision(1);

  const auto grid500 = core::grid_clusters(sites, 500.0);
  const auto gq = core::evaluate(sites, grid500);
  table.add_row({std::string("district grid 500 m"), static_cast<std::int64_t>(gq.clusters),
                 gq.mean_head_distance_m, gq.max_head_distance_m, gq.core_imbalance});

  const auto kmeans = core::kmeans_clusters(sites, gq.clusters, 7);
  const auto kq = core::evaluate(sites, kmeans);
  table.add_row({std::string("k-means (same k)"), static_cast<std::int64_t>(kq.clusters),
                 kq.mean_head_distance_m, kq.max_head_distance_m, kq.core_imbalance});

  // LEACH: average over an epoch of rounds.
  double mean_hop = 0.0, max_hop = 0.0, imbalance = 0.0, clusters = 0.0;
  std::set<std::size_t> ever_led;
  const int rounds = 20;
  for (int r = 0; r < rounds; ++r) {
    const double fraction = static_cast<double>(gq.clusters) / static_cast<double>(sites.size());
    const auto a = core::leach_clusters(sites, fraction, static_cast<std::uint64_t>(r), 7);
    const auto q = core::evaluate(sites, a);
    mean_hop += q.mean_head_distance_m;
    max_hop += q.max_head_distance_m;
    imbalance += q.core_imbalance;
    clusters += static_cast<double>(q.clusters);
    for (const auto h : a.head_site) ever_led.insert(h);
  }
  table.add_row({std::string("LEACH rotation (epoch mean)"),
                 static_cast<std::int64_t>(clusters / rounds), mean_hop / rounds,
                 max_hop / rounds, imbalance / rounds});
  table.print(std::cout);

  std::printf("\nLEACH fairness: %zu of %zu sites served as gateway within %d rounds\n",
              ever_led.size(), sites.size(), rounds);
  std::printf("reading: k-means tightens both hop metrics over naive district cells at\n"
              "equal cluster count; LEACH pays a locality premium per round but spreads\n"
              "the gateway's network/compute burden across the fleet — pick by whether\n"
              "gateways are a scarce resource (paper's class-2 worry) or not.\n");
  return 0;
}
