// A1 — ablation: control-loop parameters of the heat path.
//
// DESIGN.md calls out two tunables the paper leaves open: the thermostat's
// proportional gain and the regulation period. We sweep both over a January
// week and report comfort (thermostat's job) and heat-tracking fidelity
// (regulator's job). Too soft a gain undershoots after setbacks; too long a
// period lets the room drift between corrections.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("A1 (ablation): thermostat gain x regulation period",
                "comfort and tracking are robust across a decade of gains; second-scale "
                "control buys little over minutes");

  util::Table table({"gain_w_per_k", "tick_s", "comfort_dev_k", "regulator_err_pct",
                     "useful_heat_pct"},
                    "one building, 7 January days");
  table.set_precision(2);

  // Each grid point is an independent simulation: fan them out on the
  // thread pool (results are collected in index order, so the table stays
  // deterministic).
  struct Point {
    double gain, tick;
  };
  std::vector<Point> grid;
  for (const double gain : {50.0, 250.0, 1000.0}) {
    for (const double tick : {60.0, 300.0, 900.0}) grid.push_back({gain, tick});
  }
  struct Row {
    double comfort, err, useful;
  };
  const auto rows = util::parallel_map(grid.size(), [&grid](std::size_t i) {
    const auto [gain, tick] = grid[i];
    core::PlatformConfig base;
    base.tick_s = tick;
    core::BuildingConfig bcfg;
    bcfg.name = "b0";
    bcfg.rooms = 3;
    bcfg.thermostat_gain_w_per_k = gain;
    base.start_time = thermal::start_of_month(0);
    base.seed = 21;
    base.regulator.gating = core::GatingPolicy::kAggressive;
    core::Df3Platform city(base);
    city.add_building(bcfg);
    city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 3600.0);
    city.run(util::days(7.0));
    return Row{city.comfort(0).mean_abs_deviation_k(city.now()),
               100.0 * city.regulator_relative_error(),
               100.0 * city.df_energy().heat_reuse_fraction()};
  });
  for (std::size_t i = 0; i < grid.size(); ++i) {
    table.add_row({grid[i].gain, grid[i].tick, rows[i].comfort, rows[i].err, rows[i].useful});
  }
  table.print(std::cout);

  std::printf("\nreading: deviation is dominated by night-setback transitions (thermal\n"
              "inertia), not by the controller — hence the flat middle of the table;\n"
              "only the softest gain at the slowest period visibly degrades.\n");
  return 0;
}
