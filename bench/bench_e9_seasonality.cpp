// E9 — seasonality of DF computing capacity and thermosensitivity
// (sections III-C and IV).
//
// "in winter, the heat demand increases the computing power that is then
//  reduced in the summer" and "the thermosensitivity is in general
//  correlated to the external weather". A full simulated year of a DF city
// under strict on-demand heat produces the monthly capacity profile and the
// demand-vs-weather regression.

#include <iostream>

#include "harness.hpp"

int main() {
  using namespace df3;
  bench::banner("E9: seasonal capacity and thermosensitivity",
                "capacity peaks in winter, collapses in summer; demand ~ heating degrees");

  core::PlatformConfig base;
  base.tick_s = 600.0;
  auto city = bench::make_city(13, 0, core::GatingPolicy::kAggressive, 6, 4, base);
  city->add_cloud_source(workload::risk_simulation_factory(), 1.0 / 1800.0);
  city->run(util::days(365.0));

  const int total_cores = 6 * 4 * 16;
  const auto& cap = city->capacity_series();
  const auto& demand = city->heat_demand_series();
  util::Table table({"month", "mean_usable_cores", "capacity_pct", "mean_demand_kw",
                     "mean_outdoor_c"},
                    "DF city over one simulated year (aggressive on-demand gating)");
  table.set_precision(1);
  for (int m = 0; m < 12; ++m) {
    const double t0 = thermal::start_of_month(m);
    const double t1 = t0 + thermal::kDaysInMonth[static_cast<std::size_t>(m)] *
                               thermal::kSecondsPerDay;
    table.add_row({std::string(thermal::month_name(m)), cap.mean_in_window(t0, t1),
                   100.0 * cap.mean_in_window(t0, t1) / total_cores,
                   demand.mean_in_window(t0, t1) / 1e3,
                   city->outdoor_series().mean_in_window(t0, t1)});
  }
  table.print(std::cout);

  // Thermosensitivity regression on the run's own telemetry.
  analytics::ThermosensitivityAnalyzer tsa(16.0);
  for (std::size_t i = 0; i < demand.size(); ++i) {
    tsa.observe(demand.times[i], util::celsius(city->outdoor_series().values[i]),
                util::watts(demand.values[i]));
  }
  const auto fit = tsa.fit();
  std::printf("\nthermosensitivity: %.0f W per heating-degree day-mean "
              "(R^2 %.2f, correlation %.2f over %zu days)\n",
              fit.slope, fit.r_squared, tsa.correlation(), tsa.days());

  const double jan = cap.mean_in_window(thermal::start_of_month(0),
                                        thermal::start_of_month(1));
  const double jul = cap.mean_in_window(thermal::start_of_month(6),
                                        thermal::start_of_month(7));
  std::printf("winter/summer capacity ratio: %.1fx (Jan %.0f cores vs Jul %.0f cores)\n",
              jan / std::max(1.0, jul), jan, jul);
  std::printf("shape checks: capacity follows the heating season; the demand/weather\n"
              "correlation is what makes the paper's predictive platform workable.\n");
  return 0;
}
