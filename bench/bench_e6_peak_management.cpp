// E6 — peak management: preemption vs vertical offloading vs horizontal
// offloading vs delaying (paper section III-B).
//
// "In the case there are too many DCC requests, it might be impossible to
//  schedule the processing of an edge request (the cluster is full)." The
// paper lists four escapes. We saturate one cluster with a DCC burst, keep
// a steady edge stream arriving, and measure what each policy costs whom.

#include <iostream>

#include "harness.hpp"

namespace {

struct Result {
  double edge_success;
  double edge_p99_ms;
  double cloud_p50_min;
  std::uint64_t preempted, vertical, horizontal;
};

Result run(const std::vector<std::string>& ladder, std::uint64_t seed) {
  using namespace df3;
  core::PlatformConfig base;
  base.cluster.edge_peak_ladder = ladder;
  // Two buildings: building 1 is the lightly loaded horizontal peer.
  auto city = bench::make_city(seed, 0, core::GatingPolicy::kKeepWarm, 2, 2, base);

  // Steady edge stream on building 0.
  city->add_edge_source(0, workload::alarm_detection_factory(), 0.05);
  // DCC bursts: Markov-modulated render batches slamming the cluster. The
  // cloud router is pinned to building 0 by submitting an overwhelming
  // stream (round-robin alternates, so double rate and let peer absorb
  // only its own share organically).
  city->add_cloud_source(
      workload::render_batch_factory(24, 48),
      std::make_unique<workload::MmppArrivals>(1.0 / 7200.0, 1.0 / 200.0, 3600.0, 1800.0));

  city->run(util::days(1.0));

  const auto& edge = city->flow_metrics().by_flow(workload::Flow::kEdgeIndirect);
  const auto& cloud = city->flow_metrics().by_flow(workload::Flow::kCloud);
  std::uint64_t preempted = 0, horizontal = 0, vertical = 0;
  for (std::size_t b = 0; b < city->building_count(); ++b) {
    preempted += city->cluster(b).stats().preemptions;
    horizontal += city->cluster(b).stats().offloaded_horizontal_out;
    vertical += city->cluster(b).stats().offloaded_vertical;
  }
  return {edge.success_rate(), edge.response_s.p99() * 1e3,
          cloud.response_s.percentile(50.0) / 60.0, preempted, vertical, horizontal};
}

}  // namespace

int main() {
  using namespace df3;
  bench::banner("E6: peak management under DCC bursts",
                "preemption protects edge at cloud's cost; offloading spreads the pain; "
                "delaying sacrifices edge deadlines");

  util::Table table({"policy", "edge_success", "edge_p99_ms", "cloud_p50_min", "preempted",
                     "vertical", "horizontal"},
                    "burst: MMPP render batches; steady alarm-detection stream");
  table.set_precision(1);

  struct Policy {
    const char* name;
    std::vector<std::string> ladder;
  };
  const Policy policies[] = {
      {"preempt", {"preempt", "delay"}},
      {"vertical-offload", {"vertical", "delay"}},
      {"horizontal-offload", {"horizontal", "delay"}},
      {"delay", {"delay"}},
  };
  for (const auto& p : policies) {
    const auto r = run(p.ladder, 17);
    table.add_row({std::string(p.name), r.edge_success, r.edge_p99_ms, r.cloud_p50_min,
                   static_cast<std::int64_t>(r.preempted),
                   static_cast<std::int64_t>(r.vertical),
                   static_cast<std::int64_t>(r.horizontal)});
  }
  table.print(std::cout);

  std::printf("\nshape checks: every active policy beats plain delaying on edge success;\n"
              "preemption keeps work local but slows the burst's batches; offloads keep\n"
              "cloud speed at the price of moving requests off-cluster.\n");
  return 0;
}
