#pragma once
/// \file slo.hpp
/// \brief Rolling-window per-flow SLO monitor: deadline-miss ratio, failure
///        ratio, and response-time percentiles over the trailing window.
///
/// The monitor answers "is this flow healthy *now*?", which the cumulative
/// `FlowMetrics` cannot: a run that missed every deadline in hour one and
/// none since has a terrible lifetime ratio but a clean window. The window
/// is a ring of sub-buckets (default 60 buckets over 3600 s): recording
/// lazily reuses the bucket for the current epoch, reports merge the buckets
/// still inside the window. Percentiles come from merged `LogHistogram`s, so
/// the SLO plane, `df3trace`, and the metric registry all share the single
/// `LogHistogram::quantile()` implementation.
///
/// Reports are *staleness-bounded*: a flow that has seen no terminal within
/// the staleness bound reports `stale = true`, so a gauge consumer can
/// distinguish "0% misses" from "no data" (DESIGN.md section 14).
///
/// Flows are dense small integers (the `workload::Flow` enum values); the
/// monitor itself is workload-agnostic so `df3::obs` keeps its thin
/// dependency surface.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "df3/obs/metrics.hpp"

namespace df3::obs {

/// Terminal outcome class fed to the SLO plane.
enum class SloOutcome : std::uint8_t {
  kOk,      ///< completed within its deadline
  kMissed,  ///< deadline missed (completed late or abandoned)
  kFailed,  ///< rejected or dropped
};

class SloMonitor {
 public:
  explicit SloMonitor(double window_s = 3600.0, std::size_t buckets = 60);

  /// Record one terminal outcome for `flow` at simulated time `now_s`.
  /// `response_s` is the end-to-end response time (fed to the percentile
  /// histogram for kOk/kMissed; failures carry no meaningful latency).
  void record(std::uint32_t flow, SloOutcome outcome, double response_s, double now_s);

  struct FlowReport {
    std::uint64_t total = 0;
    std::uint64_t missed = 0;
    std::uint64_t failed = 0;
    double miss_ratio = 0.0;   ///< missed / total over the window
    double fail_ratio = 0.0;   ///< failed / total over the window
    double p50_s = 0.0;
    double p99_s = 0.0;
    double max_s = 0.0;
    double last_event_s = -1.0;  ///< last terminal ever seen (-1: never)
    bool stale = false;          ///< no terminal within the staleness bound
  };

  /// Windowed report for `flow` at time `now_s`. `staleness_s < 0` uses one
  /// full window as the staleness bound.
  [[nodiscard]] FlowReport report(std::uint32_t flow, double now_s,
                                  double staleness_s = -1.0) const;

  /// Highest flow index seen + 1 (0 when nothing was recorded).
  [[nodiscard]] std::size_t flows() const { return per_flow_.size(); }
  [[nodiscard]] double window_s() const { return window_s_; }
  [[nodiscard]] std::size_t buckets() const { return buckets_; }

  void clear() { per_flow_.clear(); }

 private:
  struct Bucket {
    std::uint64_t epoch = UINT64_MAX;  ///< absolute sub-window index, or unused
    std::uint64_t total = 0;
    std::uint64_t missed = 0;
    std::uint64_t failed = 0;
    LogHistogram resp;
  };
  struct PerFlow {
    std::vector<Bucket> ring;
    double last_event_s = -1.0;
  };

  [[nodiscard]] std::uint64_t epoch_of(double now_s) const {
    return now_s <= 0.0 ? 0 : static_cast<std::uint64_t>(now_s / span_s_);
  }

  double window_s_;
  std::size_t buckets_;
  double span_s_;  ///< seconds per sub-bucket
  std::vector<PerFlow> per_flow_;
};

}  // namespace df3::obs
