#pragma once
/// \file obs.hpp
/// \brief Observability aggregate: trace recorder + metric registry behind a
///        single install point and compile-to-nothing hook macros.
///
/// Instrumented code never talks to `TraceRecorder`/`MetricRegistry`
/// directly; it goes through two macros:
///
/// ```cpp
/// DF3_OBS_IF(o) { o->registry()...; }          // level >= kCounters
/// DF3_OBS_TRACE_IF(o) {                        // level == kFull
///   o->span(this, name(), obs::Phase::kRun, t0, t1, req.id);
/// }
/// ```
///
/// With the `DF3_OBS` CMake option OFF, `DF3_OBS_DISABLED` is defined and
/// both macros expand to an `if constexpr (false)` guard: the hook body is
/// type-checked but emits no code at any optimisation level. With the
/// option ON (the default) the cost of a hook while nothing is installed is
/// one relaxed pointer load and a predictable branch.
///
/// Installation is scoped: `Df3Platform::run` installs its `Observability`
/// for the duration of the event loop via `Install`, so hooks fire only for
/// the platform being run — concurrent platforms in tests/benches don't see
/// each other's recorders, and a platform at level kOff installs nothing.

#include <cstdint>
#include <string_view>

#include "df3/obs/metrics.hpp"
#include "df3/obs/trace.hpp"

namespace df3::obs {

struct ObsConfig {
  TraceLevel level = TraceLevel::kOff;
  /// Ring capacity in records (32 B each). The default keeps ~1M records.
  std::size_t trace_capacity = TraceRecorder::kDefaultCapacity;
};

/// Everything a run records: the span ring plus the metric registry.
class Observability {
 public:
  explicit Observability(ObsConfig cfg) : cfg_(cfg), trace_(cfg.trace_capacity) {}

  [[nodiscard]] TraceLevel level() const { return cfg_.level; }
  [[nodiscard]] bool tracing() const { return cfg_.level == TraceLevel::kFull; }

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] MetricRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricRegistry& registry() const { return registry_; }

  /// One-call hook helpers: register-or-lookup the track for `key` and
  /// record. Only meaningful at kFull; callers guard with
  /// DF3_OBS_TRACE_IF so the track hash lookup never runs below that.
  void span(const void* key, std::string_view track, Phase p, double t0_s, double t1_s,
            std::uint64_t id) {
    trace_.span(trace_.track(key, track), p, t0_s, t1_s, id);
  }
  void instant(const void* key, std::string_view track, Phase p, double t_s, std::uint64_t id) {
    trace_.instant(trace_.track(key, track), p, t_s, id);
  }
  void host_span(const void* key, std::string_view track, Phase p, double t0_s, double t1_s) {
    trace_.host_span(trace_.track(key, track), p, t0_s, t1_s);
  }

 private:
  ObsConfig cfg_;
  TraceRecorder trace_;
  MetricRegistry registry_;
};

#ifndef DF3_OBS_DISABLED

namespace detail {
/// The currently installed sink, or nullptr. Not thread_local: the physics
/// phase is the only parallel region and it contains no hooks; every hook
/// site runs on the event-loop thread.
extern Observability* g_current;
}  // namespace detail

[[nodiscard]] inline Observability* current() { return detail::g_current; }

/// RAII install scope. Installs `o` unless it is null or at level kOff;
/// restores the previous sink on destruction (scopes nest).
class Install {
 public:
  explicit Install(Observability* o) : prev_(detail::g_current) {
    if (o != nullptr && o->level() != TraceLevel::kOff) detail::g_current = o;
  }
  ~Install() { detail::g_current = prev_; }
  Install(const Install&) = delete;
  Install& operator=(const Install&) = delete;

 private:
  Observability* prev_;
};

/// Hook guard: body runs iff an Observability at level >= kCounters is
/// installed. `o` names the sink inside the body.
#define DF3_OBS_IF(o) if (::df3::obs::Observability* o = ::df3::obs::current(); o != nullptr)

/// Trace-hook guard: body runs iff the installed sink is at level kFull.
#define DF3_OBS_TRACE_IF(o) \
  if (::df3::obs::Observability* o = ::df3::obs::current(); o != nullptr && o->tracing())

#else  // DF3_OBS_DISABLED

[[nodiscard]] constexpr Observability* current() { return nullptr; }

class Install {
 public:
  explicit constexpr Install(Observability*) {}
  Install(const Install&) = delete;
  Install& operator=(const Install&) = delete;
};

// The body is still type-checked but dead: the constant-false condition is
// folded away in the front end, so no code survives at any -O level. The
// binding is deliberately *not* constexpr — a constexpr null would make the
// o->... calls in the (unreachable) body constant null dereferences, which
// GCC's front end rejects under -Werror=nonnull.
#define DF3_OBS_IF(o) \
  if ([[maybe_unused]] ::df3::obs::Observability* o = nullptr; false)
#define DF3_OBS_TRACE_IF(o) DF3_OBS_IF(o)

#endif  // DF3_OBS_DISABLED

}  // namespace df3::obs
