#pragma once
/// \file obs.hpp
/// \brief Observability aggregate: trace recorder + metric registry behind a
///        single install point and compile-to-nothing hook macros.
///
/// Instrumented code never talks to `TraceRecorder`/`MetricRegistry`
/// directly; it goes through two macros:
///
/// ```cpp
/// DF3_OBS_IF(o) { o->registry()...; }          // level >= kCounters
/// DF3_OBS_TRACE_IF(o) {                        // level == kFull
///   o->span(this, name(), obs::Phase::kRun, t0, t1, req.id);
/// }
/// ```
///
/// With the `DF3_OBS` CMake option OFF, `DF3_OBS_DISABLED` is defined and
/// both macros expand to an `if constexpr (false)` guard: the hook body is
/// type-checked but emits no code at any optimisation level. With the
/// option ON (the default) the cost of a hook while nothing is installed is
/// one relaxed pointer load and a predictable branch.
///
/// Installation is scoped: `Df3Platform::run` installs its `Observability`
/// for the duration of the event loop via `Install`, so hooks fire only for
/// the platform being run — concurrent platforms in tests/benches don't see
/// each other's recorders, and a platform at level kOff installs nothing.

#include <cstdint>
#include <string_view>

#include "df3/obs/journey.hpp"
#include "df3/obs/metrics.hpp"
#include "df3/obs/slo.hpp"
#include "df3/obs/trace.hpp"

namespace df3::obs {

struct ObsConfig {
  TraceLevel level = TraceLevel::kOff;
  /// Ring capacity in records (32 B each). 0 = auto: the `DF3_TRACE_CAPACITY`
  /// environment variable when set, else the ~1M-record default.
  std::size_t trace_capacity = 0;
  /// Emit journey span-link records at kFull (DESIGN.md section 14). Off
  /// restores the pre-journey trace byte-for-byte; the obs bench uses this
  /// to price the link overhead.
  bool journey_links = true;
  /// Rolling SLO window and its sub-bucket count (active at >= kCounters).
  double slo_window_s = 3600.0;
  std::size_t slo_buckets = 60;
};

/// Resolve `trace_capacity` (0 = `DF3_TRACE_CAPACITY` env or the default).
[[nodiscard]] std::size_t resolved_trace_capacity(std::size_t requested);

/// Everything a run records: the span ring, journey links, the metric
/// registry, and the rolling SLO monitor.
class Observability {
 public:
  explicit Observability(ObsConfig cfg)
      : cfg_(cfg),
        trace_(resolved_trace_capacity(cfg.trace_capacity)),
        slo_(cfg.slo_window_s, cfg.slo_buckets) {}

  [[nodiscard]] TraceLevel level() const { return cfg_.level; }
  [[nodiscard]] bool tracing() const { return cfg_.level == TraceLevel::kFull; }
  [[nodiscard]] bool journeys_enabled() const { return cfg_.journey_links && tracing(); }

  [[nodiscard]] TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const TraceRecorder& trace() const { return trace_; }
  [[nodiscard]] MetricRegistry& registry() { return registry_; }
  [[nodiscard]] const MetricRegistry& registry() const { return registry_; }
  [[nodiscard]] JourneyLog& journeys() { return journeys_; }
  [[nodiscard]] const JourneyLog& journeys() const { return journeys_; }
  [[nodiscard]] SloMonitor& slo() { return slo_; }
  [[nodiscard]] const SloMonitor& slo() const { return slo_; }

  /// One-call hook helpers: register-or-lookup the track for `key` and
  /// record. Only meaningful at kFull; callers guard with
  /// DF3_OBS_TRACE_IF so the track hash lookup never runs below that.
  void span(const void* key, std::string_view track, Phase p, double t0_s, double t1_s,
            std::uint64_t id) {
    trace_.span(trace_.track(key, track), p, t0_s, t1_s, id);
  }
  void instant(const void* key, std::string_view track, Phase p, double t_s, std::uint64_t id) {
    trace_.instant(trace_.track(key, track), p, t_s, id);
  }
  void host_span(const void* key, std::string_view track, Phase p, double t0_s, double t1_s) {
    trace_.host_span(trace_.track(key, track), p, t0_s, t1_s);
  }

  // --- Journey-aware helpers (DESIGN.md section 14). ---
  //
  // `journey_span`/`journey_instant` always emit the plain record (identical
  // to `span`/`instant`) and, when the journey id was opened at intake,
  // follow it with an adjacent kSpanLink record. The `_if_open` variants
  // emit nothing for unopened ids: they mark sites that exist purely to
  // close journey-chain gaps (datacenter segments, queue-wait at offload or
  // abandonment) and must not change traces of non-journey traffic.

  /// Open the journey context at intake. No-op unless links are enabled.
  void journey_open(std::uint64_t id) {
    if (journeys_enabled()) journeys_.open(id);
  }

  void journey_span(const void* key, std::string_view track, Phase p, double t0_s, double t1_s,
                    std::uint64_t id, int shard = -1, std::uint32_t attr = 0) {
    trace_.span(trace_.track(key, track), p, t0_s, t1_s, id);
    link_if_open(p, id, shard, attr);
  }
  void journey_instant(const void* key, std::string_view track, Phase p, double t_s,
                       std::uint64_t id, int shard = -1, std::uint32_t attr = 0) {
    trace_.instant(trace_.track(key, track), p, t_s, id);
    link_if_open(p, id, shard, attr);
  }
  bool journey_span_if_open(const void* key, std::string_view track, Phase p, double t0_s,
                            double t1_s, std::uint64_t id, int shard = -1,
                            std::uint32_t attr = 0) {
    if (!journeys_enabled() || !journeys_.is_open(id)) return false;
    journey_span(key, track, p, t0_s, t1_s, id, shard, attr);
    return true;
  }
  bool journey_instant_if_open(const void* key, std::string_view track, Phase p, double t_s,
                               std::uint64_t id, int shard = -1, std::uint32_t attr = 0) {
    if (!journeys_enabled() || !journeys_.is_open(id)) return false;
    journey_instant(key, track, p, t_s, id, shard, attr);
    return true;
  }

  /// Terminal instant: plain record + link, then the journey context is
  /// erased so open-journey memory stays bounded by in-flight requests.
  void journey_terminal(const void* key, std::string_view track, Phase p, double t_s,
                        std::uint64_t id, std::uint32_t attr = 0) {
    trace_.instant(trace_.track(key, track), p, t_s, id);
    if (!journeys_enabled()) return;
    JourneyLog::Link l;
    if (journeys_.annotate(id, p, -1, l)) {
      trace_.link(id, l.seq, l.parent, attr);
      journeys_.close(id);
    }
  }

 private:
  void link_if_open(Phase p, std::uint64_t id, int shard, std::uint32_t attr) {
    if (!journeys_enabled()) return;
    JourneyLog::Link l;
    if (journeys_.annotate(id, p, shard, l)) trace_.link(id, l.seq, l.parent, attr);
  }

  ObsConfig cfg_;
  TraceRecorder trace_;
  MetricRegistry registry_;
  JourneyLog journeys_;
  SloMonitor slo_;
};

#ifndef DF3_OBS_DISABLED

namespace detail {
/// The currently installed sink, or nullptr. Not thread_local: the physics
/// phase is the only parallel region and it contains no hooks; every hook
/// site runs on the event-loop thread.
extern Observability* g_current;
}  // namespace detail

[[nodiscard]] inline Observability* current() { return detail::g_current; }

/// RAII install scope. Installs `o` unless it is null or at level kOff;
/// restores the previous sink on destruction (scopes nest).
class Install {
 public:
  explicit Install(Observability* o) : prev_(detail::g_current) {
    if (o != nullptr && o->level() != TraceLevel::kOff) detail::g_current = o;
  }
  ~Install() { detail::g_current = prev_; }
  Install(const Install&) = delete;
  Install& operator=(const Install&) = delete;

 private:
  Observability* prev_;
};

/// Hook guard: body runs iff an Observability at level >= kCounters is
/// installed. `o` names the sink inside the body.
#define DF3_OBS_IF(o) if (::df3::obs::Observability* o = ::df3::obs::current(); o != nullptr)

/// Trace-hook guard: body runs iff the installed sink is at level kFull.
#define DF3_OBS_TRACE_IF(o) \
  if (::df3::obs::Observability* o = ::df3::obs::current(); o != nullptr && o->tracing())

#else  // DF3_OBS_DISABLED

[[nodiscard]] constexpr Observability* current() { return nullptr; }

class Install {
 public:
  explicit constexpr Install(Observability*) {}
  Install(const Install&) = delete;
  Install& operator=(const Install&) = delete;
};

// The body is still type-checked but dead: the constant-false condition is
// folded away in the front end, so no code survives at any -O level. The
// binding is deliberately *not* constexpr — a constexpr null would make the
// o->... calls in the (unreachable) body constant null dereferences, which
// GCC's front end rejects under -Werror=nonnull.
#define DF3_OBS_IF(o) \
  if ([[maybe_unused]] ::df3::obs::Observability* o = nullptr; false)
#define DF3_OBS_TRACE_IF(o) DF3_OBS_IF(o)

#endif  // DF3_OBS_DISABLED

}  // namespace df3::obs
