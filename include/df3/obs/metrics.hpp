#pragma once
/// \file metrics.hpp
/// \brief Central registry of named counters / gauges / log-bucketed
///        histograms with periodic snapshots into time series.
///
/// The registry is the low-frequency half of the obs layer: instruments are
/// registered once (by the platform, regulator, ledger, and ladder feeds at
/// setup or on first use) and handle-addressed afterwards, so the per-tick
/// feed path never hashes a metric name. `snapshot(t)` appends one row per
/// instrument to an in-memory time series that the exporters (obs/export.hpp)
/// turn into CSV or JSON.
///
/// Everything here is observation-only and deterministic: instruments store
/// plain doubles/uint64s, ids are assigned in registration order, and
/// snapshots happen at simulated-time tick boundaries.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace df3::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] constexpr const char* metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written point sample.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-bucketed histogram: bucket i holds samples in
/// [base * growth^i, base * growth^(i+1)), with one underflow bucket below
/// `base`. Covers ~9 decades at the default 2x growth in 32 buckets, which
/// is plenty for response times spanning milliseconds to hours.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  explicit LogHistogram(double base = 1e-3, double growth = 2.0)
      : base_(base), inv_log_growth_(1.0 / std::log(growth)) {
    counts_.assign(kBuckets + 1, 0);  // [0] = underflow
  }

  void observe(double v) {
    ++n_;
    sum_ += v;
    if (n_ == 1 || v < min_) min_ = v;
    if (n_ == 1 || v > max_) max_ = v;
    ++counts_[bucket_index(v)];
  }

  /// Index into counts(): 0 is the underflow bucket, i>0 covers
  /// [lower_bound(i), lower_bound(i+1)).
  [[nodiscard]] std::size_t bucket_index(double v) const {
    if (!(v >= base_)) return 0;
    const double idx = std::log(v / base_) * inv_log_growth_;
    const auto i = static_cast<std::size_t>(idx);
    return (i >= kBuckets - 1) ? kBuckets : i + 1;
  }

  /// Inclusive lower bound of bucket i (i >= 1); bucket 0 is (-inf, base).
  [[nodiscard]] double lower_bound(std::size_t i) const {
    return (i == 0) ? 0.0 : base_ * std::exp(static_cast<double>(i - 1) / inv_log_growth_);
  }

  /// Approximate quantile from bucket boundaries (upper-bound biased): the
  /// value returned is the upper edge of the bucket containing the q-th
  /// sample, so the true quantile is <= the estimate within one bucket.
  [[nodiscard]] double quantile(double q) const {
    if (n_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(n_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen >= target) {
        const double hi = (i >= kBuckets) ? max_ : lower_bound(i + 1);
        return (hi > max_) ? max_ : hi;
      }
    }
    return max_;
  }

  /// Fold another histogram with the same bucket layout into this one.
  /// Used by the rolling-window SLO monitor to merge sub-window buckets, so
  /// windowed percentiles share the exact `quantile()` implementation.
  void merge(const LogHistogram& other) {
    assert(counts_.size() == other.counts_.size());
    if (other.n_ == 0) return;
    if (n_ == 0 || other.min_ < min_) min_ = other.min_;
    if (n_ == 0 || other.max_ > max_) max_ = other.max_;
    n_ += other.n_;
    sum_ += other.sum_;
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  }

  void reset() {
    n_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    counts_.assign(counts_.size(), 0);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  double base_;
  double inv_log_growth_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint64_t> counts_;
};

/// Handle to a registered instrument. Opaque index into the registry.
struct MetricId {
  std::uint32_t index = UINT32_MAX;
  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
};

/// One snapshot row: instrument values at a simulated timestamp. Counter
/// snapshots store the cumulative value; histogram snapshots store count,
/// mean and two tail quantiles so rate/latency trajectories can be plotted
/// straight from the CSV.
struct MetricSample {
  double t_s = 0.0;
  double value = 0.0;   ///< counter cumulative / gauge level / histogram mean
  double p50 = 0.0;     ///< histograms only
  double p99 = 0.0;     ///< histograms only
  std::uint64_t count = 0;  ///< histograms only
};

class MetricRegistry {
 public:
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId histogram(std::string_view name, double base = 1e-3, double growth = 2.0);

  Counter& at_counter(MetricId id) { return counters_[slot(id, MetricKind::kCounter)]; }
  Gauge& at_gauge(MetricId id) { return gauges_[slot(id, MetricKind::kGauge)]; }
  LogHistogram& at_histogram(MetricId id) { return histograms_[slot(id, MetricKind::kHistogram)]; }

  /// Append one row per instrument at simulated time `t_s`.
  void snapshot(double t_s);

  struct Instrument {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;  ///< index into the per-kind storage vector
    std::vector<MetricSample> series;
  };

  [[nodiscard]] const std::vector<Instrument>& instruments() const { return instruments_; }
  [[nodiscard]] std::size_t size() const { return instruments_.size(); }
  [[nodiscard]] std::size_t snapshots() const { return snapshots_; }

 private:
  MetricId intern(std::string_view name, MetricKind kind);
  [[nodiscard]] std::uint32_t slot(MetricId id, [[maybe_unused]] MetricKind kind) const {
    assert(id.index < instruments_.size());
    assert(instruments_[id.index].kind == kind);
    return instruments_[id.index].slot;
  }

  std::vector<Instrument> instruments_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<LogHistogram> histograms_;
  std::size_t snapshots_ = 0;
};

}  // namespace df3::obs
