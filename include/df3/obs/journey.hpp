#pragma once
/// \file journey.hpp
/// \brief Causal request journeys: runtime link bookkeeping plus the
///        offline tree reconstruction shared by `df3trace` and the tests.
///
/// A *journey* is the full causal history of one request, identified by the
/// request id it already carries end to end (the id survives horizontal
/// hand-offs and vertical offloads by construction, so "assign a journey id
/// at intake" reduces to adopting it). The trace ring stays the 32B-record
/// idiom: each journey-relevant span/instant is followed by one
/// `Phase::kSpanLink` record giving it a per-journey sequence number and the
/// sequence number of its causal parent (DESIGN.md section 14).
///
/// Two halves live here:
///
///  * `JourneyLog` — the hot-path side. One map entry per *open* journey
///    (bounded by in-flight requests; erased at the terminal record) holding
///    the next sequence number and the current chain cursors. All request
///    hooks run on the event-loop thread, so no synchronisation is needed
///    and link order is deterministic at any physics/control thread count.
///  * `collect_journey_spans` / `build_journey_forest` — the analysis side.
///    Pairs links with their adjacent records, groups them per journey,
///    checks completeness (sequence numbers 0..n-1 all present, every
///    parent resolves), extracts the critical path (the terminal record's
///    ancestor chain), verifies it tiles [begin, end] gap-free, and buckets
///    its segments into queue-wait / run / net / offload-detour.
///
/// The parent/advance policy makes the terminal's ancestor chain *be* the
/// critical path: run and queue-wait segments advance a per-shard cursor and
/// the journey cursor, so the completion hop always parents at the
/// last-finishing shard's final run segment, and each chain segment starts
/// exactly where its parent ended.

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "df3/obs/trace.hpp"

namespace df3::obs {

/// Attribute carried by a journey-linked net-hop record: why the message
/// travelled. Values land in `TraceEvent::link_attr()`.
enum class HopKind : std::uint8_t {
  kNone = 0,       ///< not a journey hop (e.g. staging transfer, covered by kStaging)
  kTransport = 1,  ///< origin -> entry node delivery
  kHandoff = 2,    ///< gateway -> peer gateway horizontal hand-off
  kReturn = 3,     ///< serving node -> origin result return
  kDcUplink = 4,   ///< building -> datacenter WAN uplink
  kDcDownlink = 5, ///< datacenter -> building WAN downlink
};

[[nodiscard]] constexpr const char* hop_kind_name(HopKind k) {
  switch (k) {
    case HopKind::kNone: return "none";
    case HopKind::kTransport: return "transport";
    case HopKind::kHandoff: return "handoff";
    case HopKind::kReturn: return "return";
    case HopKind::kDcUplink: return "dc-uplink";
    case HopKind::kDcDownlink: return "dc-downlink";
  }
  return "?";
}

/// Per-journey link bookkeeping. Opened explicitly at intake
/// (`Df3Platform` submission paths); helpers that annotate records no-op for
/// ids that were never opened, which keeps unrelated traffic sharing ids
/// (e.g. composition stage requests, which all carry id 0) out of the
/// journey plane.
class JourneyLog {
 public:
  struct Link {
    std::uint32_t seq = 0;
    std::uint32_t parent = kNoParent;
  };

  /// Open the journey context for `id` (idempotent).
  void open(std::uint64_t id) { live_.try_emplace(id); }

  [[nodiscard]] bool is_open(std::uint64_t id) const { return live_.count(id) != 0; }

  /// Assign the next sequence number for a record of `phase` in journey
  /// `id`, choosing the causal parent and advancing the chain cursors.
  /// `shard >= 0` threads per-shard queue/run chains. Returns false (and
  /// leaves `out` untouched) when the journey is not open.
  bool annotate(std::uint64_t id, Phase phase, int shard, Link& out);

  /// Erase the context (call after annotating the terminal record).
  void close(std::uint64_t id) { live_.erase(id); }

  [[nodiscard]] std::size_t open_count() const { return live_.size(); }
  void clear() { live_.clear(); }

 private:
  struct Ctx {
    std::uint32_t next_seq = 0;
    std::uint32_t cursor = kNoParent;          ///< last structural segment
    std::vector<std::uint32_t> shard_cursor;   ///< per-shard chain heads
  };
  std::unordered_map<std::uint64_t, Ctx> live_;
};

// ---------------------------------------------------------------------------
// Offline reconstruction.

/// One journey-linked record, link already folded in.
struct JourneySpan {
  double t0 = 0.0;
  double t1 = 0.0;  ///< == t0 for instants
  std::uint64_t journey = 0;
  std::uint32_t seq = 0;
  std::uint32_t parent = kNoParent;
  std::uint32_t attr = 0;   ///< flow+1 (arrival/terminal), shard, or HopKind
  std::uint32_t track = 0;  ///< recorder track id (name via forest.tracks)
  Phase phase = Phase::kArrival;
  bool instant = false;
};

/// Critical-path time split for one journey (seconds).
struct JourneyBreakdown {
  double queue_s = 0.0;    ///< kQueueWait segments
  double run_s = 0.0;      ///< kRun segments (wherever they executed)
  double net_s = 0.0;      ///< transport, staging at the first cluster, return
  double offload_s = 0.0;  ///< hand-off/WAN hops + staging beyond the first cluster
  double other_s = 0.0;    ///< anything else on the chain

  [[nodiscard]] double total() const { return queue_s + run_s + net_s + offload_s + other_s; }
};

/// One reconstructed journey tree.
struct JourneyTree {
  std::uint64_t id = 0;
  std::vector<JourneySpan> spans;  ///< sorted by seq; spans[i].seq == i iff complete
  bool complete = false;           ///< seqs 0..n-1 present, every parent resolves
  bool terminated = false;         ///< has a terminal record
  Phase terminal = Phase::kArrival;
  std::uint32_t flow_attr = 0;     ///< flow+1 from arrival/terminal links (0 = unknown)
  double t_begin = 0.0;            ///< root record start
  double t_end = 0.0;              ///< terminal record time (if terminated)
  std::vector<std::uint32_t> critical;  ///< seqs, root -> terminal ancestor chain
  bool contiguous = false;         ///< critical path tiles [t_begin, t_end] gap-free
  JourneyBreakdown breakdown;      ///< over the critical path
  std::vector<Phase> rungs_fired;  ///< preempt/offload/delay decisions, causal order
  std::vector<std::uint32_t> visit_tracks;  ///< kArrival tracks, causal order
};

struct JourneyForest {
  std::vector<JourneyTree> trees;        ///< ordered by first appearance in the ring
  std::vector<std::string> tracks;       ///< track-id -> name
  std::uint64_t orphan_links = 0;        ///< links whose span left the ring window
  std::uint64_t dropped_records = 0;     ///< ring overwrites during the run
  std::uint64_t span_count = 0;          ///< linked records retained
};

/// Pair kSpanLink records with their adjacent spans, oldest-first.
/// `orphans` (optional) counts links whose partner was overwritten.
[[nodiscard]] std::vector<JourneySpan> collect_journey_spans(const TraceRecorder& rec,
                                                             std::uint64_t* orphans);

/// Group spans per journey, check completeness, extract critical paths and
/// breakdowns. `spans` need not be sorted; within a journey, seq decides.
/// `tolerance` loosens the contiguity gap check (seconds): in-memory spans
/// tile exactly (keep 0), but timestamps that round-tripped through the
/// microsecond-text Chrome export can disagree by a nanosecond or two.
[[nodiscard]] JourneyForest build_journey_forest(std::vector<JourneySpan> spans,
                                                 std::vector<std::string> tracks,
                                                 std::uint64_t orphan_links,
                                                 std::uint64_t dropped_records,
                                                 double tolerance = 0.0);

/// Convenience: collect + build straight from a recorder.
[[nodiscard]] JourneyForest build_journey_forest(const TraceRecorder& rec);

/// FNV-1a digest of the forest's structure and timings, using track *names*
/// (track ids depend on how many lane/shard tracks registered first, which
/// varies with thread counts; names do not). Equal digests mean identical
/// trees — the cross-thread-count determinism check.
[[nodiscard]] std::uint64_t forest_digest(const JourneyForest& f);

[[nodiscard]] constexpr bool is_terminal_phase(Phase p) {
  return p == Phase::kCompleted || p == Phase::kDeadlineMissed || p == Phase::kRejected ||
         p == Phase::kDropped;
}

[[nodiscard]] constexpr bool is_rung_phase(Phase p) {
  return p == Phase::kPreempt || p == Phase::kOffloadHorizontal ||
         p == Phase::kOffloadVertical || p == Phase::kDelay;
}

}  // namespace df3::obs
