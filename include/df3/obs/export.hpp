#pragma once
/// \file export.hpp
/// \brief Telemetry exporters: Chrome trace-event JSON (Perfetto /
///        chrome://tracing loadable) and metric time-series CSV / JSON.
///
/// Chrome trace mapping (see DESIGN.md section 10):
///  * simulated seconds -> microseconds (`ts`/`dur` fields), so one trace
///    second of wall display equals one simulated millisecond;
///  * sim-clock records live under pid 1 ("simulated time"), host-clock
///    tick-phase scopes under pid 2 ("host compute");
///  * recorder tracks become threads (`tid` + thread_name metadata);
///  * spans are "X" (complete) events, instants are "i" with thread scope,
///    and every event carries its record id in `args.id`.

#include <iosfwd>
#include <string>

#include "df3/obs/metrics.hpp"
#include "df3/obs/trace.hpp"

namespace df3::obs {

/// Write the retained trace as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& os, const TraceRecorder& rec);

/// Write the metric time series as long-format CSV:
/// `metric,kind,t_s,value,count,p50,p99` (one row per instrument per
/// snapshot; count/p50/p99 are empty for counters and gauges).
void write_metrics_csv(std::ostream& os, const MetricRegistry& reg);

/// Write the metric time series as JSON:
/// `{"metrics":[{"name":...,"kind":...,"series":[{"t_s":...,...}]}]}`.
void write_metrics_json(std::ostream& os, const MetricRegistry& reg);

/// File-opening wrappers; return false (and write nothing) if the file
/// cannot be opened.
bool write_chrome_trace_file(const std::string& path, const TraceRecorder& rec);
bool write_metrics_csv_file(const std::string& path, const MetricRegistry& reg);
bool write_metrics_json_file(const std::string& path, const MetricRegistry& reg);

}  // namespace df3::obs
