#pragma once
/// \file trace.hpp
/// \brief Deterministic request-lifecycle and engine-phase trace recorder.
///
/// The simulator's answer to "where did the time of request 17 go": a
/// compact ring buffer of span/instant records keyed by request id and
/// engine phase, written by observation-only hooks along the full request
/// lifecycle (arrival -> staging -> queue -> dispatch -> run -> preempt ->
/// vertical/horizontal offload -> network hop -> terminal outcome) and by
/// the platform tick's host-side phase scopes. Exportable to Chrome
/// trace-event JSON (obs/export.hpp) that loads directly in Perfetto or
/// chrome://tracing.
///
/// Design constraints (DESIGN.md section 10):
///
///  * **observation-only** — recording a trace never mutates simulation
///    state, allocates through the engine, or perturbs event order; golden
///    determinism digests are bit-identical with tracing on or off;
///  * **near-zero cost when disabled** — every hook compiles away entirely
///    under `-DDF3_OBS_DISABLED` and otherwise costs one pointer load and
///    branch while no `Observability` is installed (`obs::current()`
///    returns nullptr outside `Df3Platform::run` or at level kOff);
///  * **two clocks** — request/fault events carry *simulated* time (the
///    trace's primary axis, exported as microseconds); tick-phase scopes
///    carry *host wall time* (their duration is real compute cost, which
///    has no extent on the simulated axis). The exporter maps them to two
///    separate Perfetto process groups so the axes never mix.
///
/// The phase vocabulary is a closed enum rather than interned strings: the
/// instrumentation sites are all in-tree, and an enum keeps the hot path
/// free of hashing while making the export tables exhaustive.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace df3::obs {

/// How much observability to record. Levels are strictly additive.
enum class TraceLevel : std::uint8_t {
  kOff,       ///< no hooks run; obs::current() stays null
  kCounters,  ///< metric registry fed and snapshotted; no span records
  kFull,      ///< + span/instant records into the trace ring
};

[[nodiscard]] constexpr const char* trace_level_name(TraceLevel l) {
  switch (l) {
    case TraceLevel::kOff: return "off";
    case TraceLevel::kCounters: return "counters";
    case TraceLevel::kFull: return "full";
  }
  return "?";
}

/// Engine phase of a trace record: which lifecycle or platform step the
/// span/instant describes. One request id threads through many phases.
enum class Phase : std::uint8_t {
  // Request lifecycle (simulated clock, keyed by request id).
  kArrival,            ///< request entered the system (instant)
  kTransport,          ///< origin -> gateway/worker delivery hop
  kStaging,            ///< gateway -> staging-worker input transfer
  kQueueWait,          ///< enqueue -> dispatch onto a core
  kRun,                ///< one execution segment on a worker core
  kPreempt,            ///< peak ladder rung 1: evicted a cloud shard
  kOffloadHorizontal,  ///< peak ladder rung: handed to a peer cluster
  kOffloadVertical,    ///< peak ladder rung / backlog valve: to datacenter
  kDelay,              ///< peak ladder rung: left queued
  kNetHop,             ///< one network message, send -> delivery
  kCompleted,          ///< terminal outcome (instant)
  kDeadlineMissed,     ///< terminal outcome (instant)
  kRejected,           ///< terminal outcome (instant)
  kDropped,            ///< terminal outcome (instant)
  // Platform tick scopes (host clock).
  kPhysicsPhase,       ///< parallel fleet-physics phase of one tick
  kShardPhysics,       ///< one shard's slice of the physics phase (own track)
  kControlPhase,       ///< reduction + control phase of one tick
  kLaneControl,        ///< one lane's slice of the parallel control phase (own track)
  kAuditSweep,         ///< structural invariant sweep (kFull audit only)
  // Fault injection (simulated clock).
  kLinkOutage,         ///< link down -> restored (span), id = link index
  kLinkFlap,           ///< up->down toggle (instant), id = link index
  kWorkerOutage,       ///< worker down -> restored (span), id = worker index
  kWorkerChurn,        ///< healthy->outage toggle (instant), id = worker idx
  kGridCurtailment,    ///< demand-response window (span), id = region index
  kGridToggle,         ///< curtailment start/end toggle (instant), id = region
  // Journey causality (simulated clock, paired with the preceding record).
  kSpanLink,           ///< parent/child link annotating the previous record
};

[[nodiscard]] constexpr const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kArrival: return "arrival";
    case Phase::kTransport: return "transport";
    case Phase::kStaging: return "staging";
    case Phase::kQueueWait: return "queue-wait";
    case Phase::kRun: return "run";
    case Phase::kPreempt: return "preempt";
    case Phase::kOffloadHorizontal: return "offload-horizontal";
    case Phase::kOffloadVertical: return "offload-vertical";
    case Phase::kDelay: return "delay";
    case Phase::kNetHop: return "net-hop";
    case Phase::kCompleted: return "completed";
    case Phase::kDeadlineMissed: return "deadline-missed";
    case Phase::kRejected: return "rejected";
    case Phase::kDropped: return "dropped";
    case Phase::kPhysicsPhase: return "physics-phase";
    case Phase::kShardPhysics: return "shard-physics";
    case Phase::kControlPhase: return "control-phase";
    case Phase::kLaneControl: return "lane-control";
    case Phase::kAuditSweep: return "audit-sweep";
    case Phase::kLinkOutage: return "link-outage";
    case Phase::kLinkFlap: return "link-flap";
    case Phase::kWorkerOutage: return "worker-outage";
    case Phase::kWorkerChurn: return "worker-churn";
    case Phase::kGridCurtailment: return "grid-curtailment";
    case Phase::kGridToggle: return "grid-toggle";
    case Phase::kSpanLink: return "span-link";
  }
  return "?";
}

/// Export category for a phase ("request", "tick", "fault", "net").
[[nodiscard]] constexpr const char* phase_category(Phase p) {
  switch (p) {
    case Phase::kNetHop: return "net";
    case Phase::kPhysicsPhase:
    case Phase::kShardPhysics:
    case Phase::kControlPhase:
    case Phase::kLaneControl:
    case Phase::kAuditSweep: return "tick";
    case Phase::kLinkOutage:
    case Phase::kLinkFlap:
    case Phase::kWorkerOutage:
    case Phase::kWorkerChurn:
    case Phase::kGridCurtailment:
    case Phase::kGridToggle: return "fault";
    case Phase::kSpanLink: return "link";
    default: return "request";
  }
}

/// Which clock a record's timestamps are on.
enum class Clock : std::uint8_t {
  kSim,   ///< simulated seconds (Simulation::now)
  kHost,  ///< host wall seconds since recorder construction
};

/// Sentinel parent for a journey root in a span-link record.
inline constexpr std::uint32_t kNoParent = 0xffffffffu;

/// One trace record: 32 bytes. `dur_s < 0` marks an instant.
///
/// A `kSpanLink` record reinterprets the same 32 bytes as a causality edge
/// annotating the *immediately preceding* record in emission order (both are
/// pushed back-to-back on the event-loop thread, so the ring keeps them
/// adjacent — a ring wrap can only strand a link at the very front of the
/// retained window, which analyzers count as an orphan):
///   t_s   = span sequence number within the journey (exact as a double),
///   dur_s = parent sequence number, or -1 for the journey root,
///   id    = journey id (== request id),
///   track = phase-specific attribute (flow, shard index, hop kind).
struct TraceEvent {
  double t_s = 0.0;         ///< begin timestamp, seconds on `clock`
  double dur_s = -1.0;      ///< span duration (>= 0) or instant (< 0)
  std::uint64_t id = 0;     ///< request id, link index, worker index, or 0
  std::uint32_t track = 0;  ///< row in the exported timeline
  Phase phase = Phase::kArrival;
  Clock clock = Clock::kSim;

  [[nodiscard]] bool is_span() const { return dur_s >= 0.0; }
  [[nodiscard]] bool is_link() const { return phase == Phase::kSpanLink; }

  /// Field accessors for kSpanLink records.
  [[nodiscard]] std::uint32_t link_seq() const { return static_cast<std::uint32_t>(t_s); }
  [[nodiscard]] std::uint32_t link_parent() const {
    return dur_s < 0.0 ? kNoParent : static_cast<std::uint32_t>(dur_s);
  }
  [[nodiscard]] std::uint32_t link_attr() const { return track; }
};

/// Fixed-capacity ring of trace records. When full, the oldest records are
/// overwritten and `dropped()` counts the loss — a long soak keeps the tail
/// of its history instead of exhausting memory. Recording never allocates
/// after the first lap (the ring vector grows to capacity once).
class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Register (or look up) the timeline row for an entity. `key` is any
  /// stable address identifying the entity; the name is captured on first
  /// registration. Track ids are assigned in first-seen order, so a
  /// deterministic simulation yields a deterministic track table.
  std::uint32_t track(const void* key, std::string_view name);

  /// Record a span [t0, t1] (simulated clock). t1 < t0 is clamped to t0.
  void span(std::uint32_t track_id, Phase phase, double t0_s, double t1_s, std::uint64_t id);

  /// Record an instant at `t` (simulated clock).
  void instant(std::uint32_t track_id, Phase phase, double t_s, std::uint64_t id);

  /// Record a host-clock span (tick phase scopes): `t0_s`/`t1_s` are host
  /// wall seconds since recorder construction.
  void host_span(std::uint32_t track_id, Phase phase, double t0_s, double t1_s);

  /// Record a journey span-link annotating the record pushed immediately
  /// before (see TraceEvent). `parent == kNoParent` marks the journey root.
  void link(std::uint64_t journey, std::uint32_t seq, std::uint32_t parent, std::uint32_t attr);

  /// Host wall seconds since construction (monotonic).
  [[nodiscard]] double host_now_s() const;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t dropped() const { return recorded_ - count_; }
  [[nodiscard]] const std::vector<std::string>& track_names() const { return track_names_; }

  /// Visit the retained records oldest-first.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::size_t start = (count_ < capacity_) ? 0 : head_;
    for (std::size_t i = 0; i < count_; ++i) {
      fn(ring_[(start + i) % capacity_]);
    }
  }

  void clear();

 private:
  void push(const TraceEvent& e);

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   ///< next write position once the ring is full
  std::size_t count_ = 0;  ///< retained records (<= capacity_)
  std::uint64_t recorded_ = 0;
  std::vector<std::string> track_names_;
  std::unordered_map<const void*, std::uint32_t> track_by_key_;
  std::uint64_t host_epoch_ns_ = 0;  ///< steady_clock at construction
};

}  // namespace df3::obs
