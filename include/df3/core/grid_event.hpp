#pragma once
/// \file grid_event.hpp
/// \brief Deterministic demand-response event injection (DESIGN.md §15).
///
/// Grid operators ask flexible loads to shed during scarcity windows; a
/// district of data furnaces is exactly such a load (paper III-B). The
/// `GridEventSource` drives one grid region through alternating normal /
/// curtailment dwell periods with exponentially distributed durations from
/// a named `util::RngStream`, mirroring the `WorkerChurn` injector:
///
///  * entering a window marks the region curtailed on the `grid::GridPlane`
///    (so `grid-shed` ladder rungs start shedding new arrivals) and
///    power-gates a configured fraction of each managed cluster's workers
///    (the fleet's direct contribution to the shed);
///  * leaving the window (or `stop()`) restores power and clears the flag.
///
/// Every mutation is followed by `Cluster::sync_workers()`, exactly what
/// the physics tick does after a hardware change. Same seed, same window
/// schedule — soak tests asserting request conservation through
/// shed-and-recover are bit-for-bit reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "df3/core/cluster.hpp"
#include "df3/grid/signal.hpp"
#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

namespace df3::core {

struct GridEventConfig {
  /// Region (index into the plane) this source curtails.
  std::size_t region = 0;
  /// Fraction of each managed cluster's workers power-gated during a
  /// window, rounded up; 0 marks the region curtailed without touching
  /// hardware (signal-only demand response).
  double shed_fraction = 0.5;
  /// Mean dwell outside a curtailment window, seconds.
  double mean_up_s = 14400.0;
  /// Mean curtailment window duration, seconds.
  double mean_down_s = 3600.0;
  /// The first window is scheduled from this instant.
  sim::Time start = 0.0;
};

/// Injects demand-response windows into one grid region and the clusters
/// that draw from it. `start()` arms the schedule; `stop()` cancels the
/// pending toggle and restores the healthy state.
class GridEventSource : public sim::Entity {
 public:
  /// `clusters` are the clusters drawing from `config.region`; they must
  /// outlive the source. The plane must too.
  GridEventSource(sim::Simulation& sim, std::string name, grid::GridPlane& plane,
                  std::vector<Cluster*> clusters, GridEventConfig config, util::RngStream rng);

  void start();
  void stop();

  /// Toggle the curtailment state right now, without consulting the dwell
  /// RNG or arming a follow-up — the model-checker choice point, same
  /// contract as WorkerChurn::force_toggle.
  void force_toggle();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] bool running() const { return running_; }
  /// Number of curtailment windows entered so far.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  void arm();
  void apply(bool curtail);
  [[nodiscard]] std::size_t shed_count(const Cluster& c) const;

  grid::GridPlane& plane_;
  std::vector<Cluster*> clusters_;
  GridEventConfig config_;
  util::RngStream rng_;
  sim::EventHandle next_;
  bool active_ = false;
  bool running_ = false;
  sim::Time active_since_ = 0.0;
  std::uint64_t windows_ = 0;
};

}  // namespace df3::core
