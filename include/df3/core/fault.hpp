#pragma once
/// \file fault.hpp
/// \brief Deterministic worker fault injection: outage/thermal-gating churn.
///
/// DF servers live in apartments and offices, not machine rooms: residents
/// unplug them, breakers trip, and summer heat pushes the free-cooling
/// envelope past its shutdown threshold (paper III-A). `WorkerChurn` drives
/// a set of a cluster's workers through alternating up/down dwell periods
/// with exponentially distributed durations from a named `util::RngStream`:
///
///  * `kPowerGate`  — the chassis is gated off (`DfServer::set_powered`),
///    dropping running shards to zero speed until power returns;
///  * `kThermalGate` — the inlet temperature is forced past the thermal
///    shutdown threshold (`DfServer::set_inlet_temperature`), exercising
///    the throttle/shutdown path the heat regulator normally drives.
///
/// Every toggle is followed by `Cluster::sync_workers()`, exactly what the
/// city physics tick does after mutating hardware, so paused shards settle
/// their progress and the queue is re-pumped onto whatever capacity
/// remains. Same seed, same outage schedule — soak tests asserting request
/// conservation under churn are bit-for-bit reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "df3/core/cluster.hpp"
#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

namespace df3::core {

/// What an injected outage does to the chassis.
enum class OutageKind : std::uint8_t {
  kPowerGate,    ///< set_powered(false) — resident unplugged the heater
  kThermalGate,  ///< hot inlet past the shutdown threshold — summer spike
};

struct WorkerChurnConfig {
  /// Worker indices within the cluster to churn, each independently.
  std::vector<std::size_t> workers;
  OutageKind kind = OutageKind::kPowerGate;
  /// Mean dwell in the healthy state before the next outage, seconds.
  double mean_up_s = 600.0;
  /// Mean outage duration, seconds.
  double mean_down_s = 60.0;
  /// Inlet forced during a kThermalGate outage (past shutdown_temp).
  double hot_inlet_c = 40.0;
  /// Inlet restored at recovery (comfortably inside the envelope).
  double cool_inlet_c = 20.0;
  /// First toggles are scheduled from this instant.
  sim::Time start = 0.0;
};

/// Injects worker outages into one cluster with seeded exponential dwell
/// times. `start()` arms the schedule; `stop()` cancels pending toggles and
/// restores every managed worker to the healthy state (powered, cool), so
/// a soak scenario can end churn and drain to quiescence.
class WorkerChurn : public sim::Entity {
 public:
  WorkerChurn(sim::Simulation& sim, std::string name, Cluster& cluster, WorkerChurnConfig config,
              util::RngStream rng);

  void start();
  void stop();

  /// Toggle slot `slot` (index into config.workers) right now — an explicit
  /// choice point for the model checker (df3::mc, DESIGN.md §13). Performs
  /// exactly what an RNG-scheduled toggle would (apply + sync_workers +
  /// accounting) but never consults the dwell RNG and never arms a
  /// follow-up event, so the same slot can be gated/restored at enumerated
  /// instants. Works whether or not the RNG schedule is running.
  void force_toggle(std::size_t slot);

  /// Number of managed workers (valid slots are [0, slot_count())).
  [[nodiscard]] std::size_t slot_count() const { return down_.size(); }
  /// Current injected state of slot `slot`.
  [[nodiscard]] bool is_down(std::size_t slot) const { return down_.at(slot); }

  /// Number of healthy->outage transitions injected so far.
  [[nodiscard]] std::uint64_t outages() const { return outages_; }
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(std::size_t slot);
  void toggle(std::size_t slot);
  void apply(std::size_t widx, bool down);

  Cluster& cluster_;
  WorkerChurnConfig config_;
  util::RngStream rng_;
  std::vector<sim::EventHandle> next_;  ///< pending toggle per managed worker
  std::vector<bool> down_;              ///< current injected state per worker
  std::vector<sim::Time> down_since_;   ///< outage start per worker (trace spans)
  std::uint64_t outages_ = 0;
  bool running_ = false;
};

}  // namespace df3::core
