#pragma once
/// \file worker.hpp
/// \brief Worker runtime on one DF server: executes task shards, tracks
///        progress across DVFS/throttle speed changes, supports preemption.
///
/// The worker is the "worker system" of the paper's component architecture
/// (Fig. 5). It owns no scheduling policy — the cluster gateway decides what
/// runs; the worker faithfully executes at whatever speed the hardware
/// currently sustains (P-state chosen by the heat regulator, derated by the
/// free-cooling throttle, zero when the chassis is gated off). Progress
/// accounting is exact: on every speed change the remaining gigacycles of
/// each running shard are updated and completion events re-armed.

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "df3/core/task.hpp"
#include "df3/hw/server.hpp"
#include "df3/net/network.hpp"
#include "df3/sim/engine.hpp"

namespace df3::core {

/// Executes tasks on one hw::DfServer.
class Worker : public sim::Entity {
 public:
  /// `on_task_done(task)` fires when a shard completes. The worker frees
  /// the core before invoking it, so the callback may immediately dispatch
  /// new work to this worker.
  using TaskDone = std::function<void(Task)>;

  Worker(sim::Simulation& sim, std::string name, hw::ServerSpec spec, net::NodeId node,
         TaskDone on_task_done);

  [[nodiscard]] hw::DfServer& server() { return server_; }
  [[nodiscard]] const hw::DfServer& server() const { return server_; }
  [[nodiscard]] net::NodeId node() const { return node_; }

  [[nodiscard]] int total_cores() const { return server_.spec().total_cores(); }
  [[nodiscard]] int busy_cores() const { return static_cast<int>(running_.size()); }
  [[nodiscard]] int free_cores() const;
  [[nodiscard]] bool available() const { return free_cores() > 0; }

  /// Start a shard on a free core. Returns false (and leaves the task
  /// untouched) when no core is free or the server is unusable.
  [[nodiscard]] bool try_start(Task task);

  /// Preempt one running *preemptible* shard with priority strictly below
  /// `min_keep`; its remaining work is captured and the shard returned.
  /// Picks the shard with the most remaining work (least progress lost).
  [[nodiscard]] std::optional<Task> preempt_one(Priority min_keep);

  /// Number of running shards with priority below `p`.
  [[nodiscard]] int running_below(Priority p) const;

  /// Re-evaluate speed after a hardware change (P-state, throttle, gating).
  /// Must be called by whoever mutates the server. Paused tasks (speed 0)
  /// resume automatically when speed returns. Header-inline: the city tick
  /// calls this once per worker per tick and the common case (no running
  /// shards, speed unchanged) must cost a handful of instructions.
  void sync_speed() {
    const double new_speed = server_.core_speed_gcps();
    for (auto& r : running_) {
      if (r.speed_gcps == new_speed) continue;
      settle(r);
      r.speed_gcps = new_speed;
      arm_completion(r);
    }
    // Re-assert busy-core accounting: gating clears it inside the server.
    sync_busy_cores();
  }

  /// Sum of remaining gigacycles across running shards.
  [[nodiscard]] double backlog_gigacycles() const;

  // --- accounting ---
  [[nodiscard]] std::uint64_t tasks_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t tasks_preempted() const { return preempted_; }
  /// Core-seconds of executed work (at whatever speed), for utilization.
  [[nodiscard]] double busy_core_seconds() const;

  /// Structural invariant sweep (lifecycle auditor, DESIGN.md §9): the
  /// server's busy-core count must match the running set clamped to what is
  /// usable, and no running shard may carry negative remaining work.
  /// Appends one human-readable line per violation.
  void audit(std::vector<std::string>& out) const;

  /// Visit every running shard (core-acquisition order). Read-only
  /// state-capture hook for the model checker's snapshot digests
  /// (DESIGN.md §13); `speed_gcps` is the per-core speed the shard was last
  /// (re)armed at. Not a hot path.
  void for_each_running(
      const std::function<void(const Task&, double speed_gcps)>& fn) const {
    for (const auto& r : running_) fn(r.task, r.speed_gcps);
  }

 private:
  struct Running {
    Task task;
    sim::Time started_at = 0.0;        ///< last (re)start instant
    sim::Time dispatched_at = 0.0;     ///< core acquired (survives speed changes)
    double speed_gcps = 0.0;           ///< per-core speed when (re)started
    sim::EventHandle completion;
  };

  void arm_completion(Running& r);
  void settle(Running& r);  ///< fold elapsed progress into remaining work
  void finish(std::size_t idx);

  /// Re-assert the server's busy-core count from the running set, clamped
  /// to what is currently usable (0 while gated or thermally shut down).
  /// finish/preempt/sync all funnel through this so the chassis count can
  /// never diverge from the running set, even across gate/ungate cycles.
  void sync_busy_cores() { server_.set_busy_cores(std::min(busy_cores(), server_.usable_cores())); }

  hw::DfServer server_;
  net::NodeId node_;
  TaskDone on_task_done_;
  std::vector<Running> running_;
  std::uint64_t completed_ = 0;
  std::uint64_t preempted_ = 0;
  double busy_core_seconds_ = 0.0;
  sim::Time busy_accum_mark_ = 0.0;
};

}  // namespace df3::core
