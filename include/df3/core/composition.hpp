#pragma once
/// \file composition.hpp
/// \brief Resource-oriented service composition over a DF cluster (§IV).
///
/// "RESTful APIs were introduced for defining uniform resource interface
///  that supports this ROC view. The goal was to define a generic interface
///  of functions for resources ... in order to transform the design of
///  distributed middlewares as the problem of automatically composing
///  resource functions [19]."
///
/// Reference [19] (Ngoko, Goldman & Milojicic) selects, for each stage of a
/// service composition, the provider that optimizes energy consumption and
/// response time. We implement exactly that for linear chains:
///
///  * a `ServiceRegistry` maps function names to the workers offering them;
///  * `select` solves the layered-graph shortest path (DP, exact): stage
///    costs are compute time/energy on the candidate worker, edge costs are
///    the network transfer of the intermediate payload between consecutive
///    workers, under a latency / energy / weighted objective;
///  * `execute` runs the chain for real through the cluster, stage by
///    stage, so predictions can be validated against simulated truth.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "df3/core/cluster.hpp"

namespace df3::core {

/// One stage of a chain: a named function with its compute and output size.
struct ServiceFunction {
  std::string name;
  double work_gigacycles = 1.0;
  util::Bytes output{1024.0};  ///< payload handed to the next stage
};

/// A linear composition. `input` enters stage 0 from `origin`.
struct ServiceChain {
  std::string name = "chain";
  std::vector<ServiceFunction> stages;
  util::Bytes input{1024.0};
  std::optional<double> deadline_s;
};

/// What the composer optimizes.
enum class Objective : std::uint8_t { kLatency, kEnergy, kBalanced };

/// The chosen provider per stage plus the model's predictions.
struct SelectionResult {
  std::vector<std::size_t> worker_per_stage;
  double predicted_latency_s = 0.0;
  double predicted_energy_j = 0.0;
};

/// Registry + optimizer + executor bound to one cluster.
class ServiceComposer {
 public:
  /// `origin` is the node where chain inputs enter and results return.
  ServiceComposer(Cluster& cluster, net::Network& network, net::NodeId origin);

  /// Declare that worker `widx` offers `function`. A worker may offer many
  /// functions; a function may have many providers.
  void provide(const std::string& function, std::size_t widx);

  [[nodiscard]] std::size_t providers_of(const std::string& function) const;

  /// Exact optimal provider assignment for the chain under the objective
  /// (layered-graph dynamic programming). Throws if any stage has no
  /// provider. `balance` weighs latency vs energy for kBalanced (0 = pure
  /// energy, 1 = pure latency).
  [[nodiscard]] SelectionResult select(const ServiceChain& chain, Objective objective,
                                       double balance = 0.5) const;

  /// Execute the chain on the selected workers: real transfers, real
  /// queueing for cores. `done(latency_s, deadline_met)` fires when the
  /// final result reaches the origin.
  void execute(const ServiceChain& chain, const SelectionResult& selection,
               std::function<void(double, bool)> done);

  // --- model pieces exposed for tests ---
  [[nodiscard]] double compute_time_s(const ServiceFunction& f, std::size_t widx) const;
  [[nodiscard]] double compute_energy_j(const ServiceFunction& f, std::size_t widx) const;
  [[nodiscard]] double transfer_time_s(net::NodeId from, net::NodeId to, util::Bytes size) const;

 private:
  struct Pending;
  void run_stage(const std::shared_ptr<Pending>& pending, net::NodeId at);
  void finish(const std::shared_ptr<Pending>& pending, net::NodeId at);

  Cluster& cluster_;
  net::Network& network_;
  net::NodeId origin_;
  std::unordered_map<std::string, std::vector<std::size_t>> providers_;
};

}  // namespace df3::core
