#pragma once
/// \file clustering.hpp
/// \brief Cluster-formation algorithms for city-scale DF deployments.
///
/// Paper §III-B: "To decide on the components of clusters, we can either
/// use clustering techniques developed in wireless sensor networks [13] or
/// define clusters as the set of DF servers of a physical building or
/// district." This module provides both families:
///
///  * `grid_clusters`    — district partition by geographic cells (the
///                         "physical building or district" option);
///  * `kmeans_clusters`  — centroid clustering weighted by core count
///                         (classic WSN partitioning for latency);
///  * `leach_clusters`   — LEACH-style probabilistic rotating cluster
///                         heads (energy/fairness-oriented; heads change
///                         every round so no site hosts the gateway load
///                         forever).
///
/// Quality is summarized by `evaluate`: mean/max member→head distance (a
/// proxy for the indirect-request hop) and core-count imbalance (a proxy
/// for peak-absorption headroom).

#include <cstdint>
#include <string>
#include <vector>

namespace df3::core {

/// One DF server site in the city plane.
struct ServerSite {
  double x_m = 0.0;
  double y_m = 0.0;
  int cores = 16;
  std::string name;
};

/// A clustering: every site belongs to exactly one cluster; each cluster
/// has a designated head (gateway) site.
struct ClusterAssignment {
  std::vector<std::size_t> cluster_of;  ///< site index -> cluster id
  std::vector<std::size_t> head_site;   ///< cluster id -> site index

  [[nodiscard]] std::size_t cluster_count() const { return head_site.size(); }
};

/// Aggregate quality of an assignment.
struct ClusteringQuality {
  double mean_head_distance_m = 0.0;
  double max_head_distance_m = 0.0;
  /// max cluster core count / mean cluster core count (1.0 = balanced).
  double core_imbalance = 1.0;
  std::size_t clusters = 0;
};

/// Validate (throws on malformed assignments) and score.
[[nodiscard]] ClusteringQuality evaluate(const std::vector<ServerSite>& sites,
                                         const ClusterAssignment& assignment);

/// Partition by square district cells of side `cell_m`; the head is the
/// most central site of each non-empty cell.
[[nodiscard]] ClusterAssignment grid_clusters(const std::vector<ServerSite>& sites,
                                              double cell_m);

/// Lloyd's k-means on site coordinates, weighted by core count; runs
/// `iterations` refinement steps from a seeded start. Heads are the sites
/// nearest their cluster centroid. Empty clusters are re-seeded on the
/// farthest outlier.
[[nodiscard]] ClusterAssignment kmeans_clusters(const std::vector<ServerSite>& sites,
                                                std::size_t k, std::uint64_t seed,
                                                int iterations = 50);

/// LEACH-style election for round `round`: each site becomes a head with
/// probability `head_fraction`, derived deterministically from
/// (seed, site, round); sites that led within the last 1/head_fraction
/// rounds are ineligible (the rotation guarantee). Members join the
/// nearest elected head. At least one head is always elected.
[[nodiscard]] ClusterAssignment leach_clusters(const std::vector<ServerSite>& sites,
                                               double head_fraction, std::uint64_t round,
                                               std::uint64_t seed);

/// Synthetic city: `n` sites over a `side_m` square, in `hotspots` gaussian
/// districts (0 = uniform). Deterministic per seed.
[[nodiscard]] std::vector<ServerSite> synthetic_city(std::size_t n, double side_m,
                                                     int hotspots, std::uint64_t seed);

}  // namespace df3::core
