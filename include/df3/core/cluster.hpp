#pragma once
/// \file cluster.hpp
/// \brief The DF3 cluster: gateway + workers + peak-management policies.
///
/// This is the component architecture of the paper's Figure 5. A cluster
/// groups the DF servers of one building/district behind a gateway that
/// receives requests from both flows and assigns their task shards to
/// workers. It implements the paper's design space:
///
///  * **architecture class A (shared)** — every worker serves both edge and
///    DCC shards; edge outranks cloud, with preemption available;
///  * **architecture class B (dedicated)** — the first `dedicated_edge_
///    workers` workers accept *only* edge shards (guaranteed minimal QoS,
///    paid for in idle capacity);
///  * **peak management** — when an edge shard cannot be placed:
///    preemption, vertical offloading (datacenter), horizontal offloading
///    (a federation peer), or delaying, per the configured rung ladder;
///  * cloud shards exceeding the backlog threshold offload vertically
///    (Qarnot hybrid infrastructure).
///
/// Decisions live in the policy layer (DESIGN.md §11): the peak ladder is a
/// list of `policy::PeakRung` objects driving this cluster through the
/// `policy::LadderMechanism` interface, worker selection goes through a
/// `policy::PlacementPolicy`, and the horizontal-offload target is chosen
/// from the cluster's peer *set* by a `policy::PeerSelector`. All three are
/// named in `ClusterConfig` and resolved via `policy::Registry::global()`;
/// the defaults reproduce the historical hardcoded behavior bit-for-bit.
///
/// Transport: inputs move origin -> gateway -> staging worker over the real
/// simulated network (queuing included); outputs move back to the origin.
/// Direct edge requests (paper II-C) skip the gateway hop.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "df3/core/scheduler.hpp"
#include "df3/core/task.hpp"
#include "df3/core/worker.hpp"
#include "df3/net/network.hpp"
#include "df3/policy/policy.hpp"
#include "df3/workload/request.hpp"

namespace df3::grid {
class GridPlane;
struct GridSample;
}  // namespace df3::grid

namespace df3::core {

/// Anything that can execute a full request remotely (a datacenter, or in
/// tests a stub). Used as the vertical-offload target.
class ComputeService {
 public:
  virtual ~ComputeService() = default;
  using Done = std::function<void(workload::CompletionRecord)>;

  /// Execute `r` on behalf of a client at `origin`; `done` fires with the
  /// completion record (network round trip included).
  virtual void submit(workload::Request r, net::NodeId origin, Done done) = 0;

  /// Label recorded in CompletionRecord::served_by.
  [[nodiscard]] virtual std::string label() const = 0;
};

struct ClusterConfig {
  /// Class B when > 0: that many workers are reserved for edge shards.
  int dedicated_edge_workers = 0;
  QueueDiscipline discipline = QueueDiscipline::kEdf;
  /// Rung names tried in order for edge shards that cannot be placed on
  /// arrival; resolved through policy::Registry::global() (built-ins:
  /// preempt, horizontal, vertical, delay). Exhausting the ladder is
  /// equivalent to a trailing "delay".
  std::vector<std::string> edge_peak_ladder = {"preempt", "delay"};
  /// Worker-selection policy (built-ins: first-fit, best-fit).
  std::string placement = "first-fit";
  /// Horizontal-offload target selector (built-ins: ring, least-loaded).
  std::string peer_select = "ring";
  /// Cloud backlog (gigacycles per usable core) beyond which *new* cloud
  /// requests are offloaded vertically; infinity disables.
  double cloud_offload_backlog_gc_per_core = std::numeric_limits<double>::infinity();
  /// Checkpoint/restore cost charged to a preempted shard (gigacycles added
  /// to its remaining work): serializing container state is not free.
  double preemption_overhead_gc = 2.0;
  /// Reference fabric bandwidth for the coupled-app slowdown model (the
  /// datacenter-grade fabric tightly coupled apps were written for).
  double reference_fabric_gbps = 10.0;
  /// Actual bandwidth of the LAN interconnecting this cluster's workers.
  double fabric_gbps = 1.0;
};

/// Per-cluster activity counters (fairness accounting, section III-B).
///
/// The counters obey a conservation identity the lifecycle auditor checks
/// at every audit point (DESIGN.md §9): every request that entered the
/// cluster (`intake()`) is either still in flight or reached exactly one
/// terminal disposition (`terminal()`):
///
///     intake() == terminal() + in_flight
///
/// The identity holds *instantaneously* at every simulation instant, not
/// just at quiescence: intake counters, terminal counters and the pending
/// map are always updated within the same event.
struct ClusterStats {
  std::uint64_t received_edge = 0;
  std::uint64_t received_cloud = 0;
  /// Pinned composition-stage executions (run_pinned).
  std::uint64_t received_pinned = 0;
  std::uint64_t completed = 0;
  std::uint64_t preemptions = 0;
  /// Times an unplaceable edge shard was left queued by the kDelay rung
  /// (or by exhausting the ladder). Activity counter, not a terminal: the
  /// shard stays in flight.
  std::uint64_t edge_delays = 0;
  std::uint64_t offloaded_vertical = 0;
  std::uint64_t offloaded_horizontal_out = 0;
  std::uint64_t offloaded_horizontal_in = 0;
  std::uint64_t rejected = 0;
  /// Lost to a network partition (staging or horizontal hand-off transfer).
  std::uint64_t dropped = 0;
  /// Abandoned at dispatch because the absolute deadline had already
  /// passed. Requests whose *result* arrives late count as `completed`
  /// here (the cluster did the work); the CompletionRecord carries the
  /// kDeadlineMissed outcome for the platform-level metrics.
  std::uint64_t deadline_missed = 0;
  /// Gigacycles completed on behalf of peer clusters (fairness accounting
  /// for multi-organization cooperation, paper ref. [16]).
  double foreign_gigacycles = 0.0;

  /// Requests this cluster became responsible for.
  [[nodiscard]] std::uint64_t intake() const {
    return received_edge + received_cloud + received_pinned + offloaded_horizontal_in;
  }
  /// Requests that reached a terminal disposition here (including handing
  /// responsibility to a peer or the datacenter).
  [[nodiscard]] std::uint64_t terminal() const {
    return completed + rejected + dropped + deadline_missed + offloaded_vertical +
           offloaded_horizontal_out;
  }
};

class Cluster : public sim::Entity, private policy::LadderMechanism {
 public:
  using CompletionSink = std::function<void(workload::CompletionRecord)>;

  /// Per-seam decision counters (obs feeds these into the metric registry).
  struct PolicyCounters {
    std::uint64_t placement_picks = 0;  ///< placement-policy selections
    std::uint64_t peer_picks = 0;       ///< peer-selector selections
    /// Times the RungView / PeerView grid fields were filled — only bumped
    /// when some rung (resp. the selector) declared needs_grid() *and* a
    /// grid plane is bound, so tests can prove the lazy-fill gating.
    std::uint64_t rung_grid_fills = 0;
    std::uint64_t peer_grid_fills = 0;
    /// Times ladder rung i resolved or parked the shard (parallel to
    /// ClusterConfig::edge_peak_ladder).
    std::vector<std::uint64_t> rung_hits;
  };

  /// `gateway_node` must exist in `network`. The sink receives every
  /// completion this cluster is responsible for (including ones it
  /// offloaded elsewhere).
  Cluster(sim::Simulation& sim, std::string name, ClusterConfig config, net::Network& network,
          net::NodeId gateway_node, CompletionSink sink);

  /// Create and register a worker on `node` with the given chassis.
  /// Returns its index. Workers added first are the dedicated-edge ones
  /// under architecture class B.
  std::size_t add_worker(hw::ServerSpec spec, net::NodeId node);

  /// Mutable worker access can reach the server control plane (fault
  /// injectors and tests power chassis on/off through here), so it bumps
  /// `control_epoch()`: any activity-gated district (Df3Platform) falls
  /// back to the stepped control path until its regulators re-observe the
  /// servers. Use the const overload for pure reads.
  [[nodiscard]] Worker& worker(std::size_t i) {
    ++control_epoch_;
    return *workers_.at(i);
  }
  [[nodiscard]] const Worker& worker(std::size_t i) const { return *workers_.at(i); }

  /// Monotonic count of exogenous control-plane touches: mutable worker()
  /// access and pinned (composition) executions. The platform's activity
  /// gating records the value when a district goes quiet and takes the
  /// gated fast path only while it is unchanged — anything that might have
  /// moved a server's powered/P-state/filler settings invalidates the gate.
  [[nodiscard]] std::uint64_t control_epoch() const { return control_epoch_; }
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] net::NodeId gateway_node() const { return gateway_node_; }

  /// Replace the peer set with a single peer (nullptr clears). Kept for
  /// the pre-federation call sites; equivalent to clear_peers + add_peer.
  void set_peer(Cluster* peer) {
    peers_.clear();
    if (peer != nullptr) add_peer(peer);
  }
  /// Append a federation peer. Horizontal offload picks among the peers via
  /// the configured selector; add them in ring order (next neighbor first)
  /// so the default "ring" selector reproduces the classic ring.
  void add_peer(Cluster* peer);
  void clear_peers() { peers_.clear(); }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }
  void set_datacenter(ComputeService* dc) { datacenter_ = dc; }

  /// Bind this cluster to its grid region (DESIGN.md §15). `now` points at
  /// the platform's per-tick sample slot for `region` and must stay valid
  /// for the cluster's lifetime; both pointers nullptr (the default) means
  /// no grid plane, in which case grid-aware policies see grid_valid=false.
  void bind_grid(const grid::GridPlane* plane, const grid::GridSample* now, std::size_t region) {
    grid_plane_ = plane;
    grid_now_ = now;
    grid_region_ = region;
  }
  [[nodiscard]] std::size_t grid_region() const { return grid_region_; }

  /// Submit a request arriving at the gateway from `origin`. The transport
  /// from the origin to the gateway must already have happened (the
  /// platform pays it); this starts the input staging transfer.
  void submit(workload::Request r, net::NodeId origin);

  /// Direct edge request (paper II-C): the device talks straight to worker
  /// `widx`; no gateway staging hop. Shards prefer that worker.
  void submit_direct(workload::Request r, net::NodeId origin, std::size_t widx);

  /// Accept a request offloaded from a peer cluster. Will not offload it
  /// again horizontally (no ping-pong).
  void submit_offloaded(workload::Request r, net::NodeId origin, CompletionSink peer_sink);

  /// Run a single request pinned to worker `widx`, reporting completion to
  /// `done` directly (no return transport, no platform sink) — the
  /// execution primitive of the service-composition layer, which manages
  /// its own inter-stage transfers. The input is assumed to already be on
  /// the worker.
  void run_pinned(workload::Request r, std::size_t widx, CompletionSink done);

  /// Try to place queued shards on free cores. Called automatically on
  /// arrivals and completions; call after hardware capacity changes.
  void pump();

  /// Propagate a hardware speed change on all workers, then pump.
  /// Header-inline: the physics tick calls this once per building per tick;
  /// pumping an empty queue is a no-op, so the common case stays cheap.
  void sync_workers() {
    for (auto& w : workers_) w->sync_speed();
    if (queue_.size() > 0) pump();
  }

  [[nodiscard]] const ClusterStats& stats() const { return stats_; }
  [[nodiscard]] const PolicyCounters& policy_counters() const { return policy_counters_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  /// Queued-but-not-started work — the load signal peers and routing
  /// policies see (gigacycles, slowdown included).
  [[nodiscard]] double queued_gigacycles() const { return queue_.backlog_gigacycles(); }
  /// Requests accepted but not yet resolved (the pending map's size) —
  /// the `in_flight` term of the conservation identity.
  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }

  /// Lifecycle-auditor invariant sweep (DESIGN.md §9). Appends one
  /// human-readable line per violation: conservation identity
  /// (intake == terminal + in_flight), EDF lane sortedness, non-negative
  /// remaining work, and per-worker busy-core consistency. Observation
  /// only — never mutates cluster state.
  void audit(std::vector<std::string>& out) const;

  /// Read-only view of the gateway queue — state-capture hook for the model
  /// checker's snapshot digests (DESIGN.md §13).
  [[nodiscard]] const TaskQueue& task_queue() const { return queue_; }

  /// One pending (in-flight) request, as exposed to state capture. The
  /// pending map itself is keyed by pointer; consumers needing a canonical
  /// order must sort by `id`.
  struct PendingView {
    std::uint64_t id = 0;
    std::size_t preferred_worker = SIZE_MAX;
    std::size_t served_worker = SIZE_MAX;
    bool foreign = false;
    bool local_only = false;
  };
  /// Visit every pending request (unordered — see PendingView). Read-only
  /// state-capture hook for the model checker; not a hot path.
  void for_each_pending(const std::function<void(const PendingView&)>& fn) const {
    for (const auto& [state, p] : pending_) {
      fn(PendingView{state->request.id, p->preferred_worker, p->served_worker, p->foreign,
                     p->local_only});
    }
  }

  /// Freeze the load signals peers read through the PeerSelector view
  /// (DESIGN.md §12). While armed, select_peer() builds PeerInfo from
  /// these values instead of live reads, so a horizontal-offload decision
  /// made during the tick's control phase observes every peer as it stood
  /// at the start of the conservative window — independent of how far
  /// other control lanes (or the fused serial sweep) have advanced. The
  /// platform arms every cluster before the control phase and disarms
  /// after the boundary drain; event-time pumps (arrivals, completions)
  /// always see live state.
  void arm_lane_snapshot() {
    lane_backlog_per_core_ = queued_gigacycles() / static_cast<double>(std::max(1, usable_cores()));
    lane_free_cores_ = free_cores();
    lane_snapshot_armed_ = true;
  }
  void disarm_lane_snapshot() { lane_snapshot_armed_ = false; }

  /// True when this cluster's control-phase speed sync cannot touch shared
  /// simulation state: nothing queued (sync_workers() will not pump) and no
  /// running shard (sync_speed() has nothing to settle or re-arm on the
  /// event calendar). Quiescent clusters complete their sync inside a
  /// parallel control lane; the rest defer it to the serial boundary drain.
  [[nodiscard]] bool control_quiescent() const {
    if (queue_.size() > 0) return false;
    for (const auto& w : workers_) {
      if (w->busy_cores() != 0) return false;
    }
    return true;
  }
  [[nodiscard]] int usable_cores() const {
    int n = 0;
    for (const auto& w : workers_) n += w->server().usable_cores();
    return n;
  }
  [[nodiscard]] int free_cores() const;
  [[nodiscard]] int dedicated_edge_workers() const { return config_.dedicated_edge_workers; }

 private:
  struct Pending {
    std::shared_ptr<RequestState> state;
    net::NodeId origin;
    /// Worker affinity for direct requests; SIZE_MAX = none.
    std::size_t preferred_worker = SIZE_MAX;
    /// Worker that actually started the request's shard(s); SIZE_MAX until
    /// first placement. For direct requests the result ships from this
    /// worker's node — which may differ from `preferred_worker` when the
    /// preferred one was busy/gated and placement fell through to another.
    std::size_t served_worker = SIZE_MAX;
    /// True when this request arrived via horizontal offload.
    bool foreign = false;
    /// True for composition stages: report straight to the sink with no
    /// return-network hop.
    bool local_only = false;
    CompletionSink sink;  ///< where the completion goes (peer's sink if foreign)
  };

  void stage_and_enqueue(workload::Request r, net::NodeId origin, std::size_t preferred,
                         bool foreign, CompletionSink sink);
  void enqueue_ready(const std::shared_ptr<Pending>& p);
  [[nodiscard]] double slowdown_for(const workload::Request& r) const;
  [[nodiscard]] bool worker_eligible(std::size_t widx, Priority p) const;
  [[nodiscard]] bool place(Task& t);
  bool handle_unplaceable_edge(Task t);
  void abandon_expired(Task t);
  void on_task_done(Task t);
  void complete(const std::shared_ptr<RequestState>& state);

  // policy::LadderMechanism — the relief levers the peak rungs pull.
  policy::RungOutcome relieve_by_preemption(Task& t) override;
  policy::RungOutcome relieve_by_horizontal(Task& t) override;
  policy::RungOutcome relieve_by_vertical(Task& t) override;
  policy::RungOutcome relieve_by_delay(Task& t) override;
  /// Pick a horizontal-offload target from the peer set via the selector.
  [[nodiscard]] Cluster* select_peer();

  ClusterConfig config_;
  net::Network& network_;
  net::NodeId gateway_node_;
  CompletionSink sink_;
  std::vector<std::unique_ptr<Worker>> workers_;
  TaskQueue queue_;
  /// Federation peers in ring order (next neighbor first).
  std::vector<Cluster*> peers_;
  ComputeService* datacenter_ = nullptr;
  ClusterStats stats_;
  PolicyCounters policy_counters_;
  // Decision plane, resolved from config names in the constructor.
  std::vector<std::unique_ptr<policy::PeakRung>> ladder_;
  std::unique_ptr<policy::PlacementPolicy> placement_;
  std::unique_ptr<policy::PeerSelector> peer_selector_;
  // Grid binding (see bind_grid); needs_grid flags cached at construction
  // so the no-grid hot path pays a single bool test.
  const grid::GridPlane* grid_plane_ = nullptr;
  const grid::GridSample* grid_now_ = nullptr;
  std::size_t grid_region_ = 0;
  bool ladder_needs_grid_ = false;
  bool peer_needs_grid_ = false;
  // Per-pick scratch (cleared and refilled; never reallocates steady-state).
  std::vector<policy::PlacementCandidate> place_scratch_;
  std::vector<policy::PeerInfo> peer_scratch_;
  /// Pending bookkeeping keyed by the RequestState pointer.
  std::unordered_map<const RequestState*, std::shared_ptr<Pending>> pending_;
  std::uint64_t control_epoch_ = 0;
  bool pumping_ = false;
  /// Lane-snapshot of the peer-visible load signals (see arm_lane_snapshot).
  double lane_backlog_per_core_ = 0.0;
  int lane_free_cores_ = 0;
  bool lane_snapshot_armed_ = false;
};

}  // namespace df3::core
