#pragma once
/// \file task.hpp
/// \brief The schedulable unit inside a cluster: one task of one request.
///
/// A `Request` with `tasks == k` is split by the gateway into k `Task`
/// shards, each occupying one core. The request completes when all shards
/// have finished; shards carry their remaining work so preemption (paper
/// section III-B, option 1 for peak management) can checkpoint and resume.

#include <cstdint>
#include <memory>
#include <optional>

#include "df3/sim/engine.hpp"
#include "df3/workload/request.hpp"

namespace df3::core {

/// Scheduling class: edge requests outrank cloud requests in the shared-
/// worker architecture (class A).
enum class Priority : std::uint8_t { kCloud = 0, kEdge = 1 };

[[nodiscard]] constexpr Priority priority_of(const workload::Request& r) {
  return workload::is_edge(r.flow) ? Priority::kEdge : Priority::kCloud;
}

struct RequestState;  // forward: shared bookkeeping for all shards

/// One core-sized shard of a request.
struct Task {
  std::shared_ptr<RequestState> request;
  int shard_index = 0;
  double remaining_gigacycles = 0.0;
  /// Multiplier >= 1 applied to service time for communication overhead of
  /// tightly coupled tasks on the hosting fabric (computed at dispatch).
  double slowdown = 1.0;
  /// When this shard last started waiting in a queue; -1 before the first
  /// enqueue. Observability bookkeeping only (queue-wait trace spans) —
  /// nothing in the scheduler reads it.
  sim::Time enqueued_at = -1.0;

  [[nodiscard]] Priority priority() const;
  [[nodiscard]] bool preemptible() const;
  [[nodiscard]] std::optional<sim::Time> deadline() const;
};

/// Shared completion bookkeeping for one request's shards.
struct RequestState {
  workload::Request request;
  int shards_remaining = 0;
  sim::Time first_dispatch = -1.0;
  bool failed = false;  ///< set when any shard is dropped

  explicit RequestState(workload::Request r)
      : request(std::move(r)), shards_remaining(request.tasks) {}
};

inline Priority Task::priority() const { return priority_of(request->request); }
inline bool Task::preemptible() const { return request->request.preemptible; }
inline std::optional<sim::Time> Task::deadline() const {
  return request->request.absolute_deadline();
}

/// Split a request into its shards. All shards share one RequestState.
[[nodiscard]] std::vector<Task> make_tasks(workload::Request r, double slowdown = 1.0);

/// Shard an already-wrapped request state (used by the cluster, which
/// creates the state before the staging transfer completes).
[[nodiscard]] std::vector<Task> make_tasks(std::shared_ptr<RequestState> state,
                                           double slowdown = 1.0);

}  // namespace df3::core
