#pragma once
/// \file heat_regulator.hpp
/// \brief DVFS-based heat regulator (paper section III-B, last paragraph).
///
/// "To make sure that the expectations will be complied, we propose to add
///  a heat regulator system in each DF server. The heat regulator implements
///  a DVFS based technique to guarantee that the energy consumed corresponds
///  to the heat demand."
///
/// Every control period the regulator receives the thermostat's heat demand
/// (watts) and selects the chassis P-state — and possibly gates the
/// motherboards off (Qarnot's hybrid infrastructure) — so the achievable
/// power envelope brackets the demand. It tracks delivery error for the E7
/// experiment.

#include <algorithm>
#include <cmath>

#include "df3/hw/server.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/util/stats.hpp"
#include "df3/util/units.hpp"

namespace df3::core {

/// What the regulator may do when heat demand falls below the idle power of
/// the lowest P-state.
enum class GatingPolicy : std::uint8_t {
  /// Gate motherboards off (standby). Maximum heat fidelity; computing
  /// capacity vanishes — pending work must be offloaded (hybrid infra).
  kAggressive,
  /// Keep the chassis at the lowest P-state so the cluster retains minimal
  /// edge capacity; slightly over-delivers heat in shoulder seasons.
  kKeepWarm,
};

struct RegulatorConfig {
  GatingPolicy gating = GatingPolicy::kAggressive;
  /// Demand below this is treated as "no heat requested" (W).
  double demand_epsilon_w = 1.0;
};

/// Per-server control loop. Call `regulate` every control period.
class HeatRegulator {
 public:
  explicit HeatRegulator(RegulatorConfig config = {});

  /// Apply the thermostat demand to the server: picks P-state/gating.
  /// Returns the power ceiling the chassis can now reach. Header-inline:
  /// runs once per room per control period, the hottest control-plane call.
  util::Watts regulate(hw::DfServer& server, const thermal::HeatDemand& demand) {
    const double want = demand.power.value();
    if (!demand.heating_season || want <= config_.demand_epsilon_w) {
      if (config_.gating == GatingPolicy::kAggressive) {
        server.set_powered(false);
        return server.standby_power();
      }
      server.set_powered(true);
      server.set_pstate(0);
      server.set_filler_cores(0);
      return server.max_power_now();
    }
    // Coarse stage: the *lowest* P-state whose full-load power reaches the
    // demand, so utilization can modulate down onto the target exactly.
    // Low states also retire more cycles per joule (V^2 scaling), so this
    // maximizes compute sold per watt of heat. Demands above the chassis
    // rating saturate at the top state.
    server.set_powered(true);
    const std::size_t ps = server.min_pstate_for(demand.power);
    // The power envelope of the chosen state is known before applying it
    // (max_power_at/idle_power_at match max_power_now/idle_power after a
    // set_pstate), so the P-state and the filler count computed from that
    // envelope land on the server as one refresh.
    const util::Watts ceiling = server.max_power_at(ps);
    // Fine stage: when real work does not draw enough power, burn filler
    // cores (Liu et al.'s seasonal space-heating computations) so the
    // chassis emits the requested heat. Power is linear in loaded cores
    // between idle and the ceiling.
    const double idle = server.idle_power_at(ps).value();
    const double maxp = ceiling.value();
    int filler = 0;
    if (maxp > idle) {
      const double util_target = std::clamp((want - idle) / (maxp - idle), 0.0, 1.0);
      // Round half away from zero, as std::lround does; the argument is
      // non-negative so truncate-then-bump is exact without the libm call.
      const double scaled = util_target * static_cast<double>(server.total_cores());
      auto desired_loaded = static_cast<int>(scaled);
      if (scaled - static_cast<double>(desired_loaded) >= 0.5) ++desired_loaded;
      filler = std::max(0, desired_loaded - server.busy_cores());
    }
    server.set_pstate_and_filler(ps, filler);
    return ceiling;
  }

  /// Record actual delivery over the elapsed period (called after physics
  /// integration): `delivered` is the heat actually emitted, `requested`
  /// the demand that was in force.
  void record(util::Seconds dt, util::Watts delivered, util::Watts requested) {
    if (dt.value() < 0.0) throw std::invalid_argument("HeatRegulator::record: negative dt");
    abs_error_w_.add(std::abs(delivered.value() - requested.value()));
    delivered_ += delivered * dt;
    requested_ += requested * dt;
    abs_error_ += util::Watts{std::abs(delivered.value() - requested.value())} * dt;
  }

  /// Mean absolute tracking error (W) over everything recorded.
  [[nodiscard]] double mean_abs_error_w() const;
  /// Energy-weighted relative error: |delivered-requested| integral over
  /// requested integral. 0 == perfect tracking.
  [[nodiscard]] double relative_error() const;
  [[nodiscard]] util::Joules delivered_total() const { return delivered_; }
  [[nodiscard]] util::Joules requested_total() const { return requested_; }

  [[nodiscard]] const RegulatorConfig& config() const { return config_; }

 private:
  RegulatorConfig config_;
  util::StreamingStats abs_error_w_;
  util::Joules delivered_{0.0};
  util::Joules requested_{0.0};
  util::Joules abs_error_{0.0};
};

}  // namespace df3::core
