#pragma once
/// \file heat_regulator.hpp
/// \brief DVFS-based heat regulator (paper section III-B, last paragraph).
///
/// "To make sure that the expectations will be complied, we propose to add
///  a heat regulator system in each DF server. The heat regulator implements
///  a DVFS based technique to guarantee that the energy consumed corresponds
///  to the heat demand."
///
/// Every control period the regulator receives the thermostat's heat demand
/// (watts) and selects the chassis P-state — and possibly gates the
/// motherboards off (Qarnot's hybrid infrastructure) — so the achievable
/// power envelope brackets the demand. It tracks delivery error for the E7
/// experiment.

#include "df3/hw/server.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/util/stats.hpp"
#include "df3/util/units.hpp"

namespace df3::core {

/// What the regulator may do when heat demand falls below the idle power of
/// the lowest P-state.
enum class GatingPolicy : std::uint8_t {
  /// Gate motherboards off (standby). Maximum heat fidelity; computing
  /// capacity vanishes — pending work must be offloaded (hybrid infra).
  kAggressive,
  /// Keep the chassis at the lowest P-state so the cluster retains minimal
  /// edge capacity; slightly over-delivers heat in shoulder seasons.
  kKeepWarm,
};

struct RegulatorConfig {
  GatingPolicy gating = GatingPolicy::kAggressive;
  /// Demand below this is treated as "no heat requested" (W).
  double demand_epsilon_w = 1.0;
};

/// Per-server control loop. Call `regulate` every control period.
class HeatRegulator {
 public:
  explicit HeatRegulator(RegulatorConfig config = {});

  /// Apply the thermostat demand to the server: picks P-state/gating.
  /// Returns the power ceiling the chassis can now reach.
  util::Watts regulate(hw::DfServer& server, const thermal::HeatDemand& demand);

  /// Record actual delivery over the elapsed period (called after physics
  /// integration): `delivered` is the heat actually emitted, `requested`
  /// the demand that was in force.
  void record(util::Seconds dt, util::Watts delivered, util::Watts requested);

  /// Mean absolute tracking error (W) over everything recorded.
  [[nodiscard]] double mean_abs_error_w() const;
  /// Energy-weighted relative error: |delivered-requested| integral over
  /// requested integral. 0 == perfect tracking.
  [[nodiscard]] double relative_error() const;
  [[nodiscard]] util::Joules delivered_total() const { return delivered_; }
  [[nodiscard]] util::Joules requested_total() const { return requested_; }

  [[nodiscard]] const RegulatorConfig& config() const { return config_; }

 private:
  RegulatorConfig config_;
  util::StreamingStats abs_error_w_;
  util::Joules delivered_{0.0};
  util::Joules requested_{0.0};
  util::Joules abs_error_{0.0};
};

}  // namespace df3::core
