#pragma once
/// \file fleet_kernel.hpp
/// \brief SIMD-friendly room-update kernels for the fleet-physics sweep.
///
/// The Df3Platform tick stages every per-room input (net heat input, RC
/// parameters, precomputed decay factors / substep schedules) into the
/// contiguous FleetState arrays, then hands a building's slice to these
/// kernels. Each kernel is a pure element-wise update over `__restrict`
/// double arrays with no branches in the inner loop, so the compiler
/// auto-vectorizes it at -O3 without intrinsics (CI greps the
/// vectorization report to keep it that way, see .github/workflows/ci.yml).
///
/// Bit-exactness contract: every expression is evaluated per element in the
/// same order as the scalar per-room sweep it replaced (see
/// DESIGN.md section 8), and elements never interact, so vector width and
/// the scalar tail cannot change a single result bit. The golden digests in
/// platform_determinism_test pin this.

#include <cstddef>
#include <cstdint>

namespace df3::core::fleet {

/// Lanes per unrolled block of the 1R1C kernel. Purely a hint: the blocked
/// loop body has a compile-time trip count, which is what GCC's and Clang's
/// vectorizers like best; correctness does not depend on the value.
inline constexpr std::size_t kKernelStride = 8;

/// Advance `n` 1R1C rooms by one tick: the analytic exponential step
///   eq      = t_out + q_total * resistance
///   temp'   = eq + (temp - eq) * decay
/// with `decay = exp(-tick/tau)` precomputed at add_building. Mirrors
/// thermal::Room::advance term for term.
void step_rooms_1r1c(std::size_t n, double t_out_c,
                     const double* __restrict q_total_w,
                     const double* __restrict resistance_k_per_w,
                     const double* __restrict decay,
                     double* __restrict temp_c);

/// Substep accounting for one 2R2C kernel invocation (activity gating
/// telemetry): how many full substeps ran and how many were provably
/// skipped by the fixed-point early exit.
struct Substeps2R2C {
  std::uint64_t full_steps_run = 0;
  std::uint64_t full_steps_skipped = 0;
};

/// Advance `n` 2R2C rooms by one tick of explicit-Euler substeps. The
/// substep schedule (`n_full` steps of `max_step_s`, then one `h_last_s`
/// step when positive) is uniform across the slice — Df3Platform builds it
/// per building from one Room2R2CParams. The substeps run substep-major
/// (every room advances step k before any room takes step k+1); rooms are
/// independent, so this reorders nothing within a room and keeps every bit
/// identical to the room-major scalar loop.
///
/// With `allow_early_exit` (an activity-gated district), the kernel watches
/// for a bitwise fixed point: when one full substep leaves every t_air and
/// t_env bit unchanged, the remaining full substeps are applications of the
/// same pure function to the same state and are skipped as provable
/// identities. The trailing `h_last_s` step always runs (a fixed point of
/// step(max_step) need not be one of step(h_last)).
Substeps2R2C step_rooms_2r2c(std::size_t n, double t_out_c,
                             const double* __restrict q_total_w,
                             const double* __restrict r_air_env,
                             const double* __restrict r_env_out,
                             const double* __restrict c_air,
                             const double* __restrict c_env,
                             double max_step_s, double h_last_s, std::uint32_t n_full,
                             bool allow_early_exit,
                             double* __restrict t_air_c,
                             double* __restrict t_env_c);

}  // namespace df3::core::fleet
