#pragma once
/// \file scheduler.hpp
/// \brief Gateway task queue with pluggable discipline.
///
/// The gateway keeps one logical queue of task shards. Two disciplines:
///
///  * FCFS — strict arrival order (within a priority class);
///  * EDF  — earliest absolute deadline first (deadline-less cloud shards
///           sort after all deadline-carrying edge shards).
///
/// Edge priority always dominates cloud priority (paper: the whole point of
/// the edge flow is near-real-time service); the discipline orders *within*
/// a class.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "df3/core/task.hpp"

namespace df3::core {

enum class QueueDiscipline : std::uint8_t { kFcfs, kEdf };

[[nodiscard]] constexpr const char* discipline_name(QueueDiscipline d) {
  return d == QueueDiscipline::kFcfs ? "fcfs" : "edf";
}

/// Priority queue of task shards. Not a std::priority_queue: we need
/// removal of expired work and requeue-at-front for preemption victims.
class TaskQueue {
 public:
  explicit TaskQueue(QueueDiscipline discipline) : discipline_(discipline) {}

  /// Enqueue a fresh shard (back of its class, subject to discipline).
  void push(Task t);

  /// Requeue a preemption/delay victim. FCFS: true front-insert (it has
  /// already waited once). EDF: re-insert by deadline, ahead of fresh work
  /// with an equal key — a blind front-insert would break the sorted-lane
  /// invariant the binary-search insert of push() depends on.
  void push_front(Task t);

  /// Remove and return the best shard to run next; nullopt when empty.
  [[nodiscard]] std::optional<Task> pop();

  /// Best shard of a given priority class only (e.g. dedicated edge workers
  /// pull only edge shards); nullopt if that class is empty.
  [[nodiscard]] std::optional<Task> pop_class(Priority p);

  /// Inspect without removing. nullptr when empty.
  [[nodiscard]] const Task* peek() const;

  [[nodiscard]] std::size_t size() const { return edge_.size() + cloud_.size(); }
  [[nodiscard]] std::size_t size_class(Priority p) const {
    return p == Priority::kEdge ? edge_.size() : cloud_.size();
  }
  [[nodiscard]] bool empty() const { return edge_.empty() && cloud_.empty(); }

  /// Total queued gigacycles, for backlog-based offload decisions and the
  /// per-tick lane snapshots (DESIGN.md §12). Cached: mutations mark the
  /// cache dirty and the next query re-sums in lane order, so the value is
  /// bit-identical to a fresh walk while a stable queue pays O(1).
  [[nodiscard]] double backlog_gigacycles() const;

  /// Structural invariant sweep (lifecycle auditor, DESIGN.md §9): EDF
  /// lanes sorted by deadline, no negative remaining work. Appends one
  /// human-readable line per violation, prefixed with `who`.
  void audit(std::vector<std::string>& out, const std::string& who) const;

  /// Visit every queued shard in pop order (edge lane front-to-back, then
  /// cloud lane). Read-only state-capture hook for the model checker's
  /// snapshot digests (DESIGN.md §13); not a hot path.
  void for_each(const std::function<void(const Task&, Priority)>& fn) const;

  /// Test-only fault plant: when set, push_front() on an EDF lane performs
  /// the blind front-insert this class shipped before the PR-3 fix,
  /// re-breaking the sorted-lane invariant. Exists solely so the model
  /// checker's self-test can prove it detects a known-bad build
  /// (tests/mc_test.cpp); never enable outside a test.
  static void set_test_unsorted_push_front(bool plant) { test_unsorted_push_front_ = plant; }
  [[nodiscard]] static bool test_unsorted_push_front() { return test_unsorted_push_front_; }

  [[nodiscard]] QueueDiscipline discipline() const { return discipline_; }

 private:
  std::deque<Task>& lane(Priority p) { return p == Priority::kEdge ? edge_ : cloud_; }
  void insert_by_discipline(std::deque<Task>& q, Task t);

  static bool test_unsorted_push_front_;  ///< see set_test_unsorted_push_front

  QueueDiscipline discipline_;
  std::uint64_t seq_ = 0;
  std::deque<Task> edge_;
  std::deque<Task> cloud_;
  mutable double backlog_cache_ = 0.0;
  mutable bool backlog_dirty_ = false;
};

}  // namespace df3::core
