#pragma once
/// \file platform.hpp
/// \brief Df3Platform: the end-to-end DF3 city simulation façade.
///
/// Assembles the full stack of the paper's Figure 3/5: buildings whose rooms
/// are heated by DF servers, per-building clusters (edge+DCC gateway +
/// workers), a city network (IoT links, building LANs, fiber uplinks), an
/// optional remote datacenter for vertical offloading, the per-server DVFS
/// heat regulators, and the physics loop coupling power to room temperature
/// to throttling to computing capacity.
///
/// Typical use (see examples/quickstart.cpp):
///
///   core::PlatformConfig cfg;
///   core::Df3Platform city(cfg);
///   city.add_building({.name = "b0", .rooms = 4});
///   city.add_edge_source(0, workload::alarm_detection_factory(), 0.05);
///   city.add_cloud_source(workload::render_batch_factory(), 1.0 / 600.0);
///   city.run(util::days(7.0));
///   city.flow_metrics().by_flow(...);

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "df3/baselines/datacenter.hpp"
#include "df3/util/thread_pool.hpp"
#include "df3/core/cluster.hpp"
#include "df3/core/fleet_kernel.hpp"
#include "df3/core/heat_regulator.hpp"
#include "df3/grid/signal.hpp"
#include "df3/metrics/audit.hpp"
#include "df3/metrics/collectors.hpp"
#include "df3/net/network.hpp"
#include "df3/obs/obs.hpp"
#include "df3/policy/policy.hpp"
#include "df3/thermal/room.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/thermal/water_tank.hpp"
#include "df3/thermal/weather.hpp"
#include "df3/workload/generators.hpp"

namespace df3::core {

/// One building to instantiate: `rooms` rooms, each hosting one DF server
/// of the given family, all grouped into one cluster behind a gateway.
struct BuildingConfig {
  std::string name = "building";
  int rooms = 4;
  hw::ServerSpec server = hw::qrad_spec();
  thermal::RoomParams room = {};
  thermal::ComfortProfile comfort = {};
  util::Celsius initial_temperature{19.0};
  /// Proportional gain of the room thermostats (W per K of error).
  double thermostat_gain_w_per_k = 250.0;
  /// Peak solar + occupancy gain (W) reached in high summer; scales with
  /// the seasonal outdoor temperature (zero in deep winter). Keeps
  /// unheated shoulder-season rooms at the 22-24 degC the Figure-4 sites
  /// record in May.
  double solar_gain_peak_w = 180.0;
  net::LinkProfile lan = net::ethernet_lan();     ///< gateway <-> room servers
  net::LinkProfile device_link = net::zigbee();   ///< IoT sensors -> gateway/server
  net::LinkProfile wifi_link = net::wifi();       ///< payload-heavy edge clients
  net::LinkProfile uplink = net::fiber_wan();     ///< gateway -> internet
  /// Use the 2R2C (air + envelope mass) room model instead of 1R1C —
  /// higher fidelity for setback-recovery dynamics at ~10x the integration
  /// cost (explicit substeps).
  bool high_fidelity_rooms = false;
  thermal::Room2R2CParams room_2r2c = {};
  /// When set, the building is a *digital-boiler plant*: instead of
  /// room-heating servers it hosts one `server` (use a boiler spec)
  /// charging this hot-water store against `daily_hot_water_l` of draws.
  /// `rooms` is ignored. Hot water is wanted year-round, so such a
  /// building's compute capacity does not breathe with the seasons.
  std::optional<thermal::WaterTankParams> water_tank = std::nullopt;
  double daily_hot_water_l = 1500.0;
  /// Grid region this building draws from, by name on the installed
  /// GridPlane (DESIGN.md §15). Empty = region 0. Only consulted when a
  /// plane is installed; unknown names throw at install/add time.
  std::string grid_region = {};
};

struct PlatformConfig {
  std::uint64_t seed = 1;
  thermal::ClimateNormals climate = {};
  /// Physics / regulation control period.
  double tick_s = 60.0;
  ClusterConfig cluster = {};
  RegulatorConfig regulator = {};
  /// Attach a vertical-offload datacenter.
  bool with_datacenter = true;
  baselines::DatacenterConfig datacenter = {};
  /// Simulation start time (seconds since Jan 1); use
  /// thermal::start_of_month to start mid-season.
  sim::Time start_time = 0.0;
  /// Worker threads for the parallel physics phase of the tick: 0 = the
  /// DF3_PHYSICS_THREADS environment override when set, else one per
  /// hardware thread; 1 = fully serial. The effective count is additionally
  /// clamped to the shard count so tiny fleets never park idle workers. The
  /// phase split keeps results bit-for-bit identical for every value (see
  /// DESIGN.md, "Fleet-physics kernel").
  std::size_t physics_threads = 0;
  /// Worker threads for the control phase of the tick — the parallel
  /// control lanes (DESIGN.md §12). Each district shard is a lane whose
  /// building-local control decisions (thermostat math, DVFS regulation,
  /// inlet feedback, quiet-proof re-derivation) advance independently
  /// within the conservative horizon `now + Network::min_peer_latency()`;
  /// cross-lane effects (ledger reduction, event scheduling, peer pumps)
  /// drain serially in building-major order at the lane boundary. 0 = the
  /// DF3_CONTROL_THREADS environment override when set, else one per
  /// hardware thread; 1 = the serial sweep. Clamped to the lane (shard)
  /// count; falls back to the serial sweep when the lookahead is zero
  /// (some up link has zero base latency). Bit-for-bit neutral at every
  /// value.
  std::size_t control_threads = 0;
  /// Target rooms per physics shard (district). Buildings are packed into
  /// shards in insertion order until a shard reaches this many rooms, so
  /// the room -> shard map is stable for a given build order; building-major
  /// sweep order is preserved inside each shard and the serial control
  /// phase replays the global order, keeping every digest bit identical for
  /// any value. Smaller shards = more parallel slack, more scheduling
  /// overhead.
  std::size_t shard_rooms = 4096;
  /// Activity gating (DESIGN.md section 8): districts whose regulators are
  /// provably idle-stable skip the per-room control replay, and quiescent
  /// 2R2C slices stop substepping at a bitwise fixed point. Both fast paths
  /// fire only when bit-identical to the stepped path (assert-checked under
  /// DF3_AUDIT), so this is a pure speed knob.
  bool activity_gating = true;
  /// Federation peers per cluster: 0 = full mesh (the historical default),
  /// otherwise each cluster peers with its `federation_degree` next ring
  /// neighbors. City-scale benches set a small degree so peer wiring stays
  /// O(n) instead of O(n^2).
  std::size_t federation_degree = 0;
  /// Lifecycle-auditor level (DESIGN.md §9). Defaults to kCounters, or
  /// kFull when built with -DDF3_AUDIT=ON. Observation-only at any level:
  /// the simulation trajectory is bit-for-bit identical with auditing on
  /// or off.
  metrics::AuditLevel audit = metrics::kDefaultAuditLevel;
  /// Observability level + trace ring size (DESIGN.md §10). kOff records
  /// nothing; kCounters feeds and snapshots the metric registry each tick;
  /// kFull additionally records lifecycle/tick/fault trace events. All
  /// levels are observation-only: the simulation trajectory is bit-for-bit
  /// identical whatever the level. Ignored when built with -DDF3_OBS=OFF.
  obs::ObsConfig obs = {};
};

class Df3Platform {
 public:
  explicit Df3Platform(PlatformConfig config);

  /// Add a building with its rooms, servers, cluster and network segment.
  /// Returns the building index. Call before `run`.
  std::size_t add_building(const BuildingConfig& cfg);

  /// Attach an edge workload source to building `b`: Poisson arrivals at
  /// `rate_per_s` from the building's device node (ZigBee sensors) or,
  /// with `via_wifi`, from its Wi-Fi node (phones/tablets with payloads
  /// LPWAN radios cannot carry). Direct requests target worker 0; indirect
  /// go through the gateway.
  void add_edge_source(std::size_t b, workload::RequestFactory factory, double rate_per_s,
                       bool direct = false, bool via_wifi = false);

  /// Attach an edge source with a custom arrival process.
  void add_edge_source(std::size_t b, workload::RequestFactory factory,
                       std::unique_ptr<workload::ArrivalProcess> arrivals, bool direct = false,
                       bool via_wifi = false);

  /// Attach a cloud (Internet/DCC) source at `rate_per_s`, routed per the
  /// platform's CloudRouting policy.
  void add_cloud_source(workload::RequestFactory factory, double rate_per_s);
  void add_cloud_source(workload::RequestFactory factory,
                        std::unique_ptr<workload::ArrivalProcess> arrivals);

  /// Select the cloud-routing policy by registry name (built-ins:
  /// df-first, dc-only, season-aware, heat-aware, least-loaded). Unknown
  /// names throw std::invalid_argument listing the known ones. The default
  /// is df-first.
  void set_cloud_routing(const std::string& name);
  /// Install a custom routing policy instance (tests/experiments).
  void set_routing_policy(std::unique_ptr<policy::RoutingPolicy> p);
  [[nodiscard]] std::string_view routing_policy_name() const { return routing_->name(); }
  /// Routing-policy decisions taken so far (per-policy obs counter).
  [[nodiscard]] std::uint64_t routing_decisions() const { return routing_picks_; }

  /// Stop every attached workload source (pending arrivals are cancelled).
  /// Lets a scenario stop injecting and drain to quiescence, the state in
  /// which the lifecycle auditor's conservation check is exact.
  void stop_sources();

  // --- grid-signal plane (DESIGN.md §15) ---
  /// Install the per-region grid signals (carbon intensity, spot price,
  /// renewable share). The substrate owns the plane next to the weather
  /// model: the tick samples every region once, clusters and the routing
  /// view read the samples lazily, and the energy ledger attributes each
  /// building's joules to its region's signal at spend time. Buildings
  /// added before or after install are both bound (their
  /// BuildingConfig::grid_region name resolves against this plane; a
  /// second install throws). Runs without a plane are bit-for-bit
  /// unchanged — every grid code path is gated on its presence.
  void install_grid(grid::GridPlane plane);
  [[nodiscard]] grid::GridPlane* grid_plane() { return grid_.get(); }
  [[nodiscard]] const grid::GridPlane* grid_plane() const { return grid_.get(); }
  /// Region index building `b` draws from (valid once a plane is installed).
  [[nodiscard]] std::size_t building_region(std::size_t b) const { return bld_region_.at(b); }
  /// Last tick's sample for region `r` (the value policies observed).
  [[nodiscard]] const grid::GridSample& grid_sample(std::size_t r) const {
    return grid_now_.at(r);
  }

  /// Per-region economics, accumulated at spend time: each tick every
  /// building's facility joules (IT + overhead share) accrue to its
  /// region's account at that tick's price and carbon intensity.
  struct RegionAccount {
    double energy_j = 0.0;
    double cost_eur = 0.0;
    double co2_g = 0.0;
    std::uint64_t curtailed_ticks = 0;  ///< ticks the region ended curtailed
  };
  [[nodiscard]] const std::vector<RegionAccount>& grid_accounts() const { return grid_accounts_; }

  /// How often each lazy RoutingView fill actually ran — the observable
  /// side of the pay-for-what-you-ask contract (tests assert a policy that
  /// does not declare a need never triggers the fill).
  struct RoutingFillStats {
    std::uint64_t season = 0;   ///< needs_season() fills
    std::uint64_t cluster = 0;  ///< needs_cluster_info() fills
    std::uint64_t grid = 0;     ///< needs_grid() fills honored (plane present)
  };
  [[nodiscard]] const RoutingFillStats& routing_fill_stats() const { return routing_fills_; }

  // --- deterministic single-request injection (model checker, DESIGN.md
  // §13). Each call submits exactly one request *now*, through the same
  // auditor-fed funnels the Poisson sources use, so an exploration branch
  // can make a submission an explicit choice point instead of a random
  // arrival. The caller owns id uniqueness (the checker tags ids with a
  // high-bit namespace so they can never collide with source ids).
  /// Submit an edge request at building `b` from its device node (or
  /// directly to worker 0 with `direct`), exactly like add_edge_source
  /// traffic. `r.arrival` and `r.flow` are stamped here.
  void inject_edge(std::size_t b, workload::Request r, bool direct = false);
  /// Submit a cloud request targeted at building `b`'s cluster (bypassing
  /// the routing policy — the checker enumerates targets itself), paying
  /// the same internet -> gateway hop as add_cloud_source traffic.
  void inject_cloud_at(std::size_t b, workload::Request r);
  /// Run a pinned composition request on worker `w` of building `b`'s
  /// cluster (the run_pinned path: placement affinity + local_only).
  void inject_pinned(std::size_t b, std::size_t w, workload::Request r);

  /// Run the simulation for `duration` of simulated time.
  void run(util::Seconds duration);

  // --- component access (benches & tests) ---
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] const thermal::WeatherModel& weather() const { return weather_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] std::size_t building_count() const { return buildings_.size(); }
  /// Building `b`'s cluster. Completes any deferred federation wiring
  /// first, so the peer set is always consistent with the buildings added
  /// so far (add_building defers the O(n * degree) rebuild).
  [[nodiscard]] Cluster& cluster(std::size_t b);
  [[nodiscard]] baselines::Datacenter* datacenter() { return datacenter_.get(); }
  [[nodiscard]] sim::Time now() const { return sim_.now(); }

  // --- sharding & activity gating (benches & tests) ---
  /// Physics shards (districts) the current fleet packs into; rebuilds the
  /// shard map if buildings were added since the last tick.
  [[nodiscard]] std::size_t shard_count();
  /// District-ticks elapsed (shards x ticks) and how many of them took the
  /// activity-gated fast path. Their ratio is the bench's gated fraction.
  [[nodiscard]] std::uint64_t district_ticks() const { return district_ticks_; }
  [[nodiscard]] std::uint64_t gated_district_ticks() const { return gated_district_ticks_; }
  [[nodiscard]] double gated_district_fraction() const {
    return district_ticks_ == 0
               ? 0.0
               : static_cast<double>(gated_district_ticks_) / static_cast<double>(district_ticks_);
  }
  /// 2R2C substep accounting across the run (full substeps executed vs
  /// provably skipped at a bitwise fixed point by gated districts).
  [[nodiscard]] std::uint64_t substeps_run() const { return substeps_run_; }
  [[nodiscard]] std::uint64_t substeps_skipped() const { return substeps_skipped_; }
  /// Parallel-control-plane accounting (DESIGN.md §12): ticks whose control
  /// phase fanned out over lanes, and ticks where a zero conservative
  /// lookahead (some up link with zero base latency) forced the serial
  /// sweep despite an effective control_threads > 1.
  [[nodiscard]] std::uint64_t lane_parallel_ticks() const { return lane_parallel_ticks_; }
  [[nodiscard]] std::uint64_t lane_fallback_ticks() const { return lane_fallback_ticks_; }

  // --- results ---
  [[nodiscard]] const metrics::FlowMetrics& flow_metrics() const { return flow_metrics_; }
  /// The request-lifecycle conservation auditor. Fed every platform-routed
  /// submission and every terminal completion record; at kFull the physics
  /// tick additionally sweeps the structural invariants of every cluster.
  [[nodiscard]] const metrics::LifecycleAuditor& auditor() const { return auditor_; }
  [[nodiscard]] metrics::LifecycleAuditor& auditor() { return auditor_; }
  /// Run the structural invariant sweep over every cluster right now
  /// (regardless of audit level), report findings into the auditor, and
  /// return them. Cheap enough to call after every test scenario.
  std::vector<std::string> audit_now();
  [[nodiscard]] metrics::EnergyLedger& df_energy() { return df_energy_; }
  /// The run's telemetry sink (trace ring + metric registry), or nullptr
  /// when the configured obs level is kOff or the build compiled the hooks
  /// out (-DDF3_OBS=OFF). Export with obs::write_chrome_trace /
  /// obs::write_metrics_csv after the run.
  [[nodiscard]] obs::Observability* observability() { return obs_.get(); }
  [[nodiscard]] const obs::Observability* observability() const { return obs_.get(); }
  /// Mean room temperature across all rooms, per sample tick (Fig 4 input).
  [[nodiscard]] const util::TimeSeries& room_temperature_series() const { return temp_series_; }
  /// City usable cores sampled per tick (seasonality / capacity series, E9).
  [[nodiscard]] const util::TimeSeries& capacity_series() const { return capacity_series_; }
  /// Heat demand (W, city total) sampled per tick.
  [[nodiscard]] const util::TimeSeries& heat_demand_series() const { return demand_series_; }
  /// Outdoor temperature sampled per tick.
  [[nodiscard]] const util::TimeSeries& outdoor_series() const { return outdoor_series_; }
  [[nodiscard]] const metrics::ComfortMetrics& comfort(std::size_t b) const {
    return buildings_.at(b)->comfort_metrics;
  }
  /// Aggregate regulator tracking error across all servers.
  [[nodiscard]] double regulator_relative_error() const;
  [[nodiscard]] std::uint64_t total_preemptions() const;

  /// Room temperature of one room (tests).
  [[nodiscard]] util::Celsius room_temperature(std::size_t b, std::size_t r) const;

  /// Hot-water store temperature of a boiler building (tests/benches).
  [[nodiscard]] util::Celsius tank_temperature(std::size_t b) const;

  /// Dump the per-tick telemetry series as CSV (time_s, room_mean_c,
  /// usable_cores, heat_demand_w, outdoor_c) — the plotting input for
  /// every time-series figure.
  void export_series_csv(std::ostream& os) const;

 private:
  /// Struct-of-arrays per-room hot state — the *fleet*. Everything the
  /// physics tick touches per room lives in these contiguous arrays in
  /// building-major order, so the sweep streams through memory instead of
  /// chasing Building -> Cluster -> Worker pointer chains. Servers stay
  /// owned by their Worker (heap-stable behind a unique_ptr); the fleet
  /// keeps raw pointers as an index table.
  struct FleetState {
    // Static per-room bindings and parameters, frozen at add_building.
    std::vector<hw::DfServer*> server;
    std::vector<std::uint8_t> high_fidelity;  ///< 0 = 1R1C, 1 = 2R2C
    std::vector<std::uint8_t> dual_pipe;      ///< heat vents outdoors off-season
    std::vector<double> gains_w;              ///< internal gains (W)
    std::vector<double> hold_r;               ///< resistance for holding_power (K/W)
    std::vector<double> kp_w_per_k;           ///< thermostat proportional gain
    std::vector<double> rating_w;             ///< thermostat clamp (chassis rating)
    std::vector<double> r1_resistance;        ///< 1R1C envelope R
    std::vector<double> r1_decay;             ///< 1R1C exp(-tick/tau), precomputed
    std::vector<double> r2_r_ae, r2_r_eo, r2_c_air, r2_c_env;  ///< 2R2C params
    std::vector<double> r2_max_step;          ///< 2R2C stability bound (s)
    std::vector<double> r2_h_last;            ///< 2R2C final substep (s)
    std::vector<std::uint32_t> r2_n_full;     ///< 2R2C full substeps per tick
    // Mutable per-room state.
    std::vector<double> temp_c;               ///< room (air) temperature
    std::vector<double> env_c;                ///< 2R2C envelope temperature
    std::vector<double> last_demand_w;
    std::vector<std::uint8_t> last_season;
    std::vector<double> energy_mark_j;        ///< server energy at last tick
    std::vector<HeatRegulator> regulator;
    // Per-tick scratch: written by the (parallel) physics phase, consumed
    // in building-major order by the serial reduction, which replays the
    // exact accumulation order of the old single-threaded sweep.
    std::vector<double> delta_j;
    std::vector<double> useful_j;
    std::vector<std::uint8_t> indoors;

    [[nodiscard]] std::size_t size() const { return server.size(); }
  };

  struct TankUnit {
    thermal::WaterTank tank;
    HeatRegulator regulator;
    std::size_t worker_index = 0;
    hw::DfServer* server = nullptr;
    util::Watts rating{0.0};        ///< cfg.server.rated_power(), frozen
    util::Watts last_demand{0.0};
    util::Joules energy_mark{0.0};
    // Physics-phase scratch, consumed by the serial control phase.
    double scratch_delta_j = 0.0;
    double scratch_useful_j = 0.0;
    double scratch_draw_lps = 0.0;

    TankUnit(thermal::WaterTank t, HeatRegulator reg, std::size_t widx)
        : tank(std::move(t)), regulator(std::move(reg)), worker_index(widx) {}
  };

  struct Building {
    BuildingConfig cfg;
    net::NodeId gateway_node = 0;
    net::NodeId device_node = 0;
    net::NodeId wifi_node = 0;
    std::unique_ptr<Cluster> cluster;
    std::size_t room_begin = 0;  ///< [room_begin, room_end) in the fleet arrays
    std::size_t room_end = 0;
    std::optional<TankUnit> tank_unit;
    metrics::ComfortMetrics comfort_metrics;
  };

  /// One physics shard: a contiguous run of buildings (and their contiguous
  /// slice of the fleet arrays) ticked as one parallel work item.
  struct Shard {
    std::size_t bld_begin = 0;
    std::size_t bld_end = 0;
    std::size_t room_begin = 0;
    std::size_t room_end = 0;
  };

  void tick(sim::Time t);
  /// Rebuild every cluster's federation peer set: ring order, full mesh by
  /// default (so peers_[0] is always the next neighbor and the default
  /// "ring" selector reproduces the classic single-peer ring), or the
  /// `federation_degree` nearest ring neighbors when configured. Deferred:
  /// add_building only marks the wiring dirty and ensure_peers_wired()
  /// performs one O(n * degree) rebuild before anything observes peers.
  void wire_peers();
  void ensure_peers_wired();
  /// Rebuild the shard map (and the per-room scratch sized with it) after
  /// buildings changed. Packing is greedy in building order against
  /// config_.shard_rooms, so the room -> shard map is a pure function of
  /// the build sequence and the knob — stable across runs.
  void ensure_shards();
  /// Physics phase for one building: server/room/tank integration and
  /// per-building metrics. Touches only building-owned state plus this
  /// building's slice of the fleet arrays, so buildings can run on any
  /// thread in any order without changing a single bit of the result.
  /// Returns the 2R2C substep accounting for the building's rooms.
  fleet::Substeps2R2C physics_building(std::size_t b, sim::Time t, util::Celsius t_out,
                                       util::Celsius seasonal, double hour);
  /// Physics for every building of one shard, in building-major order.
  void physics_shard(std::size_t s, sim::Time t, util::Celsius t_out, util::Celsius seasonal,
                     double hour);
  /// Lane stage of the control phase for one building (DESIGN.md §12):
  /// every control decision that touches only building-owned state —
  /// thermostat demand math, regulate(), inlet feedback, last-demand
  /// bookkeeping, the gated-path audit replay (findings buffered, not
  /// reported), the quiet-proof re-derivation, and the speed sync of
  /// control-quiescent clusters. Never schedules events, never touches the
  /// ledger, auditor, city aggregates, or another building, so lanes can
  /// run it on any thread in any order without changing a single bit.
  void control_building_math(std::size_t b, double t_out_c, std::vector<std::string>& findings);
  /// Boundary-drain stage for one building: everything cross-cutting the
  /// lane split — the order-sensitive ledger/city-aggregate reduction and
  /// the deferred sync_workers() (event re-arming + queue pumps). Runs
  /// serially in building-major order in every execution mode, which is
  /// what keeps the golden digests bit-identical at any lane count.
  void control_building_reduce(std::size_t b, metrics::EnergyLedger::Accumulator& energy,
                               double& city_demand_w, double& city_cores, double& temp_sum,
                               std::size_t& room_count);
  [[nodiscard]] std::size_t physics_thread_count() const;
  [[nodiscard]] std::size_t control_thread_count() const;
  [[nodiscard]] Cluster* route_cloud_target();
  /// Resolve building `b`'s grid_region name against the installed plane
  /// and bind its cluster to the per-tick sample slot.
  void bind_building_grid(std::size_t b);
  void deliver_to_cluster(workload::Request r, std::size_t b, bool direct, bool via_wifi);
  /// Single funnel for terminal completion records: auditor first, then the
  /// flow metrics. Every sink and drop callback the platform installs must
  /// come through here so no terminal can bypass conservation accounting.
  void record_completion(const workload::CompletionRecord& rec);
  /// Open a causal journey at an intake point. Uses the owned sink directly
  /// (not the installed global) so manual injections between run() calls
  /// still start a journey.
  void open_journey(std::uint64_t id);
  /// Feed the metric registry from the tick's aggregates and the cluster /
  /// energy / outcome counters, then snapshot. kCounters and above.
  void feed_metrics(sim::Time t, double room_mean_c, double city_cores, double city_demand_w,
                    double outdoor_c);

  PlatformConfig config_;
  sim::Simulation sim_;
  thermal::WeatherModel weather_;
  std::unique_ptr<net::Network> network_;
  net::NodeId internet_node_;
  std::unique_ptr<baselines::Datacenter> datacenter_;
  std::vector<std::unique_ptr<Building>> buildings_;
  std::vector<std::unique_ptr<workload::WorkloadSource>> sources_;
  std::unique_ptr<sim::PeriodicProcess> physics_;
  FleetState fleet_;
  /// Per-building scratch filled by the physics phase (comfort target and
  /// heating-season flag for the tick), consumed by the control phase.
  std::vector<double> bld_target_c_;
  std::vector<std::uint8_t> bld_season_;
  /// Last-tick heat demand per building (W) — the signal heat-aware
  /// routing reads. Written by the control phase, building-major.
  std::vector<double> bld_demand_w_;
  /// Shard (district) map over the fleet; rebuilt lazily after
  /// add_building. Parallel physics fans out one work item per shard.
  std::vector<Shard> shards_;
  bool shards_dirty_ = true;
  bool peers_dirty_ = false;
  /// Per-room net heat input (W), staged by the scalar physics pass and
  /// consumed by the vector room-update kernels (fleet_kernel.hpp).
  std::vector<double> q_total_w_;
  /// Activity gating state. A building is *quiet* when its last control
  /// sweep left every regulator provably idle-stable (regulate() would be
  /// a bitwise no-op); the epoch pins the cluster state that proof was
  /// made against. bld_gated_ is per-tick scratch: physics decides, the
  /// control phase replays the decision.
  std::vector<std::uint8_t> bld_quiet_;
  std::vector<std::uint64_t> bld_quiet_epoch_;
  std::vector<std::uint8_t> bld_gated_;
  /// Per-tick scratch: 1 = the building's cluster was not control-quiescent
  /// during the lane stage, so its sync_workers() (event re-arms + pumps)
  /// runs in the serial boundary drain instead.
  std::vector<std::uint8_t> bld_sync_deferred_;
  /// Per-shard substep accounting scratch (parallel-written by shard, then
  /// reduced serially) and gating/substep run totals.
  std::vector<std::uint64_t> shard_substeps_run_;
  std::vector<std::uint64_t> shard_substeps_skipped_;
  std::uint64_t district_ticks_ = 0;
  std::uint64_t gated_district_ticks_ = 0;
  std::uint64_t substeps_run_ = 0;
  std::uint64_t substeps_skipped_ = 0;
  std::size_t tick_gated_districts_ = 0;
  /// Per-shard host-clock span scratch (workers record, the serial phase
  /// emits) + interned per-shard obs track names.
  std::vector<double> shard_span_begin_s_;
  std::vector<double> shard_span_end_s_;
  std::vector<std::string> shard_track_name_;
  /// Per-lane host-clock span scratch + interned lane obs track names, and
  /// the per-lane gated-replay finding buffers (appended by lanes under
  /// kFull audit, reported serially after the drain in lane order — which
  /// is building order, since lanes cover contiguous ascending ranges).
  std::vector<double> lane_span_begin_s_;
  std::vector<double> lane_span_end_s_;
  std::vector<std::string> lane_track_name_;
  std::vector<std::vector<std::string>> lane_findings_;
  std::uint64_t lane_parallel_ticks_ = 0;
  std::uint64_t lane_fallback_ticks_ = 0;
  std::unique_ptr<util::ThreadPool> physics_pool_;  ///< lazily created; shared with control lanes
  /// Resolved physics_threads (0 = not yet queried); hardware_concurrency
  /// is a per-call sysconf lookup, far too slow for the tick path.
  mutable std::size_t physics_threads_resolved_ = 0;
  mutable std::size_t control_threads_resolved_ = 0;
  /// Cloud-routing decision policy; df-first unless overridden.
  std::unique_ptr<policy::RoutingPolicy> routing_;
  /// Per-pick scratch for routing policies that need cluster info.
  std::vector<policy::ClusterInfo> routing_scratch_;
  std::uint64_t routing_picks_ = 0;
  RoutingFillStats routing_fills_;
  std::uint64_t source_counter_ = 0;
  /// Grid-signal plane (DESIGN.md §15); nullptr = no grid, every grid code
  /// path disabled. grid_now_ holds the per-region sample of the current
  /// tick; sized once at install and never resized, so clusters can hold
  /// stable pointers into it. bld_region_ maps building -> region.
  std::unique_ptr<grid::GridPlane> grid_;
  std::vector<grid::GridSample> grid_now_;
  std::vector<std::size_t> bld_region_;
  std::vector<RegionAccount> grid_accounts_;

  metrics::FlowMetrics flow_metrics_;
  metrics::LifecycleAuditor auditor_;
  metrics::EnergyLedger df_energy_;
  /// Telemetry sink; created in the constructor when config_.obs.level is
  /// above kOff (and the hooks are compiled in), installed as the process
  /// sink for the duration of each run() call.
  std::unique_ptr<obs::Observability> obs_;
  /// Registry handles + previous cumulative counter values for the per-tick
  /// metric feed (counters are fed by delta).
  struct ObsFeed {
    obs::MetricId room_mean_c, usable_cores, heat_demand_w, outdoor_c, regulator_err;
    obs::MetricId gated_districts;  ///< fleet/gated_districts gauge (per tick)
    obs::MetricId energy_it_j, energy_useful_j, energy_waste_j, energy_overhead_j, pue,
        heat_reuse;
    obs::MetricId preemptions, offload_horizontal, offload_vertical, edge_delays;
    obs::MetricId completed, deadline_missed, rejected, dropped;
    obs::MetricId response_s;
    // Per-policy decision counters (DESIGN.md §11).
    obs::MetricId routing_picks, placement_picks, peer_picks;
    std::vector<obs::MetricId> rung_ids;  ///< one per configured ladder rung
    // Per-flow SLO gauges (DESIGN.md §14): rolling-window deadline-miss
    // ratio and response p99, one pair per workload::Flow.
    std::vector<obs::MetricId> slo_miss_ratio, slo_p99_s;
    // Per-region grid gauges (DESIGN.md §15), registered at install_grid.
    std::vector<obs::MetricId> grid_carbon, grid_price, grid_curtailed;
    std::uint64_t prev_preemptions = 0, prev_horizontal = 0, prev_vertical = 0, prev_delays = 0;
    std::uint64_t prev_completed = 0, prev_missed = 0, prev_rejected = 0, prev_dropped = 0;
    std::uint64_t prev_routing_picks = 0, prev_placement_picks = 0, prev_peer_picks = 0;
    std::vector<std::uint64_t> prev_rung_hits;
  } feed_;
  util::TimeSeries temp_series_;
  util::TimeSeries capacity_series_;
  util::TimeSeries demand_series_;
  util::TimeSeries outdoor_series_;
};

}  // namespace df3::core
