#pragma once
/// \file function.hpp
/// \brief Move-only callable wrapper with small-buffer optimization.
///
/// `UniqueFunction<R(Args...)>` is the engine's replacement for
/// `std::function`: it never copies the target (so move-only captures such
/// as `std::unique_ptr` work), and callables up to `kInlineSize` bytes are
/// stored inline — no heap allocation, no atomic refcount. A simulation
/// callback is typically a lambda over a `this` pointer plus a couple of
/// scalars, which fits comfortably; larger targets fall back to the heap
/// transparently.
///
/// Differences from `std::function` (all deliberate):
///  * move-only — copying a pending event's callback is never meaningful;
///  * invoking an empty wrapper throws `std::bad_function_call` (same);
///  * a target only qualifies for inline storage if its move constructor is
///    `noexcept`, so moving a `UniqueFunction` is always `noexcept`.

#include <cstddef>
#include <cstring>
#include <functional>  // std::bad_function_call
#include <memory>
#include <type_traits>
#include <utility>

namespace df3::util {

namespace detail {
/// True for targets comparable against nullptr (function pointers,
/// std::function, member pointers) — an == nullptr target wraps as empty,
/// mirroring std::function's converting constructor.
template <class F, class = void>
inline constexpr bool is_null_comparable = false;
template <class F>
inline constexpr bool
    is_null_comparable<F, std::void_t<decltype(std::declval<const F&>() == nullptr)>> = true;
}  // namespace detail

template <class Signature>
class UniqueFunction;  // undefined primary; only R(Args...) is specialized

template <class R, class... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Inline storage size: fits a this-pointer plus five 8-byte captures.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (detail::is_null_comparable<D>) {
      if (f == nullptr) return;  // empty function pointer / std::function
    }
    construct<D>(std::forward<F>(f));
  }

  UniqueFunction(UniqueFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  UniqueFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  /// Invoke the target; throws std::bad_function_call when empty.
  R operator()(Args... args) const {
    if (ops_ == nullptr) throw std::bad_function_call();
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const UniqueFunction& f, std::nullptr_t) noexcept { return !f; }
  friend bool operator!=(const UniqueFunction& f, std::nullptr_t) noexcept {
    return static_cast<bool>(f);
  }

  void swap(UniqueFunction& other) noexcept {
    UniqueFunction tmp = std::move(other);
    other = std::move(*this);
    *this = std::move(tmp);
  }

  /// True if the current target lives in the inline buffer (empty -> false).
  /// Exposed for tests and allocation accounting.
  [[nodiscard]] bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

 private:
  union Storage {
    alignas(kInlineAlign) std::byte buf[kInlineSize];
    void* heap;
  };

  /// Per-target-type operation table; one static instance per (F, mode).
  /// `relocate`/`destroy` are null when the operation reduces to a byte copy
  /// / no-op (trivially-copyable inline targets and the heap pointer case),
  /// so the hot move/reset paths skip the indirect call entirely.
  struct Ops {
    R (*invoke)(const Storage&, Args&&...);
    void (*relocate)(Storage& dst, Storage& src) noexcept;  // move into dst, destroy src
    void (*destroy)(Storage&) noexcept;
    bool inline_stored;
  };

  template <class F>
  static constexpr bool fits_inline = sizeof(F) <= kInlineSize &&
                                      alignof(F) <= kInlineAlign &&
                                      std::is_nothrow_move_constructible_v<F>;

  template <class F>
  struct InlineOps {
    static F& get(const Storage& s) noexcept {
      return *std::launder(reinterpret_cast<F*>(const_cast<std::byte*>(s.buf)));
    }
    static R invoke(const Storage& s, Args&&... args) {
      return get(s)(std::forward<Args>(args)...);
    }
    static void relocate(Storage& dst, Storage& src) noexcept {
      ::new (static_cast<void*>(dst.buf)) F(std::move(get(src)));
      get(src).~F();
    }
    static void destroy(Storage& s) noexcept { get(s).~F(); }
    static constexpr Ops ops{&invoke,
                             std::is_trivially_copyable_v<F> ? nullptr : &relocate,
                             std::is_trivially_destructible_v<F> ? nullptr : &destroy,
                             true};
  };

  template <class F>
  struct HeapOps {
    static F& get(const Storage& s) noexcept { return *static_cast<F*>(s.heap); }
    static R invoke(const Storage& s, Args&&... args) {
      return get(s)(std::forward<Args>(args)...);
    }
    static void destroy(Storage& s) noexcept { delete static_cast<F*>(s.heap); }
    // Relocation is always a pointer steal -> plain storage copy (null).
    static constexpr Ops ops{&invoke, nullptr, &destroy, false};
  };

  template <class D, class F>
  void construct(F&& f) {
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      storage_.heap = new D(std::forward<F>(f));
      ops_ = &HeapOps<D>::ops;
    }
  }

  // GCC cannot see that relocate_from is only reached when `other` holds a
  // target (ops_ != nullptr implies storage_ was written) and warns about
  // copying the possibly-uninitialized inline buffer.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
  void relocate_from(UniqueFunction& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      // Trivially relocatable (incl. the heap pointer case): byte copy.
      std::memcpy(&storage_, &other.storage_, sizeof(Storage));
    }
    other.ops_ = nullptr;
  }
#pragma GCC diagnostic pop

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  mutable Storage storage_;
  const Ops* ops_ = nullptr;
};

template <class R, class... Args>
void swap(UniqueFunction<R(Args...)>& a, UniqueFunction<R(Args...)>& b) noexcept {
  a.swap(b);
}

}  // namespace df3::util
