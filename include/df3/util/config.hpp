#pragma once
/// \file config.hpp
/// \brief Minimal key=value scenario-file parser for the df3run tool.
///
/// Format: one `key = value` per line; `#` starts a comment; blank lines
/// ignored; keys and values are trimmed. Values stay strings until typed
/// accessors convert them (with range/format errors surfaced as
/// std::invalid_argument naming the key).
///
/// The parser also tracks which keys were *accessed* (via has/get_*), so a
/// tool can demand exhaustion after reading its known keys: a scenario typo
/// like `routting = heat-aware` then fails loudly (`check_exhausted`)
/// instead of silently running the default.

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace df3::util {

class KeyValueConfig {
 public:
  /// Parse from a stream. Throws std::invalid_argument on malformed lines
  /// (no '='), duplicate keys, or empty keys.
  [[nodiscard]] static KeyValueConfig parse(std::istream& is);

  /// Parse a file by path; throws std::runtime_error if unreadable.
  [[nodiscard]] static KeyValueConfig parse_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed accessors with defaults; conversion failures throw
  /// std::invalid_argument naming the key.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  /// Accepts true/false/1/0/yes/no (case-insensitive).
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// All keys, sorted — callers can reject unknown keys for typo safety.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Keys present in the file that no has/get_* call ever asked about,
  /// sorted. These are almost always typos.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

  /// Print one warning line per unused key to `os`; returns how many.
  std::size_t warn_unused(std::ostream& os) const;

  /// Throw std::invalid_argument naming every unused key. Call after the
  /// tool has read all the keys it understands.
  void check_exhausted() const;

 private:
  std::map<std::string, std::string> values_;
  /// Keys ever passed to has/get_* (whether present or not) — mutable
  /// because lookups are semantically const.
  mutable std::set<std::string> accessed_;
};

}  // namespace df3::util
