#pragma once
/// \file table.hpp
/// \brief Aligned text / CSV table rendering for experiment harness output.
///
/// Every bench binary regenerates one of the paper's figures/tables; this
/// writer gives them a uniform, diff-friendly output format.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace df3::util {

/// A cell is a string, an integer, or a double (rendered with the table's
/// floating-point precision).
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned table with an optional title, renderable as padded text or
/// CSV. Rows are appended in display order.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, std::string title = "");

  /// Append one row. Throws if the arity does not match the header count.
  void add_row(std::vector<Cell> row);

  /// Number of fractional digits used when rendering double cells (default 3).
  void set_precision(int digits) { precision_ = digits; }

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  /// Render as an aligned text table (for terminal / bench output).
  void print(std::ostream& os) const;

  /// Render as CSV (no escaping of embedded commas; cell text in df3sim is
  /// identifier-like by construction).
  void print_csv(std::ostream& os) const;

  /// Convenience: text render to a string.
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::string render_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace df3::util
