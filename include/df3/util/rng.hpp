#pragma once
/// \file rng.hpp
/// \brief Deterministic, stream-splittable random number generation.
///
/// Every stochastic component in df3sim (weather noise, arrival processes,
/// job sizes, host churn...) draws from its own named `RngStream`, derived
/// from a single experiment seed. Two properties follow:
///
///  1. **Bit-for-bit reproducibility** — same seed, same trajectory, on any
///     platform (we never use `std::` distributions, whose output is
///     implementation-defined; all sampling code below is ours).
///  2. **Variance-reduction-friendly decoupling** — adding a consumer of one
///     stream never perturbs the draws seen by another, so A/B policy
///     comparisons see identical workloads ("common random numbers").
///
/// Engine: xoshiro256** seeded via SplitMix64, the standard pairing.

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace df3::util {

/// SplitMix64 step; used for seeding and for hashing stream names.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a 64-bit hash of a string; used to derive per-stream seeds from
/// human-readable stream names.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via SplitMix64 so that nearby seeds give unrelated states.
  constexpr explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// A named substream of the experiment-level seed, with portable sampling
/// routines. Cheap to copy; copies continue independently from the same
/// state (copy deliberately shares *history*, not future draws).
class RngStream {
 public:
  /// Derive a stream from `(experiment_seed, name)`. Distinct names yield
  /// statistically independent streams.
  RngStream(std::uint64_t experiment_seed, std::string_view name)
      : engine_(experiment_seed ^ fnv1a64(name)) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    // 53 high bits -> double mantissa, the canonical portable construction.
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] (inclusive). Uses rejection to stay unbiased.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with rate `lambda` (mean 1/lambda). Inter-arrival times of a
  /// Poisson process.
  [[nodiscard]] double exponential(double lambda);

  /// Standard normal via polar Box-Muller (cached spare for determinism).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0);

  /// Log-normal with given *underlying* normal parameters.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Bounded Pareto on [lo, hi] with shape alpha — heavy-tailed job sizes.
  [[nodiscard]] double bounded_pareto(double alpha, double lo, double hi);

  /// Poisson-distributed count with given mean (Knuth for small mean,
  /// normal approximation above 60).
  [[nodiscard]] std::int64_t poisson(double mean);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t bits() { return engine_(); }

 private:
  Xoshiro256 engine_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace df3::util
