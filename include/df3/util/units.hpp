#pragma once
/// \file units.hpp
/// \brief Strong physical-unit types used throughout df3sim.
///
/// The simulator mixes thermal, electrical and timing quantities; mixing up
/// a Watt with a Joule (or a Celsius with a Kelvin-difference) is the classic
/// building-physics bug. Each quantity below is a distinct arithmetic strong
/// type with only physically meaningful operators defined:
///
///   Watts * Seconds  -> Joules          (energy = power x time)
///   Joules / Seconds -> Watts
///   Celsius - Celsius -> KelvinDelta    (absolute temps subtract to a delta)
///   Celsius + KelvinDelta -> Celsius
///
/// All quantities store `double` in SI base units (W, J, s, degC, Hz, bytes,
/// bit/s) and are trivially copyable.

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace df3::util {

/// CRTP base for a double-backed strong unit with additive group structure
/// and scalar multiplication. Derived types opt into cross-unit operators.
template <class Derived>
struct Quantity {
  double v{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v(value) {}

  /// Raw value in the SI base unit of the derived quantity.
  [[nodiscard]] constexpr double value() const { return v; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.v + b.v}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.v - b.v}; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.v}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.v * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.v <=> b.v; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.v == b.v; }

  constexpr Derived& operator+=(Derived o) {
    v += o.v;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived o) {
    v -= o.v;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator*=(double s) {
    v *= s;
    return static_cast<Derived&>(*this);
  }
};

/// Electrical or thermal power, in watts. In a data-furnace server these are
/// the *same number*: electrical power drawn is heat emitted (free cooling,
/// no fans doing outside work).
struct Watts : Quantity<Watts> {
  using Quantity::Quantity;
};

/// Energy, in joules.
struct Joules : Quantity<Joules> {
  using Quantity::Quantity;
  [[nodiscard]] constexpr double kwh() const { return v / 3.6e6; }
};

/// Duration, in seconds (simulation time is also kept in seconds).
struct Seconds : Quantity<Seconds> {
  using Quantity::Quantity;
};

/// Absolute temperature in degrees Celsius. Subtraction yields KelvinDelta.
struct Celsius {
  double v{0.0};
  constexpr Celsius() = default;
  constexpr explicit Celsius(double value) : v(value) {}
  [[nodiscard]] constexpr double value() const { return v; }
  friend constexpr auto operator<=>(Celsius a, Celsius b) { return a.v <=> b.v; }
  friend constexpr bool operator==(Celsius a, Celsius b) { return a.v == b.v; }
};

/// Temperature difference in kelvin (== difference in Celsius degrees).
struct KelvinDelta : Quantity<KelvinDelta> {
  using Quantity::Quantity;
};

constexpr KelvinDelta operator-(Celsius a, Celsius b) { return KelvinDelta{a.v - b.v}; }
constexpr Celsius operator+(Celsius a, KelvinDelta d) { return Celsius{a.v + d.v}; }
constexpr Celsius operator+(KelvinDelta d, Celsius a) { return Celsius{a.v + d.v}; }
constexpr Celsius operator-(Celsius a, KelvinDelta d) { return Celsius{a.v - d.v}; }

/// Clock frequency, in hertz.
struct Hertz : Quantity<Hertz> {
  using Quantity::Quantity;
  [[nodiscard]] constexpr double ghz() const { return v / 1e9; }
};

/// Data size, in bytes.
struct Bytes : Quantity<Bytes> {
  using Quantity::Quantity;
};

/// Data rate, in bits per second.
struct BitsPerSecond : Quantity<BitsPerSecond> {
  using Quantity::Quantity;
};

// --- cross-unit physics ---
constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.v * t.v}; }
constexpr Joules operator*(Seconds t, Watts p) { return Joules{p.v * t.v}; }
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.v / t.v}; }
constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.v / p.v}; }

/// Serialization delay of `b` bytes over rate `r`.
constexpr Seconds transmission_time(Bytes b, BitsPerSecond r) {
  return Seconds{(b.v * 8.0) / r.v};
}

// --- literals-style helpers (plain functions; real UDLs would need a
// namespace ceremony the call sites don't benefit from) ---
constexpr Watts watts(double w) { return Watts{w}; }
constexpr Watts kilowatts(double kw) { return Watts{kw * 1e3}; }
constexpr Joules joules(double j) { return Joules{j}; }
constexpr Joules kilowatt_hours(double kwh) { return Joules{kwh * 3.6e6}; }
constexpr Seconds seconds(double s) { return Seconds{s}; }
constexpr Seconds minutes(double m) { return Seconds{m * 60.0}; }
constexpr Seconds hours(double h) { return Seconds{h * 3600.0}; }
constexpr Seconds days(double d) { return Seconds{d * 86400.0}; }
constexpr Celsius celsius(double c) { return Celsius{c}; }
constexpr KelvinDelta kelvin(double k) { return KelvinDelta{k}; }
constexpr Hertz ghz(double g) { return Hertz{g * 1e9}; }
constexpr Bytes bytes(double b) { return Bytes{b}; }
constexpr Bytes kibibytes(double k) { return Bytes{k * 1024.0}; }
constexpr Bytes mebibytes(double m) { return Bytes{m * 1024.0 * 1024.0}; }
constexpr BitsPerSecond bps(double b) { return BitsPerSecond{b}; }
constexpr BitsPerSecond kbps(double k) { return BitsPerSecond{k * 1e3}; }
constexpr BitsPerSecond mbps(double m) { return BitsPerSecond{m * 1e6}; }
constexpr BitsPerSecond gbps(double g) { return BitsPerSecond{g * 1e9}; }

inline std::ostream& operator<<(std::ostream& os, Watts w) { return os << w.v << " W"; }
inline std::ostream& operator<<(std::ostream& os, Joules j) { return os << j.v << " J"; }
inline std::ostream& operator<<(std::ostream& os, Seconds s) { return os << s.v << " s"; }
inline std::ostream& operator<<(std::ostream& os, Celsius c) { return os << c.v << " degC"; }
inline std::ostream& operator<<(std::ostream& os, KelvinDelta d) { return os << d.v << " K"; }

}  // namespace df3::util
