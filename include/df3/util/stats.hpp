#pragma once
/// \file stats.hpp
/// \brief Streaming summary statistics, percentile collection, and
///        time-weighted accumulators used by metric collectors.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace df3::util {

/// Welford online mean/variance accumulator. O(1) memory, numerically stable.
class StreamingStats {
 public:
  // Header-inline: this accumulator sits on the per-room-tick hot path of
  // the platform (regulator error tracking), ~1e8 calls per simulated year.
  void add(double x) {
    if (n_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact-percentile sample collector. Stores every observation (simulation
/// scale keeps this cheap) and sorts lazily on query. Also exposes the
/// StreamingStats summary of the same data.
class PercentileSampler {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Percentile by linear interpolation between closest ranks.
  /// `p` in [0, 100]. Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  [[nodiscard]] const StreamingStats& summary() const { return summary_; }
  [[nodiscard]] double mean() const { return summary_.mean(); }
  [[nodiscard]] double max() const { return summary_.max(); }
  [[nodiscard]] double min() const { return summary_.min(); }

  void merge(const PercentileSampler& other);
  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  StreamingStats summary_;
};

/// Time-weighted mean of a piecewise-constant signal, e.g. "average number
/// of busy workers" or "mean room temperature". Call `record(t, value)` each
/// time the signal changes; queries integrate the step function.
class TimeWeightedValue {
 public:
  /// Record that the signal takes `value` from time `t` onwards.
  /// Times must be non-decreasing. Header-inline: called twice per room per
  /// physics tick by the comfort collectors.
  void record(double t, double value) {
    if (!started_) {
      started_ = true;
      first_t_ = last_t_ = t;
      last_value_ = value;
      return;
    }
    if (t < last_t_) throw std::invalid_argument("TimeWeightedValue: time went backwards");
    weighted_sum_ += last_value_ * (t - last_t_);
    last_t_ = t;
    last_value_ = value;
  }

  /// Close the observation window at time `t` and return the time-weighted
  /// mean over [first_record, t]. Does not mutate state.
  [[nodiscard]] double mean_until(double t) const;

  /// Time integral of the signal over [first_record, t]
  /// (e.g. watt-signal -> joules).
  [[nodiscard]] double integral_until(double t) const;

  [[nodiscard]] bool empty() const { return !started_; }
  [[nodiscard]] double last_value() const { return last_value_; }

 private:
  bool started_ = false;
  double first_t_ = 0.0;
  double last_t_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;  // integral of value dt up to last_t_
};

/// Fixed set of (time, value) samples of a continuous signal, for exporting
/// series (monthly temperature, capacity per week, ...).
struct TimeSeries {
  std::vector<double> times;
  std::vector<double> values;

  void add(double t, double v) {
    times.push_back(t);
    values.push_back(v);
  }
  [[nodiscard]] std::size_t size() const { return times.size(); }
  [[nodiscard]] bool empty() const { return times.empty(); }

  /// Mean of values whose time lies in [t0, t1).
  [[nodiscard]] double mean_in_window(double t0, double t1) const;
};

/// Ordinary least squares fit y = a + b*x with goodness-of-fit. Used by the
/// thermosensitivity analysis (heat demand vs outdoor temperature).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double predict(double x) const { return intercept + slope * x; }
};

/// Fit OLS over paired samples. Requires xs.size() == ys.size() >= 2.
[[nodiscard]] LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys);

/// Pearson correlation of paired samples; 0 if degenerate.
[[nodiscard]] double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace df3::util
