#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size worker pool for embarrassingly parallel sweeps.
///
/// The simulation engine itself is single-threaded and deterministic; the
/// pool parallelizes *across* independent simulations — parameter sweeps in
/// the bench harness and Monte-Carlo replications. Each task runs its own
/// `Simulation`, so no shared mutable state crosses threads.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace df3::util {

/// Fixed-size thread pool; joins all workers on destruction.
class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Run `fn(i)` for every i in [0, n) and return once all calls finished.
  /// The calling thread participates, so a pool of T threads gives T+1
  /// concurrent lanes. Unlike submit(), indices are handed out through one
  /// shared atomic counter — no per-item futures or queue traffic — which
  /// makes it cheap enough to call every physics tick. At most n-1 helpers
  /// are enqueued and exactly that many workers are woken, so batches
  /// narrower than the pool (a tick with few shards) leave the remaining
  /// workers parked. The first exception thrown by `fn` is rethrown here
  /// after the batch drains.
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run `fn(i)` for i in [0, n) on a transient pool and block until done.
/// Results are collected in index order, so output is deterministic even
/// though execution order is not. Work is submitted as ~2x-threads
/// contiguous index chunks (not one task per item), so the per-task
/// packaged_task/future overhead is amortized across sweep sizes while
/// still leaving enough chunks for load balancing under uneven item costs.
template <class Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t threads = 0)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  std::vector<R> results;
  if (n == 0) return results;
  ThreadPool pool(threads);
  const std::size_t chunks = std::min(n, 2 * pool.size());
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::vector<std::future<std::vector<R>>> futures;
  futures.reserve(chunks);
  std::size_t lo = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t hi = lo + base + (c < rem ? 1 : 0);
    futures.push_back(pool.submit([&fn, lo, hi] {
      std::vector<R> part;
      part.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) part.push_back(fn(i));
      return part;
    }));
    lo = hi;
  }
  results.reserve(n);
  for (auto& f : futures) {
    std::vector<R> part = f.get();
    for (auto& r : part) results.push_back(std::move(r));
  }
  return results;
}

}  // namespace df3::util
