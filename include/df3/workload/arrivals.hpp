#pragma once
/// \file arrivals.hpp
/// \brief Arrival processes for the request flows.
///
/// The paper's central operational difficulty (section II-C) is that the
/// arrival laws of the flows "do not necessarily depend on the same
/// parameters": heating demand follows the seasons, Internet demand follows
/// business opportunity, edge demand follows local human activity. We model
/// each with an appropriate point process:
///
///  * `PoissonArrivals`        — homogeneous, for steady edge streams;
///  * `MmppArrivals`           — 2-state Markov-modulated Poisson (bursts);
///  * `ModulatedArrivals`      — nonhomogeneous Poisson with an arbitrary
///                               rate function, sampled by thinning; helpers
///                               provide business-hours and diurnal shapes.
///
/// All processes draw from a caller-owned RngStream, so common-random-
/// number experiments stay paired across policies.

#include <functional>
#include <memory>

#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

namespace df3::workload {

/// A point process generating arrival instants.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The first arrival strictly after `t`.
  [[nodiscard]] virtual sim::Time next_after(sim::Time t, util::RngStream& rng) = 0;

  /// Long-run mean rate (arrivals/second), for sizing and reporting.
  [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Homogeneous Poisson process with rate `lambda` (arrivals/second).
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_s);
  [[nodiscard]] sim::Time next_after(sim::Time t, util::RngStream& rng) override;
  [[nodiscard]] double mean_rate() const override { return rate_; }

 private:
  double rate_;
};

/// Two-state Markov-modulated Poisson process: alternates between a quiet
/// state (rate_low) and a burst state (rate_high) with exponential sojourn
/// times. Captures DCC request peaks (paper section III-B, "management of
/// requests peak").
class MmppArrivals final : public ArrivalProcess {
 public:
  MmppArrivals(double rate_low, double rate_high, double mean_low_sojourn_s,
               double mean_high_sojourn_s);
  [[nodiscard]] sim::Time next_after(sim::Time t, util::RngStream& rng) override;
  [[nodiscard]] double mean_rate() const override;

  [[nodiscard]] bool in_burst() const { return in_high_; }

 private:
  void advance_state(sim::Time t, util::RngStream& rng);

  double rate_low_, rate_high_;
  double mean_low_s_, mean_high_s_;
  bool in_high_ = false;
  sim::Time state_until_ = 0.0;
  bool initialised_ = false;
};

/// Nonhomogeneous Poisson process sampled by Lewis-Shedler thinning.
/// `rate_fn(t)` must never exceed `rate_max`.
class ModulatedArrivals final : public ArrivalProcess {
 public:
  ModulatedArrivals(std::function<double(sim::Time)> rate_fn, double rate_max,
                    double mean_rate_hint);
  [[nodiscard]] sim::Time next_after(sim::Time t, util::RngStream& rng) override;
  [[nodiscard]] double mean_rate() const override { return mean_rate_hint_; }

 private:
  std::function<double(sim::Time)> rate_fn_;
  double rate_max_;
  double mean_rate_hint_;
};

/// Deterministic fixed-period arrivals — sensor telemetry and other
/// sense-compute-actuate loops sample on a clock, not a Poisson process
/// (paper §III-B: "we must consider the sense-compute-actuate paradigm
/// that implies to frequently collect data").
class FixedIntervalArrivals final : public ArrivalProcess {
 public:
  explicit FixedIntervalArrivals(double period_s, double phase_s = 0.0);
  [[nodiscard]] sim::Time next_after(sim::Time t, util::RngStream& rng) override;
  [[nodiscard]] double mean_rate() const override { return 1.0 / period_; }

 private:
  double period_;
  double phase_;
};

/// Rate function: `base_rate` multiplied by `business_factor` during
/// Mon-Fri 08:00-18:00 (cloud/DCC demand follows office hours).
[[nodiscard]] std::unique_ptr<ModulatedArrivals> business_hours_arrivals(double base_rate,
                                                                         double business_factor);

/// Rate function: sinusoidal diurnal shape peaking at `peak_hour`, between
/// `base_rate*(1-depth)` and `base_rate*(1+depth)` (edge/human activity).
[[nodiscard]] std::unique_ptr<ModulatedArrivals> diurnal_arrivals(double base_rate, double depth,
                                                                  double peak_hour = 19.0);

}  // namespace df3::workload
