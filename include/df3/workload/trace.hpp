#pragma once
/// \file trace.hpp
/// \brief Request trace record / persist / replay.
///
/// Traces let experiments run the *identical* request sequence against
/// different platforms or policies (paired comparison), and let users feed
/// df3sim with externally produced workloads. The on-disk format is a plain
/// CSV with one request per row.

#include <iosfwd>
#include <string>
#include <vector>

#include "df3/sim/engine.hpp"
#include "df3/workload/request.hpp"

namespace df3::workload {

/// An ordered collection of requests (nondecreasing arrival time).
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests);

  /// Append a request; arrival must be >= the last request's arrival.
  void add(Request r);

  [[nodiscard]] const std::vector<Request>& requests() const { return requests_; }
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }

  /// Total gigacycles across all requests and tasks.
  [[nodiscard]] double total_work() const;

  /// Serialize to CSV (header + one row per request).
  void save(std::ostream& os) const;

  /// Parse a CSV previously produced by `save`. Throws on malformed input.
  [[nodiscard]] static Trace load(std::istream& is);

 private:
  std::vector<Request> requests_;
};

/// Replays a trace into a sink as simulation events. Requests whose arrival
/// precedes the current simulation time are emitted immediately.
class TraceReplayer : public sim::Entity {
 public:
  using Sink = std::function<void(Request)>;

  TraceReplayer(sim::Simulation& sim, std::string name, Trace trace, Sink sink);

  /// Schedule every request for delivery. Call once.
  void start();

  [[nodiscard]] std::size_t remaining() const { return remaining_; }

 private:
  Trace trace_;
  Sink sink_;
  std::size_t remaining_ = 0;
  bool started_ = false;
};

}  // namespace df3::workload
