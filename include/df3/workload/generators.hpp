#pragma once
/// \file generators.hpp
/// \brief Request factories and self-scheduling workload sources.
///
/// Factories build `Request` objects for the application families the paper
/// names: in-situ alarm-sound detection (Durand et al. 2017 — the paper's
/// proof that near-real-time audio workloads run on digital heaters),
/// location-based edge services (map serving, traffic estimation, per Liu
/// et al.'s "low-bandwidth neighborhood" class), and the Qarnot rendering
/// platform's batch jobs. A `WorkloadSource` couples an arrival process to
/// a factory and pushes requests into a sink as simulation events.

#include <functional>
#include <memory>
#include <string>

#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"
#include "df3/workload/arrivals.hpp"
#include "df3/workload/request.hpp"

namespace df3::workload {

/// Builds one request; the arrival time and id are filled in by the caller.
using RequestFactory = std::function<Request(util::RngStream&)>;

// --- edge application families --------------------------------------------

/// Audio-alarm detection inference: one ~1 s audio frame, a small CNN pass.
/// Work ~0.5-1.5 Gcycles, deadline ~2 s (near-real-time alert).
[[nodiscard]] RequestFactory alarm_detection_factory(Flow flow = Flow::kEdgeIndirect);

/// Map-tile serving: lookup + render of a tile. Work ~0.2-0.6 Gcycles,
/// ~100 KiB out, deadline 1 s.
[[nodiscard]] RequestFactory map_serving_factory(Flow flow = Flow::kEdgeIndirect);

/// Traffic estimation over recent sensor windows: ~2-6 Gcycles, deadline
/// 5 s; inputs from many sensors (larger payload in).
[[nodiscard]] RequestFactory traffic_estimation_factory(Flow flow = Flow::kEdgeIndirect);

/// Fall-detection (wearable) event classification: tiny work, tight 500 ms
/// deadline, privacy-sensitive (never offloaded vertically).
[[nodiscard]] RequestFactory fall_detection_factory(Flow flow = Flow::kEdgeDirect);

/// Periodic sensor telemetry sample (temperature/humidity/presence frame):
/// tiny payload, light aggregation work, soft freshness deadline.
[[nodiscard]] RequestFactory telemetry_factory(Flow flow = Flow::kEdgeIndirect);

// --- cloud / DCC application families --------------------------------------

/// 3D rendering batch: `frames` tasks of heavy-tailed per-frame work
/// (bounded Pareto, minutes to ~2 h on one core at nominal clocks).
[[nodiscard]] RequestFactory render_batch_factory(int min_frames = 8, int max_frames = 64);

/// Financial risk simulation (the paper's bank customers): wide batch of
/// independent Monte-Carlo tasks, moderate per-task work.
[[nodiscard]] RequestFactory risk_simulation_factory();

/// Tightly coupled iterative solver: parallel tasks with a synchronous
/// all-to-all communication fraction — the app class the paper predicts
/// data furnace handles poorly (section VI).
[[nodiscard]] RequestFactory coupled_solver_factory(int tasks = 16, double comm_fraction = 0.35);

/// Storage-style request: negligible compute, large data movement. Produces
/// almost no heat — the paper's argument why storage is uninteresting for
/// data furnace.
[[nodiscard]] RequestFactory storage_request_factory();

// --- source ----------------------------------------------------------------

/// Emits requests from `factory` at instants from `arrivals` into `sink`.
/// Owns its RNG stream; distinct sources never share draws.
class WorkloadSource : public sim::Entity {
 public:
  using Sink = std::function<void(Request)>;

  WorkloadSource(sim::Simulation& sim, std::string name, std::uint64_t seed,
                 std::unique_ptr<ArrivalProcess> arrivals, RequestFactory factory, Sink sink);

  /// Begin emitting from the current simulation time; idempotent.
  void start();
  /// Stop emitting; the pending arrival (if any) is cancelled.
  void stop();

  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  void arm(sim::Time from);

  util::RngStream rng_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  RequestFactory factory_;
  Sink sink_;
  sim::EventHandle next_;
  bool running_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace df3::workload
