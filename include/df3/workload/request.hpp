#pragma once
/// \file request.hpp
/// \brief The unit of work flowing through DF3: one request in one of the
///        paper's three flows.
///
/// Paper section II-C defines the flows:
///   * **heating** — comfort targets from the hosts (not represented here;
///     they are continuous signals produced by thermostats, see
///     df3::thermal);
///   * **Internet (cloud / DCC)** — batch computations from remote users;
///   * **local (edge)** — near-real-time requests from the local network,
///     *direct* (device -> server) or *indirect* (device -> gateway ->
///     worker).
///
/// Work is measured in gigacycles per task (a core at f GHz retires f
/// gigacycles per second), so the same request takes longer on a
/// downclocked or throttled server — this is the coupling between heat
/// demand and computing capacity the whole model is about.

#include <cstdint>
#include <optional>
#include <string>

#include "df3/sim/engine.hpp"
#include "df3/util/units.hpp"

namespace df3::workload {

/// Which of the paper's request flows this request belongs to.
enum class Flow : std::uint8_t { kCloud, kEdgeDirect, kEdgeIndirect };

[[nodiscard]] constexpr bool is_edge(Flow f) { return f != Flow::kCloud; }

[[nodiscard]] constexpr const char* flow_name(Flow f) {
  switch (f) {
    case Flow::kCloud: return "cloud";
    case Flow::kEdgeDirect: return "edge-direct";
    case Flow::kEdgeIndirect: return "edge-indirect";
  }
  return "?";
}

/// One computing request.
struct Request {
  std::uint64_t id = 0;
  Flow flow = Flow::kCloud;
  sim::Time arrival = 0.0;

  /// Application label ("render", "alarm-detection", ...), for reporting
  /// and the suitability experiment E12.
  std::string app = "generic";

  /// CPU work per task, in gigacycles.
  double work_gigacycles = 1.0;

  /// Number of parallel tasks (render batches, parallel solvers). Tasks are
  /// independently schedulable; the request completes when all finish.
  int tasks = 1;

  /// Fraction of each task's runtime spent in synchronous all-to-all
  /// communication (0 = embarrassingly parallel). Tightly coupled apps pay
  /// this over the cluster network — the paper predicts they fare poorly on
  /// data furnace (section VI).
  double comm_fraction = 0.0;

  util::Bytes input_size{1024.0};
  util::Bytes output_size{1024.0};

  /// Relative deadline (seconds after arrival) for near-real-time edge
  /// requests; nullopt for throughput-oriented cloud jobs.
  std::optional<double> deadline_s;

  /// Whether a running task may be preempted and resumed later (checkpoint
  /// restart). The paper's peak-management options include preempting DCC
  /// work for edge requests.
  bool preemptible = true;

  /// Privacy-sensitive requests must not leave the local cluster
  /// (vertical offloading forbidden) — edge confidentiality, section I.
  bool privacy_sensitive = false;

  /// Total gigacycles across all tasks.
  [[nodiscard]] double total_work() const { return work_gigacycles * tasks; }

  /// Absolute deadline, if any.
  [[nodiscard]] std::optional<sim::Time> absolute_deadline() const {
    if (!deadline_s) return std::nullopt;
    return arrival + *deadline_s;
  }
};

/// Terminal status of a request, for metric collection.
enum class Outcome : std::uint8_t {
  kCompleted,        ///< finished (deadline met if it had one)
  kDeadlineMissed,   ///< finished or abandoned after its deadline
  kRejected,         ///< admission control refused it
  kDropped,          ///< lost (network partition, host churn)
};

[[nodiscard]] constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kDeadlineMissed: return "deadline-missed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kDropped: return "dropped";
  }
  return "?";
}

/// Completion record produced by whichever platform served the request.
struct CompletionRecord {
  Request request;
  Outcome outcome = Outcome::kCompleted;
  sim::Time completed_at = 0.0;
  /// Where it ran: "local", "horizontal:<cluster>", "vertical:datacenter".
  std::string served_by = "local";

  [[nodiscard]] double response_time() const { return completed_at - request.arrival; }
};

}  // namespace df3::workload
