#pragma once
/// \file registry.hpp
/// \brief String-keyed factory registry for the four policy seams.
///
/// Scenarios select policies by name (`routing = heat-aware`,
/// `peak_ladder = preempt,horizontal,delay`, `peer_select = least-loaded`,
/// `placement = best-fit`); the registry turns those names into fresh
/// strategy instances. `global()` comes preloaded with the built-in
/// policies; experiments may register additional ones (names are unique —
/// re-registering an existing name throws).
///
/// Built-ins:
///
///   seam        | names
///   ------------|---------------------------------------------------------
///   rung        | preempt, horizontal, vertical, delay, grid-shed
///   routing     | df-first, dc-only, season-aware, heat-aware, least-loaded,
///               | carbon-aware, price-aware
///   peer        | ring, least-loaded, greenest
///   placement   | first-fit, best-fit
///
/// Unknown names throw std::invalid_argument listing the known names, so a
/// scenario typo fails loudly at construction instead of silently running
/// the default.

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "df3/policy/policy.hpp"

namespace df3::policy {

class Registry {
 public:
  using RungFactory = std::function<std::unique_ptr<PeakRung>()>;
  using RoutingFactory = std::function<std::unique_ptr<RoutingPolicy>()>;
  using PeerFactory = std::function<std::unique_ptr<PeerSelector>()>;
  using PlacementFactory = std::function<std::unique_ptr<PlacementPolicy>()>;

  void register_rung(const std::string& name, RungFactory factory);
  void register_routing(const std::string& name, RoutingFactory factory);
  void register_peer_selector(const std::string& name, PeerFactory factory);
  void register_placement(const std::string& name, PlacementFactory factory);

  [[nodiscard]] std::unique_ptr<PeakRung> make_rung(const std::string& name) const;
  /// Build a whole ladder from rung names, in order.
  [[nodiscard]] std::vector<std::unique_ptr<PeakRung>> make_ladder(
      const std::vector<std::string>& names) const;
  [[nodiscard]] std::unique_ptr<RoutingPolicy> make_routing(const std::string& name) const;
  [[nodiscard]] std::unique_ptr<PeerSelector> make_peer_selector(const std::string& name) const;
  [[nodiscard]] std::unique_ptr<PlacementPolicy> make_placement(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> rung_names() const;
  [[nodiscard]] std::vector<std::string> routing_names() const;
  [[nodiscard]] std::vector<std::string> peer_selector_names() const;
  [[nodiscard]] std::vector<std::string> placement_names() const;

  /// Process-wide registry, preloaded with the built-in policies.
  static Registry& global();

  /// Split a scenario-file list ("preempt, horizontal,delay") into trimmed
  /// names; empty elements are dropped.
  static std::vector<std::string> split_list(std::string_view csv);

 private:
  // std::map keeps *_names() (and thus error messages) deterministically
  // sorted.
  std::map<std::string, RungFactory> rungs_;
  std::map<std::string, RoutingFactory> routings_;
  std::map<std::string, PeerFactory> peers_;
  std::map<std::string, PlacementFactory> placements_;
};

namespace detail {
/// Defined in builtin.cpp; called once by Registry::global().
void register_builtins(Registry& r);
}  // namespace detail

}  // namespace df3::policy
