#pragma once
/// \file policy.hpp
/// \brief The decision plane: strategy interfaces for the four policy seams.
///
/// The paper's contribution is a *design space* — peak-management ladders,
/// cloud-routing choices, federation topologies, worker placement — and the
/// simulator's job is to let experiments walk that space. This module
/// separates those decisions from the mechanisms that execute them
/// (DESIGN.md §11):
///
///   PeakRung        one rung of the edge peak-management ladder
///   RoutingPolicy   which cluster (or the datacenter) serves a cloud request
///   PeerSelector    which peer receives a horizontal offload
///   PlacementPolicy which eligible worker runs a shard
///
/// Policies are deliberately *leaf* abstractions: they see plain value views
/// (backlogs, free cores, heat demand per core) rather than core types, so
/// `df3::policy` has no dependency on `df3::core` — core links the policy
/// module, never the other way around. The one exception is the ladder,
/// whose rungs drive cluster mechanisms (preempt, offload, delay) through
/// the abstract `LadderMechanism` interface that `Cluster` implements.
///
/// Policies may be stateful (round-robin cursors, budgets, hysteresis); a
/// fresh instance is built per owner from the string-keyed factory
/// `policy::Registry`, so state is never shared between clusters.
///
/// Determinism contract: a policy's `pick` must depend only on the view it
/// is handed and on its own state — no wall clock, no global RNG — so runs
/// stay bit-for-bit reproducible at any physics thread count.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace df3::core {
class Task;
}

namespace df3::policy {

/// What one ladder rung did with an unplaceable edge shard.
enum class RungOutcome : std::uint8_t {
  kNoOp,      ///< could not help; try the next rung
  kResolved,  ///< shard placed or responsibility handed off; stop the ladder
  kParked,    ///< shard re-queued to wait; stop the ladder *and* the pump scan
};

/// The cluster-side mechanisms a peak rung can drive. Implemented by
/// `core::Cluster`; each call attempts one relief action on the shard and
/// reports how far it got. Rungs stay mechanism-free: they only decide
/// *which* lever to pull and in what order.
class LadderMechanism {
 public:
  virtual ~LadderMechanism() = default;
  /// Evict a preemptible cloud shard and take its core.
  virtual RungOutcome relieve_by_preemption(core::Task& t) = 0;
  /// Forward the whole request to a peer cluster chosen by the selector.
  virtual RungOutcome relieve_by_horizontal(core::Task& t) = 0;
  /// Forward the whole request to the datacenter.
  virtual RungOutcome relieve_by_vertical(core::Task& t) = 0;
  /// Leave the shard queued until capacity frees up.
  virtual RungOutcome relieve_by_delay(core::Task& t) = 0;
};

/// Grid-signal context a peak rung may look at, filled lazily by the
/// cluster only when some rung in the ladder declares `needs_grid()` —
/// same pay-for-what-you-ask contract as the routing view.
struct RungView {
  bool grid_valid = false;           ///< a grid plane is installed and sampled
  bool curtailment_active = false;   ///< this cluster's region is in a demand-response window
  double carbon_gco2_per_kwh = 0.0;  ///< region carbon intensity at the last tick
  double price_eur_per_kwh = 0.0;    ///< region spot price at the last tick
};

/// One rung of the edge peak-management ladder (paper section III-B). Rungs
/// are small stateful objects — a rung may carry a budget or hysteresis and
/// decline (`kNoOp`) when it is exhausted.
class PeakRung {
 public:
  virtual ~PeakRung() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Ask the cluster to fill the RungView grid fields before apply().
  [[nodiscard]] virtual bool needs_grid() const { return false; }
  virtual RungOutcome apply(LadderMechanism& mechanism, core::Task& t, const RungView& view) = 0;
};

/// RoutingPolicy::pick returns this sentinel to send the request to the
/// datacenter (or reject it when the platform has none).
inline constexpr std::size_t kRouteToDatacenter = static_cast<std::size_t>(-1);

/// Per-cluster load/heat/grid snapshot for routing decisions, in building
/// order. The load/heat pair is valid under needs_cluster_info(), the grid
/// triple under needs_grid(); unrequested fields are zero (the platform
/// refills the scratch from scratch per pick, so a policy can never observe
/// a stale value it did not ask for).
struct ClusterInfo {
  double backlog_gc_per_core = 0.0;      ///< queued gigacycles / usable cores
  double heat_demand_w_per_core = 0.0;   ///< last-tick heat demand / usable cores
  double carbon_gco2_per_kwh = 0.0;      ///< region carbon intensity (needs_grid())
  double price_eur_per_kwh = 0.0;        ///< region spot price (needs_grid())
  double renewable_fraction = 0.0;       ///< region renewable share (needs_grid())
};

/// Everything a routing policy may look at. The season, cluster and grid
/// fields are only populated when the policy declares it needs them
/// (`needs_*`), so cheap policies keep the per-arrival cost at O(1).
struct RoutingView {
  std::size_t cluster_count = 0;         ///< > 0 (the platform short-circuits otherwise)
  bool has_datacenter = false;
  double seasonal_outdoor_c = 0.0;       ///< valid when needs_season()
  double heating_cutoff_c = 0.0;         ///< valid when needs_season()
  std::span<const ClusterInfo> clusters; ///< valid when needs_cluster_info() or needs_grid()
  /// True when needs_grid() was honored: a grid plane is installed and the
  /// ClusterInfo grid fields hold the last tick's samples. Grid-aware
  /// policies must fall back (e.g. to round-robin) when false.
  bool grid_valid = false;
};

/// Decides which cluster serves an arriving cloud request.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Ask the platform to fill RoutingView::seasonal_outdoor_c / cutoff.
  [[nodiscard]] virtual bool needs_season() const { return false; }
  /// Ask the platform to fill RoutingView::clusters (O(clusters) per pick).
  [[nodiscard]] virtual bool needs_cluster_info() const { return false; }
  /// Ask the platform to fill the per-cluster grid fields (O(clusters)).
  [[nodiscard]] virtual bool needs_grid() const { return false; }
  /// Cluster index in [0, cluster_count), or kRouteToDatacenter.
  virtual std::size_t pick(const RoutingView& view) = 0;
};

/// Per-peer load snapshot, in ring order: peers[0] is the next neighbor of
/// the offloading cluster, peers[1] the one after, and so on. The carbon
/// field is valid under needs_grid() only (zero otherwise — the scratch is
/// refilled per pick, never stale).
struct PeerInfo {
  double backlog_gc_per_core = 0.0;
  int free_cores = 0;
  double carbon_gco2_per_kwh = 0.0;  ///< peer region carbon intensity (needs_grid())
};

struct PeerView {
  std::span<const PeerInfo> peers;  ///< non-empty when pick is called
  bool grid_valid = false;          ///< needs_grid() honored (a plane is installed)
};

/// Decides which federation peer receives a horizontal offload.
class PeerSelector {
 public:
  virtual ~PeerSelector() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Ask the cluster to fill the per-peer grid fields.
  [[nodiscard]] virtual bool needs_grid() const { return false; }
  /// Index into view.peers.
  virtual std::size_t pick(const PeerView& view) = 0;
};

/// One placeable worker: `worker` is the cluster-local worker index.
/// Candidates arrive in ascending worker order, pre-filtered to workers
/// that are eligible for the shard's priority class and have a free core.
struct PlacementCandidate {
  std::size_t worker = 0;
  int free_cores = 0;
};

struct PlacementView {
  std::span<const PlacementCandidate> candidates;  ///< non-empty when pick is called
};

/// Decides which candidate worker runs a shard. If the chosen worker turns
/// out unable to start it (thermal gating race), the cluster removes that
/// candidate and asks again.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Index into view.candidates.
  virtual std::size_t pick(const PlacementView& view) = 0;
};

}  // namespace df3::policy
