#pragma once
/// \file fault.hpp
/// \brief Deterministic network fault injection: link flapping.
///
/// The paper's distributed fabric lives in buildings on consumer-grade
/// access links; partitions are an operating condition, not an exception.
/// `LinkFlapper` drives a set of links through alternating up/down dwell
/// periods with exponentially distributed durations drawn from a named
/// `util::RngStream` — the same seed always produces the same flap
/// schedule, so soak tests that assert conservation under churn are
/// bit-for-bit reproducible.
///
/// Messages in flight when a link goes down are not recalled (routes are
/// resolved at send time); what the flapper exercises is every `on_drop`
/// path of `Network::send` — staging transfers, horizontal hand-offs and
/// result returns — which is exactly where lifecycle bugs hide.

#include <cstdint>
#include <string>
#include <vector>

#include "df3/net/network.hpp"
#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

namespace df3::net {

struct LinkFlapConfig {
  /// Link indices (from Network::add_link) to flap, each independently.
  std::vector<std::size_t> links;
  /// Mean dwell in the up state before the next outage, seconds.
  double mean_up_s = 300.0;
  /// Mean outage duration, seconds.
  double mean_down_s = 30.0;
  /// First toggles are scheduled from this instant.
  sim::Time start = 0.0;
};

/// Flaps a set of network links with seeded exponential dwell times.
/// `start()` arms the schedule; `stop()` cancels all pending toggles and
/// restores every managed link to the up state (so a soak scenario can end
/// churn, drain, and expect the network to be whole again).
///
/// Besides the RNG schedule, every managed link is an *enumerable choice
/// point*: `force_toggle(slot)` performs one up<->down transition right now
/// without consulting the dwell RNG or arming a follow-up event. The model
/// checker (df3::mc, DESIGN.md §13) drives injectors exclusively through
/// this hook, turning "a flap may happen here" into an explicit branch of
/// the explored interleaving tree. force_toggle works whether or not the
/// RNG schedule is running and keeps `flaps()`/trace accounting identical
/// to an RNG-driven toggle.
class LinkFlapper : public sim::Entity {
 public:
  LinkFlapper(sim::Simulation& sim, std::string name, Network& network, LinkFlapConfig config,
              util::RngStream rng);

  void start();
  void stop();

  /// Toggle slot `slot` (index into config.links) right now — an explicit
  /// choice point. Does not arm an RNG follow-up; out_of_range on bad slot.
  void force_toggle(std::size_t slot);

  /// Number of managed links (valid slots are [0, slot_count())).
  [[nodiscard]] std::size_t slot_count() const { return down_.size(); }
  /// Current injected state of slot `slot`.
  [[nodiscard]] bool is_down(std::size_t slot) const { return down_.at(slot); }

  /// Number of up->down transitions injected so far.
  [[nodiscard]] std::uint64_t flaps() const { return flaps_; }
  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm(std::size_t slot);    ///< schedule the next toggle for links[slot]
  void toggle(std::size_t slot);

  Network& network_;
  LinkFlapConfig config_;
  util::RngStream rng_;
  std::vector<sim::EventHandle> next_;  ///< pending toggle per managed link
  std::vector<bool> down_;              ///< current injected state per link
  std::vector<sim::Time> down_since_;   ///< outage start per link (trace spans)
  std::uint64_t flaps_ = 0;
  bool running_ = false;
};

}  // namespace df3::net
