#pragma once
/// \file protocol.hpp
/// \brief Link-technology profiles: fiber, Ethernet and the low-power IoT
///        protocols the paper says are "inevitable in edge computing".
///
/// Paper section III-B: edge gateways differ from DCC gateways precisely in
/// the network interfaces they support — Zigbee, LoRa, Sigfox, EnOcean on
/// the edge side, optic fiber on the cloud side. Each profile captures the
/// technology's characteristic bandwidth, per-hop latency and payload limit
/// with figures from the protocol specifications (Barker & Hammoudeh 2017).

#include <string>

#include "df3/util/units.hpp"

namespace df3::net {

/// Static characteristics of one link technology.
struct LinkProfile {
  std::string name = "ethernet-lan";
  util::BitsPerSecond bandwidth = util::gbps(1.0);
  /// One-way propagation + protocol stack latency per hop.
  util::Seconds base_latency = util::seconds(0.0002);
  /// Maximum application payload per frame; larger messages fragment and
  /// pay the per-frame overhead multiple times.
  util::Bytes max_payload = util::bytes(65536.0);
  /// Protocol overhead added per frame (headers, preamble), in bytes.
  util::Bytes frame_overhead = util::bytes(66.0);
  /// Duty-cycle ceiling in [0,1]: LPWAN regulations (e.g. 1% in EU868)
  /// throttle sustained throughput below raw bandwidth.
  double duty_cycle = 1.0;

  /// Effective serialization time for an application payload of `size`,
  /// including fragmentation, per-frame overhead and duty-cycle throttling.
  [[nodiscard]] util::Seconds serialization_time(util::Bytes size) const;

  /// End-to-end one-hop delay for a payload (serialization + latency).
  [[nodiscard]] util::Seconds one_hop_delay(util::Bytes size) const;
};

// --- catalogue -------------------------------------------------------------

/// Metro optic fiber to the operator's backbone (Q.rad uplink).
[[nodiscard]] LinkProfile fiber_wan();
/// In-building wired Ethernet (Q.rad interconnect; boiler backplane is the
/// 10 Gb/s variant).
[[nodiscard]] LinkProfile ethernet_lan();
[[nodiscard]] LinkProfile ethernet_10g();
/// IEEE 802.15.4 mesh (ZigBee): 250 kb/s, small frames.
[[nodiscard]] LinkProfile zigbee();
/// In-building 802.11n Wi-Fi: ~50 Mb/s effective — the path for payload-
/// heavy edge clients (phones, tablets) that LPWAN radios cannot carry.
[[nodiscard]] LinkProfile wifi();
/// LoRaWAN SF7-ish: ~5.5 kb/s, 1% duty cycle, 222 B payload.
[[nodiscard]] LinkProfile lora();
/// Sigfox: 100 b/s uplink, 12 B payload — telemetry only.
[[nodiscard]] LinkProfile sigfox();
/// EnOcean energy-harvesting switches: 125 kb/s, tiny frames.
[[nodiscard]] LinkProfile enocean();
/// Residential Internet access (the paper's "Internet requests" path when
/// no fiber is present).
[[nodiscard]] LinkProfile adsl_wan();

}  // namespace df3::net
