#pragma once
/// \file network.hpp
/// \brief Store-and-forward network simulation with per-link queuing.
///
/// The topology is an undirected graph of named nodes joined by links, each
/// carrying a `LinkProfile`. A message from A to B follows the minimum-
/// latency route (Dijkstra over unloaded one-hop delay for its size) and
/// experiences, per hop:
///
///   queuing   — each link direction is a FIFO server; a message waits until
///               the link is free (this is what makes the shared-vs-
///               segmented LAN experiment E10 meaningful);
///   serialization — size/bandwidth with fragmentation + duty cycle;
///   propagation   — the profile's base latency.
///
/// Delivery is an event on the owning `Simulation`. Partitions are supported
/// by disabling links (failure injection).

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "df3/net/protocol.hpp"
#include "df3/obs/journey.hpp"
#include "df3/sim/engine.hpp"
#include "df3/util/units.hpp"

namespace df3::net {

/// Dense node handle.
using NodeId = std::uint32_t;

/// A message in flight. `payload_tag` lets higher layers route semantics
/// without the network knowing about request types.
struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  util::Bytes size{0.0};
  std::uint64_t payload_tag = 0;
  /// When != kNone, this message is a segment of the request journey tagged
  /// by `payload_tag`: the hop span gets a journey span-link with this kind
  /// as its attribute (obs/journey.hpp). Staging transfers stay kNone —
  /// their journey segment is the cluster's kStaging span.
  obs::HopKind journey_hop = obs::HopKind::kNone;
};

/// Statistics for one link direction.
struct LinkStats {
  std::uint64_t messages = 0;
  double bytes = 0.0;
  double busy_seconds = 0.0;  ///< cumulative serialization time carried
};

class Network : public sim::Entity {
 public:
  explicit Network(sim::Simulation& sim, std::string name = "net");

  /// Add a node; returns its id. Node names must be unique.
  NodeId add_node(const std::string& node_name);

  /// Node lookup by name; throws if unknown.
  [[nodiscard]] NodeId node(const std::string& node_name) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }

  /// Join two nodes with a bidirectional link; returns the link index.
  std::size_t add_link(NodeId a, NodeId b, LinkProfile profile);

  /// Enable/disable a link (network partition injection).
  void set_link_up(std::size_t link, bool up);
  [[nodiscard]] bool link_up(std::size_t link) const;
  /// Number of links added so far (valid link indices are [0, link_count)).
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Minimum-delay route for a message of `size`; empty when unreachable.
  /// The route is the sequence of link indices traversed.
  [[nodiscard]] std::vector<std::size_t> route(NodeId src, NodeId dst, util::Bytes size) const;

  /// Unloaded end-to-end delay along the current best route (no queuing).
  /// nullopt when unreachable.
  [[nodiscard]] std::optional<util::Seconds> unloaded_delay(NodeId src, NodeId dst,
                                                            util::Bytes size) const;

  /// Minimum propagation latency over all *up* links — the conservative
  /// lookahead bound of the parallel control plane (DESIGN.md §12): no
  /// cross-cluster influence travels faster than the fastest live link's
  /// base latency, so control lanes may advance one tick instant
  /// independently whenever this is positive. Cached O(1); the cache is
  /// invalidated by add_link and by set_link_up state changes (LinkFlapper
  /// transitions arrive through set_link_up). +infinity when no link is up:
  /// a fully partitioned fleet exchanges no messages at all, which is the
  /// loosest possible lookahead, not a hazard.
  [[nodiscard]] util::Seconds min_peer_latency() const;

  /// Send a message now. `on_delivery(delivered_at)` fires at arrival; if
  /// the destination is unreachable `on_drop()` fires immediately (same
  /// simulation instant). Accounts queuing on every traversed link.
  void send(const Message& msg, std::function<void(sim::Time)> on_delivery,
            std::function<void()> on_drop = nullptr);

  [[nodiscard]] const LinkStats& stats(std::size_t link) const;
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

 private:
  struct Link {
    NodeId a, b;
    LinkProfile profile;
    bool up = true;
    /// Earliest time each direction is free (0: a->b, 1: b->a).
    std::array<sim::Time, 2> next_free{0.0, 0.0};
    std::array<LinkStats, 2> dir_stats{};
  };

  [[nodiscard]] static std::size_t direction(const Link& l, NodeId from) {
    return from == l.a ? 0 : 1;
  }

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> adjacency_;  // node -> link indices
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  mutable LinkStats merged_stats_{};  // scratch for stats() aggregation
  /// min_peer_latency() memo; < 0 = stale (recompute on next query).
  mutable double min_peer_latency_cache_ = -1.0;
};

}  // namespace df3::net
