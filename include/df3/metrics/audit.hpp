#pragma once
/// \file audit.hpp
/// \brief Request-lifecycle conservation auditor.
///
/// Every `Request` entering the system must reach **exactly one** terminal
/// outcome (completed / rejected / dropped / deadline-missed), no matter
/// which path it took: preemption re-queue, horizontal hand-off to a peer
/// cluster, vertical offload to the datacenter, staging or return-transport
/// partition, direct or pinned submission. A request that silently vanishes
/// (never resolved) or resolves twice (double-counted) is a middleware bug;
/// this auditor is the safety net that turns either into a named violation
/// instead of a skewed experiment table.
///
/// Two audit levels, mirroring how fog/edge simulators treat fault modeling
/// as first-class (LEAF; Sustainable Edge Computing, Arroba et al. 2023):
///
///  * `kCounters` (always compiled in, the default) — O(1) counter deltas
///    per request. Conservation is checked as identities over the counters:
///    `submitted == terminals + open` city-wide, and per-cluster
///    `intake == terminal + in_flight` (see ClusterStats::intake/terminal).
///  * `kFull` — additionally tracks every request id in a hash map so a
///    *specific* lost or double-resolved request can be named, and enables
///    the per-tick structural sweeps (EDF lane sortedness, non-negative
///    remaining work, busy-core/running-set consistency) that the cluster,
///    queue and worker `audit()` hooks implement.
///
/// The `DF3_AUDIT` CMake option (wired like `DF3_SANITIZE`) flips the
/// build-time default from `kCounters` to `kFull`; either level is
/// observation-only — it never mutates simulation state, so golden
/// determinism digests are identical with auditing on or off.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "df3/workload/request.hpp"

namespace df3::metrics {

/// How much lifecycle auditing to perform. Levels are strictly additive.
enum class AuditLevel : std::uint8_t {
  kOff,       ///< count nothing (the auditor becomes a no-op)
  kCounters,  ///< O(1) counter deltas; identity checks at quiescence
  kFull,      ///< per-request-id tracking + structural invariant sweeps
};

/// Build-time default: DF3_AUDIT=ON promotes every auditor to kFull.
#if defined(DF3_AUDIT)
inline constexpr AuditLevel kDefaultAuditLevel = AuditLevel::kFull;
#else
inline constexpr AuditLevel kDefaultAuditLevel = AuditLevel::kCounters;
#endif

/// Tracks request intake and terminal outcomes and accumulates violations.
/// Feed it every submission (`on_submitted`) and every terminal completion
/// record (`on_terminal`); ask `check_quiescent()` once the simulation has
/// drained. Structural checkers (Cluster/TaskQueue/Worker `audit()`) report
/// through `report()`.
class LifecycleAuditor {
 public:
  explicit LifecycleAuditor(AuditLevel level = kDefaultAuditLevel) : level_(level) {}

  [[nodiscard]] AuditLevel level() const { return level_; }
  void set_level(AuditLevel level) { level_ = level; }

  /// A request entered the system (gateway submission, direct submission,
  /// pinned run). Call exactly once per request.
  void on_submitted(const workload::Request& r);

  /// A terminal CompletionRecord was produced for the request. At kFull a
  /// second terminal for the same id is recorded as a duplicate violation
  /// and a terminal for an id never submitted as an unknown violation.
  void on_terminal(const workload::CompletionRecord& rec);

  /// Report a violation found by an external invariant sweep.
  void report(std::string what);

  /// Forget everything: counters, violations and (at kFull) the per-id
  /// lifecycle map go back to a freshly-constructed state; the audit level
  /// is kept. Branch-scoped reset for the model checker (DESIGN.md §13) —
  /// each explored branch re-seeds a warm platform and must audit only the
  /// traffic of its own epoch, not the warm-up that produced the root
  /// state. Production code never calls this mid-run.
  void reset();

  // --- counters ---
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t terminals() const { return terminals_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t deadline_missed() const { return deadline_missed_; }
  /// Requests submitted but not yet resolved (kFull: exact; kCounters:
  /// derived as submitted - terminals, valid only while no duplicates).
  [[nodiscard]] std::uint64_t open_requests() const;
  [[nodiscard]] std::uint64_t duplicate_terminals() const { return duplicates_; }
  [[nodiscard]] std::uint64_t unknown_terminals() const { return unknowns_; }

  /// All violations recorded so far (duplicates, unknowns, reported sweeps).
  /// Capped at kMaxStoredViolations; `violation_count()` keeps exact count.
  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t violation_count() const { return violation_count_; }

  /// Conservation check once the simulation has drained: every submitted
  /// request resolved exactly once. Returns the accumulated violations plus
  /// any open-request findings (at kFull, naming up to 8 unresolved ids).
  [[nodiscard]] std::vector<std::string> check_quiescent() const;

  static constexpr std::size_t kMaxStoredViolations = 64;

 private:
  AuditLevel level_;
  std::uint64_t submitted_ = 0;
  std::uint64_t terminals_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t deadline_missed_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t unknowns_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;
  /// kFull only: id -> resolved flag for every request ever submitted.
  std::unordered_map<std::uint64_t, bool> lifecycle_;
};

}  // namespace df3::metrics
