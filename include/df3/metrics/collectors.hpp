#pragma once
/// \file collectors.hpp
/// \brief Experiment metric collectors: response times per flow/app,
///        outcome counts, energy ledger and PUE accounting.

#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "df3/util/stats.hpp"
#include "df3/util/units.hpp"
#include "df3/workload/request.hpp"

namespace df3::metrics {

/// Response-time and outcome statistics, sliced by flow and by app.
class FlowMetrics {
 public:
  /// Record one completion (any outcome).
  void record(const workload::CompletionRecord& rec);

  struct Slice {
    util::PercentileSampler response_s;   ///< completed requests only
    std::uint64_t completed = 0;
    std::uint64_t deadline_missed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t dropped = 0;

    [[nodiscard]] std::uint64_t total() const {
      return completed + deadline_missed + rejected + dropped;
    }
    /// Fraction of requests that met their obligations.
    [[nodiscard]] double success_rate() const {
      const auto t = total();
      return t == 0 ? 1.0 : static_cast<double>(completed) / static_cast<double>(t);
    }
  };

  [[nodiscard]] const Slice& by_flow(workload::Flow f) const;
  [[nodiscard]] const Slice& by_app(const std::string& app) const;
  [[nodiscard]] const Slice& overall() const { return overall_; }
  [[nodiscard]] const std::map<std::string, Slice>& apps() const { return by_app_; }

  /// Count of completions whose served_by starts with the given prefix
  /// ("vertical:", "horizontal:", ...), for offload accounting.
  [[nodiscard]] std::uint64_t served_by_prefix(const std::string& prefix) const;

 private:
  Slice overall_;
  std::map<workload::Flow, Slice> by_flow_;
  std::map<std::string, Slice> by_app_;
  std::map<std::string, std::uint64_t> served_by_;
  static const Slice kEmpty;
};

/// City-wide energy bookkeeping. PUE = total facility energy / IT energy.
/// For data furnace there is no cooling term, so PUE ~ 1 + standby overhead;
/// for the air-cooled datacenter baseline the cooling term dominates the
/// difference (the paper cites CloudandHeat's PUE of 1.026 vs classic DCs).
class EnergyLedger {
 public:
  // The add_* accumulators are header-inline: the platform posts four of
  // them per room per physics tick.
  void add_it(util::Joules e) { add_checked(it_, e, "IT energy"); }         ///< servers doing work
  void add_overhead(util::Joules e) { add_checked(overhead_, e, "overhead"); }  ///< standby, PSU losses
  void add_cooling(util::Joules e) { add_checked(cooling_, e, "cooling"); }     ///< chillers (zero for DF)
  void add_useful_heat(util::Joules e) { add_checked(useful_heat_, e, "useful heat"); }  ///< requested heating
  void add_waste_heat(util::Joules e) { add_checked(waste_heat_, e, "waste heat"); }     ///< rejected heat

  /// Attribute facility energy to the grid signal active at spend time
  /// (DESIGN.md §15): cost and carbon accrue at the price / intensity the
  /// region showed on the tick the joules were drawn, not at end-of-run
  /// averages. Called by the platform once per building per tick when a
  /// grid plane is installed; a no-grid run never touches these slots.
  void add_grid_spend(util::Joules e, double eur_per_kwh, double gco2_per_kwh) {
    if (e.value() < 0.0) throw_negative("grid spend");
    const double kwh = e.value() / 3.6e6;
    grid_cost_eur_ += kwh * eur_per_kwh;
    grid_co2_g_ += kwh * gco2_per_kwh;
  }

  [[nodiscard]] double grid_cost_eur() const { return grid_cost_eur_; }
  [[nodiscard]] double grid_co2_g() const { return grid_co2_g_; }

  [[nodiscard]] util::Joules it() const { return it_; }
  [[nodiscard]] util::Joules overhead() const { return overhead_; }
  [[nodiscard]] util::Joules cooling() const { return cooling_; }
  [[nodiscard]] util::Joules useful_heat() const { return useful_heat_; }
  [[nodiscard]] util::Joules waste_heat() const { return waste_heat_; }
  [[nodiscard]] util::Joules facility_total() const { return it_ + overhead_ + cooling_; }

  /// Power usage effectiveness; 1.0 when no energy recorded.
  [[nodiscard]] double pue() const;

  /// Energy-reuse-effectiveness-style credit: fraction of facility energy
  /// delivered as useful heat.
  [[nodiscard]] double heat_reuse_fraction() const;

  void merge(const EnergyLedger& other);

  /// Register-resident view for hot accumulation loops: reads the slots
  /// once, takes adds in locals (same per-call sequence and checks as the
  /// ledger itself, so totals stay bit-identical), and commits on scope
  /// exit — including during unwinding, matching the eager per-call
  /// commit of direct add_* calls.
  class Accumulator {
   public:
    explicit Accumulator(EnergyLedger& ledger)
        : ledger_(ledger),
          it_(ledger.it_.value()),
          overhead_(ledger.overhead_.value()),
          useful_(ledger.useful_heat_.value()),
          waste_(ledger.waste_heat_.value()) {}
    ~Accumulator() { commit(); }
    Accumulator(const Accumulator&) = delete;
    Accumulator& operator=(const Accumulator&) = delete;

    void add_it(util::Joules e) { add_local(it_, e, "IT energy"); }
    void add_overhead(util::Joules e) { add_local(overhead_, e, "overhead"); }
    void add_useful_heat(util::Joules e) { add_local(useful_, e, "useful heat"); }
    void add_waste_heat(util::Joules e) { add_local(waste_, e, "waste heat"); }

    void commit() {
      ledger_.it_ = util::Joules{it_};
      ledger_.overhead_ = util::Joules{overhead_};
      ledger_.useful_heat_ = util::Joules{useful_};
      ledger_.waste_heat_ = util::Joules{waste_};
    }

   private:
    static void add_local(double& slot, util::Joules e, const char* what) {
      if (e.value() < 0.0) throw_negative(what);
      slot += e.value();
    }

    EnergyLedger& ledger_;
    double it_;
    double overhead_;
    double useful_;
    double waste_;
  };

 private:
  static void add_checked(util::Joules& slot, util::Joules e, const char* what) {
    if (e.value() < 0.0) throw_negative(what);
    slot += e;
  }
  [[noreturn]] static void throw_negative(const char* what);

  util::Joules it_{0.0};
  util::Joules overhead_{0.0};
  util::Joules cooling_{0.0};
  util::Joules useful_heat_{0.0};
  util::Joules waste_heat_{0.0};
  double grid_cost_eur_ = 0.0;
  double grid_co2_g_ = 0.0;
};

/// Comfort tracking for one room: time-weighted deviation from target.
class ComfortMetrics {
 public:
  /// Record the instantaneous state at time `t`. Header-inline: called once
  /// per room per physics tick.
  void sample(double t, util::Celsius room, util::Celsius target) {
    abs_dev_.record(t, std::abs(room.value() - target.value()));
    temp_.record(t, room.value());
  }

  /// Mean absolute deviation from target (K), time-weighted.
  [[nodiscard]] double mean_abs_deviation_k(double until) const;
  /// Time-weighted mean room temperature.
  [[nodiscard]] double mean_temperature_c(double until) const;

 private:
  util::TimeWeightedValue abs_dev_;
  util::TimeWeightedValue temp_;
};

}  // namespace df3::metrics
