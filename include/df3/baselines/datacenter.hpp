#pragma once
/// \file datacenter.hpp
/// \brief Air-cooled datacenter baseline (and micro-datacenter / CDN-PoP
///        variants) implementing core::ComputeService.
///
/// The comparator the paper positions data furnace against: a classic
/// facility where every IT joule drags a cooling joule share behind it
/// (PUE 1.3-1.6 for typical air-cooled plants vs the 1.026 CloudandHeat
/// claims for data furnace). Also the *vertical offloading* target of the
/// DF3 architecture.
///
/// Model: a homogeneous pool of always-on cores behind a WAN link. FCFS
/// shard scheduling, exact service times, energy integrated event-by-event
/// (IT + fixed overhead fraction + cooling proportional to IT).

#include <deque>
#include <functional>
#include <string>

#include "df3/core/cluster.hpp"
#include "df3/metrics/collectors.hpp"
#include "df3/net/protocol.hpp"
#include "df3/sim/engine.hpp"

namespace df3::baselines {

struct DatacenterConfig {
  std::string label = "datacenter";
  int cores = 2048;
  double core_speed_gcps = 2.9;      ///< per-core gigacycles per second
  util::Watts power_per_busy_core{18.0};
  util::Watts power_per_idle_core{5.0};
  /// Cooling energy as a fraction of IT energy (0.45 -> PUE ~1.5 with
  /// overhead 0.05). Set ~0.02 for free-cooled micro facilities.
  double cooling_fraction = 0.45;
  /// Fixed overhead (PSU, network gear) as a fraction of IT energy.
  double overhead_fraction = 0.05;
  /// WAN link between clients and the facility (both directions).
  net::LinkProfile wan = net::fiber_wan();
  /// Extra one-way distance latency to the facility (s) on top of the WAN
  /// profile (a remote region vs a metro micro-DC).
  double extra_latency_s = 0.012;
};

/// Always-on compute facility. Single logical queue, FCFS over shards.
class Datacenter : public sim::Entity, public core::ComputeService {
 public:
  Datacenter(sim::Simulation& sim, DatacenterConfig config);

  // core::ComputeService
  void submit(workload::Request r, net::NodeId origin, Done done) override;
  [[nodiscard]] std::string label() const override { return config_.label; }

  [[nodiscard]] const DatacenterConfig& config() const { return config_; }
  [[nodiscard]] int busy_cores() const { return busy_cores_; }
  [[nodiscard]] std::size_t queued_shards() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t completed_requests() const { return completed_; }

  /// Energy ledger up to the current simulation time (settles first).
  [[nodiscard]] const metrics::EnergyLedger& energy();

  /// Mean core utilization since construction.
  [[nodiscard]] double mean_utilization() const;

 private:
  struct Job {
    workload::Request request;
    net::NodeId origin;
    Done done;
    int shards_left;
    sim::Time arrived_at_dc;
    sim::Time first_start = -1.0;  ///< first shard dispatch (queue-wait end)
  };
  struct Shard {
    std::shared_ptr<Job> job;
    double gigacycles;
  };

  void settle_energy();
  void dispatch();
  void finish_shard(const std::shared_ptr<Job>& job);

  DatacenterConfig config_;
  std::deque<Shard> queue_;
  int busy_cores_ = 0;
  std::uint64_t completed_ = 0;
  metrics::EnergyLedger ledger_;
  sim::Time energy_mark_ = 0.0;
  double busy_core_seconds_ = 0.0;
};

/// Metro micro-datacenter (Schneider-style, paper section V): small core
/// pool, city-level latency, partially free-cooled.
[[nodiscard]] DatacenterConfig micro_datacenter_config();

/// CDN point of presence reused for edge compute: tiny pool, very low
/// latency, standard cooling.
[[nodiscard]] DatacenterConfig cdn_pop_config();

}  // namespace df3::baselines
