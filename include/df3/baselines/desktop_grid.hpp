#pragma once
/// \file desktop_grid.hpp
/// \brief Desktop-grid / volunteer-cloud baseline (BOINC-style).
///
/// The paper (sections I, V) contrasts DF servers with desktop grids: PCs
/// execute work **only in idle periods**, and hosts churn — an owner
/// reclaiming their machine kills the running shard, which must restart
/// from scratch elsewhere (classic public-resource computing without
/// checkpoints, SETI@home-style). This is exactly why the paper argues such
/// opportunistic platforms cannot carry near-real-time edge workloads.
///
/// Model: `hosts` PCs, each with `cores_per_host` cores, alternating
/// between available (idle) and reclaimed states with exponential sojourns;
/// availability is higher at night. Requests arrive over residential ADSL.

#include <deque>
#include <functional>
#include <vector>

#include "df3/core/cluster.hpp"
#include "df3/metrics/collectors.hpp"
#include "df3/net/protocol.hpp"
#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"

namespace df3::baselines {

struct DesktopGridConfig {
  std::string label = "desktop-grid";
  int hosts = 64;
  int cores_per_host = 4;
  double core_speed_gcps = 2.5;
  util::Watts power_per_busy_core{20.0};
  util::Watts power_per_idle_host{35.0};  ///< PC on but donated cores idle
  /// Mean sojourn in the available (idle, donatable) state.
  double mean_available_s = 4.0 * 3600.0;
  /// Mean sojourn in the reclaimed (owner using it) state during the day;
  /// at night hosts are reclaimed for 1/4 of this.
  double mean_reclaimed_s = 2.0 * 3600.0;
  net::LinkProfile wan = net::adsl_wan();
};

/// Volunteer compute platform; core::ComputeService like the datacenter.
class DesktopGrid : public sim::Entity, public core::ComputeService {
 public:
  DesktopGrid(sim::Simulation& sim, DesktopGridConfig config, std::uint64_t seed);

  void submit(workload::Request r, net::NodeId origin, Done done) override;
  [[nodiscard]] std::string label() const override { return config_.label; }

  [[nodiscard]] int available_hosts() const;
  [[nodiscard]] std::uint64_t restarts() const { return restarts_; }
  [[nodiscard]] std::uint64_t completed_requests() const { return completed_; }
  [[nodiscard]] const metrics::EnergyLedger& energy();

 private:
  struct Job {
    workload::Request request;
    Done done;
    int shards_left;
  };
  struct Host {
    bool available = true;
    int busy_cores = 0;
    sim::EventHandle flip;
    /// Shards currently running here (job + completion event), so churn can
    /// kill and requeue them.
    struct Slot {
      std::shared_ptr<Job> job;
      double gigacycles;
      sim::EventHandle completion;
      bool live = true;
    };
    std::vector<std::shared_ptr<Slot>> slots;
  };

  void arm_flip(std::size_t h);
  void reclaim(std::size_t h);
  void release(std::size_t h);
  void dispatch();
  void finish_job(const std::shared_ptr<Job>& job);
  void settle_energy();

  DesktopGridConfig config_;
  util::RngStream rng_;
  std::vector<Host> hosts_;
  std::deque<std::pair<std::shared_ptr<Job>, double>> queue_;  // (job, gigacycles)
  std::uint64_t restarts_ = 0;
  std::uint64_t completed_ = 0;
  metrics::EnergyLedger ledger_;
  sim::Time energy_mark_ = 0.0;
};

}  // namespace df3::baselines
