#pragma once
/// \file thermostat.hpp
/// \brief Thermostat controllers that turn comfort targets into heat demand.
///
/// In DF3 the thermostat is the origin of the *heating-request flow*: the
/// host sets a target temperature and the middleware must produce exactly
/// that much heat by running computation (paper section II-C). Two
/// controllers are provided:
///
///  * `HysteresisThermostat` — classic on/off with a deadband; demand is
///    either 0 or the heater's full rating.
///  * `ModulatingThermostat` — proportional controller with a feed-forward
///    term equal to the steady-state holding power; this is what a DVFS-
///    capable digital heater can actually track, and is the default in the
///    heat-regulator experiments.

#include "df3/thermal/room.hpp"
#include "df3/util/units.hpp"

namespace df3::thermal {

/// A heat request at an instant: how much heat (W) the host currently asks
/// its DF server to emit.
struct HeatDemand {
  util::Watts power{0.0};
  bool heating_season = true;  ///< false => host asked for no heat at all
};

/// On/off controller: full power below (target - band), off above
/// (target + band).
class HysteresisThermostat {
 public:
  HysteresisThermostat(util::Celsius target, util::KelvinDelta halfband, util::Watts rating);

  /// Demand given the current room temperature. Stateful: remembers whether
  /// the burner is currently on (hysteresis).
  [[nodiscard]] HeatDemand demand(util::Celsius room_temperature);

  void set_target(util::Celsius target) { target_ = target; }
  [[nodiscard]] util::Celsius target() const { return target_; }
  [[nodiscard]] bool is_on() const { return on_; }

 private:
  util::Celsius target_;
  util::KelvinDelta halfband_;
  util::Watts rating_;
  bool on_ = false;
};

/// Proportional + feed-forward controller. Demand =
/// clamp(holding_power(target) + Kp * (target - T_room), 0, rating).
class ModulatingThermostat {
 public:
  /// `kp_w_per_k` is the proportional gain in watts per kelvin of error.
  ModulatingThermostat(util::Celsius target, double kp_w_per_k, util::Watts rating);

  /// Demand given room temperature and the feed-forward holding power the
  /// room model reports for current outdoor conditions.
  [[nodiscard]] HeatDemand demand(util::Celsius room_temperature,
                                  util::Watts holding_power) const;

  void set_target(util::Celsius target) { target_ = target; }
  [[nodiscard]] util::Celsius target() const { return target_; }
  [[nodiscard]] util::Watts rating() const { return rating_; }

 private:
  util::Celsius target_;
  double kp_;
  util::Watts rating_;
};

/// Host behaviour profile: when the heating season is declared and what
/// target temperatures are used day vs night. Paper section III-A argues
/// on-demand heat (driven by these comfort constraints) is what prevents
/// DF servers from aggravating urban heat islands.
struct ComfortProfile {
  util::Celsius day_target{20.5};
  util::Celsius night_target{18.0};
  double night_start_hour = 22.0;
  double night_end_hour = 6.0;
  /// Outdoor seasonal mean above which the host turns heating off entirely.
  util::Celsius heating_cutoff_outdoor{16.0};

  /// The active target at time-of-day `hour` (0..24).
  [[nodiscard]] util::Celsius target_at_hour(double hour) const;
};

}  // namespace df3::thermal
