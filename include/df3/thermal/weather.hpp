#pragma once
/// \file weather.hpp
/// \brief Synthetic outdoor-temperature model (Paris-like climate).
///
/// The paper's deployments are French buildings heated through the winter;
/// seasonality of the outdoor temperature drives both the heat demand (and
/// hence the available DF computing capacity, paper section III-C/IV) and
/// the Figure-4 room-temperature series. We synthesize temperature as
///
///   T(t) = seasonal(t) + diurnal(t) + AR1 noise(t)
///
/// where `seasonal` interpolates monthly climate normals with a cosine
/// smoother, `diurnal` is a sinusoid with its minimum near 05:00, and the
/// noise is an hourly AR(1) process giving realistic multi-day warm/cold
/// spells. The model is deterministic given a seed and queries are
/// *reproducible in any order* because noise is generated from a counter-
/// hashed stream per hour, not from a shared sequential stream.

#include <array>

#include "df3/sim/engine.hpp"
#include "df3/util/rng.hpp"
#include "df3/util/units.hpp"

namespace df3::thermal {

/// Monthly mean outdoor temperatures (degC). Defaults to Paris-Montsouris
/// climate normals.
struct ClimateNormals {
  std::array<double, 12> monthly_mean_c = {4.9,  5.6,  8.8,  11.5, 15.2, 18.3,
                                           20.5, 20.3, 16.9, 13.0, 8.3,  5.5};
  double diurnal_amplitude_k = 4.0;  ///< half peak-to-trough of the daily cycle
  double noise_stddev_k = 2.2;       ///< marginal std-dev of the AR(1) weather noise
  double noise_phi = 0.97;           ///< hourly AR(1) coefficient (multi-day spells)
};

/// Climate presets for the cities the paper's companies operate in.
/// Paris is the default `ClimateNormals{}`.
[[nodiscard]] ClimateNormals paris_climate();      ///< Qarnot, Stimergy
[[nodiscard]] ClimateNormals amsterdam_climate();  ///< Nerdalize (Delft)
[[nodiscard]] ClimateNormals dresden_climate();    ///< CloudandHeat
[[nodiscard]] ClimateNormals stockholm_climate();  ///< the long-winter best case
[[nodiscard]] ClimateNormals seville_climate();    ///< the no-winter worst case

/// Deterministic synthetic weather. All queries are const and reproducible
/// in any order. Note: the noise memo below makes concurrent queries on the
/// *same instance* racy — share-nothing across threads (one model per
/// simulation, as the bench harness does) or query from one thread only.
class WeatherModel {
 public:
  WeatherModel(ClimateNormals normals, std::uint64_t seed);

  /// Outdoor dry-bulb temperature at simulation time `t`.
  [[nodiscard]] util::Celsius outdoor_temperature(sim::Time t) const;

  /// Seasonal component only (smooth interpolation of monthly normals).
  [[nodiscard]] util::Celsius seasonal_component(sim::Time t) const;

  /// Diurnal component (kelvin offset), minimum near 05:00, max near 17:00.
  [[nodiscard]] util::KelvinDelta diurnal_component(sim::Time t) const;

  /// Stochastic AR(1) component (kelvin offset) for the hour containing `t`.
  [[nodiscard]] util::KelvinDelta noise_component(sim::Time t) const;

  [[nodiscard]] const ClimateNormals& normals() const { return normals_; }

 private:
  /// White innovation for absolute hour index `h`, reproducible per hour.
  [[nodiscard]] double innovation(std::int64_t h) const;

  ClimateNormals normals_;
  std::uint64_t seed_;
  // Single-entry memo for the AR(1) reconstruction: the noise value is a
  // function of the hour index alone and the platform queries it once per
  // physics tick (60 s), so the 240-term window is rebuilt only when the
  // hour rolls over instead of 60x per simulated hour.
  mutable bool noise_valid_ = false;
  mutable std::int64_t noise_hour_ = 0;
  mutable double noise_k_ = 0.0;
};

/// A constant-temperature stub, useful in unit tests of rooms and servers.
class ConstantWeather {
 public:
  explicit ConstantWeather(util::Celsius temp) : temp_(temp) {}
  [[nodiscard]] util::Celsius outdoor_temperature(sim::Time) const { return temp_; }

 private:
  util::Celsius temp_;
};

}  // namespace df3::thermal
