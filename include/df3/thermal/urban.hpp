#pragma once
/// \file urban.hpp
/// \brief Urban-heat-island accounting for city-scale deployments.
///
/// Paper section III-A: a broad DF deployment must not behave like air
/// conditioners or always-on boilers, which reject anthropogenic heat to the
/// street and intensify the urban heat island (UHI). We track, per device
/// class, how much heat is delivered *indoors on demand* (useful) versus
/// *rejected outdoors* (waste), and convert the outdoor flux density into a
/// first-order UHI intensity estimate using a linear sensitivity coefficient
/// calibrated from the AC literature (Tremeac et al. 2012 report ~0.5-2 K
/// for ~10-100 W/m2 of street-level rejection; we use K per (W/m2)).

#include <string>
#include <vector>

#include "df3/util/units.hpp"

namespace df3::thermal {

/// One contributing device class in the city (e.g. "qrad-on-demand",
/// "always-on-boiler", "air-conditioner").
struct UrbanSource {
  std::string name;
  util::Joules indoor_heat{0.0};   ///< delivered inside buildings, on demand
  util::Joules outdoor_heat{0.0};  ///< vented / rejected to ambient air
};

/// Integrates heat flows over a simulated period and derives UHI intensity.
class UrbanHeatLedger {
 public:
  /// `district_area_m2`: street-level area over which rejected heat mixes.
  /// `uhi_sensitivity_k_per_w_m2`: linearized UHI response.
  UrbanHeatLedger(double district_area_m2, double uhi_sensitivity_k_per_w_m2 = 0.02);

  /// Register a device class; returns its handle index.
  std::size_t add_source(std::string name);

  void record_indoor(std::size_t source, util::Joules heat);
  void record_outdoor(std::size_t source, util::Joules heat);

  [[nodiscard]] const std::vector<UrbanSource>& sources() const { return sources_; }

  /// Total heat rejected outdoors across sources.
  [[nodiscard]] util::Joules total_outdoor() const;
  [[nodiscard]] util::Joules total_indoor() const;

  /// Mean outdoor rejection flux over `period` (W/m2 of district area).
  [[nodiscard]] double outdoor_flux_w_per_m2(util::Seconds period) const;

  /// First-order UHI intensity increase attributable to the tracked sources
  /// over `period` (kelvin).
  [[nodiscard]] util::KelvinDelta uhi_intensity(util::Seconds period) const;

  /// Fraction of all produced heat that was useful (delivered indoors on
  /// demand); 1.0 when nothing was rejected.
  [[nodiscard]] double useful_heat_fraction() const;

 private:
  double area_m2_;
  double sensitivity_;
  std::vector<UrbanSource> sources_;
};

}  // namespace df3::thermal
