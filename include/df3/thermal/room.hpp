#pragma once
/// \file room.hpp
/// \brief Lumped-parameter (RC-network) room thermal models.
///
/// A heated room is modelled as the standard building-physics RC network:
/// thermal capacitance C (J/K) charged by heat input Q (W) and discharged
/// through envelope resistance R (K/W) toward the outdoor temperature.
///
///   1R1C:  C dT/dt = (T_out - T)/R + Q
///
/// For piecewise-constant inputs the ODE has a closed form, so `advance`
/// integrates *exactly* (no step-size error), which keeps long simulations
/// (a year at minute ticks) both fast and energy-consistent.
///
/// The 2R2C variant adds an envelope node (walls) between indoor air and
/// outside — it captures the slow thermal mass that makes morning reheat
/// expensive; used by the higher-fidelity experiments.

#include <variant>

#include "df3/sim/engine.hpp"
#include "df3/util/units.hpp"

namespace df3::thermal {

/// Parameters of a 1R1C room. Defaults describe a ~20 m2 insulated room
/// that needs ~375 W to hold +15 K over outdoors — a room one 500 W Q.rad
/// heats with the ~35% sizing margin real deployments use, so night-setback
/// recovery completes in a few hours rather than half a day.
struct RoomParams {
  double resistance_k_per_w = 0.040;   ///< envelope resistance R (K/W)
  double capacitance_j_per_k = 1.0e6;  ///< lumped capacitance C (J/K)
  util::Watts internal_gains{60.0};    ///< occupants/appliances baseline heat

  /// Time constant tau = R*C in seconds.
  [[nodiscard]] double tau_s() const { return resistance_k_per_w * capacitance_j_per_k; }
};

/// Exactly-integrated 1R1C room.
class Room {
 public:
  Room(RoomParams params, util::Celsius initial_temperature);

  /// Advance by `dt` seconds with constant heater input `q_heat` and
  /// constant outdoor temperature `t_out` over the interval.
  void advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out);

  [[nodiscard]] util::Celsius temperature() const { return temp_; }
  [[nodiscard]] const RoomParams& params() const { return params_; }

  /// Steady-state temperature for constant inputs (t -> infinity).
  [[nodiscard]] util::Celsius equilibrium(util::Watts q_heat, util::Celsius t_out) const;

  /// Heater power required to *hold* the room at `target` given `t_out`
  /// (clamped at zero: the model has no active cooling).
  [[nodiscard]] util::Watts holding_power(util::Celsius target, util::Celsius t_out) const;

 private:
  RoomParams params_;
  util::Celsius temp_;
  // Memoized decay factor: the platform ticks at one fixed period, so
  // exp(-dt/tau) is computed once and reused every advance thereafter.
  double decay_dt_ = -1.0;
  double decay_ = 0.0;
};

/// Parameters of a 2R2C room (air node + envelope node).
struct Room2R2CParams {
  double r_air_env_k_per_w = 0.010;    ///< air <-> envelope resistance
  double r_env_out_k_per_w = 0.025;    ///< envelope <-> outdoors resistance
  double c_air_j_per_k = 1.0e6;        ///< fast air + furnishing capacitance
  double c_env_j_per_k = 2.0e7;        ///< slow wall mass capacitance
  util::Watts internal_gains{60.0};
};

/// Semi-implicitly integrated 2R2C room. `advance` subdivides long steps so
/// the stiff envelope node stays stable.
class Room2R2C {
 public:
  Room2R2C(Room2R2CParams params, util::Celsius initial_temperature);

  void advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out);

  [[nodiscard]] util::Celsius air_temperature() const { return t_air_; }
  [[nodiscard]] util::Celsius envelope_temperature() const { return t_env_; }
  [[nodiscard]] const Room2R2CParams& params() const { return params_; }

  /// Steady-state air temperature under constant inputs.
  [[nodiscard]] util::Celsius equilibrium(util::Watts q_heat, util::Celsius t_out) const;

  /// Steady-state heater power holding the air at `target` (series R).
  [[nodiscard]] util::Watts holding_power(util::Celsius target, util::Celsius t_out) const;

  /// Largest stable explicit step (s); depends only on the parameters.
  [[nodiscard]] double max_step_s() const { return max_step_; }

 private:
  Room2R2CParams params_;
  util::Celsius t_air_;
  util::Celsius t_env_;
  double max_step_;  ///< stability bound, precomputed at construction
  // Memoized substep schedule for a fixed dt: n_full_ steps of max_step_
  // followed by one step of h_last_ (0 when dt divides exactly).
  double sched_dt_ = -1.0;
  std::size_t n_full_ = 0;
  double h_last_ = 0.0;
};

/// Fidelity-erased room handle: the platform drives either RC model behind
/// one interface (pick per building with
/// `BuildingConfig::high_fidelity_rooms`).
class AnyRoom {
 public:
  explicit AnyRoom(Room room) : impl_(std::move(room)) {}
  explicit AnyRoom(Room2R2C room) : impl_(std::move(room)) {}

  void advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out) {
    std::visit([&](auto& r) { r.advance(dt, q_heat, t_out); }, impl_);
  }
  [[nodiscard]] util::Celsius temperature() const {
    return std::visit(
        [](const auto& r) {
          if constexpr (std::is_same_v<std::decay_t<decltype(r)>, Room2R2C>) {
            return r.air_temperature();
          } else {
            return r.temperature();
          }
        },
        impl_);
  }
  [[nodiscard]] util::Watts holding_power(util::Celsius target, util::Celsius t_out) const {
    return std::visit([&](const auto& r) { return r.holding_power(target, t_out); }, impl_);
  }

 private:
  std::variant<Room, Room2R2C> impl_;
};

}  // namespace df3::thermal
