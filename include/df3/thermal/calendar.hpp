#pragma once
/// \file calendar.hpp
/// \brief Simulation-time calendar: seconds-since-Jan-1 to month/day/hour.
///
/// df3sim uses a 365-day non-leap civil year starting January 1 at 00:00.
/// The weather model, seasonality analysis and Figure-4 reproduction all
/// index into this calendar. Times beyond one year wrap periodically.

#include <array>
#include <string_view>

#include "df3/sim/engine.hpp"

namespace df3::thermal {

inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerYear = 365.0 * kSecondsPerDay;

/// Days in each month of the (non-leap) simulation year.
inline constexpr std::array<int, 12> kDaysInMonth = {31, 28, 31, 30, 31, 30,
                                                     31, 31, 30, 31, 30, 31};

/// Cumulative day offset of the first day of each month (Jan = 0).
[[nodiscard]] constexpr std::array<int, 12> month_start_days() {
  std::array<int, 12> out{};
  int acc = 0;
  for (int m = 0; m < 12; ++m) {
    out[static_cast<std::size_t>(m)] = acc;
    acc += kDaysInMonth[static_cast<std::size_t>(m)];
  }
  return out;
}

/// Fractional day-of-year in [0, 365) for simulation time `t` (wraps).
[[nodiscard]] double day_of_year(sim::Time t);

/// Month index 0..11 (0 = January) for simulation time `t`.
[[nodiscard]] int month_of(sim::Time t);

/// Hour-of-day in [0, 24).
[[nodiscard]] double hour_of_day(sim::Time t);

/// Day-of-week 0..6 with day 0 (Jan 1) defined as a Monday; used by
/// business-hours workload modulation.
[[nodiscard]] int day_of_week(sim::Time t);

/// True during working hours: Mon-Fri, 08:00-18:00.
[[nodiscard]] bool is_business_hours(sim::Time t);

/// Three-letter month name, for table output ("Jan".."Dec").
[[nodiscard]] std::string_view month_name(int month_index);

/// Simulation time of the first instant of `month_index` (0..11) in year
/// `year` (0-based). Convenience for experiment windows like Nov->May.
[[nodiscard]] sim::Time start_of_month(int month_index, int year = 0);

}  // namespace df3::thermal
