#pragma once
/// \file water_tank.hpp
/// \brief Domestic-hot-water tank model for digital boilers (paper §II-B.2).
///
/// A digital boiler "integrates several computing servers and whose heat is
/// used to produce hot water or oil, required by the heating grid of the
/// building". The tank closes that loop: servers heat the water volume,
/// residents draw hot water (morning/evening peaks), cold mains water
/// replaces each draw, and standing losses leak through the insulation.
///
/// Single lumped node:
///   m c dT/dt = Q_servers - UA (T - T_amb) - draw_rate * c * (T - T_mains)
///
/// Exactly integrated per step for piecewise-constant inputs (same
/// closed-form approach as the room RC model). The boiler's thermostat-
/// equivalent is `demand()`: how much server heat the tank currently wants
/// to reach its setpoint — this is what the DF3 heat regulator tracks for
/// boiler deployments.

#include "df3/sim/engine.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/util/units.hpp"

namespace df3::thermal {

struct WaterTankParams {
  double volume_l = 800.0;          ///< tank volume (litres)
  double ua_w_per_k = 3.5;          ///< standing-loss coefficient
  util::Celsius setpoint{55.0};     ///< target storage temperature
  util::Celsius mains{12.0};        ///< cold feed temperature
  util::Celsius ambient{18.0};      ///< plant-room temperature
  util::Celsius legionella_min{50.0};  ///< sanitary lower bound to report
  /// Proportional gain of the charging controller (W per K below setpoint).
  double charge_gain_w_per_k = 1500.0;

  /// Thermal capacitance of the stored water (J/K). c_p = 4186 J/(kg K).
  [[nodiscard]] double capacity_j_per_k() const { return volume_l * 4186.0; }
};

/// Lumped hot-water store heated by a digital boiler.
class WaterTank {
 public:
  WaterTank(WaterTankParams params, util::Celsius initial);

  /// Advance `dt` with constant server heat input `q` and constant draw
  /// `draw_lps` (litres/second of hot water replaced by mains water).
  void advance(util::Seconds dt, util::Watts q, double draw_lps);

  [[nodiscard]] util::Celsius temperature() const { return temp_; }
  [[nodiscard]] const WaterTankParams& params() const { return params_; }

  /// Heat power the tank requests from its boiler right now, given the
  /// current draw: feed-forward (losses + draw enthalpy) plus proportional
  /// recovery toward the setpoint, clamped to `rating`. Tanks want heat
  /// year-round (`heating_season` always true) — the availability argument
  /// the paper makes for digital boilers vs digital heaters.
  [[nodiscard]] HeatDemand demand(double draw_lps, util::Watts rating) const;

  /// Steady-state temperature under constant inputs.
  [[nodiscard]] util::Celsius equilibrium(util::Watts q, double draw_lps) const;

  /// Seconds spent below the sanitary minimum since construction.
  [[nodiscard]] double seconds_below_sanitary() const { return below_sanitary_s_; }
  /// Litres of hot water served since construction.
  [[nodiscard]] double litres_served() const { return litres_served_; }

 private:
  WaterTankParams params_;
  util::Celsius temp_;
  double below_sanitary_s_ = 0.0;
  double litres_served_ = 0.0;
  // Memoized exp(-dt/tau): the draw profile is piecewise constant over
  // hours and the tick period fixed, so (dt, loss coefficient) — and hence
  // the decay factor — repeat for long stretches.
  double decay_dt_ = -1.0;
  double decay_loss_ = -1.0;
  double decay_ = 0.0;
};

/// Residential draw profile: litres/second as a function of time-of-day,
/// with morning (07-09) and evening (18-22) peaks. `daily_litres` is the
/// building's total daily consumption.
[[nodiscard]] double hot_water_draw_lps(sim::Time t, double daily_litres);

}  // namespace df3::thermal
