#pragma once
/// \file pv.hpp
/// \brief Rooftop photovoltaic production model (paper §VI).
///
/// "the local production of renewable energies is opening interesting
///  perspectives for autonomous buildings equipped with electric heaters" —
/// the paper names PV-powered autonomous buildings as the enabler that
/// could widen the electric-heating (hence DF-server) market. This model
/// turns the simulation calendar + weather into an AC production signal:
///
///   P(t) = peak * solar_elevation_factor(t) * season_factor(t) * sky(t)
///
/// where the sky state is derived from the weather model's AR(1) noise
/// (warm anomalies in winter correlate with overcast in oceanic climates is
/// ignored; we use an independent counter-hashed cloudiness process).

#include "df3/sim/engine.hpp"
#include "df3/thermal/weather.hpp"
#include "df3/util/units.hpp"

namespace df3::thermal {

struct PvParams {
  util::Watts peak{3000.0};     ///< nameplate (W-peak)
  double latitude_deg = 48.85;  ///< Paris
  /// Mean fraction of the clear-sky yield lost to clouds (0.35 ~ oceanic).
  double mean_cloud_loss = 0.35;
  /// Hour-scale persistence of the cloud process.
  double cloud_phi = 0.9;
};

/// Deterministic PV array; queries are independent and reproducible.
class PvArray {
 public:
  PvArray(PvParams params, std::uint64_t seed);

  /// Instantaneous AC production at simulation time `t`.
  [[nodiscard]] util::Watts production(sim::Time t) const;

  /// Clear-sky production (no cloud loss) — the deterministic envelope.
  [[nodiscard]] util::Watts clear_sky(sim::Time t) const;

  /// Cloudiness in [0, 1] for the hour containing `t` (0 = clear).
  [[nodiscard]] double cloudiness(sim::Time t) const;

  /// Energy produced over [t0, t1], integrated at `step` resolution.
  [[nodiscard]] util::Joules energy(sim::Time t0, sim::Time t1,
                                    double step_s = 900.0) const;

  [[nodiscard]] const PvParams& params() const { return params_; }

 private:
  PvParams params_;
  std::uint64_t seed_;
};

}  // namespace df3::thermal
