#pragma once
/// \file df3.hpp
/// \brief Umbrella header for df3sim: the Data-Furnace-in-three-flows
///        simulation framework.
///
/// Pulls in the public API of every module. Applications that only need one
/// subsystem may include the individual headers instead:
///
///   df3/sim/engine.hpp        discrete-event engine
///   df3/thermal/...           weather, rooms, thermostats, urban heat
///   df3/hw/...                CPUs (DVFS) and DF server chassis
///   df3/net/...               protocols and store-and-forward network
///   df3/workload/...          request flows, arrivals, generators, traces
///   df3/grid/...              grid-signal plane: carbon/price/renewables
///   df3/policy/...            decision plane: pluggable policies + registry
///   df3/core/...              the DF3 middleware (the paper's contribution)
///   df3/baselines/...         datacenter, micro-DC/CDN, desktop grid
///   df3/metrics/...           response/energy/comfort collectors
///   df3/obs/...               tracing, metric registry, telemetry export
///   df3/analytics/...         thermosensitivity + demand forecasting

#include "df3/analytics/forecaster.hpp"
#include "df3/analytics/pricing.hpp"
#include "df3/baselines/datacenter.hpp"
#include "df3/baselines/desktop_grid.hpp"
#include "df3/core/cluster.hpp"
#include "df3/core/clustering.hpp"
#include "df3/core/fault.hpp"
#include "df3/core/grid_event.hpp"
#include "df3/core/heat_regulator.hpp"
#include "df3/core/platform.hpp"
#include "df3/core/scheduler.hpp"
#include "df3/core/task.hpp"
#include "df3/core/worker.hpp"
#include "df3/grid/signal.hpp"
#include "df3/hw/cpu.hpp"
#include "df3/hw/mining.hpp"
#include "df3/hw/server.hpp"
#include "df3/metrics/audit.hpp"
#include "df3/metrics/collectors.hpp"
#include "df3/net/fault.hpp"
#include "df3/net/network.hpp"
#include "df3/net/protocol.hpp"
#include "df3/obs/export.hpp"
#include "df3/obs/metrics.hpp"
#include "df3/obs/obs.hpp"
#include "df3/obs/trace.hpp"
#include "df3/policy/policy.hpp"
#include "df3/policy/registry.hpp"
#include "df3/sim/engine.hpp"
#include "df3/thermal/calendar.hpp"
#include "df3/thermal/pv.hpp"
#include "df3/thermal/room.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/thermal/urban.hpp"
#include "df3/thermal/water_tank.hpp"
#include "df3/thermal/weather.hpp"
#include "df3/util/rng.hpp"
#include "df3/util/stats.hpp"
#include "df3/util/table.hpp"
#include "df3/util/thread_pool.hpp"
#include "df3/util/units.hpp"
#include "df3/workload/arrivals.hpp"
#include "df3/workload/generators.hpp"
#include "df3/workload/request.hpp"
#include "df3/workload/trace.hpp"
