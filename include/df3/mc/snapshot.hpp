#pragma once
/// \file snapshot.hpp
/// \brief State capture for the decision-plane model checker.
///
/// df3sim's exploration strategy is *replay-based* save/restore: because
/// every component draws from named `util::RngStream`s derived from one
/// experiment seed and the event calendar breaks timestamp ties by a
/// deterministic sequence number, rebuilding a world and re-applying the
/// same action prefix reproduces the simulation state bit-for-bit. A
/// "snapshot" is therefore the pair (seed/config, action prefix), and
/// restoring is replaying — no mutable deep copy of Df3Platform exists or
/// is needed (the platform owns live event handles that cannot be cloned
/// soundly).
///
/// What this header provides is the *observable* half of that contract:
/// `StateDigest`, a canonical FNV-1a fingerprint of everything the decision
/// plane can branch on (queues, pending maps, running shards, injector
/// states, auditor counters). Two uses:
///
///  * **bit-exactness checks** — replaying a prefix twice must produce the
///    same digest (tests/mc_test.cpp pins this);
///  * **optional state dedup in the explorer** — identical digests mean the
///    *captured* state matches. Capture is deliberately coarser than the
///    full simulator state (it omits the event calendar's internal order of
///    same-instant events), so dedup trades soundness for tree size and is
///    off by default; certification runs explore the full tree (see
///    DESIGN.md §13).
///
/// The byte order of every mix function is fixed (little-endian, doubles
/// via bit pattern) so digests are portable and can be pinned as golden
/// values.

#include <bit>
#include <cstdint>
#include <string_view>

namespace df3::mc {

/// Incremental FNV-1a 64-bit fingerprint with a fixed, portable byte
/// encoding per mixed value. Same mix sequence => same value, on any
/// platform.
class StateDigest {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  constexpr void mix_byte(std::uint8_t b) { h_ = (h_ ^ b) * kPrime; }

  /// Mixed as 8 bytes, least-significant first.
  constexpr void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// Mixed by exact bit pattern — bit-for-bit, not approximate equality.
  void mix_f64(double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); }

  constexpr void mix_bool(bool b) { mix_byte(b ? 1 : 0); }

  constexpr void mix_str(std::string_view s) {
    // Length-prefixed so ("ab","c") never collides with ("a","bc").
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] constexpr std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

}  // namespace df3::mc
