#pragma once
/// \file world.hpp
/// \brief The explorable-world interface of the decision-plane model checker.
///
/// A `World` wraps a simulation fixture behind an explicit choice-point API:
/// the explorer asks which exogenous decision-relevant events are currently
/// possible (`enabled`), picks one (`apply`), and checks invariants either
/// non-destructively mid-branch (`check`) or by draining the world to
/// quiescence (`finalize`). Restoring an earlier state is replay-based (see
/// snapshot.hpp): `reset()` rebuilds the deterministic root state and the
/// explorer re-applies the action prefix, which the engine's seeded RNG
/// streams and (time, seq) tie-break make bit-exact.
///
/// Actions are identified by their canonical label string. Labels must be
/// stable across `reset()` calls — they are the alphabet of the explored
/// tree and the vocabulary of violation witnesses.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace df3::mc {

class World {
 public:
  virtual ~World() = default;

  /// Rebuild the deterministic root state (branch epoch). Must be callable
  /// any number of times; every call yields a bit-identical world.
  virtual void reset() = 0;

  /// Canonical labels of the choice points enabled right now, in a fixed
  /// deterministic order.
  [[nodiscard]] virtual std::vector<std::string> enabled() = 0;

  /// Perform one enabled action. Throws std::invalid_argument on an
  /// unknown label.
  virtual void apply(const std::string& action) = 0;

  /// Non-destructive invariant sweep of the current state (structural
  /// checks + instantaneous conservation identities). One human-readable
  /// line per violation; empty = healthy.
  [[nodiscard]] virtual std::vector<std::string> check() = 0;

  /// Destructively drive the world to quiescence (heal injected faults,
  /// drain all in-flight work) and check the full end-to-end conservation
  /// identity: every request submitted on this branch reached exactly one
  /// terminal outcome. After finalize() the world is only good for
  /// `coverage()`; the explorer resets before the next branch.
  [[nodiscard]] virtual std::vector<std::string> finalize() = 0;

  /// Canonical fingerprint of the decision-plane-observable state (see
  /// snapshot.hpp for what "observable" covers — and what it does not).
  [[nodiscard]] virtual std::uint64_t digest() = 0;

  /// Named event counters accumulated on the current branch (rung firings,
  /// injector toggles, hand-offs...). The explorer sums these across all
  /// branches so a run can prove which mechanisms the explored tree
  /// actually exercised. Called after finalize().
  [[nodiscard]] virtual std::vector<std::pair<std::string, std::uint64_t>> coverage() {
    return {};
  }
};

}  // namespace df3::mc
