#pragma once
/// \file fleet_world.hpp
/// \brief The concrete checked world: a small fixed DF3 fleet whose
///        exogenous decision-relevant events are explicit choice points.
///
/// Fixture (per `reset()`, bit-identical every time):
///
///  * 2-3 buildings ("b0", "b1"[, "b2"]), 2 rooms each, every room hosting
///    a single-core DF server — so one task shard saturates a worker and
///    every placement decision is observable;
///  * full four-rung peak ladder (preempt -> horizontal -> vertical ->
///    delay), EDF discipline, full-mesh federation, datacenter attached,
///    lifecycle auditing at kFull;
///  * background load pinning the root state: b0's workers run
///    non-preemptible cloud work (so a native edge burst must escalate past
///    preemption to horizontal offload), every other building runs one
///    preemptible victim and one non-preemptible filler (so preemption can
///    fire exactly once before the ladder escalates further);
///  * injectors wired but *not* RNG-scheduled: one LinkFlapper over the
///    building uplinks and one WorkerChurn (power gating) per cluster,
///    driven exclusively through their force_toggle choice points.
///
/// The action alphabet (cluster count n):
///
///   edge(bK)      submit a 1-task edge request at building K
///   edge2(b1)     submit a 2-task edge request at b1 (multi-shard requests
///                 cannot offload, so this reaches the delay rung)
///   cloud_dl(b1)  submit a deadline-carrying cloud request at b1 (EDF lane
///                 ordering pressure)
///   pinned(b0/w0) run a composition stage pinned to b0's worker 0
///   flap(up-bK)   toggle building K's uplink (partition choice point)
///   gate(bK/w0)   power-gate / restore worker 0 of cluster K
///   step          advance simulated time by 1 s (lets in-flight network
///                 transfers land between choice points)
///   tick          advance by one physics tick (thermal / regulator /
///                 gating interleavings)
///
/// Submissions and toggles advance no simulated time themselves, so a flap
/// can be ordered *between* a submission and the ladder decision it
/// triggers — exactly the hand-off-vs-partition and gate-vs-placement races
/// this checker exists to flush.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "df3/core/fault.hpp"
#include "df3/core/platform.hpp"
#include "df3/mc/world.hpp"
#include "df3/net/fault.hpp"

namespace df3::mc {

struct FleetWorldConfig {
  std::uint64_t seed = 1;
  /// Buildings/clusters in the fleet (2 or 3).
  std::size_t clusters = 2;
  /// Simulated seconds advanced by the "step" action.
  double step_s = 1.0;
  /// Physics control period; also the "tick" action's advance.
  double tick_s = 60.0;
  /// Gigacycles of each background request — long enough to outlive any
  /// explored branch (workers stay busy), short enough that finalize()
  /// drains in bounded simulated time.
  double background_work_gc = 2000.0;
  /// Restrict the alphabet to these labels (empty = full alphabet). Labels
  /// must exist in the full alphabet; order is normalized to canonical.
  std::vector<std::string> alphabet;
};

/// World implementation over a real Df3Platform. See file comment.
class FleetWorld final : public World {
 public:
  explicit FleetWorld(FleetWorldConfig config);
  ~FleetWorld() override;

  void reset() override;
  [[nodiscard]] std::vector<std::string> enabled() override;
  void apply(const std::string& action) override;
  [[nodiscard]] std::vector<std::string> check() override;
  [[nodiscard]] std::vector<std::string> finalize() override;
  [[nodiscard]] std::uint64_t digest() override;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> coverage() override;

  /// The live platform of the current branch (tests only; reset() replaces
  /// it). Undefined before the first reset().
  [[nodiscard]] core::Df3Platform& platform() { return *city_; }

 private:
  void build_actions();
  [[nodiscard]] workload::Request make_request(const char* app, double work_gc);

  FleetWorldConfig config_;
  std::unique_ptr<core::Df3Platform> city_;
  std::unique_ptr<net::LinkFlapper> flapper_;
  std::vector<std::unique_ptr<core::WorkerChurn>> churn_;
  /// (label, thunk) in canonical order; filtered by config_.alphabet.
  std::vector<std::pair<std::string, std::function<void()>>> actions_;
  std::uint64_t next_id_ = 0;
};

}  // namespace df3::mc
