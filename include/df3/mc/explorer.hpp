#pragma once
/// \file explorer.hpp
/// \brief Exhaustive interleaving exploration over a World (DESIGN.md §13).
///
/// Breadth-first search over the tree of action sequences up to a depth
/// bound. BFS is deliberate: the first violation found on any branch is
/// reported with the *shortest* event schedule that reaches it — witnesses
/// are minimal by construction, which is what makes them convertible into
/// plain regression tests.
///
/// Each node is materialized by replay: `World::reset()` rebuilds the
/// deterministic root and the node's action prefix is re-applied (see
/// snapshot.hpp for why replay is the sound save/restore here). Every node
/// then runs the non-destructive invariant sweep, and — because the next
/// node replays from the root anyway — is additionally *finalized*: faults
/// healed, work drained, and the full request-conservation identity
/// checked. Every explored interleaving therefore asserts the complete
/// LifecycleAuditor identity end to end, not just the structural
/// mid-branch invariants.
///
/// A violating node is recorded (witness = its action prefix, plus a
/// "<drain>" marker when the violation only surfaced while draining) and
/// its subtree pruned: extensions of a broken schedule would only produce
/// longer witnesses of the same defect.
///
/// Optional digest-based dedup collapses nodes whose captured state
/// fingerprints match. This is a tree-size/soundness trade (the digest
/// cannot observe the relative calendar order of distinct same-instant
/// in-flight events), so it is OFF by default; certification runs and the
/// CI smoke job explore the full tree and instead pin `states_explored`
/// against a bound.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "df3/mc/world.hpp"

namespace df3::mc {

struct ExplorerConfig {
  /// Maximum number of actions per branch (tree depth).
  std::size_t max_depth = 3;
  /// Abort exploration after this many nodes (0 = unlimited). Used by CI
  /// as the pinned state-count bound: a truncated run means the explored
  /// space regressed past the bound.
  std::uint64_t max_states = 0;
  /// Collapse digest-identical states (see soundness caveat above).
  bool dedup = false;
  /// Keep at most this many violation witnesses (count stays exact).
  std::size_t max_stored_violations = 32;
  /// Progress hook, called every `progress_every` nodes (0 = never).
  std::uint64_t progress_every = 0;
  std::function<void(std::uint64_t states, std::size_t frontier)> on_progress;
};

/// One invariant violation with its minimal event-schedule witness.
struct Violation {
  /// Action labels from the root; a trailing "<drain>" means the breach
  /// surfaced in finalize(), not in the mid-branch sweep.
  std::vector<std::string> witness;
  std::vector<std::string> messages;
};

struct ExploreResult {
  std::uint64_t states_explored = 0;   ///< nodes fully replayed and checked
  std::uint64_t states_deduped = 0;    ///< nodes pruned by digest match
  std::uint64_t violation_count = 0;   ///< exact, even beyond the stored cap
  std::size_t max_depth_reached = 0;
  bool truncated = false;              ///< hit ExplorerConfig::max_states
  std::vector<Violation> violations;   ///< shortest witnesses first (BFS)
  /// Summed World::coverage() counters across every explored branch.
  std::map<std::string, std::uint64_t> coverage;

  [[nodiscard]] bool clean() const { return violation_count == 0; }
};

class Explorer {
 public:
  explicit Explorer(ExplorerConfig config) : config_(std::move(config)) {}

  /// Exhaustively explore `world` up to the configured depth.
  [[nodiscard]] ExploreResult run(World& world) const;

 private:
  ExplorerConfig config_;
};

/// Render a witness as a one-line schedule ("edge(b1) -> step -> <drain>").
[[nodiscard]] std::string format_witness(const std::vector<std::string>& witness);

}  // namespace df3::mc
