#pragma once
/// \file pricing.hpp
/// \brief Seasonal pricing and SLA economics for DF capacity (paper §IV).
///
/// "data furnace introduces another dimension to classical cloud pricing
///  models: the seasonality ... in winter, the heat demand increases the
///  computing power that is then reduced in the summer. We are convinced
///  that for SLAs designers, data furnace is a field of research."
///
/// Components:
///  * `SpotPriceModel` — clears a per-interval spot price from DF supply
///    (heat-driven capacity) vs compute demand, floored by the near-zero
///    marginal cost of winter cycles and capped by the datacenter
///    alternative (customers arbitrage);
///  * `SlaPortfolio`  — splits demand between a *guaranteed* class (always
///    served, datacenter backstop when DF capacity is short) and a
///    *seasonal* class (DF-only, discounted, queued/shed in summer);
///    `simulate` runs both over capacity/demand series and reports revenue,
///    backstop cost and seasonal availability.

#include <cstddef>
#include <vector>

#include "df3/util/stats.hpp"

namespace df3::analytics {

struct SpotPriceConfig {
  /// Datacenter list price (currency per core-hour): the arbitrage cap.
  double dc_price = 0.050;
  /// Marginal winter price: heat was being bought anyway.
  double floor_price = 0.004;
  /// Price sensitivity to the demand/supply ratio.
  double elasticity = 1.5;
};

/// Memoryless market clearing per interval.
class SpotPriceModel {
 public:
  explicit SpotPriceModel(SpotPriceConfig config);

  /// Spot price when `demand_cores` bid for `supply_cores` of DF capacity.
  /// Zero supply prices at the datacenter cap.
  [[nodiscard]] double price(double supply_cores, double demand_cores) const;

  [[nodiscard]] const SpotPriceConfig& config() const { return config_; }

 private:
  SpotPriceConfig config_;
};

/// Price a whole capacity/demand year; exposes the monthly price series —
/// the artifact an SLA designer would study.
struct SpotMarketResult {
  util::TimeSeries price;        ///< per-interval clearing price
  double revenue = 0.0;          ///< DF operator revenue
  double served_core_hours = 0.0;
  double unserved_core_hours = 0.0;  ///< demand that walked to the DC
};

[[nodiscard]] SpotMarketResult run_spot_market(const SpotPriceModel& model,
                                               const util::TimeSeries& supply_cores,
                                               const util::TimeSeries& demand_cores,
                                               double interval_s);

struct SlaConfig {
  /// Guaranteed class: DC-backed, priced at a premium over the DC.
  double guaranteed_price = 0.055;
  /// Backstop cost paid per core-hour bought from the DC when DF is short.
  double dc_backstop_cost = 0.050;
  /// Seasonal class: DF-only, heavily discounted.
  double seasonal_price = 0.012;
};

struct SlaResult {
  double revenue = 0.0;
  double backstop_cost = 0.0;
  /// Fraction of seasonal-class demand actually served (its availability).
  double seasonal_availability = 1.0;
  [[nodiscard]] double profit() const { return revenue - backstop_cost; }
};

/// Serve `guaranteed_demand` first (DC backstop when short), then the
/// seasonal class from whatever DF capacity remains. Series are per
/// `interval_s`, in cores.
[[nodiscard]] SlaResult run_sla_portfolio(const SlaConfig& config,
                                          const util::TimeSeries& supply_cores,
                                          const util::TimeSeries& guaranteed_demand,
                                          const util::TimeSeries& seasonal_demand,
                                          double interval_s);

}  // namespace df3::analytics
