#pragma once
/// \file forecaster.hpp
/// \brief Predictive platform pieces (paper section III-C): thermosensitivity
///        modelling, heat-demand forecasting, and capacity planning.
///
/// "A solution to manage the variability in heat demand is to build a
///  predictive computing platform, with a model to predict the heat demand
///  and the thermosensitivity in houses equipped with DF servers. Several
///  studies reveal that the thermosensitivity is in general correlated to
///  the external weather."
///
/// The analyzer ingests (outdoor temperature, heat power) observations,
/// aggregates them into daily means, and fits the classic piecewise-linear
/// thermosensitivity curve: demand ~ slope * max(0, T_ref - T_out). The
/// forecaster turns a weather forecast into a demand forecast; the planner
/// turns the demand forecast into available DF computing capacity.

#include <cstddef>
#include <vector>

#include "df3/util/stats.hpp"
#include "df3/util/units.hpp"

namespace df3::analytics {

/// Online collector of (outdoor temperature, heat power) observations,
/// bucketed by day, with a thermosensitivity fit over daily means.
class ThermosensitivityAnalyzer {
 public:
  /// `heating_reference_c`: outdoor temperature above which demand is ~0
  /// (the "non-heating" base). 16-18 degC is the conventional choice.
  explicit ThermosensitivityAnalyzer(double heating_reference_c = 16.0);

  /// Record one observation at time `t` (seconds since Jan 1).
  void observe(double t, util::Celsius outdoor, util::Watts heat_power);

  /// Number of complete daily buckets available.
  [[nodiscard]] std::size_t days() const;

  /// Fit demand = intercept + slope * HDD(T) where HDD = max(0, ref - T).
  /// Requires >= 2 days. slope is the thermosensitivity in W/K.
  [[nodiscard]] util::LinearFit fit() const;

  /// Pearson correlation between daily heating degree and demand.
  [[nodiscard]] double correlation() const;

  /// Predict mean heat power for an outdoor temperature.
  [[nodiscard]] util::Watts predict(util::Celsius outdoor) const;

  [[nodiscard]] double reference_c() const { return reference_c_; }

 private:
  struct Day {
    util::StreamingStats outdoor;
    util::StreamingStats power;
  };
  [[nodiscard]] std::vector<Day const*> complete_days() const;

  double reference_c_;
  std::vector<Day> days_;
  long long first_day_ = -1;
};

/// Day-ahead heat-demand forecast combining the thermosensitivity model
/// with a weather forecast the caller supplies.
class HeatDemandForecaster {
 public:
  explicit HeatDemandForecaster(const ThermosensitivityAnalyzer& analyzer)
      : analyzer_(&analyzer) {}

  /// Forecast demand for each of the provided outdoor temperatures.
  [[nodiscard]] std::vector<util::Watts> forecast(
      const std::vector<util::Celsius>& outdoor_forecast) const;

  /// Mean forecast demand over the horizon.
  [[nodiscard]] util::Watts mean_forecast(
      const std::vector<util::Celsius>& outdoor_forecast) const;

 private:
  const ThermosensitivityAnalyzer* analyzer_;
};

/// Converts a heat-demand forecast into DF computing capacity: how many
/// cores the fleet can keep busy while emitting exactly the forecast heat.
class CapacityPlanner {
 public:
  /// `idle_power_w` / `max_power_w`: fleet power at zero and full load at
  /// the nominal P-state; `total_cores`: fleet core count.
  CapacityPlanner(double idle_power_w, double max_power_w, int total_cores);

  /// Cores sustainable at `demand` W of heat. Clamped to [0, total].
  [[nodiscard]] int cores_for_demand(util::Watts demand) const;

  /// Core-hours available over a horizon of per-interval demands.
  [[nodiscard]] double core_hours(const std::vector<util::Watts>& demand_forecast,
                                  double interval_s) const;

 private:
  double idle_w_;
  double max_w_;
  int total_cores_;
};

}  // namespace df3::analytics
