#pragma once
/// \file engine.hpp
/// \brief Deterministic discrete-event simulation engine.
///
/// A single-threaded event calendar with a double-precision clock (seconds).
/// Determinism rules:
///  * events at equal timestamps execute in scheduling order (a monotone
///    sequence number breaks ties), so a run is a pure function of the seed;
///  * callbacks may schedule/cancel freely, including at the current time;
///  * scheduling in the past is an error (throws), never silently reordered;
///  * the calendar's internal layout (record pool, 4-ary heap, eager
///    compaction) is invisible to callbacks: pops follow the strict total
///    order (time, sequence), so any rewrite of the storage must reproduce
///    the exact firing sequence (see Engine.GoldenEventOrderHash).
///
/// Hot-path design (see DESIGN.md "Engine internals"): event records live in
/// a slab pool addressed by {slot, generation} handles — no per-event
/// shared_ptr allocation or refcount. Callbacks are move-only
/// small-buffer-optimized `util::UniqueFunction`s, so typical lambdas never
/// touch the heap. The calendar is an explicit 4-ary min-heap with lazy
/// deletion plus eager compaction once cancelled entries outnumber live
/// ones.
///
/// The engine knows nothing about the domain; buildings, servers, gateways
/// and workloads are all `Entity`-derived objects that post events.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "df3/util/function.hpp"

namespace df3::sim {

/// Simulation time, in seconds since simulation start.
using Time = double;

class Simulation;
class PeriodicProcess;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert; `cancel()` on an already-fired or cancelled event is a no-op
/// that returns false. Handles are small value types ({engine, slot,
/// generation}); copies observe the same underlying event. A handle must not
/// be used after its Simulation is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

  /// Cancel the event if still pending. Returns true if this call
  /// cancelled it.
  bool cancel();

 private:
  friend class Simulation;
  EventHandle(Simulation* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}
  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// The event calendar and clock. Not copyable; entities hold references.
class Simulation {
 public:
  using Callback = util::UniqueFunction<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (>= now). Throws
  /// std::invalid_argument on scheduling in the past.
  EventHandle schedule_at(Time t, Callback cb);

  /// Schedule `cb` to run `dt` seconds from now (dt >= 0).
  EventHandle schedule_in(Time dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  /// Run events until the calendar is empty or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run all events with timestamp <= `t`, then advance the clock to exactly
  /// `t` (even if the calendar still holds later events). Returns events run.
  std::size_t run_until(Time t);

  /// Request that the current `run`/`run_until` stops after the current
  /// callback returns. Pending events stay in the calendar.
  void stop() { stop_requested_ = true; }

  /// Number of live (non-cancelled, not yet fired) events in the calendar.
  /// Exact: cancelled entries awaiting lazy removal are not counted.
  [[nodiscard]] std::size_t pending_events() const { return heap_.size() - ghosts_; }

  // --- introspection counters, for tests and engine benchmarks ---
  [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

 private:
  friend class EventHandle;
  friend class PeriodicProcess;

  /// One pooled event record. Slots are recycled through a free list; the
  /// generation counter is bumped on every release so stale {slot, gen}
  /// handles and stale heap entries are recognized in O(1).
  /// Callbacks are invoked in place with `armed` cleared; a record whose
  /// callback re-armed its own slot from inside the call (PeriodicProcess
  /// re-arm fast path) survives the firing, anything else is released.
  struct Record {
    Callback callback;
    std::uint32_t gen = 0;
    bool armed = false;  // has a live calendar entry
  };

  /// Calendar entry: 24 bytes, kept in an explicit 4-ary min-heap ordered
  /// by (t, seq). `gen` detects ghosts (entries whose record was released).
  /// The timestamp is stored as its IEEE-754 bit pattern: simulation times
  /// are always >= 0, where the bit order equals the numeric order, so the
  /// (t, seq) comparison is two integer compares that compile branchless.
  struct HeapEntry {
    std::uint64_t tkey;  // key_of(t); numeric order == unsigned bit order
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static std::uint64_t key_of(Time t) {
    // +0.0 normalizes -0.0 (whose bit pattern would sort above everything).
    return std::bit_cast<std::uint64_t>(t + 0.0);
  }
  static Time time_of(const HeapEntry& e) { return std::bit_cast<Time>(e.tkey); }

  bool step();  // execute the next live event; false if calendar empty

  // The pool is a chunked slab: growing it allocates a fresh fixed-size
  // slab and never moves existing records, so scheduling N events costs N/1024
  // allocations instead of one per event (and no growth-time record moves).
  static constexpr std::uint32_t kSlabShift = 10;  // 1024 records per slab
  static constexpr std::uint32_t kSlabMask = (1U << kSlabShift) - 1;

  [[nodiscard]] Record& record(std::uint32_t slot) {
    return slabs_[slot >> kSlabShift][slot & kSlabMask];
  }
  [[nodiscard]] const Record& record(std::uint32_t slot) const {
    return slabs_[slot >> kSlabShift][slot & kSlabMask];
  }
  std::uint32_t alloc_record();
  void release_record(std::uint32_t slot);
  [[nodiscard]] bool slot_live(std::uint32_t slot, std::uint32_t gen) const {
    const Record& rec = record(slot);
    return rec.gen == gen && rec.armed;
  }

  // PeriodicProcess re-arm fast path: keep one persistent record and push a
  // fresh calendar entry per tick instead of allocating a record per tick.
  std::uint32_t acquire_persistent(Callback cb);
  EventHandle arm_slot(std::uint32_t slot, Time t);

  // 4-ary min-heap primitives over heap_. Ordering on (tkey, seq) is one
  // 128-bit unsigned compare, which compiles branchless (cmp/sbb/setb):
  // min-child selection on random times is inherently unpredictable, and a
  // mispredict per level costs more than the heap's cache advantages save.
  static bool entry_less(const HeapEntry& a, const HeapEntry& b) {
#if defined(__SIZEOF_INT128__)
    __extension__ typedef unsigned __int128 U128;
    const U128 ka = (static_cast<U128>(a.tkey) << 64) | a.seq;
    const U128 kb = (static_cast<U128>(b.tkey) << 64) | b.seq;
    return ka < kb;
#else
    return a.tkey < b.tkey || (a.tkey == b.tkey && a.seq < b.seq);
#endif
  }
  /// Heap fan-out. Power of two; 4 halves the depth of a binary heap while
  /// a child group still spans only two cache lines.
  static constexpr std::size_t kHeapArity = 4;

  /// Index of the smallest child of the hole whose *complete* group of
  /// kHeapArity children starts at `first_child`; callers handle the
  /// partial group at the heap's end. A pairwise tournament of branchless
  /// compares — the loops fully unroll, and cmov chains beat
  /// mispredict-prone branches since which child wins is unpredictable.
  static std::size_t min_child_full(const HeapEntry* h, std::size_t first_child) {
    std::size_t best[kHeapArity / 2];
    for (std::size_t i = 0; i < kHeapArity / 2; ++i) {
      const std::size_t c = first_child + 2 * i;
      best[i] = c + static_cast<std::size_t>(entry_less(h[c + 1], h[c]));
    }
    for (std::size_t w = kHeapArity / 2; w > 1; w /= 2) {
      for (std::size_t i = 0; i < w / 2; ++i) {
        best[i] = entry_less(h[best[2 * i + 1]], h[best[2 * i]]) ? best[2 * i + 1] : best[2 * i];
      }
    }
    return best[0];
  }

  void heap_push(const HeapEntry& e);
  void heap_pop();  // removes heap_[0]
  void sift_down(std::size_t i);
  void maybe_compact();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  bool stop_requested_ = false;
  std::vector<std::unique_ptr<Record[]>> slabs_;
  std::uint32_t pool_size_ = 0;      // slots handed out so far (never shrinks)
  std::vector<std::uint32_t> free_;  // recycled pool slots
  std::vector<HeapEntry> heap_;
  std::size_t ghosts_ = 0;  // cancelled entries still in heap_
};

/// A named simulation participant. Owns no engine state; provides uniform
/// access to the clock and calendar for derived domain objects.
class Entity {
 public:
  Entity(Simulation& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}
  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] Simulation& sim() const { return *sim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Time now() const { return sim_->now(); }

 private:
  Simulation* sim_;
  std::string name_;
};

/// Repeating process: runs `tick` every `period` seconds starting at
/// `start`. `stop()` cancels the next occurrence. The callback may call
/// `stop()` on its own process. Tick k fires at exactly `start + k * period`
/// (computed directly, not accumulated, so long runs do not drift). Must be
/// destroyed before its Simulation.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulation& sim, Time start, Time period,
                  util::UniqueFunction<void(Time)> tick);
  ~PeriodicProcess() { stop(); }

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Time period() const { return period_; }

 private:
  void on_fire();

  Simulation& sim_;
  Time start_;
  Time period_;
  std::uint64_t k_ = 0;  // index of the next tick; fires at start_ + k_ * period_
  util::UniqueFunction<void(Time)> tick_;
  std::uint32_t slot_ = 0;  // persistent record in the engine's pool
  EventHandle next_;
  bool running_ = true;
};

}  // namespace df3::sim
