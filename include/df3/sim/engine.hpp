#pragma once
/// \file engine.hpp
/// \brief Deterministic discrete-event simulation engine.
///
/// A single-threaded event calendar with a double-precision clock (seconds).
/// Determinism rules:
///  * events at equal timestamps execute in scheduling order (a monotone
///    sequence number breaks ties), so a run is a pure function of the seed;
///  * callbacks may schedule/cancel freely, including at the current time;
///  * scheduling in the past is an error (throws), never silently reordered.
///
/// The engine knows nothing about the domain; buildings, servers, gateways
/// and workloads are all `Entity`-derived objects that post events.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

namespace df3::sim {

/// Simulation time, in seconds since simulation start.
using Time = double;

class Simulation;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert; `cancel()` on an already-fired or cancelled event is a no-op
/// that returns false.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

  /// Cancel the event if still pending. Returns true if this call
  /// cancelled it.
  bool cancel();

 private:
  friend class Simulation;
  struct Record;
  explicit EventHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
  std::shared_ptr<Record> rec_;
};

/// The event calendar and clock. Not copyable; entities hold references.
class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulation time in seconds.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` to run at absolute time `t` (>= now). Throws
  /// std::invalid_argument on scheduling in the past.
  EventHandle schedule_at(Time t, Callback cb);

  /// Schedule `cb` to run `dt` seconds from now (dt >= 0).
  EventHandle schedule_in(Time dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  /// Run events until the calendar is empty or `max_events` have executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run all events with timestamp <= `t`, then advance the clock to exactly
  /// `t` (even if the calendar still holds later events). Returns events run.
  std::size_t run_until(Time t);

  /// Request that the current `run`/`run_until` stops after the current
  /// callback returns. Pending events stay in the calendar.
  void stop() { stop_requested_ = true; }

  /// Number of events pending in the calendar (cancelled ones may still be
  /// counted until they are lazily discarded).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  // --- introspection counters, for tests and engine benchmarks ---
  [[nodiscard]] std::uint64_t events_scheduled() const { return scheduled_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

 private:
  friend class EventHandle;
  bool step();  // execute the next live event; false if calendar empty

  struct QueueEntry;
  struct Compare {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const;
  };
  struct QueueEntry {
    Time t;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::Record> rec;
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Compare> queue_;
};

/// A named simulation participant. Owns no engine state; provides uniform
/// access to the clock and calendar for derived domain objects.
class Entity {
 public:
  Entity(Simulation& sim, std::string name) : sim_(&sim), name_(std::move(name)) {}
  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  [[nodiscard]] Simulation& sim() const { return *sim_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Time now() const { return sim_->now(); }

 private:
  Simulation* sim_;
  std::string name_;
};

/// Repeating process: runs `tick` every `period` seconds starting at
/// `start`. `stop()` cancels the next occurrence. The callback may call
/// `stop()` on its own process.
class PeriodicProcess {
 public:
  PeriodicProcess(Simulation& sim, Time start, Time period, std::function<void(Time)> tick);
  ~PeriodicProcess() { stop(); }

  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Time period() const { return period_; }

 private:
  void arm(Time t);

  Simulation& sim_;
  Time period_;
  std::function<void(Time)> tick_;
  EventHandle next_;
  bool running_ = true;
};

}  // namespace df3::sim
