#pragma once
/// \file signal.hpp
/// \brief Grid-signal substrate: per-region carbon / price / renewable series.
///
/// The paper's urban-integration argument (section III-B) — and the Buyya
/// sustainability visions it points at — make the electricity grid a
/// first-class input to resource management: a building fleet is only a
/// good citizen of its city if it knows what its electrons cost, in euros
/// and in grams of CO2. This module is the substrate half of that loop,
/// sitting next to the weather model: deterministic per-region time series
/// (`GridSignal`) grouped into a `GridPlane` the platform samples once per
/// physics tick and exposes *read-only* through the decision plane
/// (DESIGN.md §15).
///
/// Design mirrors `thermal::WeatherModel`: queries are const, reproducible
/// in any order, and never consult a clock or RNG. A signal is a step
/// function over explicit breakpoints (the shape of real ENTSO-E / spot
/// price feeds) with an optional repeat period so a bundled one-day trace
/// can drive a week-long run.
///
/// The plane also owns the per-region *curtailment* flags — the
/// demand-response state a `core::GridEventSource` raises during a
/// curtailment window and the `grid-shed` peak rung reacts to. Flags are
/// mutable plane state, not signal data: events are injected, signals are
/// recorded history.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace df3::grid {

/// One region's grid state at an instant.
struct GridSample {
  double carbon_gco2_per_kwh = 0.0;  ///< grid carbon intensity
  double price_eur_per_kwh = 0.0;    ///< spot electricity price
  double renewable_fraction = 0.0;   ///< share of renewables in the mix [0,1]
};

/// Step-function time series of grid samples for one region. Breakpoints
/// are strictly increasing; `sample(t)` returns the last breakpoint at or
/// before `t` (the first one for queries before the series starts). With a
/// repeat period set, query times wrap modulo the period, so a one-day
/// trace repeats every day of a long run.
class GridSignal {
 public:
  /// Append one breakpoint. Throws std::invalid_argument on NaN fields or
  /// a time not strictly after the previous breakpoint.
  void add_point(double time_s, GridSample s);

  /// Repeat the trace every `period_s` seconds (0 = no repeat, hold the
  /// last sample). Must cover the breakpoints: period > last time.
  void set_period(double period_s);

  [[nodiscard]] GridSample sample(double t) const;
  [[nodiscard]] std::size_t size() const { return times_.size(); }
  [[nodiscard]] double period_s() const { return period_s_; }

 private:
  std::vector<double> times_;
  std::vector<GridSample> samples_;
  double period_s_ = 0.0;
};

/// A city's worth of regions: named signals plus the mutable demand-response
/// curtailment flag per region. Region indices are assignment-stable (the
/// order add_region was called), so platform-side per-region accounts can
/// use plain vectors.
class GridPlane {
 public:
  /// Register a region; names are unique. Returns the region index.
  std::size_t add_region(std::string name, GridSignal signal);

  [[nodiscard]] std::size_t region_count() const { return names_.size(); }
  [[nodiscard]] const std::string& region_name(std::size_t r) const { return names_.at(r); }
  /// Index of a named region; throws std::invalid_argument listing the
  /// known regions (same loud-typo contract as policy::Registry).
  [[nodiscard]] std::size_t region_index(std::string_view name) const;
  [[nodiscard]] const GridSignal& signal(std::size_t r) const { return signals_.at(r); }

  /// Demand-response curtailment flag, raised/cleared by GridEventSource.
  void set_curtailed(std::size_t r, bool v) { curtailed_.at(r) = v ? 1 : 0; }
  [[nodiscard]] bool curtailed(std::size_t r) const { return curtailed_.at(r) != 0; }

 private:
  std::vector<std::string> names_;
  std::vector<GridSignal> signals_;
  std::vector<std::uint8_t> curtailed_;
};

/// Parse a grid-signal CSV into a plane. Format (header required):
///
///   region,time_s,carbon_gco2_per_kwh,price_eur_per_kwh,renewable_fraction
///
/// Rows of one region must be in strictly increasing time order (rows of
/// different regions may interleave). A `# period_s = <v>` comment line
/// sets the repeat period of every signal. Malformed rows, NaNs and
/// non-monotonic timestamps throw std::invalid_argument with a one-line
/// message naming the offending row — garbage fails loudly instead of
/// being silently interpolated.
[[nodiscard]] GridPlane load_signals_csv(std::istream& is, std::string_view origin = "<stream>");
[[nodiscard]] GridPlane load_signals_csv_file(const std::string& path);

/// The bundled synthetic trace the e14 bench and tests run against: two
/// regions, "green" (hydro-backed, diurnally cheap and clean) and "dirty"
/// (fossil-heavy, expensive), repeating daily. Green is strictly cleaner
/// than dirty at every instant, so carbon-aware routing has an unambiguous
/// right answer.
[[nodiscard]] GridPlane two_region_demo_plane();

}  // namespace df3::grid
