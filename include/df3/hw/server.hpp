#pragma once
/// \file server.hpp
/// \brief Data-furnace server chassis: power, heat routing, throttling, aging.
///
/// A `DfServer` is the physical machine the DF3 middleware schedules onto.
/// It aggregates identical CPUs, exposes the *heat = power* identity, and
/// implements the chassis-level behaviours the paper calls out:
///
///  * **power gating** (Qarnot hybrid infrastructure): motherboards turn off
///    when no heat is requested, leaving only standby power;
///  * **free-cooling throttle**: with no active cooling, a hot room forces
///    frequency reduction and eventually shutdown (paper: long compute-heavy
///    jobs "might not be enough" for free cooling — section VI);
///  * **heat routing**: Q.rads emit 100% indoors; the Nerdalize e-radiator's
///    dual pipe vents outdoors off-season; boilers heat a water loop;
///  * **aging**: thermal stress accumulates with an Arrhenius-style factor,
///    doubling per +10 K over the reference junction temperature
///    (section III-C: free cooling "might cause the acceleration of
///    processor aging").

#include <array>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "df3/hw/cpu.hpp"
#include "df3/util/units.hpp"

namespace df3::hw {

namespace detail {

/// 2^(j/32) for j in [0, 32): the coarse grid of the fast_exp2 below.
inline const std::array<double, 32> kExp2Frac = [] {
  std::array<double, 32> t{};
  for (int j = 0; j < 32; ++j) t[static_cast<std::size_t>(j)] = std::exp2(j / 32.0);
  return t;
}();

/// Fast 2^x: split x = e + j/32 + r, look 2^(j/32) up, expand 2^r with a
/// short Taylor series (r < 1/32 so four terms reach ~4e-11 relative
/// error), and apply 2^e through the exponent bits. Only for quantities
/// where that error is irrelevant (the aging accelerator); telemetry-grade
/// math must keep using std::exp2.
inline double fast_exp2(double x) {
  if (!(x > -1000.0 && x < 1000.0)) return std::exp2(x);  // also catches NaN
  const double xs = std::floor(x * 32.0);
  const auto i = static_cast<int>(xs);
  const double r = x - xs * (1.0 / 32.0);  // in [0, 1/32)
  const int e = i >> 5;                    // floor(i / 32), also for negatives
  const std::size_t j = static_cast<std::size_t>(i & 31);
  constexpr double kLn2 = 0.6931471805599453;
  const double y = r * kLn2;
  const double poly = 1.0 + y * (1.0 + y * (0.5 + y * (1.0 / 6.0 + y * (1.0 / 24.0))));
  const auto bits = static_cast<std::uint64_t>(e + 1023) << 52;  // 2^e
  double scale;
  static_assert(sizeof(scale) == sizeof(bits));
  __builtin_memcpy(&scale, &bits, sizeof(scale));
  return kExp2Frac[j] * poly * scale;
}

}  // namespace detail

/// Where the chassis heat goes, season-dependent.
enum class HeatRouting : std::uint8_t {
  kIndoor,        ///< all heat into the host room (Q.rad)
  kDualPipe,      ///< indoor during heating season, vented outdoors otherwise
  kWaterLoop,     ///< into the building's hot-water loop (digital boilers)
};

/// Static description of a DF server chassis.
struct ServerSpec {
  std::string family = "qrad";
  CpuSpec cpu = qrad_cpu_spec();
  int cpu_count = 4;
  util::Watts standby_power{4.0};  ///< drawn when motherboards are gated off
  HeatRouting routing = HeatRouting::kIndoor;
  /// Free-cooling envelope: throttle linearly from `throttle_start` and gate
  /// off completely at `shutdown_temp` inlet temperature.
  util::Celsius throttle_start{27.0};
  util::Celsius shutdown_temp{35.0};
  /// Reference junction temperature for the aging model.
  util::Celsius aging_reference_junction{65.0};

  [[nodiscard]] int total_cores() const { return cpu.cores * cpu_count; }
  /// Nameplate power: all CPUs at top P-state, fully busy.
  [[nodiscard]] util::Watts rated_power() const;
};

/// Catalogue of the server families named in the paper (section II-B).
[[nodiscard]] ServerSpec qrad_spec();             ///< Qarnot Q.rad, ~500 W, 4 CPUs
[[nodiscard]] ServerSpec eradiator_spec();        ///< Nerdalize, ~1000 W, dual pipe
[[nodiscard]] ServerSpec crypto_heater_spec();    ///< Qarnot QC1, ~650 W, 2 GPUs
[[nodiscard]] ServerSpec asperitas_boiler_spec(); ///< AIC24, ~20 kW, 200 CPUs
[[nodiscard]] ServerSpec stimergy_boiler_spec();  ///< oil-immersed, ~4 kW

/// Runtime state of one chassis. The middleware sets the P-state and the
/// number of busy cores; the physics coupling reads power/heat and feeds
/// back the room (inlet) temperature.
class DfServer {
 public:
  explicit DfServer(ServerSpec spec);

  [[nodiscard]] const ServerSpec& spec() const { return spec_; }
  [[nodiscard]] const CpuModel& cpu_model() const { return cpu_model_; }

  // --- control plane (called by the middleware) ---

  /// Gate motherboards on/off. Gating off drops busy cores to zero.
  void set_powered(bool on) {
    if (on == powered_ && (on || (busy_cores_ == 0 && filler_cores_ == 0))) return;
    powered_ = on;
    if (!on) {
      busy_cores_ = 0;
      filler_cores_ = 0;
    }
    refresh_operating();
  }
  [[nodiscard]] bool powered() const { return powered_; }

  /// Select the DVFS P-state for all CPUs (index into the CPU spec).
  void set_pstate(std::size_t ps) {
    if (ps >= n_pstates_) throw std::out_of_range("DfServer::set_pstate");
    if (ps == pstate_) return;
    pstate_ = ps;
    refresh_operating();
  }
  [[nodiscard]] std::size_t pstate() const { return pstate_; }

  /// Report how many cores are currently executing work (0..usable cores).
  void set_busy_cores(int cores) {
    if (cores < 0 || cores > total_cores_) {
      throw std::invalid_argument("DfServer::set_busy_cores: out of range");
    }
    if (cores == busy_cores_) return;
    busy_cores_ = cores;
    refresh_operating();
  }
  [[nodiscard]] int busy_cores() const { return busy_cores_; }

  /// Space-heating filler load: cores kept busy with low-priority synthetic
  /// work (Liu et al.'s "seasonal applications" class) purely to emit the
  /// requested heat. Filler yields to real work: the effective load is
  /// min(total, busy + filler).
  void set_filler_cores(int cores) {
    if (cores < 0 || cores > total_cores_) {
      throw std::invalid_argument("DfServer::set_filler_cores: out of range");
    }
    if (cores == filler_cores_) return;
    filler_cores_ = cores;
    refresh_operating();
  }
  [[nodiscard]] int filler_cores() const { return filler_cores_; }

  /// Total core count across all CPUs (== spec().total_cores(), cached so
  /// the per-tick control path stays off the cold spec block).
  [[nodiscard]] int total_cores() const { return total_cores_; }

  /// Standby draw when gated off (== spec().standby_power, cached).
  [[nodiscard]] util::Watts standby_power() const { return util::Watts{standby_power_w_}; }

  /// Cores drawing dynamic power right now (real + filler, capped).
  [[nodiscard]] int loaded_cores() const {
    if (!powered_ || shut_down_) return 0;
    return std::min(total_cores_, busy_cores_ + filler_cores_);
  }

  // --- physics coupling ---

  /// Update the inlet (room/loop) temperature; applies the free-cooling
  /// throttle, possibly reducing the *effective* P-state or gating off.
  void set_inlet_temperature(util::Celsius t) {
    inlet_ = t;
    const bool was_shut = shut_down_;
    const std::size_t old_cap = thermal_cap_;
    refresh_thermal();
    if (shut_down_) {
      busy_cores_ = 0;
      filler_cores_ = 0;
    }
    // Power and junction rise depend on the inlet only through the cap and
    // the shutdown flag; skip the refresh while the throttle stays inactive.
    if (shut_down_ != was_shut || thermal_cap_ != old_cap) refresh_operating();
  }
  [[nodiscard]] util::Celsius inlet_temperature() const { return inlet_; }

  /// True if the free-cooling envelope has forced a full thermal shutdown.
  [[nodiscard]] bool thermally_shut_down() const { return shut_down_; }

  /// The P-state actually in effect after thermal capping.
  [[nodiscard]] std::size_t effective_pstate() const { return eff_pstate_; }

  /// Instantaneous electrical draw (== heat output, free cooling does no
  /// external work).
  [[nodiscard]] util::Watts power() const { return util::Watts{power_w_}; }

  /// Cores usable right now (0 when gated or thermally shut down).
  [[nodiscard]] int usable_cores() const {
    if (!powered_ || shut_down_) return 0;
    return total_cores_;
  }

  /// Per-core speed in gigacycles/s at the effective P-state.
  [[nodiscard]] double core_speed_gcps() const {
    if (!powered_ || shut_down_) return 0.0;
    return core_speed_gcps_;
  }

  /// Highest chassis power achievable right now (all usable cores busy at
  /// the effective P-state) — the ceiling the heat regulator can reach.
  [[nodiscard]] util::Watts max_power_now() const {
    if (!powered_ || shut_down_) return util::Watts{standby_power_w_};
    return util::Watts{tables_[eff_pstate_]};
  }

  /// Lowest active chassis power (powered, zero busy cores).
  [[nodiscard]] util::Watts idle_power() const {
    if (!powered_ || shut_down_) return util::Watts{standby_power_w_};
    return util::Watts{tables_[n_pstates_ + eff_pstate_]};
  }

  /// Choose the highest P-state so that full-chassis-busy power stays
  /// within `cap`; gates off if even the lowest state busts the cap and
  /// `allow_gating` is set. Returns the chosen effective power ceiling.
  util::Watts apply_power_cap(util::Watts cap, bool allow_gating = true);

  // --- accounting (advanced by the physics tick) ---

  /// Integrate energy and aging over `dt` at current settings. `heating_
  /// season` selects the dual-pipe routing direction. Header-inline: this
  /// is the single hottest call of the fleet-physics sweep.
  void advance(util::Seconds dt, bool heating_season) {
    if (dt.value() < 0.0) throw std::invalid_argument("DfServer::advance: negative dt");
    const util::Joules e = util::Watts{power_w_} * dt;
    energy_ += e;
    switch (routing_) {
      case HeatRouting::kIndoor:
      case HeatRouting::kWaterLoop:
        heat_indoor_ += e;
        break;
      case HeatRouting::kDualPipe:
        (heating_season ? heat_indoor_ : heat_outdoor_) += e;
        break;
    }
    // Arrhenius-style stress accumulation: doubles per +10 K of junction
    // temperature over the reference. The accelerator uses fast_exp2: the
    // stress-hour tally is an engineering estimate (never telemetry), so a
    // ~1e-11-relative-error 2^x is more than accurate enough and avoids a
    // libm call per room-tick.
    const double tj = junction_temperature().value();
    const double accel = detail::fast_exp2((tj - aging_reference_c_) / 10.0);
    stress_hours_ += accel * dt.value() / 3600.0;
  }

  [[nodiscard]] util::Joules energy_consumed() const { return energy_; }
  [[nodiscard]] util::Joules heat_indoor() const { return heat_indoor_; }
  [[nodiscard]] util::Joules heat_outdoor() const { return heat_outdoor_; }

  /// Estimated junction temperature: inlet plus a load-dependent rise.
  /// Free-cooled parts run hot: ~25 K rise at idle clocks, up to ~45 K at
  /// full load and top frequency (rise_k_ = 20 K * util * freq ratio).
  [[nodiscard]] util::Celsius junction_temperature() const {
    if (!powered_ || shut_down_) return inlet_;
    return util::Celsius{inlet_.value() + 25.0 + rise_k_};
  }

  /// Accumulated aging in "equivalent stress hours": wall hours weighted by
  /// 2^((Tj - Tref)/10). A part rated for ~5 years at Tref has consumed its
  /// life when this reaches ~43800.
  [[nodiscard]] double aging_stress_hours() const { return stress_hours_; }

  /// Full-chassis-busy power if the P-state were `ps` (same thermal cap as
  /// max_power_now). Lets the heat regulator scan the ladder without
  /// mutating the server.
  [[nodiscard]] util::Watts max_power_at(std::size_t ps) const {
    if (!powered_ || shut_down_) return util::Watts{standby_power_w_};
    return util::Watts{tables_[std::min(ps, thermal_cap_)]};
  }

  /// Idle (zero busy cores) chassis power if the P-state were `ps`, with
  /// the same thermal capping as idle_power() after set_pstate(ps).
  [[nodiscard]] util::Watts idle_power_at(std::size_t ps) const {
    if (!powered_ || shut_down_) return util::Watts{standby_power_w_};
    return util::Watts{tables_[n_pstates_ + std::min(ps, thermal_cap_)]};
  }

  /// Apply a P-state and filler-core choice as one control action with a
  /// single operating-point refresh. Equivalent to set_pstate(ps) followed
  /// by set_filler_cores(filler) — power, junction rise and core speed are
  /// pure functions of the final state, so collapsing the intermediate
  /// refresh changes nothing observable. This is the heat regulator's
  /// per-room-per-tick fast path.
  void set_pstate_and_filler(std::size_t ps, int filler) {
    if (ps >= n_pstates_) throw std::out_of_range("DfServer::set_pstate");
    if (filler < 0 || filler > total_cores_) {
      throw std::invalid_argument("DfServer::set_filler_cores: out of range");
    }
    if (ps == pstate_ && filler == filler_cores_) return;
    pstate_ = ps;
    filler_cores_ = filler;
    refresh_operating();
  }

  /// Lowest P-state whose full-load power reaches `want` (the regulator's
  /// coarse stage), i.e. the first ps with max_power_at(ps) >= want, or the
  /// top state when none qualifies. Candidates above the thermal cap repeat
  /// the capped entry, so the scan stops at the cap.
  [[nodiscard]] std::size_t min_pstate_for(util::Watts want) const {
    const std::size_t last = n_pstates_ - 1;
    if (!powered_ || shut_down_) return standby_power_w_ >= want.value() ? 0 : last;
    const std::size_t top = std::min(last, thermal_cap_);
    for (std::size_t ps = 0; ps <= top; ++ps) {
      if (tables_[ps] >= want.value()) return ps;
    }
    return last;
  }

 private:
  /// Recompute the inlet-driven caches (shutdown flag + thermal P-state
  /// cap); cascades into refresh_operating() only when the cap moved.
  /// Header-inline: runs on every set_inlet_temperature, i.e. once per
  /// room per physics tick.
  void refresh_thermal() {
    shut_down_ = inlet_.value() >= shutdown_temp_c_;
    if (inlet_.value() <= throttle_start_c_) {
      thermal_cap_ = n_pstates_ - 1;  // throttle inactive
    } else if (shut_down_) {
      thermal_cap_ = 0;
    } else {
      // Linear derating across the throttle window: the available fraction
      // of the P-state ladder shrinks as the inlet approaches shutdown.
      const double window = shutdown_temp_c_ - throttle_start_c_;
      const double excess = inlet_.value() - throttle_start_c_;
      const double fraction = 1.0 - excess / window;
      const auto ladder = static_cast<double>(n_pstates_ - 1);
      thermal_cap_ = static_cast<std::size_t>(std::floor(ladder * fraction));
    }
  }

  /// Recompute the operating-point caches (effective P-state, chassis
  /// power, junction rise) after any control-plane change. The per-CPU
  /// power law is replayed from the cached static/dynamic coefficients —
  /// the same doubles CpuModel::power reads — so results stay bit-exact.
  void refresh_operating() {
    eff_pstate_ = std::min(pstate_, thermal_cap_);
    core_speed_gcps_ = core_speed_table_()[eff_pstate_];
    if (!powered_ || shut_down_) {
      power_w_ = standby_power_w_;
      rise_k_ = 0.0;  // junction_temperature falls back to the inlet
      return;
    }
    const int loaded = std::min(total_cores_, busy_cores_ + filler_cores_);
    const double util_frac = static_cast<double>(loaded) / static_cast<double>(total_cores_);
    power_w_ = (static_power_w_ + dyn_coeff_table_()[eff_pstate_] * util_frac) *
               static_cast<double>(cpu_count_);
    rise_k_ = 20.0 * util_frac * freq_ratio_table_()[eff_pstate_];
  }

  // Sections of the merged per-P-state table (see `tables_`).
  [[nodiscard]] const double* freq_ratio_table_() const { return tables_.data() + 2 * n_pstates_; }
  [[nodiscard]] const double* dyn_coeff_table_() const { return tables_.data() + 3 * n_pstates_; }
  [[nodiscard]] const double* core_speed_table_() const { return tables_.data() + 4 * n_pstates_; }

  // --- hot state: everything the per-room physics/control tick touches,
  // packed at the front of the object so a fleet sweep pulls two or three
  // cache lines per server instead of walking the spec/model blocks below.

  // advance() path.
  double power_w_ = 0.0;         ///< == power().value()
  util::Joules energy_{0.0};
  util::Joules heat_indoor_{0.0};
  util::Joules heat_outdoor_{0.0};
  double stress_hours_ = 0.0;
  util::Celsius inlet_{20.0};
  double rise_k_ = 0.0;          ///< junction rise beyond inlet + 25 K
  double aging_reference_c_;     ///< == spec_.aging_reference_junction

  // Control/throttle path (regulate -> set_* -> refresh_*).
  double core_speed_gcps_ = 0.0; ///< core speed at eff_pstate_
  double standby_power_w_;       ///< == spec_.standby_power
  double throttle_start_c_;      ///< == spec_.throttle_start
  double shutdown_temp_c_;       ///< == spec_.shutdown_temp
  double static_power_w_;        ///< per-CPU static power (power-law replay)
  std::size_t pstate_ = 0;
  std::size_t thermal_cap_ = 0;  ///< P-state cap from the free-cooling throttle
  std::size_t eff_pstate_ = 0;
  std::size_t n_pstates_;        ///< ladder length (== tables_ stride)
  int busy_cores_ = 0;
  int filler_cores_ = 0;
  int total_cores_;              ///< == spec_.total_cores()
  int cpu_count_;                ///< == spec_.cpu_count
  bool powered_ = true;
  bool shut_down_ = false;
  HeatRouting routing_;          ///< == spec_.routing

  /// Merged per-P-state tables, one heap block, stride n_pstates_:
  /// [full-power chassis W | idle-power chassis W | freq ratio |
  ///  per-CPU dynamic coefficient | core speed gcps].
  std::vector<double> tables_;

  // --- cold catalogue data (immutable after construction) ---
  ServerSpec spec_;
  CpuModel cpu_model_;
};

}  // namespace df3::hw
