#pragma once
/// \file server.hpp
/// \brief Data-furnace server chassis: power, heat routing, throttling, aging.
///
/// A `DfServer` is the physical machine the DF3 middleware schedules onto.
/// It aggregates identical CPUs, exposes the *heat = power* identity, and
/// implements the chassis-level behaviours the paper calls out:
///
///  * **power gating** (Qarnot hybrid infrastructure): motherboards turn off
///    when no heat is requested, leaving only standby power;
///  * **free-cooling throttle**: with no active cooling, a hot room forces
///    frequency reduction and eventually shutdown (paper: long compute-heavy
///    jobs "might not be enough" for free cooling — section VI);
///  * **heat routing**: Q.rads emit 100% indoors; the Nerdalize e-radiator's
///    dual pipe vents outdoors off-season; boilers heat a water loop;
///  * **aging**: thermal stress accumulates with an Arrhenius-style factor,
///    doubling per +10 K over the reference junction temperature
///    (section III-C: free cooling "might cause the acceleration of
///    processor aging").

#include <cstdint>
#include <string>
#include <vector>

#include "df3/hw/cpu.hpp"
#include "df3/util/units.hpp"

namespace df3::hw {

/// Where the chassis heat goes, season-dependent.
enum class HeatRouting : std::uint8_t {
  kIndoor,        ///< all heat into the host room (Q.rad)
  kDualPipe,      ///< indoor during heating season, vented outdoors otherwise
  kWaterLoop,     ///< into the building's hot-water loop (digital boilers)
};

/// Static description of a DF server chassis.
struct ServerSpec {
  std::string family = "qrad";
  CpuSpec cpu = qrad_cpu_spec();
  int cpu_count = 4;
  util::Watts standby_power{4.0};  ///< drawn when motherboards are gated off
  HeatRouting routing = HeatRouting::kIndoor;
  /// Free-cooling envelope: throttle linearly from `throttle_start` and gate
  /// off completely at `shutdown_temp` inlet temperature.
  util::Celsius throttle_start{27.0};
  util::Celsius shutdown_temp{35.0};
  /// Reference junction temperature for the aging model.
  util::Celsius aging_reference_junction{65.0};

  [[nodiscard]] int total_cores() const { return cpu.cores * cpu_count; }
  /// Nameplate power: all CPUs at top P-state, fully busy.
  [[nodiscard]] util::Watts rated_power() const;
};

/// Catalogue of the server families named in the paper (section II-B).
[[nodiscard]] ServerSpec qrad_spec();             ///< Qarnot Q.rad, ~500 W, 4 CPUs
[[nodiscard]] ServerSpec eradiator_spec();        ///< Nerdalize, ~1000 W, dual pipe
[[nodiscard]] ServerSpec crypto_heater_spec();    ///< Qarnot QC1, ~650 W, 2 GPUs
[[nodiscard]] ServerSpec asperitas_boiler_spec(); ///< AIC24, ~20 kW, 200 CPUs
[[nodiscard]] ServerSpec stimergy_boiler_spec();  ///< oil-immersed, ~4 kW

/// Runtime state of one chassis. The middleware sets the P-state and the
/// number of busy cores; the physics coupling reads power/heat and feeds
/// back the room (inlet) temperature.
class DfServer {
 public:
  explicit DfServer(ServerSpec spec);

  [[nodiscard]] const ServerSpec& spec() const { return spec_; }
  [[nodiscard]] const CpuModel& cpu_model() const { return cpu_model_; }

  // --- control plane (called by the middleware) ---

  /// Gate motherboards on/off. Gating off drops busy cores to zero.
  void set_powered(bool on);
  [[nodiscard]] bool powered() const { return powered_; }

  /// Select the DVFS P-state for all CPUs (index into the CPU spec).
  void set_pstate(std::size_t ps);
  [[nodiscard]] std::size_t pstate() const { return pstate_; }

  /// Report how many cores are currently executing work (0..usable cores).
  void set_busy_cores(int cores);
  [[nodiscard]] int busy_cores() const { return busy_cores_; }

  /// Space-heating filler load: cores kept busy with low-priority synthetic
  /// work (Liu et al.'s "seasonal applications" class) purely to emit the
  /// requested heat. Filler yields to real work: the effective load is
  /// min(total, busy + filler).
  void set_filler_cores(int cores);
  [[nodiscard]] int filler_cores() const { return filler_cores_; }

  /// Cores drawing dynamic power right now (real + filler, capped).
  [[nodiscard]] int loaded_cores() const;

  // --- physics coupling ---

  /// Update the inlet (room/loop) temperature; applies the free-cooling
  /// throttle, possibly reducing the *effective* P-state or gating off.
  void set_inlet_temperature(util::Celsius t);
  [[nodiscard]] util::Celsius inlet_temperature() const { return inlet_; }

  /// True if the free-cooling envelope has forced a full thermal shutdown.
  [[nodiscard]] bool thermally_shut_down() const;

  /// The P-state actually in effect after thermal capping.
  [[nodiscard]] std::size_t effective_pstate() const;

  /// Instantaneous electrical draw (== heat output, free cooling does no
  /// external work).
  [[nodiscard]] util::Watts power() const;

  /// Cores usable right now (0 when gated or thermally shut down).
  [[nodiscard]] int usable_cores() const;

  /// Per-core speed in gigacycles/s at the effective P-state.
  [[nodiscard]] double core_speed_gcps() const;

  /// Highest chassis power achievable right now (all usable cores busy at
  /// the effective P-state) — the ceiling the heat regulator can reach.
  [[nodiscard]] util::Watts max_power_now() const;

  /// Lowest active chassis power (powered, zero busy cores).
  [[nodiscard]] util::Watts idle_power() const;

  /// Choose the highest P-state so that full-chassis-busy power stays
  /// within `cap`; gates off if even the lowest state busts the cap and
  /// `allow_gating` is set. Returns the chosen effective power ceiling.
  util::Watts apply_power_cap(util::Watts cap, bool allow_gating = true);

  // --- accounting (advanced by the physics tick) ---

  /// Integrate energy and aging over `dt` at current settings. `heating_
  /// season` selects the dual-pipe routing direction.
  void advance(util::Seconds dt, bool heating_season);

  [[nodiscard]] util::Joules energy_consumed() const { return energy_; }
  [[nodiscard]] util::Joules heat_indoor() const { return heat_indoor_; }
  [[nodiscard]] util::Joules heat_outdoor() const { return heat_outdoor_; }

  /// Estimated junction temperature: inlet plus a load-dependent rise.
  [[nodiscard]] util::Celsius junction_temperature() const;

  /// Accumulated aging in "equivalent stress hours": wall hours weighted by
  /// 2^((Tj - Tref)/10). A part rated for ~5 years at Tref has consumed its
  /// life when this reaches ~43800.
  [[nodiscard]] double aging_stress_hours() const { return stress_hours_; }

 private:
  ServerSpec spec_;
  CpuModel cpu_model_;
  bool powered_ = true;
  std::size_t pstate_;
  int busy_cores_ = 0;
  int filler_cores_ = 0;
  util::Celsius inlet_{20.0};

  util::Joules energy_{0.0};
  util::Joules heat_indoor_{0.0};
  util::Joules heat_outdoor_{0.0};
  double stress_hours_ = 0.0;
};

}  // namespace df3::hw
