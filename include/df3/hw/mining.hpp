#pragma once
/// \file mining.hpp
/// \brief Crypto-heater economics (paper §II-B.1 and §IV).
///
/// "digital heaters are receiving a growing interest in the community of
///  coin miners. Comino and the Qarnot crypto-heater are special servers,
///  built to serve both as a space heater and a crypto currency miner."
///
/// Proof-of-work hashing is the perfect DF workload: embarrassingly
/// parallel, interrupt-free, and every joule becomes heat. The model prices
/// that joule three ways — electricity bought, coins earned, heating value
/// displaced — which is all a crypto-heater business case is.

#include "df3/hw/server.hpp"
#include "df3/util/units.hpp"

namespace df3::hw {

struct MiningConfig {
  /// Hashes per joule of *dynamic* power (GPU ethash-class efficiency).
  double hashes_per_joule = 4.5e5;
  /// Currency earned per hash (network difficulty + coin price folded in).
  /// Calibrated so a 650 W rig earns ~150/month — bare mining at retail
  /// electricity is marginal; the heating credit is the business.
  double reward_per_hash = 2.2e-13;
  /// Grid electricity price (currency per kWh).
  double electricity_per_kwh = 0.18;
  /// Value of a kWh of delivered heating (what the host would otherwise
  /// pay — the displaced electric-heater kWh).
  double heat_value_per_kwh = 0.18;
};

/// Instantaneous hash rate of a chassis: its dynamic power converted at
/// the configured efficiency (static power hashes nothing).
[[nodiscard]] double hash_rate(const DfServer& server, const MiningConfig& config);

/// Accumulates the three money flows of a mining heater over time.
class MiningLedger {
 public:
  explicit MiningLedger(MiningConfig config);

  /// Integrate `dt` at the server's current operating point. `heat_wanted`
  /// is whether the host currently requests heat (earned heat value only
  /// accrues when the heat displaces real heating).
  void advance(const DfServer& server, util::Seconds dt, bool heat_wanted);

  [[nodiscard]] double hashes() const { return hashes_; }
  [[nodiscard]] double coin_revenue() const { return coin_revenue_; }
  [[nodiscard]] double electricity_cost() const { return electricity_cost_; }
  [[nodiscard]] double heat_value() const { return heat_value_; }

  /// Miner's profit when the miner pays the electricity (Comino model).
  [[nodiscard]] double miner_profit() const { return coin_revenue_ - electricity_cost_; }
  /// Host+miner joint value in the Qarnot model (host heats for free, the
  /// operator keeps the coins): coins + displaced heating - electricity.
  [[nodiscard]] double system_value() const {
    return coin_revenue_ + heat_value_ - electricity_cost_;
  }

  [[nodiscard]] const MiningConfig& config() const { return config_; }

 private:
  MiningConfig config_;
  double hashes_ = 0.0;
  double coin_revenue_ = 0.0;
  double electricity_cost_ = 0.0;
  double heat_value_ = 0.0;
};

}  // namespace df3::hw
