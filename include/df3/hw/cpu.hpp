#pragma once
/// \file cpu.hpp
/// \brief CPU model with DVFS P-states and a physically grounded power law.
///
/// The heat a DF server can deliver equals the electrical power it draws,
/// and DVFS is the paper's proposed actuator for matching that power to the
/// heat demand (section III-B, "heat regulator"). We model a CPU as a set of
/// P-states (frequency, voltage) with
///
///   P(state, util) = P_static + P_dyn_max * (f/f_max) * (V/V_max)^2 * util
///
/// the classic alpha*C*V^2*f dynamic-power law normalized to the top state.
/// Work is measured in **gigacycles**: a core at f GHz retires f gigacycles
/// per second, so job service times scale inversely with frequency.

#include <stdexcept>
#include <string>
#include <vector>

#include "df3/util/units.hpp"

namespace df3::hw {

/// One DVFS operating point.
struct PState {
  double freq_ghz;
  double voltage_v;
};

/// Static description of a CPU model.
struct CpuSpec {
  std::string model = "generic-x86";
  int cores = 4;
  /// P-states sorted by ascending frequency; the last one is nominal max.
  std::vector<PState> pstates = {{1.2, 0.80}, {1.6, 0.90}, {2.0, 1.00},
                                 {2.6, 1.10}, {3.2, 1.20}};
  util::Watts static_power{8.0};       ///< leakage + uncore at any active state
  util::Watts dynamic_power_max{52.0}; ///< dynamic power at top P-state, all cores busy

  [[nodiscard]] std::size_t top_pstate() const { return pstates.size() - 1; }
};

/// Pure power/throughput math over a CpuSpec — stateless, so schedulers can
/// evaluate "what if" questions cheaply.
class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec);

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }

  /// Electrical power at P-state `ps` with `util` in [0,1] of cores busy.
  /// Header-inline: the server refresh path calls this on every operating-
  /// point change.
  [[nodiscard]] util::Watts power(std::size_t ps, double util) const {
    if (ps >= spec_.pstates.size()) throw std::out_of_range("CpuModel::power: bad P-state");
    if (util < 0.0 || util > 1.0) {
      throw std::invalid_argument("CpuModel::power: util outside [0,1]");
    }
    return util::Watts{spec_.static_power.value() + dyn_coeff_[ps] * util};
  }

  /// Per-core throughput at P-state `ps` (gigacycles per second == GHz).
  [[nodiscard]] double core_speed_gcps(std::size_t ps) const {
    if (ps >= spec_.pstates.size()) {
      throw std::out_of_range("CpuModel::core_speed: bad P-state");
    }
    return spec_.pstates[ps].freq_ghz;
  }

  /// Whole-CPU throughput at full utilization (gigacycles per second).
  [[nodiscard]] double max_throughput_gcps(std::size_t ps) const;

  /// Highest P-state whose full-utilization power does not exceed `cap`.
  /// Returns false if even the lowest state exceeds the cap (caller should
  /// then gate the CPU off).
  [[nodiscard]] bool highest_pstate_within(util::Watts cap, std::size_t& out_ps) const;

  /// Energy efficiency at a state: gigacycles per joule at full utilization.
  [[nodiscard]] double efficiency_gc_per_joule(std::size_t ps) const;

  /// Dynamic-power coefficient at `ps`: P_dyn_max * (f/f_max) * (V/V_max)^2,
  /// so power(ps, util) == static + dyn_coeff(ps) * util.
  [[nodiscard]] double dyn_coeff(std::size_t ps) const { return dyn_coeff_[ps]; }

 private:
  CpuSpec spec_;
  std::vector<double> dyn_coeff_;  ///< per-P-state, precomputed at construction
};

/// Intel-i7-class CPU as embedded in a Q.rad (paper: "3-4 CPUs" per heater).
[[nodiscard]] CpuSpec qrad_cpu_spec();

/// Server-class CPU as racked in the Asperitas AIC24 boiler.
[[nodiscard]] CpuSpec boiler_cpu_spec();

/// GPU modelled as a high-power single-"core" device (crypto-heater).
[[nodiscard]] CpuSpec crypto_gpu_spec();

}  // namespace df3::hw
