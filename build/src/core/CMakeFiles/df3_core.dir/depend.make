# Empty dependencies file for df3_core.
# This may be replaced when dependencies are built.
