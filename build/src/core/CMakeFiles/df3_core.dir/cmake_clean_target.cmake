file(REMOVE_RECURSE
  "libdf3_core.a"
)
