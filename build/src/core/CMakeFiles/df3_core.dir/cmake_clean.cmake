file(REMOVE_RECURSE
  "CMakeFiles/df3_core.dir/cluster.cpp.o"
  "CMakeFiles/df3_core.dir/cluster.cpp.o.d"
  "CMakeFiles/df3_core.dir/clustering.cpp.o"
  "CMakeFiles/df3_core.dir/clustering.cpp.o.d"
  "CMakeFiles/df3_core.dir/composition.cpp.o"
  "CMakeFiles/df3_core.dir/composition.cpp.o.d"
  "CMakeFiles/df3_core.dir/heat_regulator.cpp.o"
  "CMakeFiles/df3_core.dir/heat_regulator.cpp.o.d"
  "CMakeFiles/df3_core.dir/platform.cpp.o"
  "CMakeFiles/df3_core.dir/platform.cpp.o.d"
  "CMakeFiles/df3_core.dir/scheduler.cpp.o"
  "CMakeFiles/df3_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/df3_core.dir/task.cpp.o"
  "CMakeFiles/df3_core.dir/task.cpp.o.d"
  "CMakeFiles/df3_core.dir/worker.cpp.o"
  "CMakeFiles/df3_core.dir/worker.cpp.o.d"
  "libdf3_core.a"
  "libdf3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
