file(REMOVE_RECURSE
  "libdf3_analytics.a"
)
