# Empty compiler generated dependencies file for df3_analytics.
# This may be replaced when dependencies are built.
