file(REMOVE_RECURSE
  "CMakeFiles/df3_analytics.dir/forecaster.cpp.o"
  "CMakeFiles/df3_analytics.dir/forecaster.cpp.o.d"
  "CMakeFiles/df3_analytics.dir/pricing.cpp.o"
  "CMakeFiles/df3_analytics.dir/pricing.cpp.o.d"
  "libdf3_analytics.a"
  "libdf3_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
