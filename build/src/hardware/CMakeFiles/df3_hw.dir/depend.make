# Empty dependencies file for df3_hw.
# This may be replaced when dependencies are built.
