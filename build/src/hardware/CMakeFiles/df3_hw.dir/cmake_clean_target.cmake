file(REMOVE_RECURSE
  "libdf3_hw.a"
)
