file(REMOVE_RECURSE
  "CMakeFiles/df3_hw.dir/cpu.cpp.o"
  "CMakeFiles/df3_hw.dir/cpu.cpp.o.d"
  "CMakeFiles/df3_hw.dir/mining.cpp.o"
  "CMakeFiles/df3_hw.dir/mining.cpp.o.d"
  "CMakeFiles/df3_hw.dir/server.cpp.o"
  "CMakeFiles/df3_hw.dir/server.cpp.o.d"
  "libdf3_hw.a"
  "libdf3_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
