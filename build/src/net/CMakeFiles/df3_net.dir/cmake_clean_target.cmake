file(REMOVE_RECURSE
  "libdf3_net.a"
)
