# Empty dependencies file for df3_net.
# This may be replaced when dependencies are built.
