file(REMOVE_RECURSE
  "CMakeFiles/df3_net.dir/network.cpp.o"
  "CMakeFiles/df3_net.dir/network.cpp.o.d"
  "CMakeFiles/df3_net.dir/protocol.cpp.o"
  "CMakeFiles/df3_net.dir/protocol.cpp.o.d"
  "libdf3_net.a"
  "libdf3_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
