file(REMOVE_RECURSE
  "CMakeFiles/df3_sim.dir/engine.cpp.o"
  "CMakeFiles/df3_sim.dir/engine.cpp.o.d"
  "libdf3_sim.a"
  "libdf3_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
