# Empty dependencies file for df3_sim.
# This may be replaced when dependencies are built.
