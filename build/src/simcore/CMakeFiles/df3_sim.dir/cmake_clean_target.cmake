file(REMOVE_RECURSE
  "libdf3_sim.a"
)
