
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/thermal/calendar.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/calendar.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/calendar.cpp.o.d"
  "/root/repo/src/thermal/pv.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/pv.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/pv.cpp.o.d"
  "/root/repo/src/thermal/room.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/room.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/room.cpp.o.d"
  "/root/repo/src/thermal/thermostat.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/thermostat.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/thermostat.cpp.o.d"
  "/root/repo/src/thermal/urban.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/urban.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/urban.cpp.o.d"
  "/root/repo/src/thermal/water_tank.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/water_tank.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/water_tank.cpp.o.d"
  "/root/repo/src/thermal/weather.cpp" "src/thermal/CMakeFiles/df3_thermal.dir/weather.cpp.o" "gcc" "src/thermal/CMakeFiles/df3_thermal.dir/weather.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/df3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/df3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
