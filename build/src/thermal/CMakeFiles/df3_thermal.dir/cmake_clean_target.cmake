file(REMOVE_RECURSE
  "libdf3_thermal.a"
)
