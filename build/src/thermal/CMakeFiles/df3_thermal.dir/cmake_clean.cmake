file(REMOVE_RECURSE
  "CMakeFiles/df3_thermal.dir/calendar.cpp.o"
  "CMakeFiles/df3_thermal.dir/calendar.cpp.o.d"
  "CMakeFiles/df3_thermal.dir/pv.cpp.o"
  "CMakeFiles/df3_thermal.dir/pv.cpp.o.d"
  "CMakeFiles/df3_thermal.dir/room.cpp.o"
  "CMakeFiles/df3_thermal.dir/room.cpp.o.d"
  "CMakeFiles/df3_thermal.dir/thermostat.cpp.o"
  "CMakeFiles/df3_thermal.dir/thermostat.cpp.o.d"
  "CMakeFiles/df3_thermal.dir/urban.cpp.o"
  "CMakeFiles/df3_thermal.dir/urban.cpp.o.d"
  "CMakeFiles/df3_thermal.dir/water_tank.cpp.o"
  "CMakeFiles/df3_thermal.dir/water_tank.cpp.o.d"
  "CMakeFiles/df3_thermal.dir/weather.cpp.o"
  "CMakeFiles/df3_thermal.dir/weather.cpp.o.d"
  "libdf3_thermal.a"
  "libdf3_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
