# Empty dependencies file for df3_thermal.
# This may be replaced when dependencies are built.
