file(REMOVE_RECURSE
  "CMakeFiles/df3_metrics.dir/collectors.cpp.o"
  "CMakeFiles/df3_metrics.dir/collectors.cpp.o.d"
  "libdf3_metrics.a"
  "libdf3_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
