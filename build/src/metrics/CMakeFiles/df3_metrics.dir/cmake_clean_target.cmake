file(REMOVE_RECURSE
  "libdf3_metrics.a"
)
