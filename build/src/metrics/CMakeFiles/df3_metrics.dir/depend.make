# Empty dependencies file for df3_metrics.
# This may be replaced when dependencies are built.
