# Empty compiler generated dependencies file for df3_workload.
# This may be replaced when dependencies are built.
