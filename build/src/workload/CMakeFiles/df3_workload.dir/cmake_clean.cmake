file(REMOVE_RECURSE
  "CMakeFiles/df3_workload.dir/arrivals.cpp.o"
  "CMakeFiles/df3_workload.dir/arrivals.cpp.o.d"
  "CMakeFiles/df3_workload.dir/generators.cpp.o"
  "CMakeFiles/df3_workload.dir/generators.cpp.o.d"
  "CMakeFiles/df3_workload.dir/trace.cpp.o"
  "CMakeFiles/df3_workload.dir/trace.cpp.o.d"
  "libdf3_workload.a"
  "libdf3_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
