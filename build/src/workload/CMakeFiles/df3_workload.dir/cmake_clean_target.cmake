file(REMOVE_RECURSE
  "libdf3_workload.a"
)
