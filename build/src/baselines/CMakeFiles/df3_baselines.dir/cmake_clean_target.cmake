file(REMOVE_RECURSE
  "libdf3_baselines.a"
)
