file(REMOVE_RECURSE
  "CMakeFiles/df3_baselines.dir/datacenter.cpp.o"
  "CMakeFiles/df3_baselines.dir/datacenter.cpp.o.d"
  "CMakeFiles/df3_baselines.dir/desktop_grid.cpp.o"
  "CMakeFiles/df3_baselines.dir/desktop_grid.cpp.o.d"
  "libdf3_baselines.a"
  "libdf3_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
