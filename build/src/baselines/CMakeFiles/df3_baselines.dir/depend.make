# Empty dependencies file for df3_baselines.
# This may be replaced when dependencies are built.
