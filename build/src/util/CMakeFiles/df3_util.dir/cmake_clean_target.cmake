file(REMOVE_RECURSE
  "libdf3_util.a"
)
