file(REMOVE_RECURSE
  "CMakeFiles/df3_util.dir/config.cpp.o"
  "CMakeFiles/df3_util.dir/config.cpp.o.d"
  "CMakeFiles/df3_util.dir/rng.cpp.o"
  "CMakeFiles/df3_util.dir/rng.cpp.o.d"
  "CMakeFiles/df3_util.dir/stats.cpp.o"
  "CMakeFiles/df3_util.dir/stats.cpp.o.d"
  "CMakeFiles/df3_util.dir/table.cpp.o"
  "CMakeFiles/df3_util.dir/table.cpp.o.d"
  "CMakeFiles/df3_util.dir/thread_pool.cpp.o"
  "CMakeFiles/df3_util.dir/thread_pool.cpp.o.d"
  "libdf3_util.a"
  "libdf3_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
