# Empty dependencies file for df3_util.
# This may be replaced when dependencies are built.
