file(REMOVE_RECURSE
  "CMakeFiles/platform_ext_test.dir/platform_ext_test.cpp.o"
  "CMakeFiles/platform_ext_test.dir/platform_ext_test.cpp.o.d"
  "platform_ext_test"
  "platform_ext_test.pdb"
  "platform_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
