file(REMOVE_RECURSE
  "CMakeFiles/function_test.dir/function_test.cpp.o"
  "CMakeFiles/function_test.dir/function_test.cpp.o.d"
  "function_test"
  "function_test.pdb"
  "function_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
