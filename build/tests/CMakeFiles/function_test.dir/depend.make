# Empty dependencies file for function_test.
# This may be replaced when dependencies are built.
