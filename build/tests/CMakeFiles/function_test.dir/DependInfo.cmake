
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/function_test.cpp" "tests/CMakeFiles/function_test.dir/function_test.cpp.o" "gcc" "tests/CMakeFiles/function_test.dir/function_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/df3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hardware/CMakeFiles/df3_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/df3_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/df3_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/df3_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/df3_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/df3_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/thermal/CMakeFiles/df3_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/df3_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/df3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
