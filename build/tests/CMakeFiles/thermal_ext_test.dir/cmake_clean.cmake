file(REMOVE_RECURSE
  "CMakeFiles/thermal_ext_test.dir/thermal_ext_test.cpp.o"
  "CMakeFiles/thermal_ext_test.dir/thermal_ext_test.cpp.o.d"
  "thermal_ext_test"
  "thermal_ext_test.pdb"
  "thermal_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
