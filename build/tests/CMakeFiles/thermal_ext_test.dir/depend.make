# Empty dependencies file for thermal_ext_test.
# This may be replaced when dependencies are built.
