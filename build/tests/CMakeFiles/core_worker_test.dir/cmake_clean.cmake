file(REMOVE_RECURSE
  "CMakeFiles/core_worker_test.dir/core_worker_test.cpp.o"
  "CMakeFiles/core_worker_test.dir/core_worker_test.cpp.o.d"
  "core_worker_test"
  "core_worker_test.pdb"
  "core_worker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_worker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
