# Empty dependencies file for core_worker_test.
# This may be replaced when dependencies are built.
