# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/function_test[1]_include.cmake")
include("/root/repo/build/tests/simcore_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_test[1]_include.cmake")
include("/root/repo/build/tests/hardware_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_worker_test[1]_include.cmake")
include("/root/repo/build/tests/core_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/thermal_ext_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_test[1]_include.cmake")
include("/root/repo/build/tests/economics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/composition_test[1]_include.cmake")
include("/root/repo/build/tests/platform_ext_test[1]_include.cmake")
include("/root/repo/build/tests/config_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
