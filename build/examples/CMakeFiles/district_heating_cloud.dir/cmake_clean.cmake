file(REMOVE_RECURSE
  "CMakeFiles/district_heating_cloud.dir/district_heating_cloud.cpp.o"
  "CMakeFiles/district_heating_cloud.dir/district_heating_cloud.cpp.o.d"
  "district_heating_cloud"
  "district_heating_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/district_heating_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
