# Empty dependencies file for district_heating_cloud.
# This may be replaced when dependencies are built.
