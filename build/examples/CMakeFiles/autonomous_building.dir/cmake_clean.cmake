file(REMOVE_RECURSE
  "CMakeFiles/autonomous_building.dir/autonomous_building.cpp.o"
  "CMakeFiles/autonomous_building.dir/autonomous_building.cpp.o.d"
  "autonomous_building"
  "autonomous_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomous_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
