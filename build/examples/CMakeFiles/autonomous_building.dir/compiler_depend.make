# Empty compiler generated dependencies file for autonomous_building.
# This may be replaced when dependencies are built.
