file(REMOVE_RECURSE
  "CMakeFiles/rendering_farm.dir/rendering_farm.cpp.o"
  "CMakeFiles/rendering_farm.dir/rendering_farm.cpp.o.d"
  "rendering_farm"
  "rendering_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rendering_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
