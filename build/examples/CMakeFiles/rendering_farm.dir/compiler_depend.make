# Empty compiler generated dependencies file for rendering_farm.
# This may be replaced when dependencies are built.
