file(REMOVE_RECURSE
  "CMakeFiles/df3run.dir/df3run.cpp.o"
  "CMakeFiles/df3run.dir/df3run.cpp.o.d"
  "df3run"
  "df3run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/df3run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
