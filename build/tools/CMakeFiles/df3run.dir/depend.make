# Empty dependencies file for df3run.
# This may be replaced when dependencies are built.
