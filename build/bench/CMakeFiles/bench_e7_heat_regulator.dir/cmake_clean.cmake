file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_heat_regulator.dir/bench_e7_heat_regulator.cpp.o"
  "CMakeFiles/bench_e7_heat_regulator.dir/bench_e7_heat_regulator.cpp.o.d"
  "bench_e7_heat_regulator"
  "bench_e7_heat_regulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_heat_regulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
