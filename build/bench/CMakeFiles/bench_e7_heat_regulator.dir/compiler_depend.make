# Empty compiler generated dependencies file for bench_e7_heat_regulator.
# This may be replaced when dependencies are built.
