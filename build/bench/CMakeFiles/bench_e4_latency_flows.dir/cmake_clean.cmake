file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_latency_flows.dir/bench_e4_latency_flows.cpp.o"
  "CMakeFiles/bench_e4_latency_flows.dir/bench_e4_latency_flows.cpp.o.d"
  "bench_e4_latency_flows"
  "bench_e4_latency_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_latency_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
