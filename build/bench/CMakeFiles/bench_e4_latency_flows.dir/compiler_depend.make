# Empty compiler generated dependencies file for bench_e4_latency_flows.
# This may be replaced when dependencies are built.
