# Empty compiler generated dependencies file for bench_a4_cluster_formation.
# This may be replaced when dependencies are built.
