file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_cluster_formation.dir/bench_a4_cluster_formation.cpp.o"
  "CMakeFiles/bench_a4_cluster_formation.dir/bench_a4_cluster_formation.cpp.o.d"
  "bench_a4_cluster_formation"
  "bench_a4_cluster_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_cluster_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
