# Empty compiler generated dependencies file for bench_e5_arch_classes.
# This may be replaced when dependencies are built.
