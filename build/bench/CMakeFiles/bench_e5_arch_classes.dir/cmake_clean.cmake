file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_arch_classes.dir/bench_e5_arch_classes.cpp.o"
  "CMakeFiles/bench_e5_arch_classes.dir/bench_e5_arch_classes.cpp.o.d"
  "bench_e5_arch_classes"
  "bench_e5_arch_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_arch_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
