file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_digital_boiler.dir/bench_e14_digital_boiler.cpp.o"
  "CMakeFiles/bench_e14_digital_boiler.dir/bench_e14_digital_boiler.cpp.o.d"
  "bench_e14_digital_boiler"
  "bench_e14_digital_boiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_digital_boiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
