# Empty dependencies file for bench_e14_digital_boiler.
# This may be replaced when dependencies are built.
