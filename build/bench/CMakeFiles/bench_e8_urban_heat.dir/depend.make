# Empty dependencies file for bench_e8_urban_heat.
# This may be replaced when dependencies are built.
