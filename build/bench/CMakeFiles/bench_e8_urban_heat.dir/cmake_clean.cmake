file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_urban_heat.dir/bench_e8_urban_heat.cpp.o"
  "CMakeFiles/bench_e8_urban_heat.dir/bench_e8_urban_heat.cpp.o.d"
  "bench_e8_urban_heat"
  "bench_e8_urban_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_urban_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
