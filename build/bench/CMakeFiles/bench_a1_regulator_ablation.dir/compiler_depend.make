# Empty compiler generated dependencies file for bench_a1_regulator_ablation.
# This may be replaced when dependencies are built.
