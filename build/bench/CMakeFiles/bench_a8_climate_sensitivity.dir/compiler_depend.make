# Empty compiler generated dependencies file for bench_a8_climate_sensitivity.
# This may be replaced when dependencies are built.
