file(REMOVE_RECURSE
  "CMakeFiles/bench_a8_climate_sensitivity.dir/bench_a8_climate_sensitivity.cpp.o"
  "CMakeFiles/bench_a8_climate_sensitivity.dir/bench_a8_climate_sensitivity.cpp.o.d"
  "bench_a8_climate_sensitivity"
  "bench_a8_climate_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_climate_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
