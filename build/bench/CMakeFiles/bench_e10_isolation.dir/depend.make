# Empty dependencies file for bench_e10_isolation.
# This may be replaced when dependencies are built.
