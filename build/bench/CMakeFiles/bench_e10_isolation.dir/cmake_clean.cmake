file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_isolation.dir/bench_e10_isolation.cpp.o"
  "CMakeFiles/bench_e10_isolation.dir/bench_e10_isolation.cpp.o.d"
  "bench_e10_isolation"
  "bench_e10_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
