# Empty compiler generated dependencies file for bench_e13_seasonal_economics.
# This may be replaced when dependencies are built.
