file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_app_suitability.dir/bench_e12_app_suitability.cpp.o"
  "CMakeFiles/bench_e12_app_suitability.dir/bench_e12_app_suitability.cpp.o.d"
  "bench_e12_app_suitability"
  "bench_e12_app_suitability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_app_suitability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
