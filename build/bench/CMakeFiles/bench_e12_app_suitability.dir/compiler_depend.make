# Empty compiler generated dependencies file for bench_e12_app_suitability.
# This may be replaced when dependencies are built.
