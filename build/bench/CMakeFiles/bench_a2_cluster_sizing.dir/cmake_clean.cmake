file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_cluster_sizing.dir/bench_a2_cluster_sizing.cpp.o"
  "CMakeFiles/bench_a2_cluster_sizing.dir/bench_a2_cluster_sizing.cpp.o.d"
  "bench_a2_cluster_sizing"
  "bench_a2_cluster_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_cluster_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
