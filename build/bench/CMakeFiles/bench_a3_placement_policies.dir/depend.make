# Empty dependencies file for bench_a3_placement_policies.
# This may be replaced when dependencies are built.
