file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_placement_policies.dir/bench_a3_placement_policies.cpp.o"
  "CMakeFiles/bench_a3_placement_policies.dir/bench_a3_placement_policies.cpp.o.d"
  "bench_a3_placement_policies"
  "bench_a3_placement_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_placement_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
