# Empty dependencies file for bench_a6_fleet_aging.
# This may be replaced when dependencies are built.
