file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_fleet_aging.dir/bench_a6_fleet_aging.cpp.o"
  "CMakeFiles/bench_a6_fleet_aging.dir/bench_a6_fleet_aging.cpp.o.d"
  "bench_a6_fleet_aging"
  "bench_a6_fleet_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_fleet_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
