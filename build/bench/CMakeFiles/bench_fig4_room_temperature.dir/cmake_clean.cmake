file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_room_temperature.dir/bench_fig4_room_temperature.cpp.o"
  "CMakeFiles/bench_fig4_room_temperature.dir/bench_fig4_room_temperature.cpp.o.d"
  "bench_fig4_room_temperature"
  "bench_fig4_room_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_room_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
