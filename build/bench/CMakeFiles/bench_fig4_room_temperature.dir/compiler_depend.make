# Empty compiler generated dependencies file for bench_fig4_room_temperature.
# This may be replaced when dependencies are built.
