# Empty dependencies file for bench_a5_service_selection.
# This may be replaced when dependencies are built.
