file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_service_selection.dir/bench_a5_service_selection.cpp.o"
  "CMakeFiles/bench_a5_service_selection.dir/bench_a5_service_selection.cpp.o.d"
  "bench_a5_service_selection"
  "bench_a5_service_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_service_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
