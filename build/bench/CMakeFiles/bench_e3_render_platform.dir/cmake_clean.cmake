file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_render_platform.dir/bench_e3_render_platform.cpp.o"
  "CMakeFiles/bench_e3_render_platform.dir/bench_e3_render_platform.cpp.o.d"
  "bench_e3_render_platform"
  "bench_e3_render_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_render_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
