# Empty dependencies file for bench_e3_render_platform.
# This may be replaced when dependencies are built.
