# Empty dependencies file for bench_e9_seasonality.
# This may be replaced when dependencies are built.
