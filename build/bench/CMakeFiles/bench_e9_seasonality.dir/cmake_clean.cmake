file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_seasonality.dir/bench_e9_seasonality.cpp.o"
  "CMakeFiles/bench_e9_seasonality.dir/bench_e9_seasonality.cpp.o.d"
  "bench_e9_seasonality"
  "bench_e9_seasonality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_seasonality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
