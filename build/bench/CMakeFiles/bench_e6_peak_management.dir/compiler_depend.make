# Empty compiler generated dependencies file for bench_e6_peak_management.
# This may be replaced when dependencies are built.
