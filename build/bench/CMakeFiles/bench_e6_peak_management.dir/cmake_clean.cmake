file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_peak_management.dir/bench_e6_peak_management.cpp.o"
  "CMakeFiles/bench_e6_peak_management.dir/bench_e6_peak_management.cpp.o.d"
  "bench_e6_peak_management"
  "bench_e6_peak_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_peak_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
