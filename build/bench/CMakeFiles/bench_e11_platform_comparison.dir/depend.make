# Empty dependencies file for bench_e11_platform_comparison.
# This may be replaced when dependencies are built.
