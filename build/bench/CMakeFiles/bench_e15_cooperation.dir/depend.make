# Empty dependencies file for bench_e15_cooperation.
# This may be replaced when dependencies are built.
