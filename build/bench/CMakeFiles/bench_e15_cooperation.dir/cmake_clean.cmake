file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_cooperation.dir/bench_e15_cooperation.cpp.o"
  "CMakeFiles/bench_e15_cooperation.dir/bench_e15_cooperation.cpp.o.d"
  "bench_e15_cooperation"
  "bench_e15_cooperation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_cooperation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
