file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_room_fidelity.dir/bench_a7_room_fidelity.cpp.o"
  "CMakeFiles/bench_a7_room_fidelity.dir/bench_a7_room_fidelity.cpp.o.d"
  "bench_a7_room_fidelity"
  "bench_a7_room_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_room_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
