# Empty compiler generated dependencies file for bench_a7_room_fidelity.
# This may be replaced when dependencies are built.
