file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_pue.dir/bench_e2_pue.cpp.o"
  "CMakeFiles/bench_e2_pue.dir/bench_e2_pue.cpp.o.d"
  "bench_e2_pue"
  "bench_e2_pue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_pue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
