# Empty dependencies file for bench_e2_pue.
# This may be replaced when dependencies are built.
