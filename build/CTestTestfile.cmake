# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/util")
subdirs("src/simcore")
subdirs("src/thermal")
subdirs("src/hardware")
subdirs("src/net")
subdirs("src/workload")
subdirs("src/core")
subdirs("src/baselines")
subdirs("src/metrics")
subdirs("src/analytics")
subdirs("tests")
subdirs("bench")
subdirs("tools")
subdirs("examples")
