#include "df3/sim/engine.hpp"

#include <utility>

namespace df3::sim {

/// Shared state between the calendar and any outstanding handle.
struct EventHandle::Record {
  Simulation::Callback callback;
  bool cancelled = false;
  bool fired = false;
  Simulation* owner = nullptr;  // for the cancellation counter
};

bool EventHandle::pending() const { return rec_ && !rec_->cancelled && !rec_->fired; }

bool EventHandle::cancel() {
  if (!pending()) return false;
  rec_->cancelled = true;
  rec_->callback = nullptr;  // release captured resources eagerly
  if (rec_->owner != nullptr) ++rec_->owner->cancelled_;
  return true;
}

bool Simulation::Compare::operator()(const QueueEntry& a, const QueueEntry& b) const {
  // priority_queue is a max-heap; invert to pop earliest (time, seq) first.
  if (a.t != b.t) return a.t > b.t;
  return a.seq > b.seq;
}

EventHandle Simulation::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulation::schedule_at: time is in the past");
  if (!cb) throw std::invalid_argument("Simulation::schedule_at: empty callback");
  auto rec = std::make_shared<EventHandle::Record>();
  rec->callback = std::move(cb);
  rec->owner = this;
  queue_.push(QueueEntry{t, next_seq_++, rec});
  ++scheduled_;
  return EventHandle{std::move(rec)};
}

bool Simulation::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (entry.rec->cancelled) continue;  // lazy deletion
    now_ = entry.t;
    entry.rec->fired = true;
    // Move the callback out so the record does not pin captures after firing.
    Callback cb = std::move(entry.rec->callback);
    entry.rec->callback = nullptr;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

std::size_t Simulation::run(std::size_t max_events) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (n < max_events && !stop_requested_) {
    if (!step()) break;
    ++n;
  }
  return n;
}

std::size_t Simulation::run_until(Time t) {
  if (t < now_) throw std::invalid_argument("Simulation::run_until: time is in the past");
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_) {
    // Peek past cancelled entries to find the next live event.
    while (!queue_.empty() && queue_.top().rec->cancelled) queue_.pop();
    if (queue_.empty() || queue_.top().t > t) break;
    step();
    ++n;
  }
  if (!stop_requested_ && now_ < t) now_ = t;
  return n;
}

PeriodicProcess::PeriodicProcess(Simulation& sim, Time start, Time period,
                                 std::function<void(Time)> tick)
    : sim_(sim), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) throw std::invalid_argument("PeriodicProcess: period must be positive");
  if (!tick_) throw std::invalid_argument("PeriodicProcess: empty tick callback");
  arm(start);
}

void PeriodicProcess::arm(Time t) {
  next_ = sim_.schedule_at(t, [this, t] {
    if (!running_) return;
    tick_(t);
    if (running_) arm(t + period_);
  });
}

void PeriodicProcess::stop() {
  running_ = false;
  next_.cancel();
}

}  // namespace df3::sim
