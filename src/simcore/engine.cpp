#include "df3/sim/engine.hpp"

#include <utility>

namespace df3::sim {

namespace {
/// Compaction is only worthwhile once the heap is non-trivial; below this
/// size the lazy-deletion pops are cheaper than a rebuild.
constexpr std::size_t kCompactMinHeap = 64;

/// Below this heap size (~768 KiB of entries) the calendar is cache-resident
/// and sift prefetches are pure instruction overhead; above it the deep
/// levels miss and prefetching grandchildren overlaps the miss with the
/// current level's comparisons.
constexpr std::size_t kPrefetchMinHeap = std::size_t{1} << 15;
}  // namespace

// ---------------------------------------------------------------------------
// EventHandle

bool EventHandle::pending() const { return sim_ != nullptr && sim_->slot_live(slot_, gen_); }

bool EventHandle::cancel() {
  if (!pending()) return false;
  ++sim_->cancelled_;
  ++sim_->ghosts_;  // the calendar entry for this record is now a ghost
  sim_->release_record(slot_);
  sim_->maybe_compact();
  return true;
}

// ---------------------------------------------------------------------------
// Record pool

std::uint32_t Simulation::alloc_record() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  if (pool_size_ == (static_cast<std::uint32_t>(slabs_.size()) << kSlabShift)) {
    slabs_.push_back(std::make_unique<Record[]>(std::size_t{1} << kSlabShift));
  }
  return pool_size_++;
}

void Simulation::release_record(std::uint32_t slot) {
  Record& rec = record(slot);
  rec.callback = nullptr;  // release captured resources eagerly
  ++rec.gen;               // invalidates outstanding handles and heap entries
  rec.armed = false;
  free_.push_back(slot);
}

// ---------------------------------------------------------------------------
// 4-ary min-heap. Compared to the binary heap in std::priority_queue this
// halves the tree depth; sift-down does up to 4 comparisons per level but
// all four children share a cache line pair (24-byte entries), which wins on
// the pop-heavy engine workload.

// Sifts use hole insertion (save the element, slide entries into the hole,
// place once) rather than pairwise swaps — one 24-byte store per level
// instead of three.

void Simulation::heap_push(const HeapEntry& e) {
  heap_.push_back(e);  // grows storage; value is overwritten below
  std::size_t hole = heap_.size() - 1;
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!entry_less(e, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void Simulation::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry* h = heap_.data();
  const HeapEntry e = h[i];
  std::size_t hole = i;
  for (;;) {
    const std::size_t first_child = kHeapArity * hole + 1;
    if (first_child + kHeapArity <= n) {
      // Pull the grandchild block toward the cache while this level's
      // comparisons run; only worthwhile once the heap outgrows L2.
      if (n >= kPrefetchMinHeap) {
        const std::size_t grandchild = kHeapArity * first_child + 1;
        if (grandchild < n) {
          __builtin_prefetch(&h[grandchild]);
          __builtin_prefetch(&h[grandchild + 8 < n ? grandchild + 8 : n - 1]);
        }
      }
      const std::size_t best = min_child_full(h, first_child);
      if (!entry_less(h[best], e)) break;
      h[hole] = h[best];
      hole = best;
    } else if (first_child < n) {
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (entry_less(h[c], h[best])) best = c;
      }
      if (!entry_less(h[best], e)) break;
      h[hole] = h[best];
      hole = best;
    } else {
      break;
    }
  }
  h[hole] = e;
}

void Simulation::heap_pop() {
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Bottom-up pop (Wegener): percolate the root hole down the min-child
  // path all the way to a leaf without comparing against `e`, then bubble
  // `e` up from the leaf. `e` came from the bottom of the heap, so it almost
  // always belongs near the leaves — this saves the per-level "done yet?"
  // comparison of the classic sift, whose branch is unpredictable.
  HeapEntry* h = heap_.data();
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = kHeapArity * hole + 1;
    if (first_child + kHeapArity <= n) {
      if (n >= kPrefetchMinHeap) {
        const std::size_t grandchild = kHeapArity * first_child + 1;
        if (grandchild < n) {
          __builtin_prefetch(&h[grandchild]);
          __builtin_prefetch(&h[grandchild + 8 < n ? grandchild + 8 : n - 1]);
        }
      }
      const std::size_t best = min_child_full(h, first_child);
      h[hole] = h[best];
      hole = best;
    } else if (first_child < n) {
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (entry_less(h[c], h[best])) best = c;
      }
      h[hole] = h[best];
      hole = best;
    } else {
      break;
    }
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!entry_less(e, h[parent])) break;
    h[hole] = h[parent];
    hole = parent;
  }
  h[hole] = e;
}

/// Eager compaction: once cancelled entries outnumber live ones, filter the
/// ghosts out and rebuild in O(n) (Floyd). Amortized O(1) per cancellation,
/// and it bounds the calendar at 2x the live event count — the seed engine's
/// lazy deletion let ghosts accumulate without bound under churn.
void Simulation::maybe_compact() {
  if (heap_.size() < kCompactMinHeap || ghosts_ * 2 < heap_.size()) return;
  std::size_t kept = 0;
  for (const HeapEntry& e : heap_) {
    if (record(e.slot).gen == e.gen) heap_[kept++] = e;
  }
  heap_.resize(kept);
  for (std::size_t i = kept / kHeapArity + 1; i-- > 0;) {
    if (i < kept) sift_down(i);
  }
  ghosts_ = 0;
}

// ---------------------------------------------------------------------------
// Scheduling and dispatch

EventHandle Simulation::schedule_at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulation::schedule_at: time is in the past");
  if (!cb) throw std::invalid_argument("Simulation::schedule_at: empty callback");
  const std::uint32_t slot = alloc_record();
  Record& rec = record(slot);
  rec.callback = std::move(cb);
  rec.armed = true;
  heap_push(HeapEntry{key_of(t), next_seq_++, slot, rec.gen});
  ++scheduled_;
  return EventHandle{this, slot, rec.gen};
}

std::uint32_t Simulation::acquire_persistent(Callback cb) {
  const std::uint32_t slot = alloc_record();
  record(slot).callback = std::move(cb);
  return slot;
}

EventHandle Simulation::arm_slot(std::uint32_t slot, Time t) {
  if (t < now_) throw std::invalid_argument("Simulation::schedule_at: time is in the past");
  Record& rec = record(slot);
  rec.armed = true;
  heap_push(HeapEntry{key_of(t), next_seq_++, slot, rec.gen});
  ++scheduled_;
  return EventHandle{this, slot, rec.gen};
}

bool Simulation::step() {
  while (!heap_.empty()) {
    const HeapEntry entry = heap_.front();
    // The record line is needed right after the pop's sift-down; start the
    // (usually cold) load now so it overlaps the sift.
    Record& rec = record(entry.slot);
    __builtin_prefetch(&rec);
    heap_pop();
    if (rec.gen != entry.gen || !rec.armed) {
      --ghosts_;  // lazily discard a cancelled entry
      continue;
    }
    now_ = time_of(entry);
    ++executed_;
    // Invoke the callback in place: clearing `armed` first makes handles
    // read as fired (pending() false, cancel() a no-op), and the slot is
    // not on the free list during the call, so nothing the callback
    // schedules can reuse this record out from under it. Slab storage is
    // stable across pool growth, so `rec` stays valid even if the callback
    // schedules into a fresh slab.
    rec.armed = false;
    rec.callback();
    // A persistent record (PeriodicProcess) re-arms itself from inside the
    // callback; release only when it did not (one-shot event or stopped
    // process).
    if (!rec.armed) release_record(entry.slot);
    return true;
  }
  return false;
}

std::size_t Simulation::run(std::size_t max_events) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (n < max_events && !stop_requested_) {
    if (!step()) break;
    ++n;
  }
  return n;
}

std::size_t Simulation::run_until(Time t) {
  if (t < now_) throw std::invalid_argument("Simulation::run_until: time is in the past");
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_) {
    // Peek past cancelled entries to find the next live event.
    while (!heap_.empty() && !slot_live(heap_.front().slot, heap_.front().gen)) {
      heap_pop();
      --ghosts_;
    }
    if (heap_.empty() || heap_.front().tkey > key_of(t)) break;
    step();
    ++n;
  }
  if (!stop_requested_ && now_ < t) now_ = t;
  return n;
}

// ---------------------------------------------------------------------------
// PeriodicProcess

PeriodicProcess::PeriodicProcess(Simulation& sim, Time start, Time period,
                                 util::UniqueFunction<void(Time)> tick)
    : sim_(sim), start_(start), period_(period), tick_(std::move(tick)) {
  if (period_ <= 0.0) throw std::invalid_argument("PeriodicProcess: period must be positive");
  if (!tick_) throw std::invalid_argument("PeriodicProcess: empty tick callback");
  if (start_ < sim_.now()) {
    throw std::invalid_argument("Simulation::schedule_at: time is in the past");
  }
  slot_ = sim_.acquire_persistent([this] { on_fire(); });
  next_ = sim_.arm_slot(slot_, start_);
}

void PeriodicProcess::on_fire() {
  if (!running_) return;
  // Tick k fires at exactly start + k*period; computing it directly (rather
  // than accumulating t += period) keeps month-long runs phase-accurate.
  tick_(start_ + static_cast<Time>(k_) * period_);
  if (running_) {
    ++k_;
    next_ = sim_.arm_slot(slot_, start_ + static_cast<Time>(k_) * period_);
  }
}

void PeriodicProcess::stop() {
  running_ = false;
  next_.cancel();
}

}  // namespace df3::sim
