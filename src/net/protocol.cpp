#include "df3/net/protocol.hpp"

#include <cmath>
#include <stdexcept>

namespace df3::net {

util::Seconds LinkProfile::serialization_time(util::Bytes size) const {
  if (size.value() < 0.0) throw std::invalid_argument("serialization_time: negative size");
  if (bandwidth.value() <= 0.0) throw std::invalid_argument("LinkProfile: bandwidth <= 0");
  if (duty_cycle <= 0.0 || duty_cycle > 1.0) {
    throw std::invalid_argument("LinkProfile: duty_cycle outside (0,1]");
  }
  const double frames =
      size.value() == 0.0 ? 1.0 : std::ceil(size.value() / max_payload.value());
  const double wire_bytes = size.value() + frames * frame_overhead.value();
  const double raw_s = wire_bytes * 8.0 / bandwidth.value();
  // Duty-cycled radios must stay silent (1-d)/d of the air time.
  return util::Seconds{raw_s / duty_cycle};
}

util::Seconds LinkProfile::one_hop_delay(util::Bytes size) const {
  return serialization_time(size) + base_latency;
}

LinkProfile fiber_wan() {
  return LinkProfile{"fiber-wan", util::gbps(1.0), util::seconds(0.008),
                     util::bytes(65536.0), util::bytes(66.0), 1.0};
}

LinkProfile ethernet_lan() {
  return LinkProfile{"ethernet-lan", util::gbps(1.0), util::seconds(0.0002),
                     util::bytes(65536.0), util::bytes(66.0), 1.0};
}

LinkProfile ethernet_10g() {
  return LinkProfile{"ethernet-10g", util::gbps(10.0), util::seconds(0.00005),
                     util::bytes(65536.0), util::bytes(66.0), 1.0};
}

LinkProfile zigbee() {
  return LinkProfile{"zigbee", util::kbps(250.0), util::seconds(0.010),
                     util::bytes(100.0), util::bytes(31.0), 1.0};
}

LinkProfile wifi() {
  return LinkProfile{"wifi", util::mbps(50.0), util::seconds(0.003),
                     util::bytes(1448.0), util::bytes(80.0), 1.0};
}

LinkProfile lora() {
  return LinkProfile{"lora", util::bps(5470.0), util::seconds(0.050),
                     util::bytes(222.0), util::bytes(13.0), 0.01};
}

LinkProfile sigfox() {
  return LinkProfile{"sigfox", util::bps(100.0), util::seconds(0.5),
                     util::bytes(12.0), util::bytes(14.0), 0.01};
}

LinkProfile enocean() {
  return LinkProfile{"enocean", util::kbps(125.0), util::seconds(0.005),
                     util::bytes(14.0), util::bytes(7.0), 1.0};
}

LinkProfile adsl_wan() {
  return LinkProfile{"adsl-wan", util::mbps(20.0), util::seconds(0.015),
                     util::bytes(65536.0), util::bytes(66.0), 1.0};
}

}  // namespace df3::net
