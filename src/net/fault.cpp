#include "df3/net/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "df3/obs/obs.hpp"

namespace df3::net {

LinkFlapper::LinkFlapper(sim::Simulation& sim, std::string name, Network& network,
                         LinkFlapConfig config, util::RngStream rng)
    : sim::Entity(sim, std::move(name)),
      network_(network),
      config_(std::move(config)),
      rng_(rng),
      next_(config_.links.size()),
      down_(config_.links.size(), false),
      down_since_(config_.links.size(), 0.0) {
  if (config_.mean_up_s <= 0.0 || config_.mean_down_s <= 0.0) {
    throw std::invalid_argument("LinkFlapper: dwell means must be positive");
  }
  // Validate up front, like WorkerChurn does for worker indices: a typo'd
  // link index would otherwise surface as an out_of_range mid-simulation,
  // at the first toggle, with no hint which injector armed it.
  for (const std::size_t l : config_.links) {
    if (l >= network_.link_count()) {
      throw std::out_of_range("LinkFlapper: link index out of range");
    }
  }
}

void LinkFlapper::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t slot = 0; slot < config_.links.size(); ++slot) arm(slot);
}

void LinkFlapper::stop() {
  if (!running_) return;
  running_ = false;
  for (std::size_t slot = 0; slot < config_.links.size(); ++slot) {
    next_[slot].cancel();
    if (down_[slot]) {
      network_.set_link_up(config_.links[slot], true);
      down_[slot] = false;
      DF3_OBS_TRACE_IF(o) {
        o->span(this, name(), obs::Phase::kLinkOutage, down_since_[slot], now(),
                config_.links[slot]);
      }
    }
  }
}

void LinkFlapper::arm(std::size_t slot) {
  const double mean = down_[slot] ? config_.mean_down_s : config_.mean_up_s;
  const double dwell = rng_.exponential(1.0 / mean);
  const sim::Time at = std::max(now(), config_.start) + dwell;
  next_[slot] = sim().schedule_at(at, [this, slot] { toggle(slot); });
}

void LinkFlapper::force_toggle(std::size_t slot) {
  if (slot >= down_.size()) throw std::out_of_range("LinkFlapper: bad slot");
  down_[slot] = !down_[slot];
  if (down_[slot]) {
    ++flaps_;
    down_since_[slot] = now();
    DF3_OBS_TRACE_IF(o) {
      o->instant(this, name(), obs::Phase::kLinkFlap, now(), config_.links[slot]);
    }
  } else {
    DF3_OBS_TRACE_IF(o) {
      o->span(this, name(), obs::Phase::kLinkOutage, down_since_[slot], now(),
              config_.links[slot]);
    }
  }
  network_.set_link_up(config_.links[slot], !down_[slot]);
}

void LinkFlapper::toggle(std::size_t slot) {
  force_toggle(slot);
  arm(slot);
}

}  // namespace df3::net
