#include "df3/net/network.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "df3/obs/obs.hpp"

namespace df3::net {

Network::Network(sim::Simulation& sim, std::string name) : sim::Entity(sim, std::move(name)) {}

NodeId Network::add_node(const std::string& node_name) {
  if (by_name_.contains(node_name)) {
    throw std::invalid_argument("Network::add_node: duplicate name " + node_name);
  }
  const auto id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(node_name);
  by_name_.emplace(node_name, id);
  adjacency_.emplace_back();
  return id;
}

NodeId Network::node(const std::string& node_name) const {
  const auto it = by_name_.find(node_name);
  if (it == by_name_.end()) throw std::out_of_range("Network::node: unknown " + node_name);
  return it->second;
}

const std::string& Network::node_name(NodeId id) const { return node_names_.at(id); }

std::size_t Network::add_link(NodeId a, NodeId b, LinkProfile profile) {
  if (a >= node_names_.size() || b >= node_names_.size()) {
    throw std::out_of_range("Network::add_link: unknown node");
  }
  if (a == b) throw std::invalid_argument("Network::add_link: self loop");
  links_.push_back(Link{a, b, std::move(profile), true, {0.0, 0.0}, {}});
  const std::size_t idx = links_.size() - 1;
  adjacency_[a].push_back(idx);
  adjacency_[b].push_back(idx);
  min_peer_latency_cache_ = -1.0;
  return idx;
}

void Network::set_link_up(std::size_t link, bool up) {
  Link& l = links_.at(link);
  if (l.up != up) {
    l.up = up;
    min_peer_latency_cache_ = -1.0;
  }
}
bool Network::link_up(std::size_t link) const { return links_.at(link).up; }

util::Seconds Network::min_peer_latency() const {
  if (min_peer_latency_cache_ < 0.0) {
    double m = std::numeric_limits<double>::infinity();
    for (const Link& l : links_) {
      if (l.up) m = std::min(m, l.profile.base_latency.value());
    }
    min_peer_latency_cache_ = m;
  }
  return util::Seconds{min_peer_latency_cache_};
}

std::vector<std::size_t> Network::route(NodeId src, NodeId dst, util::Bytes size) const {
  if (src >= node_names_.size() || dst >= node_names_.size()) {
    throw std::out_of_range("Network::route: unknown node");
  }
  if (src == dst) return {};
  // Dijkstra over unloaded one-hop delay for this payload size.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(node_names_.size(), kInf);
  std::vector<std::size_t> via_link(node_names_.size(), SIZE_MAX);
  std::vector<NodeId> via_node(node_names_.size(), 0);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const std::size_t li : adjacency_[u]) {
      const Link& l = links_[li];
      if (!l.up) continue;
      const NodeId v = (l.a == u) ? l.b : l.a;
      const double w = l.profile.one_hop_delay(size).value();
      if (d + w < dist[v]) {
        dist[v] = d + w;
        via_link[v] = li;
        via_node[v] = u;
        heap.emplace(dist[v], v);
      }
    }
  }
  if (dist[dst] == kInf) return {};
  std::vector<std::size_t> path;
  for (NodeId cur = dst; cur != src; cur = via_node[cur]) path.push_back(via_link[cur]);
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<util::Seconds> Network::unloaded_delay(NodeId src, NodeId dst,
                                                     util::Bytes size) const {
  if (src == dst) return util::Seconds{0.0};
  const auto path = route(src, dst, size);
  if (path.empty()) return std::nullopt;
  util::Seconds total{0.0};
  for (const std::size_t li : path) total += links_[li].profile.one_hop_delay(size);
  return total;
}

void Network::send(const Message& msg, std::function<void(sim::Time)> on_delivery,
                   std::function<void()> on_drop) {
  if (!on_delivery) throw std::invalid_argument("Network::send: empty delivery callback");
  if (msg.src == msg.dst) {  // loopback delivers in the same instant
    ++sent_;
    sim().schedule_in(0.0, [cb = std::move(on_delivery), t = now()] { cb(t); });
    return;
  }
  const auto path = route(msg.src, msg.dst, msg.size);
  if (path.empty()) {
    ++dropped_;
    if (on_drop) sim().schedule_in(0.0, std::move(on_drop));
    return;
  }
  ++sent_;
  // Walk the path accumulating queuing + serialization + propagation. Link
  // occupancy is reserved immediately (cut-through per hop).
  sim::Time t = now();
  NodeId at = msg.src;
  for (const std::size_t li : path) {
    Link& l = links_[li];
    const std::size_t dir = direction(l, at);
    const sim::Time start = std::max(t, l.next_free[dir]);
    const double ser = l.profile.serialization_time(msg.size).value();
    l.next_free[dir] = start + ser;
    t = start + ser + l.profile.base_latency.value();
    LinkStats& st = l.dir_stats[dir];
    ++st.messages;
    st.bytes += msg.size.value();
    st.busy_seconds += ser;
    at = (l.a == at) ? l.b : l.a;
  }
  // One span covers the whole multi-hop delivery: cut-through reserves
  // every link at send time, so the delivery instant is already known here.
  // Journey segments additionally carry a span-link whose attribute says
  // why the message travelled (transport / hand-off / return / WAN).
  DF3_OBS_TRACE_IF(o) {
    if (msg.journey_hop != obs::HopKind::kNone) {
      o->journey_span(this, name(), obs::Phase::kNetHop, now(), t, msg.payload_tag, -1,
                      static_cast<std::uint32_t>(msg.journey_hop));
    } else {
      o->span(this, name(), obs::Phase::kNetHop, now(), t, msg.payload_tag);
    }
  }
  sim().schedule_at(t, [cb = std::move(on_delivery), t] { cb(t); });
}

const LinkStats& Network::stats(std::size_t link) const {
  const Link& l = links_.at(link);
  merged_stats_ = LinkStats{};
  for (const auto& d : l.dir_stats) {
    merged_stats_.messages += d.messages;
    merged_stats_.bytes += d.bytes;
    merged_stats_.busy_seconds += d.busy_seconds;
  }
  return merged_stats_;
}

}  // namespace df3::net
