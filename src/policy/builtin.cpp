/// \file builtin.cpp
/// \brief The built-in policies for all four seams.
///
/// The defaults (preempt/delay ladder, df-first routing, ring peer
/// selection, first-fit placement) reproduce the pre-policy-layer enum
/// dispatch bit-for-bit — the golden determinism digests pin this. The
/// alternatives (heat-aware and least-loaded routing, least-loaded peer
/// selection, best-fit placement) are the policies the paper motivates:
/// send cloud work where the heat is wanted, balance the federation, pack
/// workers tightly.

#include <limits>

#include "df3/policy/registry.hpp"

namespace df3::policy {
namespace {

// --- peak rungs -----------------------------------------------------------
// Each built-in rung pulls exactly one cluster lever. Rungs are per-cluster
// instances, so a future budgeted rung can count its own uses.

class PreemptRung final : public PeakRung {
 public:
  [[nodiscard]] std::string_view name() const override { return "preempt"; }
  RungOutcome apply(LadderMechanism& m, core::Task& t, const RungView&) override {
    return m.relieve_by_preemption(t);
  }
};

class HorizontalRung final : public PeakRung {
 public:
  [[nodiscard]] std::string_view name() const override { return "horizontal"; }
  RungOutcome apply(LadderMechanism& m, core::Task& t, const RungView&) override {
    return m.relieve_by_horizontal(t);
  }
};

class VerticalRung final : public PeakRung {
 public:
  [[nodiscard]] std::string_view name() const override { return "vertical"; }
  RungOutcome apply(LadderMechanism& m, core::Task& t, const RungView&) override {
    return m.relieve_by_vertical(t);
  }
};

class DelayRung final : public PeakRung {
 public:
  [[nodiscard]] std::string_view name() const override { return "delay"; }
  RungOutcome apply(LadderMechanism& m, core::Task& t, const RungView&) override {
    return m.relieve_by_delay(t);
  }
};

/// Demand-response rung (paper III-B, DESIGN.md §15): while this cluster's
/// grid region is inside a curtailment window, shed the unplaceable shard
/// off the local grid — first to a federation peer (whose region may not be
/// curtailed), then to the datacenter. Outside a window (or with no grid
/// plane installed) it declines, so the ladder behaves as if the rung were
/// absent.
class GridShedRung final : public PeakRung {
 public:
  [[nodiscard]] std::string_view name() const override { return "grid-shed"; }
  [[nodiscard]] bool needs_grid() const override { return true; }
  RungOutcome apply(LadderMechanism& m, core::Task& t, const RungView& view) override {
    if (!view.grid_valid || !view.curtailment_active) return RungOutcome::kNoOp;
    const RungOutcome horizontal = m.relieve_by_horizontal(t);
    if (horizontal != RungOutcome::kNoOp) return horizontal;
    return m.relieve_by_vertical(t);
  }
};

// --- routing --------------------------------------------------------------

/// Round-robin over DF clusters; clusters may still offload vertically.
/// The cursor lives in the policy instance, replaying the exact
/// `rr_next_ % n; ++rr_next_` arithmetic of the old enum dispatch.
class DfFirstRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "df-first"; }
  std::size_t pick(const RoutingView& view) override {
    const std::size_t i = next_ % view.cluster_count;
    ++next_;
    return i;
  }

 private:
  std::size_t next_ = 0;
};

/// Straight to the datacenter: the classic-cloud baseline.
class DatacenterOnlyRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "dc-only"; }
  std::size_t pick(const RoutingView&) override { return kRouteToDatacenter; }
};

/// DF clusters during the heating season, datacenter otherwise. The
/// boundary is inclusive: at exactly the cutoff the heating season is over
/// (mirrors `seasonal >= cutoff` in the old enum dispatch).
class SeasonAwareRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "season-aware"; }
  [[nodiscard]] bool needs_season() const override { return true; }
  std::size_t pick(const RoutingView& view) override {
    if (view.seasonal_outdoor_c >= view.heating_cutoff_c && view.has_datacenter) {
      return kRouteToDatacenter;
    }
    const std::size_t i = next_ % view.cluster_count;
    ++next_;
    return i;
  }

 private:
  std::size_t next_ = 0;
};

/// Route to the building whose servers are asked for the most heat per
/// core — cloud work becomes fuel where it is wanted most. Ties keep the
/// lowest building index.
class HeatAwareRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "heat-aware"; }
  [[nodiscard]] bool needs_cluster_info() const override { return true; }
  std::size_t pick(const RoutingView& view) override {
    std::size_t best = 0;
    double best_demand = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < view.clusters.size(); ++i) {
      if (view.clusters[i].heat_demand_w_per_core > best_demand) {
        best_demand = view.clusters[i].heat_demand_w_per_core;
        best = i;
      }
    }
    return best;
  }
};

/// Route to the cluster with the smallest queued backlog per usable core.
/// Ties keep the lowest building index.
class LeastLoadedRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "least-loaded"; }
  [[nodiscard]] bool needs_cluster_info() const override { return true; }
  std::size_t pick(const RoutingView& view) override {
    std::size_t best = 0;
    double best_backlog = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < view.clusters.size(); ++i) {
      if (view.clusters[i].backlog_gc_per_core < best_backlog) {
        best_backlog = view.clusters[i].backlog_gc_per_core;
        best = i;
      }
    }
    return best;
  }
};

/// Route to the cluster whose grid region has the lowest carbon intensity
/// right now — compute follows clean electrons (Buyya sustainability
/// visions, PAPERS.md). Ties break toward the smaller backlog per core,
/// then the lowest building index; with no grid plane installed it degrades
/// to round-robin (the df-first arithmetic) rather than pinning building 0.
class CarbonAwareRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "carbon-aware"; }
  [[nodiscard]] bool needs_cluster_info() const override { return true; }
  [[nodiscard]] bool needs_grid() const override { return true; }
  std::size_t pick(const RoutingView& view) override {
    if (!view.grid_valid) {
      const std::size_t i = next_ % view.cluster_count;
      ++next_;
      return i;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < view.clusters.size(); ++i) {
      const ClusterInfo& c = view.clusters[i];
      const ClusterInfo& b = view.clusters[best];
      if (c.carbon_gco2_per_kwh < b.carbon_gco2_per_kwh ||
          (c.carbon_gco2_per_kwh == b.carbon_gco2_per_kwh &&
           c.backlog_gc_per_core < b.backlog_gc_per_core)) {
        best = i;
      }
    }
    return best;
  }

 private:
  std::size_t next_ = 0;
};

/// Route to the cluster whose grid region has the lowest spot price right
/// now. Same tie-breaks and no-grid fallback as carbon-aware.
class PriceAwareRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "price-aware"; }
  [[nodiscard]] bool needs_cluster_info() const override { return true; }
  [[nodiscard]] bool needs_grid() const override { return true; }
  std::size_t pick(const RoutingView& view) override {
    if (!view.grid_valid) {
      const std::size_t i = next_ % view.cluster_count;
      ++next_;
      return i;
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < view.clusters.size(); ++i) {
      const ClusterInfo& c = view.clusters[i];
      const ClusterInfo& b = view.clusters[best];
      if (c.price_eur_per_kwh < b.price_eur_per_kwh ||
          (c.price_eur_per_kwh == b.price_eur_per_kwh &&
           c.backlog_gc_per_core < b.backlog_gc_per_core)) {
        best = i;
      }
    }
    return best;
  }

 private:
  std::size_t next_ = 0;
};

// --- peer selection -------------------------------------------------------

/// Always the next neighbor (peers arrive in ring order), reproducing the
/// old single-peer ring exactly.
class RingPeerSelector final : public PeerSelector {
 public:
  [[nodiscard]] std::string_view name() const override { return "ring"; }
  std::size_t pick(const PeerView&) override { return 0; }
};

/// The peer with the smallest backlog per usable core; ties keep ring
/// order (nearest first).
class LeastLoadedPeerSelector final : public PeerSelector {
 public:
  [[nodiscard]] std::string_view name() const override { return "least-loaded"; }
  std::size_t pick(const PeerView& view) override {
    std::size_t best = 0;
    double best_backlog = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < view.peers.size(); ++i) {
      if (view.peers[i].backlog_gc_per_core < best_backlog) {
        best_backlog = view.peers[i].backlog_gc_per_core;
        best = i;
      }
    }
    return best;
  }
};

/// The peer whose grid region is cleanest right now; ties keep ring order
/// (nearest first). Falls back to the ring neighbor when no grid plane is
/// installed.
class GreenestPeerSelector final : public PeerSelector {
 public:
  [[nodiscard]] std::string_view name() const override { return "greenest"; }
  [[nodiscard]] bool needs_grid() const override { return true; }
  std::size_t pick(const PeerView& view) override {
    if (!view.grid_valid) return 0;
    std::size_t best = 0;
    for (std::size_t i = 1; i < view.peers.size(); ++i) {
      if (view.peers[i].carbon_gco2_per_kwh < view.peers[best].carbon_gco2_per_kwh) {
        best = i;
      }
    }
    return best;
  }
};

// --- placement ------------------------------------------------------------

/// Lowest eligible worker index (candidates arrive in ascending order) —
/// the pre-policy-layer inline scan.
class FirstFitPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "first-fit"; }
  std::size_t pick(const PlacementView&) override { return 0; }
};

/// Tightest fit: the candidate with the fewest free cores, leaving the
/// larger holes for coupled multi-shard arrivals. Ties keep the lowest
/// worker index.
class BestFitPlacement final : public PlacementPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "best-fit"; }
  std::size_t pick(const PlacementView& view) override {
    std::size_t best = 0;
    int best_free = std::numeric_limits<int>::max();
    for (std::size_t i = 0; i < view.candidates.size(); ++i) {
      if (view.candidates[i].free_cores < best_free) {
        best_free = view.candidates[i].free_cores;
        best = i;
      }
    }
    return best;
  }
};

}  // namespace

namespace detail {

void register_builtins(Registry& r) {
  r.register_rung("preempt", [] { return std::make_unique<PreemptRung>(); });
  r.register_rung("horizontal", [] { return std::make_unique<HorizontalRung>(); });
  r.register_rung("vertical", [] { return std::make_unique<VerticalRung>(); });
  r.register_rung("delay", [] { return std::make_unique<DelayRung>(); });
  r.register_rung("grid-shed", [] { return std::make_unique<GridShedRung>(); });

  r.register_routing("df-first", [] { return std::make_unique<DfFirstRouting>(); });
  r.register_routing("dc-only", [] { return std::make_unique<DatacenterOnlyRouting>(); });
  r.register_routing("season-aware", [] { return std::make_unique<SeasonAwareRouting>(); });
  r.register_routing("heat-aware", [] { return std::make_unique<HeatAwareRouting>(); });
  r.register_routing("least-loaded", [] { return std::make_unique<LeastLoadedRouting>(); });
  r.register_routing("carbon-aware", [] { return std::make_unique<CarbonAwareRouting>(); });
  r.register_routing("price-aware", [] { return std::make_unique<PriceAwareRouting>(); });

  r.register_peer_selector("ring", [] { return std::make_unique<RingPeerSelector>(); });
  r.register_peer_selector("least-loaded",
                           [] { return std::make_unique<LeastLoadedPeerSelector>(); });
  r.register_peer_selector("greenest", [] { return std::make_unique<GreenestPeerSelector>(); });

  r.register_placement("first-fit", [] { return std::make_unique<FirstFitPlacement>(); });
  r.register_placement("best-fit", [] { return std::make_unique<BestFitPlacement>(); });
}

}  // namespace detail
}  // namespace df3::policy
