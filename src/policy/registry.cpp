#include "df3/policy/registry.hpp"

#include <stdexcept>

namespace df3::policy {

namespace {

/// Join map keys into "a, b, c" for error messages.
template <class Map>
std::string known_names(const Map& m) {
  std::string out;
  for (const auto& [name, factory] : m) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

template <class Map, class Factory>
void register_in(Map& m, const char* seam, const std::string& name, Factory factory) {
  if (name.empty()) throw std::invalid_argument(std::string("policy registry: empty ") + seam +
                                                " policy name");
  if (!factory) throw std::invalid_argument("policy registry: null factory for " + name);
  if (!m.emplace(name, std::move(factory)).second) {
    throw std::invalid_argument(std::string("policy registry: duplicate ") + seam +
                                " policy '" + name + "'");
  }
}

template <class Map>
auto make_from(const Map& m, const char* seam, const std::string& name) {
  const auto it = m.find(name);
  if (it == m.end()) {
    throw std::invalid_argument(std::string("policy registry: unknown ") + seam + " policy '" +
                                name + "' (known: " + known_names(m) + ")");
  }
  auto made = it->second();
  if (!made) throw std::logic_error("policy registry: factory for '" + name + "' returned null");
  return made;
}

template <class Map>
std::vector<std::string> names_of(const Map& m) {
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [name, factory] : m) out.push_back(name);
  return out;
}

}  // namespace

void Registry::register_rung(const std::string& name, RungFactory factory) {
  register_in(rungs_, "rung", name, std::move(factory));
}

void Registry::register_routing(const std::string& name, RoutingFactory factory) {
  register_in(routings_, "routing", name, std::move(factory));
}

void Registry::register_peer_selector(const std::string& name, PeerFactory factory) {
  register_in(peers_, "peer-selector", name, std::move(factory));
}

void Registry::register_placement(const std::string& name, PlacementFactory factory) {
  register_in(placements_, "placement", name, std::move(factory));
}

std::unique_ptr<PeakRung> Registry::make_rung(const std::string& name) const {
  return make_from(rungs_, "rung", name);
}

std::vector<std::unique_ptr<PeakRung>> Registry::make_ladder(
    const std::vector<std::string>& names) const {
  std::vector<std::unique_ptr<PeakRung>> ladder;
  ladder.reserve(names.size());
  for (const auto& name : names) ladder.push_back(make_rung(name));
  return ladder;
}

std::unique_ptr<RoutingPolicy> Registry::make_routing(const std::string& name) const {
  return make_from(routings_, "routing", name);
}

std::unique_ptr<PeerSelector> Registry::make_peer_selector(const std::string& name) const {
  return make_from(peers_, "peer-selector", name);
}

std::unique_ptr<PlacementPolicy> Registry::make_placement(const std::string& name) const {
  return make_from(placements_, "placement", name);
}

std::vector<std::string> Registry::rung_names() const { return names_of(rungs_); }
std::vector<std::string> Registry::routing_names() const { return names_of(routings_); }
std::vector<std::string> Registry::peer_selector_names() const { return names_of(peers_); }
std::vector<std::string> Registry::placement_names() const { return names_of(placements_); }

Registry& Registry::global() {
  static Registry r = [] {
    Registry reg;
    detail::register_builtins(reg);
    return reg;
  }();
  return r;
}

std::vector<std::string> Registry::split_list(std::string_view csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string_view::npos) comma = csv.size();
    std::string_view item = csv.substr(pos, comma - pos);
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    if (!item.empty()) out.emplace_back(item);
    pos = comma + 1;
  }
  return out;
}

}  // namespace df3::policy
