#include "df3/obs/slo.hpp"

namespace df3::obs {

SloMonitor::SloMonitor(double window_s, std::size_t buckets)
    : window_s_(window_s > 0.0 ? window_s : 3600.0),
      buckets_(buckets > 0 ? buckets : 1),
      span_s_(window_s_ / static_cast<double>(buckets_)) {}

void SloMonitor::record(std::uint32_t flow, SloOutcome outcome, double response_s,
                        double now_s) {
  if (flow >= per_flow_.size()) per_flow_.resize(flow + 1);
  PerFlow& f = per_flow_[flow];
  if (f.ring.empty()) f.ring.resize(buckets_);
  f.last_event_s = now_s;

  const std::uint64_t epoch = epoch_of(now_s);
  Bucket& b = f.ring[epoch % buckets_];
  if (b.epoch != epoch) {
    b.epoch = epoch;
    b.total = 0;
    b.missed = 0;
    b.failed = 0;
    b.resp.reset();
  }
  ++b.total;
  switch (outcome) {
    case SloOutcome::kOk: b.resp.observe(response_s); break;
    case SloOutcome::kMissed:
      ++b.missed;
      b.resp.observe(response_s);
      break;
    case SloOutcome::kFailed: ++b.failed; break;
  }
}

SloMonitor::FlowReport SloMonitor::report(std::uint32_t flow, double now_s,
                                          double staleness_s) const {
  FlowReport r;
  if (staleness_s < 0.0) staleness_s = window_s_;
  if (flow >= per_flow_.size() || per_flow_[flow].ring.empty()) {
    r.stale = true;
    return r;
  }
  const PerFlow& f = per_flow_[flow];
  r.last_event_s = f.last_event_s;
  r.stale = f.last_event_s < 0.0 || (now_s - f.last_event_s) > staleness_s;

  // Buckets whose epoch is within the trailing window of `now_s`. The
  // current (possibly partial) bucket counts; anything older than
  // `buckets_` epochs has been lapped or expired.
  const std::uint64_t cur = epoch_of(now_s);
  const std::uint64_t oldest = cur >= buckets_ - 1 ? cur - (buckets_ - 1) : 0;
  LogHistogram merged;
  for (const Bucket& b : f.ring) {
    if (b.epoch == UINT64_MAX || b.epoch < oldest || b.epoch > cur) continue;
    r.total += b.total;
    r.missed += b.missed;
    r.failed += b.failed;
    merged.merge(b.resp);
  }
  if (r.total > 0) {
    r.miss_ratio = static_cast<double>(r.missed) / static_cast<double>(r.total);
    r.fail_ratio = static_cast<double>(r.failed) / static_cast<double>(r.total);
  }
  r.p50_s = merged.quantile(0.5);
  r.p99_s = merged.quantile(0.99);
  r.max_s = merged.max();
  return r;
}

}  // namespace df3::obs
