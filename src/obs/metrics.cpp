#include "df3/obs/metrics.hpp"

namespace df3::obs {

MetricId MetricRegistry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricId MetricRegistry::gauge(std::string_view name) { return intern(name, MetricKind::kGauge); }

MetricId MetricRegistry::histogram(std::string_view name, double base, double growth) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    assert(instruments_[it->second].kind == MetricKind::kHistogram);
    return MetricId{it->second};
  }
  const auto id = intern(name, MetricKind::kHistogram);
  histograms_[instruments_[id.index].slot] = LogHistogram(base, growth);
  return id;
}

MetricId MetricRegistry::intern(std::string_view name, MetricKind kind) {
  auto [it, inserted] = by_name_.try_emplace(std::string(name),
                                             static_cast<std::uint32_t>(instruments_.size()));
  if (!inserted) {
    assert(instruments_[it->second].kind == kind);
    return MetricId{it->second};
  }
  Instrument inst;
  inst.name = it->first;
  inst.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      inst.slot = static_cast<std::uint32_t>(counters_.size());
      counters_.emplace_back();
      break;
    case MetricKind::kGauge:
      inst.slot = static_cast<std::uint32_t>(gauges_.size());
      gauges_.emplace_back();
      break;
    case MetricKind::kHistogram:
      inst.slot = static_cast<std::uint32_t>(histograms_.size());
      histograms_.emplace_back();
      break;
  }
  instruments_.push_back(std::move(inst));
  return MetricId{it->second};
}

void MetricRegistry::snapshot(double t_s) {
  ++snapshots_;
  for (auto& inst : instruments_) {
    MetricSample s;
    s.t_s = t_s;
    switch (inst.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<double>(counters_[inst.slot].value());
        break;
      case MetricKind::kGauge:
        s.value = gauges_[inst.slot].value();
        break;
      case MetricKind::kHistogram: {
        const auto& h = histograms_[inst.slot];
        s.value = h.mean();
        s.count = h.count();
        s.p50 = h.quantile(0.50);
        s.p99 = h.quantile(0.99);
        break;
      }
    }
    inst.series.push_back(s);
  }
}

}  // namespace df3::obs
