#include "df3/obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <string_view>

namespace df3::obs {

namespace {

constexpr int kSimPid = 1;   ///< simulated-clock events
constexpr int kHostPid = 2;  ///< host-clock tick-phase scopes

/// Seconds -> trace microseconds, formatted with nanosecond resolution.
void append_us(std::string& out, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  out += buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_metadata(std::string& out, const char* kind, int pid, int tid, std::string_view name,
                     bool with_tid) {
  out += R"({"name":")";
  out += kind;
  out += R"(","ph":"M","pid":)";
  out += std::to_string(pid);
  if (with_tid) {
    out += ",\"tid\":";
    out += std::to_string(tid);
  }
  out += R"(,"args":{"name":")";
  append_json_escaped(out, name);
  out += "\"}}";
}

/// %.9g double for metric values: compact, round-trips to float precision.
void append_value(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceRecorder& rec) {
  std::string out;
  out.reserve(1 << 20);
  out += "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":";
  out += std::to_string(rec.dropped());
  out += ",\"traceEvents\":[\n";

  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  sep();
  append_metadata(out, "process_name", kSimPid, 0, "simulated time", false);
  sep();
  append_metadata(out, "process_name", kHostPid, 0, "host compute", false);

  // A track can carry records on either clock; emit its thread_name under
  // both pids so every event's (pid, tid) row is labelled.
  const auto& names = rec.track_names();
  for (std::size_t t = 0; t < names.size(); ++t) {
    sep();
    append_metadata(out, "thread_name", kSimPid, static_cast<int>(t), names[t], true);
    sep();
    append_metadata(out, "thread_name", kHostPid, static_cast<int>(t), names[t], true);
  }

  // kSpanLink records annotate the record pushed immediately before them
  // (obs/journey.hpp): fold the link into that event's args instead of
  // emitting a separate row, so Perfetto stays clean and `df3trace` reads a
  // self-contained per-event schema. A link whose partner fell off the ring
  // window is emitted standalone with "orphan":1.
  TraceEvent pending{};
  bool have_pending = false;

  auto emit_event = [&](const TraceEvent& e, const TraceEvent* link) {
    sep();
    const int pid = (e.clock == Clock::kHost) ? kHostPid : kSimPid;
    out += R"({"name":")";
    out += phase_name(e.phase);
    out += R"(","cat":")";
    out += phase_category(e.phase);
    out += "\",\"ph\":\"";
    out += e.is_span() ? 'X' : 'i';
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    append_us(out, e.t_s);
    if (e.is_span()) {
      out += ",\"dur\":";
      append_us(out, e.dur_s);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{\"id\":";
    out += std::to_string(e.id);
    if (link != nullptr) {
      out += ",\"seq\":";
      out += std::to_string(link->link_seq());
      out += ",\"parent\":";
      out += link->link_parent() == kNoParent ? "-1" : std::to_string(link->link_parent());
      out += ",\"attr\":";
      out += std::to_string(link->link_attr());
    }
    out += "}}";
  };

  auto emit_orphan_link = [&](const TraceEvent& e) {
    sep();
    out += R"({"name":"span-link","cat":"link","ph":"i","pid":)";
    out += std::to_string(kSimPid);
    out += ",\"tid\":0,\"ts\":0,\"s\":\"t\",\"args\":{\"id\":";
    out += std::to_string(e.id);
    out += ",\"seq\":";
    out += std::to_string(e.link_seq());
    out += ",\"parent\":";
    out += e.link_parent() == kNoParent ? "-1" : std::to_string(e.link_parent());
    out += ",\"attr\":";
    out += std::to_string(e.link_attr());
    out += ",\"orphan\":1}}";
  };

  rec.for_each([&](const TraceEvent& e) {
    if (e.is_link()) {
      if (have_pending && pending.id == e.id && pending.clock == Clock::kSim) {
        emit_event(pending, &e);
        have_pending = false;
      } else {
        if (have_pending) {
          emit_event(pending, nullptr);
          have_pending = false;
        }
        emit_orphan_link(e);
      }
      return;
    }
    if (have_pending) emit_event(pending, nullptr);
    pending = e;
    have_pending = true;
  });
  if (have_pending) emit_event(pending, nullptr);

  out += "\n]}\n";
  os << out;
}

void write_metrics_csv(std::ostream& os, const MetricRegistry& reg) {
  std::string out;
  out.reserve(1 << 16);
  out += "metric,kind,t_s,value,count,p50,p99\n";
  for (const auto& inst : reg.instruments()) {
    const bool hist = inst.kind == MetricKind::kHistogram;
    for (const auto& s : inst.series) {
      out += inst.name;
      out += ',';
      out += metric_kind_name(inst.kind);
      out += ',';
      append_value(out, s.t_s);
      out += ',';
      append_value(out, s.value);
      out += ',';
      if (hist) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += buf;
        out += ',';
        append_value(out, s.p50);
        out += ',';
        append_value(out, s.p99);
      } else {
        out += ",,";
      }
      out += '\n';
    }
  }
  os << out;
}

void write_metrics_json(std::ostream& os, const MetricRegistry& reg) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"metrics\":[\n";
  bool first_inst = true;
  for (const auto& inst : reg.instruments()) {
    if (!first_inst) out += ",\n";
    first_inst = false;
    out += R"({"name":")";
    append_json_escaped(out, inst.name);
    out += R"(","kind":")";
    out += metric_kind_name(inst.kind);
    out += "\",\"series\":[";
    const bool hist = inst.kind == MetricKind::kHistogram;
    bool first_row = true;
    for (const auto& s : inst.series) {
      if (!first_row) out += ',';
      first_row = false;
      out += "{\"t_s\":";
      append_value(out, s.t_s);
      out += ",\"value\":";
      append_value(out, s.value);
      if (hist) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, s.count);
        out += ",\"count\":";
        out += buf;
        out += ",\"p50\":";
        append_value(out, s.p50);
        out += ",\"p99\":";
        append_value(out, s.p99);
      }
      out += '}';
    }
    out += "]}";
  }
  out += "\n]}\n";
  os << out;
}

namespace {
template <class Writer, class Source>
bool write_file(const std::string& path, const Source& src, Writer writer) {
  std::ofstream os(path);
  if (!os) return false;
  writer(os, src);
  return os.good();
}
}  // namespace

bool write_chrome_trace_file(const std::string& path, const TraceRecorder& rec) {
  return write_file(path, rec, [](std::ostream& os, const TraceRecorder& r) {
    write_chrome_trace(os, r);
  });
}

bool write_metrics_csv_file(const std::string& path, const MetricRegistry& reg) {
  return write_file(path, reg, [](std::ostream& os, const MetricRegistry& r) {
    write_metrics_csv(os, r);
  });
}

bool write_metrics_json_file(const std::string& path, const MetricRegistry& reg) {
  return write_file(path, reg, [](std::ostream& os, const MetricRegistry& r) {
    write_metrics_json(os, r);
  });
}

}  // namespace df3::obs
