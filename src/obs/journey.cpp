#include "df3/obs/journey.hpp"

#include <algorithm>
#include <cstring>

namespace df3::obs {

bool JourneyLog::annotate(std::uint64_t id, Phase phase, int shard, Link& out) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  Ctx& c = it->second;

  // Causal parent: the shard's own chain when one exists (a shard's run
  // segment follows its queue-wait, a requeued victim's queue-wait follows
  // its preempted run), otherwise the journey-level cursor.
  std::uint32_t parent = c.cursor;
  if (shard >= 0) {
    const auto s = static_cast<std::size_t>(shard);
    if (s < c.shard_cursor.size() && c.shard_cursor[s] != kNoParent) {
      parent = c.shard_cursor[s];
    }
  }

  const std::uint32_t seq = c.next_seq++;
  switch (phase) {
    case Phase::kArrival:
    case Phase::kStaging:
      // A new location: shard chains restart behind the transfer.
      c.cursor = seq;
      c.shard_cursor.clear();
      break;
    case Phase::kQueueWait:
    case Phase::kRun:
      if (shard >= 0) {
        const auto s = static_cast<std::size_t>(shard);
        if (s >= c.shard_cursor.size()) c.shard_cursor.resize(s + 1, kNoParent);
        c.shard_cursor[s] = seq;
      }
      // Also advance the journey cursor: the completion hop parents at the
      // last-finishing shard's run segment, which makes the terminal's
      // ancestor chain the critical path.
      c.cursor = seq;
      break;
    case Phase::kOffloadHorizontal:
    case Phase::kOffloadVertical:
    case Phase::kNetHop:
    case Phase::kTransport:
      c.cursor = seq;
      break;
    default:
      // kPreempt / kDelay are side markers; terminals are closed right
      // after annotation.
      break;
  }
  out.seq = seq;
  out.parent = parent;
  return true;
}

std::vector<JourneySpan> collect_journey_spans(const TraceRecorder& rec, std::uint64_t* orphans) {
  std::vector<JourneySpan> out;
  std::uint64_t orphan = 0;
  bool have_prev = false;
  TraceEvent prev{};
  rec.for_each([&](const TraceEvent& e) {
    if (e.is_link()) {
      if (have_prev && !prev.is_link() && prev.clock == Clock::kSim && prev.id == e.id) {
        JourneySpan s;
        s.t0 = prev.t_s;
        s.t1 = prev.is_span() ? prev.t_s + prev.dur_s : prev.t_s;
        s.journey = e.id;
        s.seq = e.link_seq();
        s.parent = e.link_parent();
        s.attr = e.link_attr();
        s.track = prev.track;
        s.phase = prev.phase;
        s.instant = !prev.is_span();
        out.push_back(s);
      } else {
        // The annotated record fell off the front of the ring window.
        ++orphan;
      }
    }
    prev = e;
    have_prev = true;
  });
  if (orphans != nullptr) *orphans = orphan;
  return out;
}

namespace {

void finalize_tree(JourneyTree& t, double tolerance) {
  std::sort(t.spans.begin(), t.spans.end(),
            [](const JourneySpan& a, const JourneySpan& b) { return a.seq < b.seq; });

  const std::size_t n = t.spans.size();
  t.complete = n > 0;
  for (std::size_t i = 0; i < n; ++i) {
    const JourneySpan& s = t.spans[i];
    if (s.seq != i) t.complete = false;
    if (i == 0) {
      if (s.parent != kNoParent) t.complete = false;
    } else if (s.parent == kNoParent || s.parent >= s.seq) {
      t.complete = false;
    }
  }
  if (n == 0) return;

  t.t_begin = t.spans.front().t0;
  std::uint32_t terminal_seq = kNoParent;
  for (const JourneySpan& s : t.spans) {
    if (is_terminal_phase(s.phase)) {
      t.terminated = true;
      t.terminal = s.phase;
      t.t_end = s.t0;
      terminal_seq = s.seq;
    }
    if (is_rung_phase(s.phase)) t.rungs_fired.push_back(s.phase);
    if (s.phase == Phase::kArrival) t.visit_tracks.push_back(s.track);
    if (t.flow_attr == 0 && s.attr != 0 &&
        (s.phase == Phase::kArrival || is_terminal_phase(s.phase))) {
      t.flow_attr = s.attr;
    }
  }

  if (!t.complete || !t.terminated) return;

  // Critical path: the terminal record's ancestor chain, root first.
  for (std::uint32_t seq = terminal_seq; seq != kNoParent; seq = t.spans[seq].parent) {
    t.critical.push_back(seq);
  }
  std::reverse(t.critical.begin(), t.critical.end());

  // Gap-free tiling of [t_begin, t_end] plus the category split. Chain
  // segments may overlap (parallel shard queue-waits start together and the
  // chain threads through each of them); each contributes only the part past
  // the walk cursor, so the clipped durations telescope to exactly
  // t_end - t_begin. Only a forward gap breaks contiguity.
  t.contiguous = true;
  double pos = t.t_begin;
  std::size_t arrivals_seen = 0;
  for (const std::uint32_t seq : t.critical) {
    const JourneySpan& s = t.spans[seq];
    if (s.t0 > pos + tolerance) t.contiguous = false;
    if (s.phase == Phase::kArrival) ++arrivals_seen;
    const double d = s.t1 > pos ? s.t1 - std::max(s.t0, pos) : 0.0;
    if (s.t1 > pos) pos = s.t1;
    switch (s.phase) {
      case Phase::kQueueWait: t.breakdown.queue_s += d; break;
      case Phase::kRun: t.breakdown.run_s += d; break;
      case Phase::kStaging:
        // Staging past the first cluster only exists because of a hand-off.
        (arrivals_seen >= 2 ? t.breakdown.offload_s : t.breakdown.net_s) += d;
        break;
      case Phase::kNetHop:
      case Phase::kTransport: {
        const auto kind = static_cast<HopKind>(s.attr);
        const bool detour = kind == HopKind::kHandoff || kind == HopKind::kDcUplink ||
                            kind == HopKind::kDcDownlink;
        (detour ? t.breakdown.offload_s : t.breakdown.net_s) += d;
        break;
      }
      case Phase::kPreempt:
      case Phase::kOffloadHorizontal:
      case Phase::kOffloadVertical:
      case Phase::kDelay: t.breakdown.offload_s += d; break;
      case Phase::kArrival:
      case Phase::kCompleted:
      case Phase::kDeadlineMissed:
      case Phase::kRejected:
      case Phase::kDropped: break;  // instants, no extent
      default: t.breakdown.other_s += d; break;
    }
  }
  if (pos < t.t_end - tolerance || pos > t.t_end + tolerance) t.contiguous = false;
}

}  // namespace

JourneyForest build_journey_forest(std::vector<JourneySpan> spans,
                                   std::vector<std::string> tracks,
                                   std::uint64_t orphan_links,
                                   std::uint64_t dropped_records, double tolerance) {
  JourneyForest f;
  f.tracks = std::move(tracks);
  f.orphan_links = orphan_links;
  f.dropped_records = dropped_records;
  f.span_count = spans.size();
  std::unordered_map<std::uint64_t, std::size_t> index;
  for (JourneySpan& s : spans) {
    const auto [it, fresh] = index.try_emplace(s.journey, f.trees.size());
    if (fresh) {
      f.trees.emplace_back();
      f.trees.back().id = s.journey;
    }
    f.trees[it->second].spans.push_back(s);
  }
  for (JourneyTree& t : f.trees) finalize_tree(t, tolerance);
  return f;
}

JourneyForest build_journey_forest(const TraceRecorder& rec) {
  std::uint64_t orphans = 0;
  std::vector<JourneySpan> spans = collect_journey_spans(rec, &orphans);
  return build_journey_forest(std::move(spans), rec.track_names(), orphans, rec.dropped());
}

namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void u32(std::uint32_t v) { bytes(&v, sizeof v); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) { bytes(s.data(), s.size()); }
};

}  // namespace

std::uint64_t forest_digest(const JourneyForest& f) {
  // Trees sorted by journey id: first-appearance order is already
  // deterministic, but id order makes the digest robust to ring-window
  // differences at the margins.
  std::vector<const JourneyTree*> order;
  order.reserve(f.trees.size());
  for (const JourneyTree& t : f.trees) order.push_back(&t);
  std::sort(order.begin(), order.end(),
            [](const JourneyTree* a, const JourneyTree* b) { return a->id < b->id; });

  static const std::string kUnknown = "?";
  Fnv fnv;
  fnv.u64(order.size());
  for (const JourneyTree* t : order) {
    fnv.u64(t->id);
    fnv.u64(t->spans.size());
    for (const JourneySpan& s : t->spans) {
      fnv.u32(s.seq);
      fnv.u32(s.parent);
      fnv.u32(s.attr);
      fnv.u32(static_cast<std::uint32_t>(s.phase));
      fnv.u32(s.instant ? 1u : 0u);
      fnv.f64(s.t0);
      fnv.f64(s.t1);
      fnv.str(s.track < f.tracks.size() ? f.tracks[s.track] : kUnknown);
    }
  }
  return fnv.h;
}

}  // namespace df3::obs
