#include "df3/obs/trace.hpp"

#include <chrono>

namespace df3::obs {

namespace {
std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), host_epoch_ns_(steady_now_ns()) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

std::uint32_t TraceRecorder::track(const void* key, std::string_view name) {
  const auto it = track_by_key_.find(key);
  if (it != track_by_key_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(track_names_.size());
  track_names_.emplace_back(name);
  track_by_key_.emplace(key, id);
  return id;
}

void TraceRecorder::span(std::uint32_t track_id, Phase phase, double t0_s, double t1_s,
                         std::uint64_t id) {
  TraceEvent e;
  e.t_s = t0_s;
  e.dur_s = (t1_s > t0_s) ? (t1_s - t0_s) : 0.0;
  e.id = id;
  e.track = track_id;
  e.phase = phase;
  e.clock = Clock::kSim;
  push(e);
}

void TraceRecorder::instant(std::uint32_t track_id, Phase phase, double t_s, std::uint64_t id) {
  TraceEvent e;
  e.t_s = t_s;
  e.dur_s = -1.0;
  e.id = id;
  e.track = track_id;
  e.phase = phase;
  e.clock = Clock::kSim;
  push(e);
}

void TraceRecorder::host_span(std::uint32_t track_id, Phase phase, double t0_s, double t1_s) {
  TraceEvent e;
  e.t_s = t0_s;
  e.dur_s = (t1_s > t0_s) ? (t1_s - t0_s) : 0.0;
  e.id = 0;
  e.track = track_id;
  e.phase = phase;
  e.clock = Clock::kHost;
  push(e);
}

void TraceRecorder::link(std::uint64_t journey, std::uint32_t seq, std::uint32_t parent,
                         std::uint32_t attr) {
  TraceEvent e;
  e.t_s = static_cast<double>(seq);
  e.dur_s = (parent == kNoParent) ? -1.0 : static_cast<double>(parent);
  e.id = journey;
  e.track = attr;
  e.phase = Phase::kSpanLink;
  e.clock = Clock::kSim;
  push(e);
}

double TraceRecorder::host_now_s() const {
  return static_cast<double>(steady_now_ns() - host_epoch_ns_) * 1e-9;
}

void TraceRecorder::push(const TraceEvent& e) {
  ++recorded_;
  if (count_ < capacity_) {
    ring_.push_back(e);
    ++count_;
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1 == capacity_) ? 0 : head_ + 1;
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  count_ = 0;
  recorded_ = 0;
}

}  // namespace df3::obs
