#include "df3/obs/obs.hpp"

namespace df3::obs {

#ifndef DF3_OBS_DISABLED
namespace detail {
Observability* g_current = nullptr;
}  // namespace detail
#endif

}  // namespace df3::obs
