#include "df3/obs/obs.hpp"

#include <cstdlib>

namespace df3::obs {

std::size_t resolved_trace_capacity(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DF3_TRACE_CAPACITY"); env != nullptr) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  return TraceRecorder::kDefaultCapacity;
}

#ifndef DF3_OBS_DISABLED
namespace detail {
Observability* g_current = nullptr;
}  // namespace detail
#endif

}  // namespace df3::obs
