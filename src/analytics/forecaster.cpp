#include "df3/analytics/forecaster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "df3/thermal/calendar.hpp"

namespace df3::analytics {

ThermosensitivityAnalyzer::ThermosensitivityAnalyzer(double heating_reference_c)
    : reference_c_(heating_reference_c) {}

void ThermosensitivityAnalyzer::observe(double t, util::Celsius outdoor,
                                        util::Watts heat_power) {
  const auto day = static_cast<long long>(std::floor(t / thermal::kSecondsPerDay));
  if (first_day_ < 0) first_day_ = day;
  if (day < first_day_) throw std::invalid_argument("observe: time went backwards");
  const auto idx = static_cast<std::size_t>(day - first_day_);
  if (idx >= days_.size()) days_.resize(idx + 1);
  days_[idx].outdoor.add(outdoor.value());
  days_[idx].power.add(heat_power.value());
}

std::size_t ThermosensitivityAnalyzer::days() const {
  std::size_t n = 0;
  for (const auto& d : days_) {
    if (d.power.count() > 0) ++n;
  }
  return n;
}

util::LinearFit ThermosensitivityAnalyzer::fit() const {
  std::vector<double> hdd, power;
  for (const auto& d : days_) {
    if (d.power.count() == 0) continue;
    hdd.push_back(std::max(0.0, reference_c_ - d.outdoor.mean()));
    power.push_back(d.power.mean());
  }
  if (hdd.size() < 2) throw std::logic_error("ThermosensitivityAnalyzer: need >= 2 days");
  return util::fit_linear(hdd, power);
}

double ThermosensitivityAnalyzer::correlation() const {
  std::vector<double> hdd, power;
  for (const auto& d : days_) {
    if (d.power.count() == 0) continue;
    hdd.push_back(std::max(0.0, reference_c_ - d.outdoor.mean()));
    power.push_back(d.power.mean());
  }
  return util::pearson(hdd, power);
}

util::Watts ThermosensitivityAnalyzer::predict(util::Celsius outdoor) const {
  const auto model = fit();
  const double hdd = std::max(0.0, reference_c_ - outdoor.value());
  return util::Watts{std::max(0.0, model.predict(hdd))};
}

std::vector<util::Watts> HeatDemandForecaster::forecast(
    const std::vector<util::Celsius>& outdoor_forecast) const {
  std::vector<util::Watts> out;
  out.reserve(outdoor_forecast.size());
  for (const auto c : outdoor_forecast) out.push_back(analyzer_->predict(c));
  return out;
}

util::Watts HeatDemandForecaster::mean_forecast(
    const std::vector<util::Celsius>& outdoor_forecast) const {
  if (outdoor_forecast.empty()) return util::Watts{0.0};
  util::Watts total{0.0};
  for (const auto c : outdoor_forecast) total += analyzer_->predict(c);
  return total / static_cast<double>(outdoor_forecast.size());
}

CapacityPlanner::CapacityPlanner(double idle_power_w, double max_power_w, int total_cores)
    : idle_w_(idle_power_w), max_w_(max_power_w), total_cores_(total_cores) {
  if (total_cores_ <= 0) throw std::invalid_argument("CapacityPlanner: cores must be positive");
  if (max_w_ <= idle_w_ || idle_w_ < 0.0) {
    throw std::invalid_argument("CapacityPlanner: need 0 <= idle < max power");
  }
}

int CapacityPlanner::cores_for_demand(util::Watts demand) const {
  const double frac = (demand.value() - idle_w_) / (max_w_ - idle_w_);
  const double cores = std::clamp(frac, 0.0, 1.0) * total_cores_;
  return static_cast<int>(std::floor(cores));
}

double CapacityPlanner::core_hours(const std::vector<util::Watts>& demand_forecast,
                                   double interval_s) const {
  if (interval_s <= 0.0) throw std::invalid_argument("core_hours: interval must be positive");
  double total = 0.0;
  for (const auto d : demand_forecast) total += cores_for_demand(d) * interval_s / 3600.0;
  return total;
}

}  // namespace df3::analytics
