#include "df3/analytics/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::analytics {

SpotPriceModel::SpotPriceModel(SpotPriceConfig config) : config_(config) {
  if (config_.dc_price <= 0.0 || config_.floor_price < 0.0 ||
      config_.floor_price > config_.dc_price) {
    throw std::invalid_argument("SpotPriceModel: need 0 <= floor <= dc_price, dc_price > 0");
  }
  if (config_.elasticity <= 0.0) {
    throw std::invalid_argument("SpotPriceModel: elasticity must be positive");
  }
}

double SpotPriceModel::price(double supply_cores, double demand_cores) const {
  if (supply_cores < 0.0 || demand_cores < 0.0) {
    throw std::invalid_argument("SpotPriceModel::price: negative inputs");
  }
  if (supply_cores <= 0.0) return config_.dc_price;  // nothing to sell: DC price rules
  const double ratio = demand_cores / supply_cores;
  const double raw = config_.floor_price +
                     (config_.dc_price - config_.floor_price) * std::pow(ratio, config_.elasticity);
  return std::clamp(raw, config_.floor_price, config_.dc_price);
}

SpotMarketResult run_spot_market(const SpotPriceModel& model,
                                 const util::TimeSeries& supply_cores,
                                 const util::TimeSeries& demand_cores, double interval_s) {
  if (supply_cores.size() != demand_cores.size()) {
    throw std::invalid_argument("run_spot_market: series size mismatch");
  }
  if (interval_s <= 0.0) throw std::invalid_argument("run_spot_market: bad interval");
  SpotMarketResult out;
  const double hours = interval_s / 3600.0;
  for (std::size_t i = 0; i < supply_cores.size(); ++i) {
    const double supply = supply_cores.values[i];
    const double demand = demand_cores.values[i];
    const double p = model.price(supply, demand);
    out.price.add(supply_cores.times[i], p);
    const double served = std::min(supply, demand);
    out.revenue += served * hours * p;
    out.served_core_hours += served * hours;
    out.unserved_core_hours += std::max(0.0, demand - supply) * hours;
  }
  return out;
}

SlaResult run_sla_portfolio(const SlaConfig& config, const util::TimeSeries& supply_cores,
                            const util::TimeSeries& guaranteed_demand,
                            const util::TimeSeries& seasonal_demand, double interval_s) {
  if (supply_cores.size() != guaranteed_demand.size() ||
      supply_cores.size() != seasonal_demand.size()) {
    throw std::invalid_argument("run_sla_portfolio: series size mismatch");
  }
  if (interval_s <= 0.0) throw std::invalid_argument("run_sla_portfolio: bad interval");
  SlaResult out;
  const double hours = interval_s / 3600.0;
  double seasonal_asked = 0.0, seasonal_served = 0.0;
  for (std::size_t i = 0; i < supply_cores.size(); ++i) {
    const double supply = supply_cores.values[i];
    const double guaranteed = guaranteed_demand.values[i];
    const double seasonal = seasonal_demand.values[i];
    // Guaranteed class is always billed; shortfall is bought from the DC.
    out.revenue += guaranteed * hours * config.guaranteed_price;
    const double df_for_guaranteed = std::min(supply, guaranteed);
    out.backstop_cost += (guaranteed - df_for_guaranteed) * hours * config.dc_backstop_cost;
    // Seasonal class gets the leftovers, or is shed.
    const double leftover = supply - df_for_guaranteed;
    const double served = std::min(leftover, seasonal);
    out.revenue += served * hours * config.seasonal_price;
    seasonal_asked += seasonal * hours;
    seasonal_served += served * hours;
  }
  out.seasonal_availability = seasonal_asked > 0.0 ? seasonal_served / seasonal_asked : 1.0;
  return out;
}

}  // namespace df3::analytics
