#include "df3/thermal/pv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "df3/thermal/calendar.hpp"
#include "df3/util/rng.hpp"

namespace df3::thermal {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kDegToRad = kPi / 180.0;
}  // namespace

PvArray::PvArray(PvParams params, std::uint64_t seed) : params_(params), seed_(seed) {
  if (params_.peak.value() <= 0.0) throw std::invalid_argument("PvArray: peak must be positive");
  if (params_.mean_cloud_loss < 0.0 || params_.mean_cloud_loss >= 1.0) {
    throw std::invalid_argument("PvArray: mean_cloud_loss outside [0,1)");
  }
  if (params_.cloud_phi < 0.0 || params_.cloud_phi >= 1.0) {
    throw std::invalid_argument("PvArray: cloud_phi outside [0,1)");
  }
}

util::Watts PvArray::clear_sky(sim::Time t) const {
  // Solar declination (Cooper's formula) and the hour angle give the sine
  // of the solar elevation; production follows it when positive.
  const double doy = day_of_year(t);
  const double declination =
      23.45 * kDegToRad * std::sin(2.0 * kPi * (284.0 + doy) / 365.0);
  const double hour_angle = (hour_of_day(t) - 12.0) * 15.0 * kDegToRad;
  const double lat = params_.latitude_deg * kDegToRad;
  const double sin_elev = std::sin(lat) * std::sin(declination) +
                          std::cos(lat) * std::cos(declination) * std::cos(hour_angle);
  if (sin_elev <= 0.0) return util::Watts{0.0};
  return params_.peak * sin_elev;
}

double PvArray::cloudiness(sim::Time t) const {
  // AR(1) cloud process reconstructed from counter-hashed innovations
  // (same reproducible-in-any-order construction as the weather noise),
  // squashed to [0,1] around the configured mean loss.
  const auto hour = static_cast<std::int64_t>(std::floor(t / 3600.0));
  const double phi = params_.cloud_phi;
  constexpr int kWindow = 96;
  double x = 0.0;
  double weight = 1.0;
  for (int k = 0; k < kWindow; ++k) {
    std::uint64_t s = seed_ ^ (0xc1a0d5eedULL + 0x9e3779b97f4a7c15ULL *
                                                   static_cast<std::uint64_t>(hour - k + 1));
    const double u = static_cast<double>(util::splitmix64(s) >> 11) * 0x1.0p-53;
    x += weight * (u - 0.5);
    weight *= phi;
  }
  const double sigma = std::sqrt((1.0 - phi * phi));
  // Logistic squash centred on the mean loss.
  const double z = x * sigma * 6.0;
  const double base = params_.mean_cloud_loss;
  const double c = base + (1.0 - base) / (1.0 + std::exp(-z)) - (1.0 - base) * 0.5;
  return std::clamp(c, 0.0, 1.0);
}

util::Watts PvArray::production(sim::Time t) const {
  return clear_sky(t) * (1.0 - cloudiness(t));
}

util::Joules PvArray::energy(sim::Time t0, sim::Time t1, double step_s) const {
  if (t1 < t0 || step_s <= 0.0) throw std::invalid_argument("PvArray::energy: bad interval");
  util::Joules total{0.0};
  for (double t = t0; t < t1; t += step_s) {
    const double dt = std::min(step_s, t1 - t);
    total += production(t + dt / 2.0) * util::Seconds{dt};
  }
  return total;
}

}  // namespace df3::thermal
