#include "df3/thermal/calendar.hpp"

#include <cmath>
#include <stdexcept>

namespace df3::thermal {

double day_of_year(sim::Time t) {
  double d = std::fmod(t / kSecondsPerDay, 365.0);
  if (d < 0.0) d += 365.0;
  return d;
}

int month_of(sim::Time t) {
  const double d = day_of_year(t);
  constexpr auto starts = month_start_days();
  for (int m = 11; m >= 0; --m) {
    if (d >= starts[static_cast<std::size_t>(m)]) return m;
  }
  return 0;
}

double hour_of_day(sim::Time t) {
  double h = std::fmod(t / 3600.0, 24.0);
  if (h < 0.0) h += 24.0;
  return h;
}

int day_of_week(sim::Time t) {
  const auto day = static_cast<long long>(std::floor(t / kSecondsPerDay));
  const long long dow = ((day % 7) + 7) % 7;
  return static_cast<int>(dow);
}

bool is_business_hours(sim::Time t) {
  const int dow = day_of_week(t);
  if (dow >= 5) return false;  // Sat, Sun
  const double h = hour_of_day(t);
  return h >= 8.0 && h < 18.0;
}

std::string_view month_name(int month_index) {
  static constexpr std::array<std::string_view, 12> names = {
      "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
  if (month_index < 0 || month_index > 11) throw std::out_of_range("month_name: bad index");
  return names[static_cast<std::size_t>(month_index)];
}

sim::Time start_of_month(int month_index, int year) {
  if (month_index < 0 || month_index > 11) throw std::out_of_range("start_of_month: bad index");
  constexpr auto starts = month_start_days();
  return (static_cast<double>(year) * 365.0 + starts[static_cast<std::size_t>(month_index)]) *
         kSecondsPerDay;
}

}  // namespace df3::thermal
