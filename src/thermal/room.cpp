#include "df3/thermal/room.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::thermal {

Room::Room(RoomParams params, util::Celsius initial_temperature)
    : params_(params), temp_(initial_temperature) {
  if (params_.resistance_k_per_w <= 0.0 || params_.capacitance_j_per_k <= 0.0) {
    throw std::invalid_argument("Room: R and C must be positive");
  }
}

util::Celsius Room::equilibrium(util::Watts q_heat, util::Celsius t_out) const {
  const double q_total = q_heat.value() + params_.internal_gains.value();
  return util::Celsius{t_out.value() + q_total * params_.resistance_k_per_w};
}

void Room::advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out) {
  if (dt.value() < 0.0) throw std::invalid_argument("Room::advance: negative dt");
  if (dt.value() == 0.0) return;
  // Exact solution of C dT/dt = (T_out - T)/R + Q for constant inputs:
  // exponential relaxation toward the equilibrium temperature.
  const util::Celsius eq = equilibrium(q_heat, t_out);
  if (dt.value() != decay_dt_) {
    decay_ = std::exp(-dt.value() / params_.tau_s());
    decay_dt_ = dt.value();
  }
  temp_ = util::Celsius{eq.value() + (temp_.value() - eq.value()) * decay_};
}

util::Watts Room::holding_power(util::Celsius target, util::Celsius t_out) const {
  const double needed =
      (target.value() - t_out.value()) / params_.resistance_k_per_w - params_.internal_gains.value();
  return util::Watts{std::max(0.0, needed)};
}

Room2R2C::Room2R2C(Room2R2CParams params, util::Celsius initial_temperature)
    : params_(params), t_air_(initial_temperature), t_env_(initial_temperature) {
  if (params_.r_air_env_k_per_w <= 0.0 || params_.r_env_out_k_per_w <= 0.0 ||
      params_.c_air_j_per_k <= 0.0 || params_.c_env_j_per_k <= 0.0) {
    throw std::invalid_argument("Room2R2C: all R and C must be positive");
  }
  // Stability bound for explicit stepping: well below the fast (air) time
  // constant tau_air = R_ae * C_air. Depends only on the parameters, so it
  // is hoisted out of advance() entirely.
  const double tau_fast = params_.r_air_env_k_per_w * params_.c_air_j_per_k;
  max_step_ = std::max(1.0, tau_fast / 10.0);
}

util::Celsius Room2R2C::equilibrium(util::Watts q_heat, util::Celsius t_out) const {
  // In steady state the full heat flow crosses both resistances in series.
  const double q_total = q_heat.value() + params_.internal_gains.value();
  return util::Celsius{t_out.value() +
                       q_total * (params_.r_air_env_k_per_w + params_.r_env_out_k_per_w)};
}

util::Watts Room2R2C::holding_power(util::Celsius target, util::Celsius t_out) const {
  const double series_r = params_.r_air_env_k_per_w + params_.r_env_out_k_per_w;
  const double needed =
      (target.value() - t_out.value()) / series_r - params_.internal_gains.value();
  return util::Watts{std::max(0.0, needed)};
}

void Room2R2C::advance(util::Seconds dt, util::Watts q_heat, util::Celsius t_out) {
  if (dt.value() < 0.0) throw std::invalid_argument("Room2R2C::advance: negative dt");
  if (dt.value() != sched_dt_) {
    // Memoize the substep schedule by replaying the subtractive chain the
    // stepping loop used to run, so the float step sequence — and thus the
    // integrated trajectory — is reproduced bit-for-bit.
    double rem = dt.value();
    n_full_ = 0;
    while (rem > max_step_) {
      ++n_full_;
      rem -= max_step_;
    }
    h_last_ = rem;
    sched_dt_ = dt.value();
  }
  const double q_total = q_heat.value() + params_.internal_gains.value();
  const auto step = [&](double h) {
    const double flow_ae = (t_air_.value() - t_env_.value()) / params_.r_air_env_k_per_w;
    const double flow_eo = (t_env_.value() - t_out.value()) / params_.r_env_out_k_per_w;
    const double d_air = (q_total - flow_ae) / params_.c_air_j_per_k;
    const double d_env = (flow_ae - flow_eo) / params_.c_env_j_per_k;
    t_air_ = util::Celsius{t_air_.value() + h * d_air};
    t_env_ = util::Celsius{t_env_.value() + h * d_env};
  };
  for (std::size_t i = 0; i < n_full_; ++i) step(max_step_);
  if (h_last_ > 0.0) step(h_last_);
}

}  // namespace df3::thermal
