#include "df3/thermal/weather.hpp"

#include <cmath>

#include "df3/thermal/calendar.hpp"

namespace df3::thermal {

namespace {
constexpr double kPi = 3.14159265358979323846;

/// Mid-month anchor day for each month (day-of-year of the month's center).
std::array<double, 12> anchor_days() {
  std::array<double, 12> out{};
  constexpr auto starts = month_start_days();
  for (int m = 0; m < 12; ++m) {
    out[static_cast<std::size_t>(m)] =
        starts[static_cast<std::size_t>(m)] + kDaysInMonth[static_cast<std::size_t>(m)] / 2.0;
  }
  return out;
}
}  // namespace

ClimateNormals paris_climate() { return ClimateNormals{}; }

ClimateNormals amsterdam_climate() {
  ClimateNormals c;
  c.monthly_mean_c = {3.6, 3.9, 6.5, 9.5, 13.2, 15.9, 18.0, 17.9, 15.0, 11.2, 7.3, 4.4};
  c.diurnal_amplitude_k = 3.0;  // maritime: flatter days
  return c;
}

ClimateNormals dresden_climate() {
  ClimateNormals c;
  c.monthly_mean_c = {0.2, 1.3, 4.9, 9.4, 14.0, 17.1, 19.0, 18.8, 14.6, 9.7, 4.6, 1.3};
  c.diurnal_amplitude_k = 4.5;  // continental: wider swing
  return c;
}

ClimateNormals stockholm_climate() {
  ClimateNormals c;
  c.monthly_mean_c = {-1.6, -1.7, 1.2, 5.9, 11.3, 15.7, 18.0, 16.9, 12.3, 7.5, 3.0, 0.0};
  c.diurnal_amplitude_k = 3.5;
  return c;
}

ClimateNormals seville_climate() {
  ClimateNormals c;
  c.monthly_mean_c = {11.0, 12.5, 15.6, 17.3, 21.0, 25.2, 28.2, 28.0, 25.0, 20.2, 15.1, 12.1};
  c.diurnal_amplitude_k = 6.0;
  return c;
}

WeatherModel::WeatherModel(ClimateNormals normals, std::uint64_t seed)
    : normals_(normals), seed_(seed) {}

util::Celsius WeatherModel::seasonal_component(sim::Time t) const {
  const double d = day_of_year(t);
  static const std::array<double, 12> anchors = anchor_days();
  // Find the bracketing mid-month anchors (wrapping across the year end).
  int lo = 11;
  for (int m = 0; m < 12; ++m) {
    if (anchors[static_cast<std::size_t>(m)] <= d) lo = m;
  }
  if (d < anchors[0]) lo = 11;
  const int hi = (lo + 1) % 12;
  double d_lo = anchors[static_cast<std::size_t>(lo)];
  double d_hi = anchors[static_cast<std::size_t>(hi)];
  double dd = d;
  if (hi == 0) d_hi += 365.0;      // wrapped forward
  if (d < d_lo) dd += 365.0;       // query before January anchor
  const double frac = (dd - d_lo) / (d_hi - d_lo);
  // Cosine smoother avoids the derivative kinks of linear interpolation.
  const double w = (1.0 - std::cos(kPi * frac)) / 2.0;
  const double v = normals_.monthly_mean_c[static_cast<std::size_t>(lo)] * (1.0 - w) +
                   normals_.monthly_mean_c[static_cast<std::size_t>(hi)] * w;
  return util::Celsius{v};
}

util::KelvinDelta WeatherModel::diurnal_component(sim::Time t) const {
  const double h = hour_of_day(t);
  // Minimum at 05:00, maximum at 17:00.
  return util::KelvinDelta{normals_.diurnal_amplitude_k *
                           std::sin(2.0 * kPi * (h - 11.0) / 24.0)};
}

double WeatherModel::innovation(std::int64_t h) const {
  // Two counter-hashed uniforms -> one Box-Muller normal. Reproducible for
  // any query order because state is derived from the hour index alone.
  std::uint64_t s1 = seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(h + 1));
  std::uint64_t s2 = s1 ^ 0xdeadbeefcafef00dULL;
  const double u1 =
      (static_cast<double>(util::splitmix64(s1) >> 11) + 0.5) * 0x1.0p-53;  // in (0,1)
  const double u2 = static_cast<double>(util::splitmix64(s2) >> 11) * 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

util::KelvinDelta WeatherModel::noise_component(sim::Time t) const {
  if (normals_.noise_stddev_k <= 0.0) return util::KelvinDelta{0.0};
  const auto hour = static_cast<std::int64_t>(std::floor(t / 3600.0));
  if (noise_valid_ && hour == noise_hour_) return util::KelvinDelta{noise_k_};
  const double phi = normals_.noise_phi;
  const double sigma_innov = normals_.noise_stddev_k * std::sqrt(1.0 - phi * phi);
  // AR(1) reconstructed from a truncated moving-average window. phi^240 at
  // phi=0.97 is ~7e-4: the truncation error is far below the noise floor.
  constexpr int kWindow = 240;
  double x = 0.0;
  double weight = 1.0;
  for (int k = 0; k < kWindow; ++k) {
    x += weight * innovation(hour - k);
    weight *= phi;
  }
  noise_hour_ = hour;
  noise_k_ = sigma_innov * x;
  noise_valid_ = true;
  return util::KelvinDelta{noise_k_};
}

util::Celsius WeatherModel::outdoor_temperature(sim::Time t) const {
  return seasonal_component(t) + diurnal_component(t) + noise_component(t);
}

}  // namespace df3::thermal
