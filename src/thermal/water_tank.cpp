#include "df3/thermal/water_tank.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "df3/thermal/calendar.hpp"

namespace df3::thermal {

namespace {
constexpr double kWaterHeatCapacity = 4186.0;  // J/(kg K), 1 l ~ 1 kg
}

WaterTank::WaterTank(WaterTankParams params, util::Celsius initial)
    : params_(params), temp_(initial) {
  if (params_.volume_l <= 0.0 || params_.ua_w_per_k < 0.0 || params_.charge_gain_w_per_k < 0.0) {
    throw std::invalid_argument("WaterTank: invalid parameters");
  }
  if (params_.setpoint <= params_.mains) {
    throw std::invalid_argument("WaterTank: setpoint must exceed mains temperature");
  }
}

util::Celsius WaterTank::equilibrium(util::Watts q, double draw_lps) const {
  // Balance: Q = UA (T - T_amb) + draw c (T - T_mains)
  const double ua = params_.ua_w_per_k;
  const double dc = draw_lps * kWaterHeatCapacity;
  const double denom = ua + dc;
  if (denom <= 0.0) return temp_;  // perfectly insulated, no draw: any T holds
  return util::Celsius{(q.value() + ua * params_.ambient.value() + dc * params_.mains.value()) /
                       denom};
}

void WaterTank::advance(util::Seconds dt, util::Watts q, double draw_lps) {
  if (dt.value() < 0.0) throw std::invalid_argument("WaterTank::advance: negative dt");
  if (draw_lps < 0.0) throw std::invalid_argument("WaterTank::advance: negative draw");
  if (dt.value() == 0.0) return;
  const double capacity = params_.capacity_j_per_k();
  const double ua = params_.ua_w_per_k;
  const double dc = draw_lps * kWaterHeatCapacity;
  const double loss_coeff = ua + dc;
  if (loss_coeff <= 0.0) {
    // Adiabatic, no draw: pure integration of the heat input.
    temp_ = util::Celsius{temp_.value() + q.value() * dt.value() / capacity};
  } else {
    const util::Celsius eq = equilibrium(q, draw_lps);
    if (dt.value() != decay_dt_ || loss_coeff != decay_loss_) {
      const double tau = capacity / loss_coeff;
      decay_ = std::exp(-dt.value() / tau);
      decay_dt_ = dt.value();
      decay_loss_ = loss_coeff;
    }
    temp_ = util::Celsius{eq.value() + (temp_.value() - eq.value()) * decay_};
  }
  litres_served_ += draw_lps * dt.value();
  if (temp_ < params_.legionella_min) below_sanitary_s_ += dt.value();
}

HeatDemand WaterTank::demand(double draw_lps, util::Watts rating) const {
  // Feed-forward: hold against standing losses and the current draw.
  const double hold = params_.ua_w_per_k * (params_.setpoint.value() - params_.ambient.value()) +
                      draw_lps * kWaterHeatCapacity *
                          (params_.setpoint.value() - params_.mains.value());
  const double error_k = params_.setpoint.value() - temp_.value();
  const double raw = hold + params_.charge_gain_w_per_k * error_k;
  return HeatDemand{util::Watts{std::clamp(raw, 0.0, rating.value())},
                    /*heating_season=*/true};
}

double hot_water_draw_lps(sim::Time t, double daily_litres) {
  if (daily_litres < 0.0) throw std::invalid_argument("hot_water_draw: negative volume");
  const double h = hour_of_day(t);
  // Piecewise daily shape (integrates to 1 over 24 h): strong morning and
  // evening peaks, light daytime use, near-zero at night.
  double weight;
  if (h >= 7.0 && h < 9.0) {
    weight = 0.175;  // morning: 35% over 2 h
  } else if (h >= 18.0 && h < 22.0) {
    weight = 0.1125;  // evening: 45% over 4 h
  } else if (h >= 9.0 && h < 18.0) {
    weight = 0.0167;  // daytime: 15% over 9 h
  } else {
    weight = 0.0056;  // night: 5% over 9 h
  }
  return daily_litres * weight / 3600.0;
}

}  // namespace df3::thermal
