#include "df3/thermal/urban.hpp"

#include <stdexcept>

namespace df3::thermal {

UrbanHeatLedger::UrbanHeatLedger(double district_area_m2, double uhi_sensitivity_k_per_w_m2)
    : area_m2_(district_area_m2), sensitivity_(uhi_sensitivity_k_per_w_m2) {
  if (area_m2_ <= 0.0) throw std::invalid_argument("UrbanHeatLedger: area must be positive");
  if (sensitivity_ < 0.0) throw std::invalid_argument("UrbanHeatLedger: negative sensitivity");
}

std::size_t UrbanHeatLedger::add_source(std::string name) {
  sources_.push_back(UrbanSource{std::move(name)});
  return sources_.size() - 1;
}

void UrbanHeatLedger::record_indoor(std::size_t source, util::Joules heat) {
  if (heat.value() < 0.0) throw std::invalid_argument("record_indoor: negative heat");
  sources_.at(source).indoor_heat += heat;
}

void UrbanHeatLedger::record_outdoor(std::size_t source, util::Joules heat) {
  if (heat.value() < 0.0) throw std::invalid_argument("record_outdoor: negative heat");
  sources_.at(source).outdoor_heat += heat;
}

util::Joules UrbanHeatLedger::total_outdoor() const {
  util::Joules total{0.0};
  for (const auto& s : sources_) total += s.outdoor_heat;
  return total;
}

util::Joules UrbanHeatLedger::total_indoor() const {
  util::Joules total{0.0};
  for (const auto& s : sources_) total += s.indoor_heat;
  return total;
}

double UrbanHeatLedger::outdoor_flux_w_per_m2(util::Seconds period) const {
  if (period.value() <= 0.0) throw std::invalid_argument("outdoor_flux: period must be positive");
  return total_outdoor().value() / period.value() / area_m2_;
}

util::KelvinDelta UrbanHeatLedger::uhi_intensity(util::Seconds period) const {
  return util::KelvinDelta{sensitivity_ * outdoor_flux_w_per_m2(period)};
}

double UrbanHeatLedger::useful_heat_fraction() const {
  const double indoor = total_indoor().value();
  const double outdoor = total_outdoor().value();
  const double total = indoor + outdoor;
  return total == 0.0 ? 1.0 : indoor / total;
}

}  // namespace df3::thermal
