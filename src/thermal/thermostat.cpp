#include "df3/thermal/thermostat.hpp"

#include <algorithm>
#include <stdexcept>

namespace df3::thermal {

HysteresisThermostat::HysteresisThermostat(util::Celsius target, util::KelvinDelta halfband,
                                           util::Watts rating)
    : target_(target), halfband_(halfband), rating_(rating) {
  if (halfband_.value() < 0.0) throw std::invalid_argument("HysteresisThermostat: negative band");
  if (rating_.value() <= 0.0) throw std::invalid_argument("HysteresisThermostat: rating <= 0");
}

HeatDemand HysteresisThermostat::demand(util::Celsius room_temperature) {
  if (room_temperature.value() < target_.value() - halfband_.value()) {
    on_ = true;
  } else if (room_temperature.value() > target_.value() + halfband_.value()) {
    on_ = false;
  }
  return HeatDemand{on_ ? rating_ : util::Watts{0.0}, true};
}

ModulatingThermostat::ModulatingThermostat(util::Celsius target, double kp_w_per_k,
                                           util::Watts rating)
    : target_(target), kp_(kp_w_per_k), rating_(rating) {
  if (kp_ < 0.0) throw std::invalid_argument("ModulatingThermostat: negative gain");
  if (rating_.value() <= 0.0) throw std::invalid_argument("ModulatingThermostat: rating <= 0");
}

HeatDemand ModulatingThermostat::demand(util::Celsius room_temperature,
                                        util::Watts holding_power) const {
  const double error_k = target_.value() - room_temperature.value();
  const double raw = holding_power.value() + kp_ * error_k;
  return HeatDemand{util::Watts{std::clamp(raw, 0.0, rating_.value())}, true};
}

util::Celsius ComfortProfile::target_at_hour(double hour) const {
  const bool night = (night_start_hour > night_end_hour)
                         ? (hour >= night_start_hour || hour < night_end_hour)
                         : (hour >= night_start_hour && hour < night_end_hour);
  return night ? night_target : day_target;
}

}  // namespace df3::thermal
