#include "df3/core/grid_event.hpp"

#include <cmath>
#include <stdexcept>

#include "df3/obs/obs.hpp"

namespace df3::core {

GridEventSource::GridEventSource(sim::Simulation& sim, std::string name, grid::GridPlane& plane,
                                 std::vector<Cluster*> clusters, GridEventConfig config,
                                 util::RngStream rng)
    : sim::Entity(sim, std::move(name)),
      plane_(plane),
      clusters_(std::move(clusters)),
      config_(config),
      rng_(rng) {
  if (config_.region >= plane_.region_count()) {
    throw std::out_of_range("GridEventSource: region index out of range");
  }
  if (config_.mean_up_s <= 0.0 || config_.mean_down_s <= 0.0) {
    throw std::invalid_argument("GridEventSource: dwell means must be positive");
  }
  if (config_.shed_fraction < 0.0 || config_.shed_fraction > 1.0) {
    throw std::invalid_argument("GridEventSource: shed_fraction must be in [0, 1]");
  }
  for (const Cluster* c : clusters_) {
    if (c == nullptr) throw std::invalid_argument("GridEventSource: null cluster");
  }
}

void GridEventSource::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void GridEventSource::stop() {
  if (!running_) return;
  running_ = false;
  next_.cancel();
  if (active_) {
    apply(/*curtail=*/false);
    active_ = false;
    DF3_OBS_TRACE_IF(o) {
      o->span(this, name(), obs::Phase::kGridCurtailment, active_since_, now(),
              static_cast<std::uint64_t>(config_.region));
    }
  }
}

void GridEventSource::arm() {
  const double mean = active_ ? config_.mean_down_s : config_.mean_up_s;
  const double dwell = rng_.exponential(1.0 / mean);
  const sim::Time at = std::max(now(), config_.start) + dwell;
  next_ = sim().schedule_at(at, [this] {
    force_toggle();
    arm();
  });
}

void GridEventSource::force_toggle() {
  active_ = !active_;
  if (active_) {
    ++windows_;
    active_since_ = now();
    DF3_OBS_TRACE_IF(o) {
      o->instant(this, name(), obs::Phase::kGridToggle, now(),
                 static_cast<std::uint64_t>(config_.region));
    }
  } else {
    DF3_OBS_TRACE_IF(o) {
      o->span(this, name(), obs::Phase::kGridCurtailment, active_since_, now(),
              static_cast<std::uint64_t>(config_.region));
    }
  }
  apply(active_);
}

std::size_t GridEventSource::shed_count(const Cluster& c) const {
  return static_cast<std::size_t>(
      std::ceil(config_.shed_fraction * static_cast<double>(c.worker_count())));
}

void GridEventSource::apply(bool curtail) {
  plane_.set_curtailed(config_.region, curtail);
  for (Cluster* const c : clusters_) {
    const std::size_t n = shed_count(*c);
    if (n == 0) continue;
    // The first n workers carry the shed — a fixed set, so entering and
    // leaving a window restores exactly the chassis it gated. Mutable
    // worker() bumps the cluster's control epoch, un-gating any quiet
    // district, just like the fault injectors.
    for (std::size_t w = 0; w < n; ++w) c->worker(w).server().set_powered(!curtail);
    // Same sequence as the physics tick after a hardware change: settle
    // shard progress at the new speed, then re-pump the queue.
    c->sync_workers();
  }
}

}  // namespace df3::core
