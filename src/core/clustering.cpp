#include "df3/core/clustering.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "df3/util/rng.hpp"

namespace df3::core {

namespace {

double dist(const ServerSite& a, const ServerSite& b) {
  const double dx = a.x_m - b.x_m;
  const double dy = a.y_m - b.y_m;
  return std::sqrt(dx * dx + dy * dy);
}

double dist_to(const ServerSite& a, double x, double y) {
  const double dx = a.x_m - x;
  const double dy = a.y_m - y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

ClusteringQuality evaluate(const std::vector<ServerSite>& sites,
                           const ClusterAssignment& assignment) {
  if (assignment.cluster_of.size() != sites.size()) {
    throw std::invalid_argument("evaluate: assignment size mismatch");
  }
  const std::size_t k = assignment.cluster_count();
  if (k == 0) throw std::invalid_argument("evaluate: no clusters");
  std::vector<double> cores(k, 0.0);
  double sum_d = 0.0, max_d = 0.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const std::size_t c = assignment.cluster_of[i];
    if (c >= k) throw std::invalid_argument("evaluate: cluster id out of range");
    const std::size_t head = assignment.head_site[c];
    if (head >= sites.size()) throw std::invalid_argument("evaluate: head out of range");
    if (assignment.cluster_of[head] != c) {
      throw std::invalid_argument("evaluate: head not a member of its cluster");
    }
    const double d = dist(sites[i], sites[head]);
    sum_d += d;
    max_d = std::max(max_d, d);
    cores[c] += sites[i].cores;
  }
  double total_cores = 0.0, max_cores = 0.0;
  for (double c : cores) {
    total_cores += c;
    max_cores = std::max(max_cores, c);
  }
  ClusteringQuality q;
  q.clusters = k;
  q.mean_head_distance_m = sum_d / static_cast<double>(sites.size());
  q.max_head_distance_m = max_d;
  const double mean_cores = total_cores / static_cast<double>(k);
  q.core_imbalance = mean_cores > 0.0 ? max_cores / mean_cores : 1.0;
  return q;
}

ClusterAssignment grid_clusters(const std::vector<ServerSite>& sites, double cell_m) {
  if (sites.empty()) throw std::invalid_argument("grid_clusters: no sites");
  if (cell_m <= 0.0) throw std::invalid_argument("grid_clusters: cell must be positive");
  std::unordered_map<std::uint64_t, std::size_t> cell_to_cluster;
  ClusterAssignment out;
  out.cluster_of.resize(sites.size());
  std::vector<std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto cx = static_cast<std::int64_t>(std::floor(sites[i].x_m / cell_m));
    const auto cy = static_cast<std::int64_t>(std::floor(sites[i].y_m / cell_m));
    const std::uint64_t key = (static_cast<std::uint64_t>(cx) << 32) ^
                              (static_cast<std::uint64_t>(cy) & 0xffffffffULL);
    auto [it, fresh] = cell_to_cluster.try_emplace(key, members.size());
    if (fresh) members.emplace_back();
    out.cluster_of[i] = it->second;
    members[it->second].push_back(i);
  }
  // Head: the member closest to its cell's member centroid.
  out.head_site.resize(members.size());
  for (std::size_t c = 0; c < members.size(); ++c) {
    double cx = 0.0, cy = 0.0;
    for (const auto i : members[c]) {
      cx += sites[i].x_m;
      cy += sites[i].y_m;
    }
    cx /= static_cast<double>(members[c].size());
    cy /= static_cast<double>(members[c].size());
    std::size_t best = members[c].front();
    for (const auto i : members[c]) {
      if (dist_to(sites[i], cx, cy) < dist_to(sites[best], cx, cy)) best = i;
    }
    out.head_site[c] = best;
  }
  return out;
}

namespace {
ClusterAssignment kmeans_once(const std::vector<ServerSite>& sites, std::size_t k,
                              std::uint64_t seed, int iterations);
}  // namespace

ClusterAssignment kmeans_clusters(const std::vector<ServerSite>& sites, std::size_t k,
                                  std::uint64_t seed, int iterations) {
  if (sites.empty()) throw std::invalid_argument("kmeans_clusters: no sites");
  if (k == 0 || k > sites.size()) throw std::invalid_argument("kmeans_clusters: bad k");
  // Lloyd's algorithm is sensitive to its random start: take the best of a
  // few restarts (standard practice) by mean member->head distance.
  constexpr int kRestarts = 5;
  ClusterAssignment best;
  double best_score = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRestarts; ++r) {
    auto candidate = kmeans_once(sites, k, seed + static_cast<std::uint64_t>(r) * std::uint64_t{0x9e37},
                                 iterations);
    const double score = evaluate(sites, candidate).mean_head_distance_m;
    if (score < best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  return best;
}

namespace {
ClusterAssignment kmeans_once(const std::vector<ServerSite>& sites, std::size_t k,
                              std::uint64_t seed, int iterations) {
  util::RngStream rng(seed, "kmeans");
  // Seed centroids on distinct random sites.
  std::vector<std::size_t> order(sites.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }
  std::vector<double> cx(k), cy(k);
  for (std::size_t c = 0; c < k; ++c) {
    cx[c] = sites[order[c]].x_m;
    cy[c] = sites[order[c]].y_m;
  }

  ClusterAssignment out;
  out.cluster_of.assign(sites.size(), 0);
  for (int iter = 0; iter < iterations; ++iter) {
    // Assign.
    for (std::size_t i = 0; i < sites.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = dist_to(sites[i], cx[c], cy[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      out.cluster_of[i] = best;
    }
    // Update (core-weighted); re-seed empty clusters on the worst outlier.
    std::vector<double> sx(k, 0.0), sy(k, 0.0), w(k, 0.0);
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const std::size_t c = out.cluster_of[i];
      const double weight = std::max(1, sites[i].cores);
      sx[c] += sites[i].x_m * weight;
      sy[c] += sites[i].y_m * weight;
      w[c] += weight;
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (w[c] > 0.0) {
        cx[c] = sx[c] / w[c];
        cy[c] = sy[c] / w[c];
      } else {
        std::size_t worst = 0;
        double worst_d = -1.0;
        for (std::size_t i = 0; i < sites.size(); ++i) {
          const double d = dist_to(sites[i], cx[out.cluster_of[i]], cy[out.cluster_of[i]]);
          if (d > worst_d) {
            worst_d = d;
            worst = i;
          }
        }
        cx[c] = sites[worst].x_m;
        cy[c] = sites[worst].y_m;
      }
    }
  }
  // Heads: member nearest the centroid. Guarantee non-empty clusters by
  // compacting empty ones away.
  std::vector<std::vector<std::size_t>> members(k);
  for (std::size_t i = 0; i < sites.size(); ++i) members[out.cluster_of[i]].push_back(i);
  ClusterAssignment compact;
  compact.cluster_of.assign(sites.size(), 0);
  for (std::size_t c = 0; c < k; ++c) {
    if (members[c].empty()) continue;
    const std::size_t id = compact.head_site.size();
    std::size_t best = members[c].front();
    for (const auto i : members[c]) {
      if (dist_to(sites[i], cx[c], cy[c]) < dist_to(sites[best], cx[c], cy[c])) best = i;
    }
    compact.head_site.push_back(best);
    for (const auto i : members[c]) compact.cluster_of[i] = id;
  }
  return compact;
}
}  // namespace

ClusterAssignment leach_clusters(const std::vector<ServerSite>& sites, double head_fraction,
                                 std::uint64_t round, std::uint64_t seed) {
  if (sites.empty()) throw std::invalid_argument("leach_clusters: no sites");
  if (head_fraction <= 0.0 || head_fraction > 1.0) {
    throw std::invalid_argument("leach_clusters: head_fraction outside (0,1]");
  }
  // LEACH's rotation guarantee, realized as a distributed schedule: every
  // site hashes itself to a phase in the 1/head_fraction-round epoch and
  // leads exactly when the round hits its phase — so each round elects
  // ~head_fraction of the fleet and every site leads once per epoch
  // (LEACH's "has not been head for the last 1/P rounds" rule).
  const auto period =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(1.0 / head_fraction)));
  std::vector<std::size_t> heads;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::uint64_t s = seed ^ (i * 0xbf58476d1ce4e5b9ULL);
    const std::uint64_t phase = util::splitmix64(s) % period;
    if (phase == round % period) heads.push_back(i);
  }
  if (heads.empty()) {
    // Deterministic fallback: the site hashed lowest this round leads.
    std::size_t best = 0;
    std::uint64_t best_h = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      std::uint64_t s = seed ^ (round * 0x2545f4914f6cdd1dULL) ^ i;
      const std::uint64_t h = util::splitmix64(s);
      if (h < best_h) {
        best_h = h;
        best = i;
      }
    }
    heads.push_back(best);
  }
  ClusterAssignment out;
  out.head_site = heads;
  out.cluster_of.resize(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < heads.size(); ++c) {
      const double d = dist(sites[i], sites[heads[c]]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    out.cluster_of[i] = best;
  }
  // Heads must belong to their own cluster (nearest head of a head is
  // itself at distance 0, so this already holds).
  return out;
}

std::vector<ServerSite> synthetic_city(std::size_t n, double side_m, int hotspots,
                                       std::uint64_t seed) {
  if (n == 0 || side_m <= 0.0) throw std::invalid_argument("synthetic_city: bad parameters");
  util::RngStream rng(seed, "city");
  std::vector<ServerSite> sites;
  sites.reserve(n);
  std::vector<std::pair<double, double>> centres;
  for (int h = 0; h < hotspots; ++h) {
    centres.emplace_back(rng.uniform(0.15 * side_m, 0.85 * side_m),
                         rng.uniform(0.15 * side_m, 0.85 * side_m));
  }
  for (std::size_t i = 0; i < n; ++i) {
    ServerSite s;
    if (centres.empty()) {
      s.x_m = rng.uniform(0.0, side_m);
      s.y_m = rng.uniform(0.0, side_m);
    } else {
      const auto& [cx, cy] =
          centres[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(centres.size()) - 1))];
      s.x_m = std::clamp(cx + rng.normal(0.0, side_m * 0.05), 0.0, side_m);
      s.y_m = std::clamp(cy + rng.normal(0.0, side_m * 0.05), 0.0, side_m);
    }
    s.cores = static_cast<int>(rng.uniform_int(8, 32));
    s.name = "site-" + std::to_string(i);
    sites.push_back(std::move(s));
  }
  return sites;
}

}  // namespace df3::core
