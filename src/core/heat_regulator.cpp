#include "df3/core/heat_regulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::core {

HeatRegulator::HeatRegulator(RegulatorConfig config) : config_(config) {
  if (config_.demand_epsilon_w < 0.0) {
    throw std::invalid_argument("HeatRegulator: negative demand epsilon");
  }
}

double HeatRegulator::mean_abs_error_w() const { return abs_error_w_.mean(); }

double HeatRegulator::relative_error() const {
  if (requested_.value() <= 0.0) return 0.0;
  return abs_error_.value() / requested_.value();
}

}  // namespace df3::core
