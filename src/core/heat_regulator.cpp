#include "df3/core/heat_regulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::core {

HeatRegulator::HeatRegulator(RegulatorConfig config) : config_(config) {
  if (config_.demand_epsilon_w < 0.0) {
    throw std::invalid_argument("HeatRegulator: negative demand epsilon");
  }
}

util::Watts HeatRegulator::regulate(hw::DfServer& server, const thermal::HeatDemand& demand) {
  const double want = demand.power.value();
  if (!demand.heating_season || want <= config_.demand_epsilon_w) {
    if (config_.gating == GatingPolicy::kAggressive) {
      server.set_powered(false);
      return server.spec().standby_power;
    }
    server.set_powered(true);
    server.set_pstate(0);
    server.set_filler_cores(0);
    return server.max_power_now();
  }
  // Coarse stage: the *lowest* P-state whose full-load power reaches the
  // demand, so utilization can modulate down onto the target exactly.
  // Low states also retire more cycles per joule (V^2 scaling), so this
  // maximizes compute sold per watt of heat. Demands above the chassis
  // rating saturate at the top state.
  server.set_powered(true);
  const auto& pstates = server.spec().cpu.pstates;
  std::size_t chosen = pstates.size() - 1;
  for (std::size_t ps = 0; ps < pstates.size(); ++ps) {
    server.set_pstate(ps);
    if (server.max_power_now() >= demand.power) {
      chosen = ps;
      break;
    }
  }
  server.set_pstate(chosen);
  const util::Watts ceiling = server.max_power_now();
  // Fine stage: when real work does not draw enough power, burn filler
  // cores (Liu et al.'s seasonal space-heating computations) so the chassis
  // emits the requested heat. Power is linear in loaded cores between idle
  // and the ceiling.
  const double idle = server.idle_power().value();
  const double maxp = server.max_power_now().value();
  int filler = 0;
  if (maxp > idle) {
    const double util_target = std::clamp((want - idle) / (maxp - idle), 0.0, 1.0);
    const int desired_loaded =
        static_cast<int>(std::lround(util_target * server.spec().total_cores()));
    filler = std::max(0, desired_loaded - server.busy_cores());
  }
  server.set_filler_cores(filler);
  return ceiling;
}

void HeatRegulator::record(util::Seconds dt, util::Watts delivered, util::Watts requested) {
  if (dt.value() < 0.0) throw std::invalid_argument("HeatRegulator::record: negative dt");
  abs_error_w_.add(std::abs(delivered.value() - requested.value()));
  delivered_ += delivered * dt;
  requested_ += requested * dt;
  abs_error_ += util::Watts{std::abs(delivered.value() - requested.value())} * dt;
}

double HeatRegulator::mean_abs_error_w() const { return abs_error_w_.mean(); }

double HeatRegulator::relative_error() const {
  if (requested_.value() <= 0.0) return 0.0;
  return abs_error_.value() / requested_.value();
}

}  // namespace df3::core
