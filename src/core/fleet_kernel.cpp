#include "df3/core/fleet_kernel.hpp"

#include <bit>

namespace df3::core::fleet {

void step_rooms_1r1c(std::size_t n, double t_out_c,
                     const double* __restrict q_total_w,
                     const double* __restrict resistance_k_per_w,
                     const double* __restrict decay,
                     double* __restrict temp_c) {
  // Blocked main loop: the fixed trip count lets the vectorizer emit full
  // vector iterations without a runtime prologue check per element.
  std::size_t i = 0;
  for (; i + kKernelStride <= n; i += kKernelStride) {
    for (std::size_t l = 0; l < kKernelStride; ++l) {
      const std::size_t j = i + l;
      const double eq = t_out_c + q_total_w[j] * resistance_k_per_w[j];
      temp_c[j] = eq + (temp_c[j] - eq) * decay[j];
    }
  }
  // Scalar tail: same expressions, element-wise, so the seam is bit-free.
  for (; i < n; ++i) {
    const double eq = t_out_c + q_total_w[i] * resistance_k_per_w[i];
    temp_c[i] = eq + (temp_c[i] - eq) * decay[i];
  }
}

namespace {

/// One explicit-Euler substep of length `h` over the whole slice. Mirrors
/// the step lambda of thermal::Room2R2C::advance term for term.
inline void substep_2r2c(std::size_t n, double t_out_c, double h,
                         const double* __restrict q_total_w,
                         const double* __restrict r_air_env,
                         const double* __restrict r_env_out,
                         const double* __restrict c_air,
                         const double* __restrict c_env,
                         double* __restrict t_air_c,
                         double* __restrict t_env_c) {
  for (std::size_t i = 0; i < n; ++i) {
    const double flow_ae = (t_air_c[i] - t_env_c[i]) / r_air_env[i];
    const double flow_eo = (t_env_c[i] - t_out_c) / r_env_out[i];
    t_air_c[i] += h * ((q_total_w[i] - flow_ae) / c_air[i]);
    t_env_c[i] += h * ((flow_ae - flow_eo) / c_env[i]);
  }
}

/// Same substep, additionally OR-ing the XOR of the pre/post state bits of
/// every lane into the return value: 0 means the step was a bitwise fixed
/// point for the whole slice. The compare rides the vector lanes; using
/// bit equality (not operator==) keeps -0.0 vs +0.0 distinct, which is
/// what "identical remaining substeps" requires.
inline std::uint64_t substep_2r2c_watched(std::size_t n, double t_out_c, double h,
                                          const double* __restrict q_total_w,
                                          const double* __restrict r_air_env,
                                          const double* __restrict r_env_out,
                                          const double* __restrict c_air,
                                          const double* __restrict c_env,
                                          double* __restrict t_air_c,
                                          double* __restrict t_env_c) {
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double air0 = t_air_c[i];
    const double env0 = t_env_c[i];
    const double flow_ae = (air0 - env0) / r_air_env[i];
    const double flow_eo = (env0 - t_out_c) / r_env_out[i];
    const double air1 = air0 + h * ((q_total_w[i] - flow_ae) / c_air[i]);
    const double env1 = env0 + h * ((flow_ae - flow_eo) / c_env[i]);
    t_air_c[i] = air1;
    t_env_c[i] = env1;
    diff |= std::bit_cast<std::uint64_t>(air0) ^ std::bit_cast<std::uint64_t>(air1);
    diff |= std::bit_cast<std::uint64_t>(env0) ^ std::bit_cast<std::uint64_t>(env1);
  }
  return diff;
}

}  // namespace

Substeps2R2C step_rooms_2r2c(std::size_t n, double t_out_c,
                             const double* __restrict q_total_w,
                             const double* __restrict r_air_env,
                             const double* __restrict r_env_out,
                             const double* __restrict c_air,
                             const double* __restrict c_env,
                             double max_step_s, double h_last_s, std::uint32_t n_full,
                             bool allow_early_exit,
                             double* __restrict t_air_c,
                             double* __restrict t_env_c) {
  Substeps2R2C out;
  std::uint32_t k = 0;
  for (; k < n_full; ++k) {
    if (allow_early_exit) {
      const std::uint64_t diff =
          substep_2r2c_watched(n, t_out_c, max_step_s, q_total_w, r_air_env, r_env_out,
                               c_air, c_env, t_air_c, t_env_c);
      ++out.full_steps_run;
      if (diff == 0) {
        // Bitwise fixed point: every remaining full substep maps this state
        // to itself, so skipping them is an identity, not an approximation.
        ++k;
        break;
      }
    } else {
      substep_2r2c(n, t_out_c, max_step_s, q_total_w, r_air_env, r_env_out, c_air, c_env,
                   t_air_c, t_env_c);
      ++out.full_steps_run;
    }
  }
  out.full_steps_skipped = n_full - k;
  if (h_last_s > 0.0) {
    substep_2r2c(n, t_out_c, h_last_s, q_total_w, r_air_env, r_env_out, c_air, c_env,
                 t_air_c, t_env_c);
  }
  return out;
}

}  // namespace df3::core::fleet
