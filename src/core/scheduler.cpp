#include "df3/core/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace df3::core {

bool TaskQueue::test_unsorted_push_front_ = false;

namespace {
/// EDF key: absolute deadline, +infinity for deadline-less shards.
double edf_key(const Task& t) {
  const auto d = t.deadline();
  return d ? *d : std::numeric_limits<double>::infinity();
}
}  // namespace

void TaskQueue::insert_by_discipline(std::deque<Task>& q, Task t) {
  if (discipline_ == QueueDiscipline::kFcfs) {
    q.push_back(std::move(t));
    return;
  }
  // EDF: stable insert before the first entry with a later deadline. The
  // lane is always sorted, so binary search finds the spot in O(log n) —
  // and the dominant case (deadline-less cloud shards, key = +inf, which
  // land at the back) degenerates to an O(1) push_back instead of a full
  // scan per shard.
  const double key = edf_key(t);
  if (q.empty() || edf_key(q.back()) <= key) {
    q.push_back(std::move(t));
    return;
  }
  const auto it = std::upper_bound(
      q.begin(), q.end(), key, [](double k, const Task& other) { return k < edf_key(other); });
  q.insert(it, std::move(t));
}

void TaskQueue::push(Task t) {
  backlog_dirty_ = true;
  // Evaluate the lane before moving `t` into the parameter: function
  // argument evaluation order is unspecified.
  auto& q = lane(t.priority());
  insert_by_discipline(q, std::move(t));
}

void TaskQueue::push_front(Task t) {
  backlog_dirty_ = true;
  auto& q = lane(t.priority());
  if (discipline_ == QueueDiscipline::kFcfs) {
    // FCFS: a re-queued shard has already waited once, so a true
    // front-insert is both correct and the intended fairness.
    q.push_front(std::move(t));
    return;
  }
  // EDF: a blind front-insert would break the sorted-lane invariant that
  // insert_by_discipline's binary search relies on — every later
  // upper_bound would probe a lane that is no longer ordered and could
  // land fresh shards at the wrong position. Re-queue by deadline instead,
  // in front of any entry with an equal key so the returning shard still
  // resumes ahead of fresh work with the same deadline.
  if (test_unsorted_push_front_) {
    // Planted pre-fix behavior for the model checker's self-test.
    q.push_front(std::move(t));
    return;
  }
  const double key = edf_key(t);
  if (q.empty() || key <= edf_key(q.front())) {
    q.push_front(std::move(t));
    return;
  }
  const auto it = std::lower_bound(
      q.begin(), q.end(), key, [](const Task& other, double k) { return edf_key(other) < k; });
  q.insert(it, std::move(t));
}

std::optional<Task> TaskQueue::pop() {
  backlog_dirty_ = true;
  if (!edge_.empty()) {
    Task t = std::move(edge_.front());
    edge_.pop_front();
    return t;
  }
  if (!cloud_.empty()) {
    Task t = std::move(cloud_.front());
    cloud_.pop_front();
    return t;
  }
  return std::nullopt;
}

std::optional<Task> TaskQueue::pop_class(Priority p) {
  backlog_dirty_ = true;
  auto& q = lane(p);
  if (q.empty()) return std::nullopt;
  Task t = std::move(q.front());
  q.pop_front();
  return t;
}

const Task* TaskQueue::peek() const {
  if (!edge_.empty()) return &edge_.front();
  if (!cloud_.empty()) return &cloud_.front();
  return nullptr;
}

void TaskQueue::audit(std::vector<std::string>& out, const std::string& who) const {
  const auto check_lane = [&](const std::deque<Task>& q, const char* lane_name) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].remaining_gigacycles < 0.0) {
        out.push_back(who + ": negative remaining work (" +
                      std::to_string(q[i].remaining_gigacycles) + " Gc) queued in " + lane_name +
                      " lane at position " + std::to_string(i));
      }
      if (discipline_ == QueueDiscipline::kEdf && i + 1 < q.size() &&
          edf_key(q[i]) > edf_key(q[i + 1])) {
        out.push_back(who + ": EDF " + lane_name + " lane out of order at position " +
                      std::to_string(i) + " (deadline " + std::to_string(edf_key(q[i])) +
                      " before " + std::to_string(edf_key(q[i + 1])) + ")");
      }
    }
  };
  check_lane(edge_, "edge");
  check_lane(cloud_, "cloud");
}

void TaskQueue::for_each(const std::function<void(const Task&, Priority)>& fn) const {
  for (const auto& t : edge_) fn(t, Priority::kEdge);
  for (const auto& t : cloud_) fn(t, Priority::kCloud);
}

double TaskQueue::backlog_gigacycles() const {
  if (backlog_dirty_) {
    // Re-sum in the same edge-then-cloud lane order a fresh walk always
    // used: the cached value is bitwise equal, never incrementally drifted
    // (routing policies compare these doubles, so order matters).
    double total = 0.0;
    for (const auto& t : edge_) total += t.remaining_gigacycles;
    for (const auto& t : cloud_) total += t.remaining_gigacycles;
    backlog_cache_ = total;
    backlog_dirty_ = false;
  }
  return backlog_cache_;
}

}  // namespace df3::core
