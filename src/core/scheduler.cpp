#include "df3/core/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace df3::core {

namespace {
/// EDF key: absolute deadline, +infinity for deadline-less shards.
double edf_key(const Task& t) {
  const auto d = t.deadline();
  return d ? *d : std::numeric_limits<double>::infinity();
}
}  // namespace

void TaskQueue::insert_by_discipline(std::deque<Task>& q, Task t) {
  if (discipline_ == QueueDiscipline::kFcfs) {
    q.push_back(std::move(t));
    return;
  }
  // EDF: stable insert before the first entry with a later deadline. The
  // lane is always sorted, so binary search finds the spot in O(log n) —
  // and the dominant case (deadline-less cloud shards, key = +inf, which
  // land at the back) degenerates to an O(1) push_back instead of a full
  // scan per shard.
  const double key = edf_key(t);
  if (q.empty() || edf_key(q.back()) <= key) {
    q.push_back(std::move(t));
    return;
  }
  const auto it = std::upper_bound(
      q.begin(), q.end(), key, [](double k, const Task& other) { return k < edf_key(other); });
  q.insert(it, std::move(t));
}

void TaskQueue::push(Task t) {
  // Evaluate the lane before moving `t` into the parameter: function
  // argument evaluation order is unspecified.
  auto& q = lane(t.priority());
  insert_by_discipline(q, std::move(t));
}

void TaskQueue::push_front(Task t) {
  auto& q = lane(t.priority());
  q.push_front(std::move(t));
}

std::optional<Task> TaskQueue::pop() {
  if (!edge_.empty()) {
    Task t = std::move(edge_.front());
    edge_.pop_front();
    return t;
  }
  if (!cloud_.empty()) {
    Task t = std::move(cloud_.front());
    cloud_.pop_front();
    return t;
  }
  return std::nullopt;
}

std::optional<Task> TaskQueue::pop_class(Priority p) {
  auto& q = lane(p);
  if (q.empty()) return std::nullopt;
  Task t = std::move(q.front());
  q.pop_front();
  return t;
}

const Task* TaskQueue::peek() const {
  if (!edge_.empty()) return &edge_.front();
  if (!cloud_.empty()) return &cloud_.front();
  return nullptr;
}

double TaskQueue::backlog_gigacycles() const {
  double total = 0.0;
  for (const auto& t : edge_) total += t.remaining_gigacycles;
  for (const auto& t : cloud_) total += t.remaining_gigacycles;
  return total;
}

}  // namespace df3::core
