#include "df3/core/composition.hpp"

#include <limits>
#include <stdexcept>

namespace df3::core {

ServiceComposer::ServiceComposer(Cluster& cluster, net::Network& network, net::NodeId origin)
    : cluster_(cluster), network_(network), origin_(origin) {}

void ServiceComposer::provide(const std::string& function, std::size_t widx) {
  if (widx >= cluster_.worker_count()) {
    throw std::out_of_range("ServiceComposer::provide: bad worker index");
  }
  providers_[function].push_back(widx);
}

std::size_t ServiceComposer::providers_of(const std::string& function) const {
  const auto it = providers_.find(function);
  return it == providers_.end() ? 0 : it->second.size();
}

double ServiceComposer::compute_time_s(const ServiceFunction& f, std::size_t widx) const {
  const auto& server = cluster_.worker(widx).server();
  const double speed = server.core_speed_gcps();
  if (speed <= 0.0) return std::numeric_limits<double>::infinity();  // gated/throttled out
  return f.work_gigacycles / speed;
}

double ServiceComposer::compute_energy_j(const ServiceFunction& f, std::size_t widx) const {
  const auto& server = cluster_.worker(widx).server();
  const double speed = server.core_speed_gcps();
  if (speed <= 0.0) return std::numeric_limits<double>::infinity();
  // Marginal energy of occupying one extra core for the stage's duration:
  // the per-core dynamic power at the current operating point.
  const double chassis_dynamic =
      server.max_power_now().value() - server.idle_power().value();
  const double per_core_w = chassis_dynamic / server.spec().total_cores();
  return per_core_w * (f.work_gigacycles / speed);
}

double ServiceComposer::transfer_time_s(net::NodeId from, net::NodeId to,
                                        util::Bytes size) const {
  if (from == to) return 0.0;
  const auto d = network_.unloaded_delay(from, to, size);
  return d ? d->value() : std::numeric_limits<double>::infinity();
}

SelectionResult ServiceComposer::select(const ServiceChain& chain, Objective objective,
                                        double balance) const {
  if (chain.stages.empty()) throw std::invalid_argument("select: empty chain");
  if (balance < 0.0 || balance > 1.0) throw std::invalid_argument("select: balance outside [0,1]");
  const std::size_t n = chain.stages.size();

  // Candidate lists per stage.
  std::vector<const std::vector<std::size_t>*> candidates(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto it = providers_.find(chain.stages[s].name);
    if (it == providers_.end() || it->second.empty()) {
      throw std::invalid_argument("select: no provider for " + chain.stages[s].name);
    }
    candidates[s] = &it->second;
  }

  // Cost scaling for the balanced objective: normalize by the best
  // single-stage latency/energy so the weights are comparable.
  auto stage_cost = [&](const ServiceFunction& f, std::size_t widx, double xfer_s) {
    const double latency = compute_time_s(f, widx) + xfer_s;
    const double energy = compute_energy_j(f, widx);
    switch (objective) {
      case Objective::kLatency: return latency;
      case Objective::kEnergy: return energy + xfer_s * 1e-6;  // tiny tiebreak toward locality
      case Objective::kBalanced: return balance * latency + (1.0 - balance) * energy * 0.01;
    }
    return latency;
  };

  // Layered DP over (stage, candidate).
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best(n);
  std::vector<std::vector<std::size_t>> from(n);
  for (std::size_t s = 0; s < n; ++s) {
    best[s].assign(candidates[s]->size(), inf);
    from[s].assign(candidates[s]->size(), 0);
  }
  for (std::size_t j = 0; j < candidates[0]->size(); ++j) {
    const std::size_t w = (*candidates[0])[j];
    const double xfer =
        transfer_time_s(origin_, cluster_.worker(w).node(), chain.input);
    best[0][j] = stage_cost(chain.stages[0], w, xfer);
  }
  for (std::size_t s = 1; s < n; ++s) {
    for (std::size_t j = 0; j < candidates[s]->size(); ++j) {
      const std::size_t w = (*candidates[s])[j];
      for (std::size_t i = 0; i < candidates[s - 1]->size(); ++i) {
        if (best[s - 1][i] == inf) continue;
        const std::size_t pw = (*candidates[s - 1])[i];
        const double xfer = transfer_time_s(cluster_.worker(pw).node(),
                                            cluster_.worker(w).node(),
                                            chain.stages[s - 1].output);
        const double cost = best[s - 1][i] + stage_cost(chain.stages[s], w, xfer);
        if (cost < best[s][j]) {
          best[s][j] = cost;
          from[s][j] = i;
        }
      }
    }
  }
  // Close the loop: the final output returns to the origin.
  std::size_t arg = 0;
  double total = inf;
  for (std::size_t j = 0; j < candidates[n - 1]->size(); ++j) {
    if (best[n - 1][j] == inf) continue;
    const std::size_t w = (*candidates[n - 1])[j];
    const double ret = transfer_time_s(cluster_.worker(w).node(), origin_,
                                       chain.stages[n - 1].output);
    const double cost = best[n - 1][j] + (objective == Objective::kEnergy ? ret * 1e-6 : ret);
    if (cost < total) {
      total = cost;
      arg = j;
    }
  }
  if (total == inf) throw std::runtime_error("select: no feasible assignment (cluster gated?)");

  // Reconstruct and compute the *physical* predictions for the chosen path.
  SelectionResult result;
  result.worker_per_stage.resize(n);
  std::size_t cur = arg;
  for (std::size_t s = n; s-- > 0;) {
    result.worker_per_stage[s] = (*candidates[s])[cur];
    cur = from[s][cur];
  }
  net::NodeId at = origin_;
  util::Bytes payload = chain.input;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t w = result.worker_per_stage[s];
    result.predicted_latency_s += transfer_time_s(at, cluster_.worker(w).node(), payload);
    result.predicted_latency_s += compute_time_s(chain.stages[s], w);
    result.predicted_energy_j += compute_energy_j(chain.stages[s], w);
    at = cluster_.worker(w).node();
    payload = chain.stages[s].output;
  }
  result.predicted_latency_s += transfer_time_s(at, origin_, payload);
  return result;
}

struct ServiceComposer::Pending {
  ServiceChain chain;
  SelectionResult selection;
  std::function<void(double, bool)> done;
  std::size_t stage = 0;
  double started_at = 0.0;
};

void ServiceComposer::execute(const ServiceChain& chain, const SelectionResult& selection,
                              std::function<void(double, bool)> done) {
  if (selection.worker_per_stage.size() != chain.stages.size()) {
    throw std::invalid_argument("execute: selection does not match chain");
  }
  if (chain.stages.empty()) throw std::invalid_argument("execute: empty chain");
  if (!done) throw std::invalid_argument("execute: null completion callback");
  auto p = std::make_shared<Pending>();
  p->chain = chain;
  p->selection = selection;
  p->done = std::move(done);
  p->started_at = cluster_.worker(0).now();
  run_stage(p, origin_);
}

void ServiceComposer::run_stage(const std::shared_ptr<Pending>& pending, net::NodeId at) {
  const std::size_t s = pending->stage;
  const auto& f = pending->chain.stages[s];
  const std::size_t widx = pending->selection.worker_per_stage[s];
  workload::Request r;
  r.flow = workload::Flow::kEdgeDirect;
  r.app = pending->chain.name + "/" + f.name;
  r.arrival = cluster_.worker(0).now();
  r.work_gigacycles = f.work_gigacycles;
  r.input_size = s == 0 ? pending->chain.input : pending->chain.stages[s - 1].output;
  r.output_size = f.output;
  r.preemptible = false;
  const net::NodeId target = cluster_.worker(widx).node();
  network_.send(
      net::Message{at, target, r.input_size, 0},
      [this, pending, widx, target, r](sim::Time) mutable {
        cluster_.run_pinned(std::move(r), widx,
                            [this, pending, target](workload::CompletionRecord rec) {
                              if (rec.outcome != workload::Outcome::kCompleted &&
                                  rec.outcome != workload::Outcome::kDeadlineMissed) {
                                pending->done(cluster_.worker(0).now() - pending->started_at,
                                              false);
                                return;
                              }
                              ++pending->stage;
                              if (pending->stage < pending->chain.stages.size()) {
                                run_stage(pending, target);
                              } else {
                                finish(pending, target);
                              }
                            });
      },
      [this, pending] {
        pending->done(cluster_.worker(0).now() - pending->started_at, false);
      });
}

void ServiceComposer::finish(const std::shared_ptr<Pending>& pending, net::NodeId at) {
  const auto out = pending->chain.stages.back().output;
  network_.send(
      net::Message{at, origin_, out, 0},
      [pending](sim::Time at_time) {
        const double latency = at_time - pending->started_at;
        const bool met =
            !pending->chain.deadline_s || latency <= *pending->chain.deadline_s;
        pending->done(latency, met);
      },
      [this, pending] {
        pending->done(cluster_.worker(0).now() - pending->started_at, false);
      });
}

}  // namespace df3::core
