#include "df3/core/task.hpp"

#include <stdexcept>

namespace df3::core {

std::vector<Task> make_tasks(workload::Request r, double slowdown) {
  if (r.tasks <= 0) throw std::invalid_argument("make_tasks: request has no tasks");
  if (slowdown < 1.0) throw std::invalid_argument("make_tasks: slowdown must be >= 1");
  return make_tasks(std::make_shared<RequestState>(std::move(r)), slowdown);
}

std::vector<Task> make_tasks(std::shared_ptr<RequestState> state, double slowdown) {
  if (!state) throw std::invalid_argument("make_tasks: null state");
  if (state->request.tasks <= 0) throw std::invalid_argument("make_tasks: request has no tasks");
  if (slowdown < 1.0) throw std::invalid_argument("make_tasks: slowdown must be >= 1");
  std::vector<Task> out;
  out.reserve(static_cast<std::size_t>(state->request.tasks));
  for (int i = 0; i < state->request.tasks; ++i) {
    out.push_back(Task{state, i, state->request.work_gigacycles, slowdown});
  }
  return out;
}

}  // namespace df3::core
