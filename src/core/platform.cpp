#include "df3/core/platform.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "df3/thermal/calendar.hpp"

namespace df3::core {

namespace {
/// Network/PSU overhead attributed to DF servers, as a fraction of IT
/// energy. Calibrated so an always-busy DF fleet reports PUE ~1.026, the
/// figure CloudandHeat claims and the paper cites (section II-A).
constexpr double kDfOverheadFraction = 0.026;
}  // namespace

Df3Platform::Df3Platform(PlatformConfig config)
    : config_(std::move(config)), weather_(config_.climate, config_.seed ^ 0x5ca1ab1eULL) {
  if (config_.tick_s <= 0.0) throw std::invalid_argument("Df3Platform: tick must be positive");
  network_ = std::make_unique<net::Network>(sim_, "city-net");
  internet_node_ = network_->add_node("internet");
  if (config_.with_datacenter) {
    datacenter_ = std::make_unique<baselines::Datacenter>(sim_, config_.datacenter);
  }
  if (config_.start_time > 0.0) sim_.run_until(config_.start_time);
}

std::size_t Df3Platform::add_building(const BuildingConfig& cfg) {
  if (cfg.rooms <= 0) throw std::invalid_argument("add_building: rooms must be positive");
  auto b = std::make_unique<Building>();
  b->cfg = cfg;
  b->gateway_node = network_->add_node(cfg.name + "/gw");
  b->device_node = network_->add_node(cfg.name + "/dev");
  b->wifi_node = network_->add_node(cfg.name + "/wifi");
  network_->add_link(b->device_node, b->gateway_node, cfg.device_link);
  network_->add_link(b->wifi_node, b->gateway_node, cfg.wifi_link);
  network_->add_link(b->gateway_node, internet_node_, cfg.uplink);

  ClusterConfig ccfg = config_.cluster;
  ccfg.fabric_gbps = cfg.lan.bandwidth.value() / 1e9;
  b->cluster = std::make_unique<Cluster>(
      sim_, cfg.name, ccfg, *network_, b->gateway_node,
      [this](workload::CompletionRecord rec) { flow_metrics_.record(rec); });
  if (datacenter_) b->cluster->set_datacenter(datacenter_.get());

  const util::Watts rating = cfg.server.rated_power();
  if (cfg.water_tank) {
    // Digital-boiler plant: one chassis charging the hot-water store.
    const net::NodeId node = network_->add_node(cfg.name + "/boiler");
    network_->add_link(b->gateway_node, node, cfg.lan);
    const std::size_t widx = b->cluster->add_worker(cfg.server, node);
    thermal::WaterTank tank(*cfg.water_tank, cfg.water_tank->setpoint);
    b->tank_unit.emplace(std::move(tank), HeatRegulator(config_.regulator), widx);
    b->cluster->worker(widx).server().set_inlet_temperature(cfg.water_tank->setpoint);
    buildings_.push_back(std::move(b));
    const std::size_t n_tank = buildings_.size();
    if (n_tank > 1) {
      for (std::size_t i = 0; i < n_tank; ++i) {
        buildings_[i]->cluster->set_peer(buildings_[(i + 1) % n_tank]->cluster.get());
      }
    }
    return n_tank - 1;
  }
  for (int i = 0; i < cfg.rooms; ++i) {
    const net::NodeId node = network_->add_node(cfg.name + "/srv" + std::to_string(i));
    network_->add_link(b->gateway_node, node, cfg.lan);
    if (i == 0) {
      network_->add_link(b->device_node, node, cfg.device_link);
      network_->add_link(b->wifi_node, node, cfg.wifi_link);
    }
    const std::size_t widx = b->cluster->add_worker(cfg.server, node);
    thermal::AnyRoom room =
        cfg.high_fidelity_rooms
            ? thermal::AnyRoom(thermal::Room2R2C(cfg.room_2r2c, cfg.initial_temperature))
            : thermal::AnyRoom(thermal::Room(cfg.room, cfg.initial_temperature));
    thermal::ModulatingThermostat thermostat(cfg.comfort.day_target, cfg.thermostat_gain_w_per_k,
                                             rating);
    b->rooms.emplace_back(std::move(room), thermostat, HeatRegulator(config_.regulator), widx);
    // Servers start cold-set: inlet = initial room temperature.
    b->cluster->worker(widx).server().set_inlet_temperature(cfg.initial_temperature);
  }
  buildings_.push_back(std::move(b));

  // Horizontal-offload ring: each cluster's peer is the next one.
  const std::size_t n = buildings_.size();
  if (n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      buildings_[i]->cluster->set_peer(buildings_[(i + 1) % n]->cluster.get());
    }
  }
  return n - 1;
}

void Df3Platform::add_edge_source(std::size_t b, workload::RequestFactory factory,
                                  double rate_per_s, bool direct, bool via_wifi) {
  add_edge_source(b, std::move(factory), std::make_unique<workload::PoissonArrivals>(rate_per_s),
                  direct, via_wifi);
}

void Df3Platform::add_edge_source(std::size_t b, workload::RequestFactory factory,
                                  std::unique_ptr<workload::ArrivalProcess> arrivals,
                                  bool direct, bool via_wifi) {
  if (b >= buildings_.size()) throw std::out_of_range("add_edge_source: bad building");
  const auto name = "edge-src-" + std::to_string(source_counter_++);
  sources_.push_back(std::make_unique<workload::WorkloadSource>(
      sim_, name, config_.seed, std::move(arrivals), std::move(factory),
      [this, b, direct, via_wifi](workload::Request r) {
        r.flow = direct ? workload::Flow::kEdgeDirect : workload::Flow::kEdgeIndirect;
        deliver_to_cluster(std::move(r), b, direct, via_wifi);
      }));
  sources_.back()->start();
}

void Df3Platform::add_cloud_source(workload::RequestFactory factory, double rate_per_s) {
  add_cloud_source(std::move(factory), std::make_unique<workload::PoissonArrivals>(rate_per_s));
}

void Df3Platform::add_cloud_source(workload::RequestFactory factory,
                                   std::unique_ptr<workload::ArrivalProcess> arrivals) {
  const auto name = "cloud-src-" + std::to_string(source_counter_++);
  sources_.push_back(std::make_unique<workload::WorkloadSource>(
      sim_, name, config_.seed, std::move(arrivals), std::move(factory),
      [this](workload::Request r) {
        r.flow = workload::Flow::kCloud;
        Cluster* target = route_cloud_target();
        if (target == nullptr) {
          if (!datacenter_) {
            workload::CompletionRecord rec;
            rec.request = std::move(r);
            rec.outcome = workload::Outcome::kRejected;
            rec.completed_at = sim_.now();
            rec.served_by = "nowhere";
            flow_metrics_.record(rec);
            return;
          }
          datacenter_->submit(std::move(r), internet_node_,
                              [this](workload::CompletionRecord rec) {
                                flow_metrics_.record(rec);
                              });
          return;
        }
        // Pay the Internet -> gateway transport, then hand to the cluster.
        const auto gw = target->gateway_node();
        network_->send(
            net::Message{internet_node_, gw, r.input_size, r.id},
            [target, r, this](sim::Time) mutable { target->submit(std::move(r), internet_node_); },
            [this, r]() mutable {
              workload::CompletionRecord rec;
              rec.request = std::move(r);
              rec.outcome = workload::Outcome::kDropped;
              rec.completed_at = sim_.now();
              rec.served_by = "uplink-partition";
              flow_metrics_.record(rec);
            });
      }));
  sources_.back()->start();
}

Cluster* Df3Platform::route_cloud_target() {
  if (buildings_.empty()) return nullptr;
  switch (cloud_routing_) {
    case CloudRouting::kDatacenterOnly:
      return nullptr;
    case CloudRouting::kSeasonAware: {
      const auto seasonal = weather_.seasonal_component(sim_.now());
      const auto cutoff = buildings_.front()->cfg.comfort.heating_cutoff_outdoor;
      if (seasonal >= cutoff && datacenter_) return nullptr;
      break;
    }
    case CloudRouting::kDfFirst:
      break;
  }
  Cluster* c = buildings_[rr_next_ % buildings_.size()]->cluster.get();
  ++rr_next_;
  return c;
}

void Df3Platform::deliver_to_cluster(workload::Request r, std::size_t b, bool direct,
                                     bool via_wifi) {
  Building& building = *buildings_[b];
  const net::NodeId origin = via_wifi ? building.wifi_node : building.device_node;
  const net::NodeId entry =
      direct ? building.cluster->worker(0).node() : building.cluster->gateway_node();
  network_->send(
      net::Message{origin, entry, r.input_size, r.id},
      [this, b, direct, origin, r](sim::Time) mutable {
        Building& bd = *buildings_[b];
        if (direct) {
          bd.cluster->submit_direct(std::move(r), origin, 0);
        } else {
          bd.cluster->submit(std::move(r), origin);
        }
      },
      [this, r]() mutable {
        workload::CompletionRecord rec;
        rec.request = std::move(r);
        rec.outcome = workload::Outcome::kDropped;
        rec.completed_at = sim_.now();
        rec.served_by = "lan-partition";
        flow_metrics_.record(rec);
      });
}

void Df3Platform::tick(sim::Time t) {
  const double dt = config_.tick_s;
  const util::Celsius t_out = weather_.outdoor_temperature(t);
  const util::Celsius seasonal = weather_.seasonal_component(t);
  const double hour = thermal::hour_of_day(t);

  double city_demand_w = 0.0;
  double city_cores = 0.0;
  double temp_sum = 0.0;
  std::size_t room_count = 0;

  for (auto& bptr : buildings_) {
    Building& b = *bptr;
    const bool heating_season = seasonal < b.cfg.comfort.heating_cutoff_outdoor;
    const util::Celsius target = b.cfg.comfort.target_at_hour(hour);
    for (auto& unit : b.rooms) {
      Worker& worker = b.cluster->worker(unit.worker_index);
      hw::DfServer& server = worker.server();

      // 1. Integrate the interval that just elapsed at the server's current
      //    operating point (piecewise-constant approximation at tick scale).
      server.advance(util::Seconds{dt}, unit.last_season);
      const util::Joules delta{server.energy_consumed().value() - unit.energy_mark.value()};
      unit.energy_mark = server.energy_consumed();

      // 2. Heat the room with what was actually emitted indoors.
      const util::Watts emitted{delta.value() / dt};
      const bool indoors = server.spec().routing != hw::HeatRouting::kDualPipe ||
                           unit.last_season;
      // Solar/occupancy gains ramp with the season (zero in deep winter).
      const double solar_frac = std::clamp((seasonal.value() - 5.0) / 12.0, 0.0, 1.0);
      const util::Watts solar{b.cfg.solar_gain_peak_w * solar_frac};
      unit.room.advance(util::Seconds{dt},
                        (indoors ? emitted : util::Watts{0.0}) + solar, t_out);

      // 3. Account energy and regulation fidelity.
      df_energy_.add_it(delta);
      df_energy_.add_overhead(delta * kDfOverheadFraction);
      const util::Joules wanted = unit.last_demand * util::Seconds{dt};
      const util::Joules useful{std::min(delta.value(), wanted.value())};
      if (indoors) {
        df_energy_.add_useful_heat(useful);
        df_energy_.add_waste_heat(delta - useful);
      } else {
        df_energy_.add_waste_heat(delta);
      }
      unit.regulator.record(util::Seconds{dt}, emitted, unit.last_demand);
      b.comfort_metrics.sample(t, unit.room.temperature(), target);

      // 4. Close the control loop for the next interval.
      unit.thermostat.set_target(target);
      thermal::HeatDemand demand{util::Watts{0.0}, false};
      if (heating_season) {
        demand = unit.thermostat.demand(unit.room.temperature(),
                                        unit.room.holding_power(target, t_out));
      }
      unit.regulator.regulate(server, demand);
      server.set_inlet_temperature(unit.room.temperature());
      unit.last_demand = demand.power;
      unit.last_season = heating_season;

      city_demand_w += demand.power.value();
      temp_sum += unit.room.temperature().value();
      ++room_count;
    }
    if (b.tank_unit) {
      // Digital-boiler plant: the hot-water store is the "thermostat" and
      // it wants heat in every season.
      TankUnit& tu = *b.tank_unit;
      Worker& worker = b.cluster->worker(tu.worker_index);
      hw::DfServer& server = worker.server();
      server.advance(util::Seconds{dt}, /*heating_season=*/true);
      const util::Joules delta{server.energy_consumed().value() - tu.energy_mark.value()};
      tu.energy_mark = server.energy_consumed();
      const util::Watts emitted{delta.value() / dt};
      const double draw = thermal::hot_water_draw_lps(t, b.cfg.daily_hot_water_l);
      tu.tank.advance(util::Seconds{dt}, emitted, draw);
      df_energy_.add_it(delta);
      df_energy_.add_overhead(delta * kDfOverheadFraction);
      const util::Joules wanted = tu.last_demand * util::Seconds{dt};
      const util::Joules useful{std::min(delta.value(), wanted.value())};
      df_energy_.add_useful_heat(useful);
      df_energy_.add_waste_heat(delta - useful);
      tu.regulator.record(util::Seconds{dt}, emitted, tu.last_demand);
      b.comfort_metrics.sample(t, tu.tank.temperature(), tu.tank.params().setpoint);
      const auto demand = tu.tank.demand(draw, b.cfg.server.rated_power());
      tu.regulator.regulate(server, demand);
      // The immersion oil returns cooled from the tank heat exchanger:
      // inlet sits a design approach (~15 K) below the store, so a store
      // at setpoint keeps the boiler inside its thermal envelope while an
      // overheating store still triggers the throttle.
      server.set_inlet_temperature(util::Celsius{tu.tank.temperature().value() - 15.0});
      tu.last_demand = demand.power;
      city_demand_w += demand.power.value();
    }
    b.cluster->sync_workers();
    city_cores += b.cluster->usable_cores();
  }

  if (room_count > 0) temp_series_.add(t, temp_sum / static_cast<double>(room_count));
  capacity_series_.add(t, city_cores);
  demand_series_.add(t, city_demand_w);
  outdoor_series_.add(t, t_out.value());
}

void Df3Platform::run(util::Seconds duration) {
  if (duration.value() < 0.0) throw std::invalid_argument("run: negative duration");
  if (!physics_) {
    physics_ = std::make_unique<sim::PeriodicProcess>(
        sim_, sim_.now() + config_.tick_s, config_.tick_s, [this](sim::Time t) { tick(t); });
  }
  sim_.run_until(sim_.now() + duration.value());
}

double Df3Platform::regulator_relative_error() const {
  double err = 0.0, req = 0.0;
  for (const auto& b : buildings_) {
    for (const auto& unit : b->rooms) {
      req += unit.regulator.requested_total().value();
      err += unit.regulator.relative_error() * unit.regulator.requested_total().value();
    }
  }
  return req <= 0.0 ? 0.0 : err / req;
}

std::uint64_t Df3Platform::total_preemptions() const {
  std::uint64_t n = 0;
  for (const auto& b : buildings_) n += b->cluster->stats().preemptions;
  return n;
}

util::Celsius Df3Platform::room_temperature(std::size_t b, std::size_t r) const {
  return buildings_.at(b)->rooms.at(r).room.temperature();
}

void Df3Platform::export_series_csv(std::ostream& os) const {
  os << "time_s,room_mean_c,usable_cores,heat_demand_w,outdoor_c\n";
  const auto old_precision = os.precision(10);
  for (std::size_t i = 0; i < capacity_series_.size(); ++i) {
    const double room = i < temp_series_.size() ? temp_series_.values[i] : 0.0;
    os << capacity_series_.times[i] << ',' << room << ',' << capacity_series_.values[i] << ','
       << demand_series_.values[i] << ',' << outdoor_series_.values[i] << '\n';
  }
  os.precision(old_precision);
}

util::Celsius Df3Platform::tank_temperature(std::size_t b) const {
  const auto& unit = buildings_.at(b)->tank_unit;
  if (!unit) throw std::logic_error("tank_temperature: not a boiler building");
  return unit->tank.temperature();
}

}  // namespace df3::core
