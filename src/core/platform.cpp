#include "df3/core/platform.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "df3/policy/registry.hpp"
#include "df3/thermal/calendar.hpp"

namespace df3::core {

namespace {
/// Network/PSU overhead attributed to DF servers, as a fraction of IT
/// energy. Calibrated so an always-busy DF fleet reports PUE ~1.026, the
/// figure CloudandHeat claims and the paper cites (section II-A).
constexpr double kDfOverheadFraction = 0.026;
}  // namespace

Df3Platform::Df3Platform(PlatformConfig config)
    : config_(std::move(config)),
      weather_(config_.climate, config_.seed ^ 0x5ca1ab1eULL),
      auditor_(config_.audit) {
  if (config_.tick_s <= 0.0) throw std::invalid_argument("Df3Platform: tick must be positive");
#ifndef DF3_OBS_DISABLED
  if (config_.obs.level != obs::TraceLevel::kOff) {
    obs_ = std::make_unique<obs::Observability>(config_.obs);
    // Register every instrument up front: the per-tick feed is pure
    // handle-indexed stores, no name hashing on the hot path.
    auto& reg = obs_->registry();
    feed_.room_mean_c = reg.gauge("city/room_mean_c");
    feed_.usable_cores = reg.gauge("city/usable_cores");
    feed_.heat_demand_w = reg.gauge("city/heat_demand_w");
    feed_.outdoor_c = reg.gauge("city/outdoor_c");
    feed_.gated_districts = reg.gauge("fleet/gated_districts");
    feed_.regulator_err = reg.gauge("regulator/rel_error");
    feed_.energy_it_j = reg.gauge("energy/it_j");
    feed_.energy_useful_j = reg.gauge("energy/useful_heat_j");
    feed_.energy_waste_j = reg.gauge("energy/waste_heat_j");
    feed_.energy_overhead_j = reg.gauge("energy/overhead_j");
    feed_.pue = reg.gauge("energy/pue");
    feed_.heat_reuse = reg.gauge("energy/heat_reuse_fraction");
    feed_.preemptions = reg.counter("ladder/preemptions");
    feed_.offload_horizontal = reg.counter("ladder/offload_horizontal");
    feed_.offload_vertical = reg.counter("ladder/offload_vertical");
    feed_.edge_delays = reg.counter("ladder/edge_delays");
    feed_.completed = reg.counter("requests/completed");
    feed_.deadline_missed = reg.counter("requests/deadline_missed");
    feed_.rejected = reg.counter("requests/rejected");
    feed_.dropped = reg.counter("requests/dropped");
    feed_.response_s = reg.histogram("requests/response_s");
    // Decision-plane counters: one per seam plus one per configured ladder
    // rung (duplicate rung names intern to the same instrument and sum).
    feed_.routing_picks = reg.counter("policy/routing_picks");
    feed_.placement_picks = reg.counter("policy/placement_picks");
    feed_.peer_picks = reg.counter("policy/peer_picks");
    for (const std::string& rung : config_.cluster.edge_peak_ladder) {
      feed_.rung_ids.push_back(reg.counter("policy/rung/" + rung));
    }
    feed_.prev_rung_hits.assign(feed_.rung_ids.size(), 0);
    for (int f = 0; f < 3; ++f) {
      const std::string flow = workload::flow_name(static_cast<workload::Flow>(f));
      feed_.slo_miss_ratio.push_back(reg.gauge("slo/" + flow + "/miss_ratio"));
      feed_.slo_p99_s.push_back(reg.gauge("slo/" + flow + "/p99_s"));
    }
  }
#endif
  routing_ = policy::Registry::global().make_routing("df-first");
  network_ = std::make_unique<net::Network>(sim_, "city-net");
  internet_node_ = network_->add_node("internet");
  if (config_.with_datacenter) {
    datacenter_ = std::make_unique<baselines::Datacenter>(sim_, config_.datacenter);
  }
  if (config_.start_time > 0.0) sim_.run_until(config_.start_time);
}

std::size_t Df3Platform::add_building(const BuildingConfig& cfg) {
  if (cfg.rooms <= 0) throw std::invalid_argument("add_building: rooms must be positive");
  auto b = std::make_unique<Building>();
  b->cfg = cfg;
  b->gateway_node = network_->add_node(cfg.name + "/gw");
  b->device_node = network_->add_node(cfg.name + "/dev");
  b->wifi_node = network_->add_node(cfg.name + "/wifi");
  network_->add_link(b->device_node, b->gateway_node, cfg.device_link);
  network_->add_link(b->wifi_node, b->gateway_node, cfg.wifi_link);
  network_->add_link(b->gateway_node, internet_node_, cfg.uplink);

  ClusterConfig ccfg = config_.cluster;
  ccfg.fabric_gbps = cfg.lan.bandwidth.value() / 1e9;
  b->cluster = std::make_unique<Cluster>(
      sim_, cfg.name, ccfg, *network_, b->gateway_node,
      [this](workload::CompletionRecord rec) { record_completion(rec); });
  if (datacenter_) b->cluster->set_datacenter(datacenter_.get());

  const util::Watts rating = cfg.server.rated_power();
  if (cfg.water_tank) {
    // Digital-boiler plant: one chassis charging the hot-water store.
    const net::NodeId node = network_->add_node(cfg.name + "/boiler");
    network_->add_link(b->gateway_node, node, cfg.lan);
    const std::size_t widx = b->cluster->add_worker(cfg.server, node);
    thermal::WaterTank tank(*cfg.water_tank, cfg.water_tank->setpoint);
    b->tank_unit.emplace(std::move(tank), HeatRegulator(config_.regulator), widx);
    b->tank_unit->server = &b->cluster->worker(widx).server();
    b->tank_unit->rating = rating;
    b->tank_unit->server->set_inlet_temperature(cfg.water_tank->setpoint);
    b->room_begin = b->room_end = fleet_.size();
    bld_target_c_.push_back(0.0);
    bld_season_.push_back(0);
    bld_demand_w_.push_back(0.0);
    buildings_.push_back(std::move(b));
    peers_dirty_ = true;
    shards_dirty_ = true;
    return buildings_.size() - 1;
  }
  // Validate the thermal/control parameters through the model constructors
  // (same exceptions as before the SoA refactor), then flatten the per-room
  // state into the contiguous fleet arrays.
  thermal::ModulatingThermostat thermostat(cfg.comfort.day_target, cfg.thermostat_gain_w_per_k,
                                           rating);
  (void)thermostat;
  b->room_begin = fleet_.size();
  for (int i = 0; i < cfg.rooms; ++i) {
    const net::NodeId node = network_->add_node(cfg.name + "/srv" + std::to_string(i));
    network_->add_link(b->gateway_node, node, cfg.lan);
    if (i == 0) {
      network_->add_link(b->device_node, node, cfg.device_link);
      network_->add_link(b->wifi_node, node, cfg.wifi_link);
    }
    const std::size_t widx = b->cluster->add_worker(cfg.server, node);
    hw::DfServer& server = b->cluster->worker(widx).server();
    // Servers start cold-set: inlet = initial room temperature.
    server.set_inlet_temperature(cfg.initial_temperature);

    fleet_.server.push_back(&server);
    fleet_.high_fidelity.push_back(cfg.high_fidelity_rooms ? 1 : 0);
    fleet_.dual_pipe.push_back(cfg.server.routing == hw::HeatRouting::kDualPipe ? 1 : 0);
    fleet_.kp_w_per_k.push_back(cfg.thermostat_gain_w_per_k);
    fleet_.rating_w.push_back(rating.value());
    if (cfg.high_fidelity_rooms) {
      const thermal::Room2R2C model(cfg.room_2r2c, cfg.initial_temperature);
      fleet_.gains_w.push_back(cfg.room_2r2c.internal_gains.value());
      fleet_.hold_r.push_back(cfg.room_2r2c.r_air_env_k_per_w + cfg.room_2r2c.r_env_out_k_per_w);
      fleet_.r1_resistance.push_back(0.0);
      fleet_.r1_decay.push_back(0.0);
      fleet_.r2_r_ae.push_back(cfg.room_2r2c.r_air_env_k_per_w);
      fleet_.r2_r_eo.push_back(cfg.room_2r2c.r_env_out_k_per_w);
      fleet_.r2_c_air.push_back(cfg.room_2r2c.c_air_j_per_k);
      fleet_.r2_c_env.push_back(cfg.room_2r2c.c_env_j_per_k);
      // Memoize the substep schedule for the fixed tick by replaying the
      // integrator's subtractive chain (bit-exact step sequence).
      const double max_step = model.max_step_s();
      double rem = config_.tick_s;
      std::uint32_t n_full = 0;
      while (rem > max_step) {
        ++n_full;
        rem -= max_step;
      }
      fleet_.r2_max_step.push_back(max_step);
      fleet_.r2_h_last.push_back(rem);
      fleet_.r2_n_full.push_back(n_full);
    } else {
      const thermal::Room model(cfg.room, cfg.initial_temperature);
      (void)model;
      fleet_.gains_w.push_back(cfg.room.internal_gains.value());
      fleet_.hold_r.push_back(cfg.room.resistance_k_per_w);
      fleet_.r1_resistance.push_back(cfg.room.resistance_k_per_w);
      fleet_.r1_decay.push_back(std::exp(-config_.tick_s / cfg.room.tau_s()));
      fleet_.r2_r_ae.push_back(0.0);
      fleet_.r2_r_eo.push_back(0.0);
      fleet_.r2_c_air.push_back(0.0);
      fleet_.r2_c_env.push_back(0.0);
      fleet_.r2_max_step.push_back(0.0);
      fleet_.r2_h_last.push_back(0.0);
      fleet_.r2_n_full.push_back(0);
    }
    fleet_.temp_c.push_back(cfg.initial_temperature.value());
    fleet_.env_c.push_back(cfg.initial_temperature.value());
    fleet_.last_demand_w.push_back(0.0);
    fleet_.last_season.push_back(1);
    fleet_.energy_mark_j.push_back(0.0);
    fleet_.regulator.emplace_back(config_.regulator);
    fleet_.delta_j.push_back(0.0);
    fleet_.useful_j.push_back(0.0);
    fleet_.indoors.push_back(0);
  }
  b->room_end = fleet_.size();
  bld_target_c_.push_back(0.0);
  bld_season_.push_back(0);
  bld_demand_w_.push_back(0.0);
  buildings_.push_back(std::move(b));
  bld_region_.push_back(0);
  if (grid_) bind_building_grid(buildings_.size() - 1);
  peers_dirty_ = true;
  shards_dirty_ = true;
  return buildings_.size() - 1;
}

void Df3Platform::wire_peers() {
  const std::size_t n = buildings_.size();
  if (n == 0) return;
  const std::size_t degree = config_.federation_degree == 0
                                 ? n - 1
                                 : std::min(config_.federation_degree, n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    Cluster& c = *buildings_[i]->cluster;
    c.clear_peers();
    for (std::size_t k = 1; k <= degree; ++k) {
      c.add_peer(buildings_[(i + k) % n]->cluster.get());
    }
  }
}

void Df3Platform::ensure_peers_wired() {
  if (!peers_dirty_) return;
  wire_peers();
  peers_dirty_ = false;
}

Cluster& Df3Platform::cluster(std::size_t b) {
  ensure_peers_wired();
  return *buildings_.at(b)->cluster;
}

void Df3Platform::install_grid(grid::GridPlane plane) {
  if (grid_) throw std::logic_error("install_grid: a grid plane is already installed");
  if (plane.region_count() == 0) {
    throw std::invalid_argument("install_grid: plane has no regions");
  }
  grid_ = std::make_unique<grid::GridPlane>(std::move(plane));
  const std::size_t nr = grid_->region_count();
  // Sized once; clusters hold stable pointers into grid_now_ from here on.
  grid_now_.resize(nr);
  grid_accounts_.assign(nr, RegionAccount{});
  for (std::size_t r = 0; r < nr; ++r) grid_now_[r] = grid_->signal(r).sample(sim_.now());
  for (std::size_t b = 0; b < buildings_.size(); ++b) bind_building_grid(b);
#ifndef DF3_OBS_DISABLED
  if (obs_) {
    auto& reg = obs_->registry();
    for (std::size_t r = 0; r < nr; ++r) {
      const std::string base = "grid/" + std::string(grid_->region_name(r));
      feed_.grid_carbon.push_back(reg.gauge(base + "/carbon_gco2_per_kwh"));
      feed_.grid_price.push_back(reg.gauge(base + "/price_eur_per_kwh"));
      feed_.grid_curtailed.push_back(reg.gauge(base + "/curtailed"));
    }
  }
#endif
}

void Df3Platform::bind_building_grid(std::size_t b) {
  Building& bld = *buildings_[b];
  const std::size_t r =
      bld.cfg.grid_region.empty() ? 0 : grid_->region_index(bld.cfg.grid_region);
  bld_region_[b] = r;
  bld.cluster->bind_grid(grid_.get(), &grid_now_[r], r);
}

void Df3Platform::ensure_shards() {
  if (!shards_dirty_) return;
  const std::size_t nb = buildings_.size();
  const std::size_t target = std::max<std::size_t>(1, config_.shard_rooms);
  shards_.clear();
  std::size_t begin = 0;
  std::size_t weight = 0;
  for (std::size_t b = 0; b < nb; ++b) {
    const Building& bd = *buildings_[b];
    // Boiler plants have no fleet rooms but still cost one building's
    // control work; weight them as one room so they pack, not pile up.
    weight += std::max<std::size_t>(1, bd.room_end - bd.room_begin);
    if (weight >= target) {
      shards_.push_back({begin, b + 1, buildings_[begin]->room_begin, bd.room_end});
      begin = b + 1;
      weight = 0;
    }
  }
  if (begin < nb) {
    shards_.push_back({begin, nb, buildings_[begin]->room_begin, buildings_[nb - 1]->room_end});
  }
  q_total_w_.assign(fleet_.size(), 0.0);
  bld_gated_.assign(nb, 0);
  // Quiet flags survive a rebuild only if the building set is unchanged
  // (rebuilds mid-run happen only when buildings were added, which resets
  // the proof anyway).
  if (bld_quiet_.size() != nb) {
    bld_quiet_.assign(nb, 0);
    bld_quiet_epoch_.assign(nb, 0);
  }
  const std::size_t ns = shards_.size();
  shard_substeps_run_.assign(ns, 0);
  shard_substeps_skipped_.assign(ns, 0);
  shard_span_begin_s_.assign(ns, 0.0);
  shard_span_end_s_.assign(ns, 0.0);
  shard_track_name_.clear();
  shard_track_name_.reserve(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    shard_track_name_.push_back("shard-" + std::to_string(s));
  }
  // Control-lane scratch: one lane per shard (DESIGN.md §12).
  bld_sync_deferred_.assign(nb, 0);
  lane_span_begin_s_.assign(ns, 0.0);
  lane_span_end_s_.assign(ns, 0.0);
  lane_findings_.assign(ns, {});
  lane_track_name_.clear();
  lane_track_name_.reserve(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    lane_track_name_.push_back("lane-" + std::to_string(s));
  }
  shards_dirty_ = false;
}

std::size_t Df3Platform::shard_count() {
  ensure_shards();
  return shards_.size();
}

void Df3Platform::add_edge_source(std::size_t b, workload::RequestFactory factory,
                                  double rate_per_s, bool direct, bool via_wifi) {
  add_edge_source(b, std::move(factory), std::make_unique<workload::PoissonArrivals>(rate_per_s),
                  direct, via_wifi);
}

void Df3Platform::add_edge_source(std::size_t b, workload::RequestFactory factory,
                                  std::unique_ptr<workload::ArrivalProcess> arrivals,
                                  bool direct, bool via_wifi) {
  if (b >= buildings_.size()) throw std::out_of_range("add_edge_source: bad building");
  const auto name = "edge-src-" + std::to_string(source_counter_++);
  sources_.push_back(std::make_unique<workload::WorkloadSource>(
      sim_, name, config_.seed, std::move(arrivals), std::move(factory),
      [this, b, direct, via_wifi](workload::Request r) {
        r.flow = direct ? workload::Flow::kEdgeDirect : workload::Flow::kEdgeIndirect;
        deliver_to_cluster(std::move(r), b, direct, via_wifi);
      }));
  sources_.back()->start();
}

void Df3Platform::add_cloud_source(workload::RequestFactory factory, double rate_per_s) {
  add_cloud_source(std::move(factory), std::make_unique<workload::PoissonArrivals>(rate_per_s));
}

void Df3Platform::add_cloud_source(workload::RequestFactory factory,
                                   std::unique_ptr<workload::ArrivalProcess> arrivals) {
  const auto name = "cloud-src-" + std::to_string(source_counter_++);
  sources_.push_back(std::make_unique<workload::WorkloadSource>(
      sim_, name, config_.seed, std::move(arrivals), std::move(factory),
      [this](workload::Request r) {
        r.flow = workload::Flow::kCloud;
        auditor_.on_submitted(r);
        open_journey(r.id);
        Cluster* target = route_cloud_target();
        if (target == nullptr) {
          if (!datacenter_) {
            workload::CompletionRecord rec;
            rec.request = std::move(r);
            rec.outcome = workload::Outcome::kRejected;
            rec.completed_at = sim_.now();
            rec.served_by = "nowhere";
            record_completion(rec);
            return;
          }
          datacenter_->submit(std::move(r), internet_node_,
                              [this](workload::CompletionRecord rec) {
                                record_completion(rec);
                              });
          return;
        }
        // Pay the Internet -> gateway transport, then hand to the cluster.
        const auto gw = target->gateway_node();
        network_->send(
            net::Message{internet_node_, gw, r.input_size, r.id, obs::HopKind::kTransport},
            [target, r, this](sim::Time) mutable { target->submit(std::move(r), internet_node_); },
            [this, r]() mutable {
              workload::CompletionRecord rec;
              rec.request = std::move(r);
              rec.outcome = workload::Outcome::kDropped;
              rec.completed_at = sim_.now();
              rec.served_by = "uplink-partition";
              record_completion(rec);
            });
      }));
  sources_.back()->start();
}

void Df3Platform::stop_sources() {
  for (auto& s : sources_) s->stop();
}

void Df3Platform::inject_edge(std::size_t b, workload::Request r, bool direct) {
  if (b >= buildings_.size()) throw std::out_of_range("inject_edge: bad building");
  ensure_peers_wired();
  r.arrival = sim_.now();
  r.flow = direct ? workload::Flow::kEdgeDirect : workload::Flow::kEdgeIndirect;
  deliver_to_cluster(std::move(r), b, direct, /*via_wifi=*/false);
}

void Df3Platform::inject_cloud_at(std::size_t b, workload::Request r) {
  if (b >= buildings_.size()) throw std::out_of_range("inject_cloud_at: bad building");
  ensure_peers_wired();
  r.arrival = sim_.now();
  r.flow = workload::Flow::kCloud;
  auditor_.on_submitted(r);
  open_journey(r.id);
  Cluster* target = buildings_[b]->cluster.get();
  // Same Internet -> gateway transport (and partition drop path) as the
  // routed cloud-source arrivals; only the target choice differs.
  network_->send(
      net::Message{internet_node_, target->gateway_node(), r.input_size, r.id,
                   obs::HopKind::kTransport},
      [target, r, this](sim::Time) mutable { target->submit(std::move(r), internet_node_); },
      [this, r]() mutable {
        workload::CompletionRecord rec;
        rec.request = std::move(r);
        rec.outcome = workload::Outcome::kDropped;
        rec.completed_at = sim_.now();
        rec.served_by = "uplink-partition";
        record_completion(rec);
      });
}

void Df3Platform::inject_pinned(std::size_t b, std::size_t w, workload::Request r) {
  if (b >= buildings_.size()) throw std::out_of_range("inject_pinned: bad building");
  ensure_peers_wired();
  r.arrival = sim_.now();
  r.flow = workload::Flow::kEdgeDirect;
  auditor_.on_submitted(r);
  open_journey(r.id);
  buildings_[b]->cluster->run_pinned(
      std::move(r), w, [this](workload::CompletionRecord rec) { record_completion(rec); });
}

void Df3Platform::set_cloud_routing(const std::string& name) {
  routing_ = policy::Registry::global().make_routing(name);
}

void Df3Platform::set_routing_policy(std::unique_ptr<policy::RoutingPolicy> p) {
  if (!p) throw std::invalid_argument("set_routing_policy: null policy");
  routing_ = std::move(p);
}

Cluster* Df3Platform::route_cloud_target() {
  if (buildings_.empty()) return nullptr;
  policy::RoutingView view;
  view.cluster_count = buildings_.size();
  view.has_datacenter = datacenter_ != nullptr;
  // The view is filled lazily per the policy's declared needs so that the
  // cheap policies keep the per-arrival cost of the old enum dispatch.
  if (routing_->needs_season()) {
    ++routing_fills_.season;
    view.seasonal_outdoor_c = weather_.seasonal_component(sim_.now()).value();
    view.heating_cutoff_c =
        buildings_.front()->cfg.comfort.heating_cutoff_outdoor.value();
  }
  const bool want_info = routing_->needs_cluster_info();
  const bool want_grid = routing_->needs_grid();
  if (want_info || want_grid) {
    // Refill from scratch (zeroed) so a policy can never observe a stale
    // field it did not ask for on this pick.
    routing_scratch_.assign(buildings_.size(), policy::ClusterInfo{});
    if (want_info) {
      ++routing_fills_.cluster;
      for (std::size_t b = 0; b < buildings_.size(); ++b) {
        const Cluster& c = *buildings_[b]->cluster;
        const double cores = static_cast<double>(std::max(1, c.usable_cores()));
        routing_scratch_[b].backlog_gc_per_core = c.queued_gigacycles() / cores;
        routing_scratch_[b].heat_demand_w_per_core = bld_demand_w_[b] / cores;
      }
    }
    if (want_grid && grid_) {
      ++routing_fills_.grid;
      view.grid_valid = true;
      for (std::size_t b = 0; b < buildings_.size(); ++b) {
        const grid::GridSample& s = grid_now_[bld_region_[b]];
        routing_scratch_[b].carbon_gco2_per_kwh = s.carbon_gco2_per_kwh;
        routing_scratch_[b].price_eur_per_kwh = s.price_eur_per_kwh;
        routing_scratch_[b].renewable_fraction = s.renewable_fraction;
      }
    }
    view.clusters = routing_scratch_;
  }
  const std::size_t pick = routing_->pick(view);
  ++routing_picks_;
  if (pick == policy::kRouteToDatacenter) return nullptr;
  if (pick >= buildings_.size()) {
    throw std::out_of_range("routing policy '" + std::string(routing_->name()) +
                            "' picked a cluster out of range");
  }
  return buildings_[pick]->cluster.get();
}

void Df3Platform::deliver_to_cluster(workload::Request r, std::size_t b, bool direct,
                                     bool via_wifi) {
  Building& building = *buildings_[b];
  auditor_.on_submitted(r);
  open_journey(r.id);
  const net::NodeId origin = via_wifi ? building.wifi_node : building.device_node;
  // Const worker access: reading the entry node must not bump the cluster's
  // control epoch (that would un-gate the district on every direct arrival).
  const net::NodeId entry = direct ? std::as_const(*building.cluster).worker(0).node()
                                   : building.cluster->gateway_node();
  network_->send(
      net::Message{origin, entry, r.input_size, r.id, obs::HopKind::kTransport},
      [this, b, direct, origin, r](sim::Time) mutable {
        Building& bd = *buildings_[b];
        if (direct) {
          bd.cluster->submit_direct(std::move(r), origin, 0);
        } else {
          bd.cluster->submit(std::move(r), origin);
        }
      },
      [this, r]() mutable {
        workload::CompletionRecord rec;
        rec.request = std::move(r);
        rec.outcome = workload::Outcome::kDropped;
        rec.completed_at = sim_.now();
        rec.served_by = "lan-partition";
        record_completion(rec);
      });
}

namespace {
[[maybe_unused]] constexpr obs::Phase terminal_phase(workload::Outcome o) {
  switch (o) {
    case workload::Outcome::kCompleted: return obs::Phase::kCompleted;
    case workload::Outcome::kDeadlineMissed: return obs::Phase::kDeadlineMissed;
    case workload::Outcome::kRejected: return obs::Phase::kRejected;
    case workload::Outcome::kDropped: return obs::Phase::kDropped;
  }
  return obs::Phase::kCompleted;
}

[[maybe_unused]] constexpr obs::SloOutcome slo_outcome(workload::Outcome o) {
  switch (o) {
    case workload::Outcome::kCompleted: return obs::SloOutcome::kOk;
    case workload::Outcome::kDeadlineMissed: return obs::SloOutcome::kMissed;
    case workload::Outcome::kRejected:
    case workload::Outcome::kDropped: return obs::SloOutcome::kFailed;
  }
  return obs::SloOutcome::kFailed;
}

/// Flow carried on journey arrival/terminal links: 0 = unknown, else flow+1.
[[maybe_unused]] constexpr std::uint32_t journey_flow_attr(workload::Flow f) {
  return static_cast<std::uint32_t>(f) + 1;
}
}  // namespace

void Df3Platform::open_journey([[maybe_unused]] std::uint64_t id) {
#ifndef DF3_OBS_DISABLED
  // The owned sink, not the installed global: manual injections happen
  // between run() calls, when no Install scope is active.
  if (obs_) obs_->journey_open(id);
#endif
}

void Df3Platform::record_completion(const workload::CompletionRecord& rec) {
  auditor_.on_terminal(rec);
  flow_metrics_.record(rec);
  DF3_OBS_IF(o) {
    if (rec.outcome == workload::Outcome::kCompleted) {
      o->registry().at_histogram(feed_.response_s).observe(rec.response_time());
    }
    // Per-flow SLO plane: every terminal feeds the rolling window, so the
    // deadline-miss ratio and response quantiles are queryable live.
    o->slo().record(static_cast<std::uint32_t>(rec.request.flow), slo_outcome(rec.outcome),
                    rec.response_time(), rec.completed_at);
    if (o->tracing()) {
      o->journey_terminal(this, "lifecycle", terminal_phase(rec.outcome), rec.completed_at,
                          rec.request.id, journey_flow_attr(rec.request.flow));
    }
  }
}

std::vector<std::string> Df3Platform::audit_now() {
  std::vector<std::string> findings;
  for (const auto& b : buildings_) b->cluster->audit(findings);
  for (const auto& f : findings) auditor_.report(f);
  return findings;
}

fleet::Substeps2R2C Df3Platform::physics_building(std::size_t b, sim::Time t,
                                                  util::Celsius t_out, util::Celsius seasonal,
                                                  double hour) {
  const double dt = config_.tick_s;
  const util::Seconds dts{dt};
  Building& bd = *buildings_[b];
  const bool heating_season = seasonal < bd.cfg.comfort.heating_cutoff_outdoor;
  const util::Celsius target = bd.cfg.comfort.target_at_hour(hour);
  bld_season_[b] = heating_season ? 1 : 0;
  bld_target_c_[b] = target.value();
  // Activity-gate decision for this tick: the last ungated control sweep
  // proved every regulator idle-stable (regulate() is a bitwise no-op) and
  // no exogenous control-plane touch has invalidated the proof since. The
  // control phase replays the decision from bld_gated_.
  const bool gated = config_.activity_gating && !heating_season && bld_quiet_[b] != 0 &&
                     bd.cluster->control_epoch() == bld_quiet_epoch_[b];
  bld_gated_[b] = gated ? 1 : 0;
  // Solar/occupancy gains ramp with the season (zero in deep winter);
  // identical for every room of the building.
  const double solar_frac = std::clamp((seasonal.value() - 5.0) / 12.0, 0.0, 1.0);
  const double solar_w = bd.cfg.solar_gain_peak_w * solar_frac;
  const std::size_t begin = bd.room_begin;
  const std::size_t end = bd.room_end;
  fleet::Substeps2R2C sub;

  // Pass A (scalar, per room): integrate the interval that just elapsed at
  // the server's current operating point (piecewise-constant at tick
  // scale), stage the room's net heat input for the vector kernel, and
  // stage the energy split for the serial ledger reduction. Relative to the
  // old fused per-room loop this only hoists the temperature update out of
  // the middle: nothing here reads temp_c, so the split is bit-free.
  for (std::size_t i = begin; i < end; ++i) {
    hw::DfServer& server = *fleet_.server[i];
    const bool last_season = fleet_.last_season[i] != 0;
    server.advance(dts, last_season);
    const double delta_j = server.energy_consumed().value() - fleet_.energy_mark_j[i];
    fleet_.energy_mark_j[i] = server.energy_consumed().value();
    const double emitted_w = delta_j / dt;
    const bool indoors = fleet_.dual_pipe[i] == 0 || last_season;
    const double q_heat = (indoors ? emitted_w : 0.0) + solar_w;
    q_total_w_[i] = q_heat + fleet_.gains_w[i];
    const double wanted_j = fleet_.last_demand_w[i] * dt;
    fleet_.delta_j[i] = delta_j;
    fleet_.useful_j[i] = std::min(delta_j, wanted_j);
    fleet_.indoors[i] = indoors ? 1 : 0;
    fleet_.regulator[i].record(dts, util::Watts{emitted_w},
                               util::Watts{fleet_.last_demand_w[i]});
  }

  // Pass B (vector): the room-temperature update over the whole contiguous
  // slice. Fidelity and the 2R2C substep schedule are per-building uniform
  // (one BuildingConfig), so the first room's parameters describe them all.
  // The kernels mirror Room/Room2R2C::advance term for term (bit-exact),
  // with decay factors / substep schedules precomputed at add_building.
  if (const std::size_t n = end - begin; n > 0) {
    if (fleet_.high_fidelity[begin] == 0) {
      fleet::step_rooms_1r1c(n, t_out.value(), q_total_w_.data() + begin,
                             fleet_.r1_resistance.data() + begin,
                             fleet_.r1_decay.data() + begin, fleet_.temp_c.data() + begin);
    } else {
      // A gated (quiescent) district may stop substepping at a bitwise
      // fixed point — provably identical to running every substep.
      sub = fleet::step_rooms_2r2c(
          n, t_out.value(), q_total_w_.data() + begin, fleet_.r2_r_ae.data() + begin,
          fleet_.r2_r_eo.data() + begin, fleet_.r2_c_air.data() + begin,
          fleet_.r2_c_env.data() + begin, fleet_.r2_max_step[begin], fleet_.r2_h_last[begin],
          fleet_.r2_n_full[begin], /*allow_early_exit=*/gated, fleet_.temp_c.data() + begin,
          fleet_.env_c.data() + begin);
    }
  }

  // Pass C (scalar): comfort sampling against the post-update temperature,
  // in room order — the same per-building sample sequence as the fused loop.
  for (std::size_t i = begin; i < end; ++i) {
    bd.comfort_metrics.sample(t, util::Celsius{fleet_.temp_c[i]}, target);
  }

  if (bd.tank_unit) {
    // Digital-boiler plant: the hot-water store is the "thermostat" and it
    // wants heat in every season.
    TankUnit& tu = *bd.tank_unit;
    hw::DfServer& server = *tu.server;
    server.advance(dts, /*heating_season=*/true);
    const double delta_j = server.energy_consumed().value() - tu.energy_mark.value();
    tu.energy_mark = server.energy_consumed();
    const util::Watts emitted{delta_j / dt};
    const double draw = thermal::hot_water_draw_lps(t, bd.cfg.daily_hot_water_l);
    tu.tank.advance(dts, emitted, draw);
    tu.regulator.record(dts, emitted, tu.last_demand);
    bd.comfort_metrics.sample(t, tu.tank.temperature(), tu.tank.params().setpoint);
    const util::Joules wanted = tu.last_demand * dts;
    tu.scratch_delta_j = delta_j;
    tu.scratch_useful_j = std::min(delta_j, wanted.value());
    tu.scratch_draw_lps = draw;
  }
  return sub;
}

void Df3Platform::physics_shard(std::size_t s, sim::Time t, util::Celsius t_out,
                                util::Celsius seasonal, double hour) {
  const Shard& sh = shards_[s];
  std::uint64_t run = 0;
  std::uint64_t skipped = 0;
  for (std::size_t b = sh.bld_begin; b < sh.bld_end; ++b) {
    const fleet::Substeps2R2C sub = physics_building(b, t, t_out, seasonal, hour);
    run += sub.full_steps_run;
    skipped += sub.full_steps_skipped;
  }
  shard_substeps_run_[s] = run;
  shard_substeps_skipped_[s] = skipped;
}

std::size_t Df3Platform::physics_thread_count() const {
  // hardware_concurrency() is a sysconf query (~microseconds) — resolve it
  // once and reuse; the machine's core count does not change mid-run.
  if (physics_threads_resolved_ == 0) {
    std::size_t n = config_.physics_threads;
    if (n == 0) {
      // DF3_PHYSICS_THREADS overrides auto-detection (CI and bench sweeps
      // pin the parallel width without recompiling scenarios); an explicit
      // config value still wins over the environment.
      if (const char* env = std::getenv("DF3_PHYSICS_THREADS")) {
        char* parse_end = nullptr;
        const unsigned long v = std::strtoul(env, &parse_end, 10);
        if (parse_end != env && *parse_end == '\0' && v > 0) {
          n = static_cast<std::size_t>(v);
        }
      }
    }
    if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    physics_threads_resolved_ = n;
  }
  return physics_threads_resolved_;
}

std::size_t Df3Platform::control_thread_count() const {
  // Mirrors physics_thread_count(): explicit config wins, then the
  // DF3_CONTROL_THREADS environment override, then hardware concurrency;
  // resolved once (hardware_concurrency is a sysconf query).
  if (control_threads_resolved_ == 0) {
    std::size_t n = config_.control_threads;
    if (n == 0) {
      if (const char* env = std::getenv("DF3_CONTROL_THREADS")) {
        char* parse_end = nullptr;
        const unsigned long v = std::strtoul(env, &parse_end, 10);
        if (parse_end != env && *parse_end == '\0' && v > 0) {
          n = static_cast<std::size_t>(v);
        }
      }
    }
    if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    control_threads_resolved_ = n;
  }
  return control_threads_resolved_;
}

void Df3Platform::control_building_math(std::size_t b, double t_out_c,
                                        std::vector<std::string>& findings) {
  Building& bd = *buildings_[b];
  if (bld_gated_[b] != 0) {
    // Activity-gated fast path, lane half. The building was proved quiet:
    // off season the thermostat demand chain is identically zero, every
    // regulator's regulate() is a bitwise no-op against the observed
    // server state, and last_demand/last_season already hold zero. Only
    // the inlet feedback (it drives the thermal throttle and thus
    // usable_cores) and the kFull no-op replay run here; the ledger and
    // temperature aggregates belong to the boundary drain.
    const bool full_audit = auditor_.level() == metrics::AuditLevel::kFull;
    for (std::size_t i = bd.room_begin; i < bd.room_end; ++i) {
      hw::DfServer& server = *fleet_.server[i];
      if (full_audit) {
        // Replay the skipped regulate() and flag any state change: the
        // gate's no-op proof must hold bit-for-bit. (The replay itself
        // keeps the trajectory identical — it is exactly what the stepped
        // path would have executed.) Findings buffer per lane — the
        // auditor is shared — and report after the drain in lane order.
        const bool powered0 = server.powered();
        const std::size_t pstate0 = server.pstate();
        const int filler0 = server.filler_cores();
        const int busy0 = server.busy_cores();
        fleet_.regulator[i].regulate(server,
                                     thermal::HeatDemand{util::Watts{0.0}, false});
        if (server.powered() != powered0 || server.pstate() != pstate0 ||
            server.filler_cores() != filler0 || server.busy_cores() != busy0) {
          findings.push_back("activity-gate: regulate() mutated a quiet server in building " +
                             bd.cfg.name);
        }
      }
      server.set_inlet_temperature(util::Celsius{fleet_.temp_c[i]});
    }
    bld_demand_w_[b] = 0.0;
  } else {
    const bool heating_season = bld_season_[b] != 0;
    const double target_c = bld_target_c_[b];
    // Per-building demand accumulates separately from the city total so the
    // city_demand_w addition chain (and thus the golden digests) is
    // untouched; heat-aware routing reads this between ticks.
    double bld_demand_w = 0.0;
    for (std::size_t i = bd.room_begin; i < bd.room_end; ++i) {
      // Modulating thermostat (pure math, mirrored from
      // ModulatingThermostat::demand + holding_power of the room model).
      double demand_w = 0.0;
      if (heating_season) {
        const double needed =
            (target_c - t_out_c) / fleet_.hold_r[i] - fleet_.gains_w[i];
        const double hold = std::max(0.0, needed);
        const double raw = hold + fleet_.kp_w_per_k[i] * (target_c - fleet_.temp_c[i]);
        demand_w = std::clamp(raw, 0.0, fleet_.rating_w[i]);
      }
      hw::DfServer& server = *fleet_.server[i];
      fleet_.regulator[i].regulate(server,
                                   thermal::HeatDemand{util::Watts{demand_w}, heating_season});
      server.set_inlet_temperature(util::Celsius{fleet_.temp_c[i]});
      fleet_.last_demand_w[i] = demand_w;
      fleet_.last_season[i] = heating_season ? 1 : 0;
      bld_demand_w += demand_w;
    }
    if (bd.tank_unit) {
      TankUnit& tu = *bd.tank_unit;
      const auto demand = tu.tank.demand(tu.scratch_draw_lps, tu.rating);
      tu.regulator.regulate(*tu.server, demand);
      // The immersion oil returns cooled from the tank heat exchanger:
      // inlet sits a design approach (~15 K) below the store, so a store
      // at setpoint keeps the boiler inside its thermal envelope while an
      // overheating store still triggers the throttle.
      tu.server->set_inlet_temperature(util::Celsius{tu.tank.temperature().value() - 15.0});
      tu.last_demand = demand.power;
      bld_demand_w += demand.power.value();
    }
    bld_demand_w_[b] = bld_demand_w;
    // Re-derive the quiet proof from the post-regulate server state: the
    // gate may fire next tick only if regulate() left every chassis where
    // its idle branch's setters early-return (so replaying it cannot move a
    // bit). The cluster epoch pins the proof; any exogenous control-plane
    // touch (fault injector, pinned run, test poking a worker) bumps it
    // and forces the stepped path until the proof is re-established here.
    if (config_.activity_gating) {
      bool quiet = !heating_season && !bd.tank_unit && bd.room_end > bd.room_begin;
      if (quiet) {
        const bool aggressive = config_.regulator.gating == GatingPolicy::kAggressive;
        for (std::size_t i = bd.room_begin; quiet && i < bd.room_end; ++i) {
          const hw::DfServer& server = *fleet_.server[i];
          quiet = aggressive ? (!server.powered() && server.busy_cores() == 0 &&
                                server.filler_cores() == 0)
                             : (server.powered() && server.pstate() == 0 &&
                                server.filler_cores() == 0);
        }
      }
      bld_quiet_[b] = quiet ? 1 : 0;
      if (quiet) bld_quiet_epoch_[b] = bd.cluster->control_epoch();
    }
  }
  // Speed sync: a control-quiescent cluster (nothing queued, nothing
  // running) has an engine-free sync_workers() and finishes it here inside
  // the lane; the rest defer to the boundary drain, where event re-arms
  // and queue pumps replay serially in building-major order.
  if (bd.cluster->control_quiescent()) {
    bd.cluster->sync_workers();
    bld_sync_deferred_[b] = 0;
  } else {
    bld_sync_deferred_[b] = 1;
  }
}

void Df3Platform::control_building_reduce(std::size_t b,
                                          metrics::EnergyLedger::Accumulator& energy,
                                          double& city_demand_w, double& city_cores,
                                          double& temp_sum, std::size_t& room_count) {
  Building& bd = *buildings_[b];
  if (bld_gated_[b] != 0) {
    // Gated drain half: the ledger split (servers draw standby power even
    // gated off) and the temperature aggregates. useful_j is exactly +0.0
    // (last demand was zero), so the useful-heat add is skipped and waste
    // takes the full delta whether or not the heat stays indoors; the
    // city/building demand adds would be +0.0 and are elided, as in the
    // fused sweep.
    for (std::size_t i = bd.room_begin; i < bd.room_end; ++i) {
      const util::Joules delta{fleet_.delta_j[i]};
      energy.add_it(delta);
      energy.add_overhead(delta * kDfOverheadFraction);
      energy.add_waste_heat(delta);
      temp_sum += fleet_.temp_c[i];
      ++room_count;
    }
  } else {
    for (std::size_t i = bd.room_begin; i < bd.room_end; ++i) {
      const util::Joules delta{fleet_.delta_j[i]};
      energy.add_it(delta);
      energy.add_overhead(delta * kDfOverheadFraction);
      const util::Joules useful{fleet_.useful_j[i]};
      if (fleet_.indoors[i] != 0) {
        energy.add_useful_heat(useful);
        energy.add_waste_heat(delta - useful);
      } else {
        energy.add_waste_heat(delta);
      }
      // last_demand_w was written by the lane stage this tick, so this is
      // the same value (and the same accumulation order) the fused sweep
      // added.
      city_demand_w += fleet_.last_demand_w[i];
      temp_sum += fleet_.temp_c[i];
      ++room_count;
    }
    if (bd.tank_unit) {
      TankUnit& tu = *bd.tank_unit;
      const util::Joules delta{tu.scratch_delta_j};
      energy.add_it(delta);
      energy.add_overhead(delta * kDfOverheadFraction);
      const util::Joules useful{tu.scratch_useful_j};
      energy.add_useful_heat(useful);
      energy.add_waste_heat(delta - useful);
      city_demand_w += tu.last_demand.value();
    }
  }
  // Deferred speed sync: the event-calendar half of the control loop
  // (settle + re-arm completions, queue pumps, peer hand-offs) happens
  // here, in the same building-major sequence the fused serial sweep
  // produced — the deterministic merge point of every lane's outbound
  // effects.
  if (bld_sync_deferred_[b] != 0) bd.cluster->sync_workers();
  city_cores += bd.cluster->usable_cores();
}

void Df3Platform::tick(sim::Time t) {
  ensure_shards();
  const util::Celsius t_out = weather_.outdoor_temperature(t);
  const util::Celsius seasonal = weather_.seasonal_component(t);
  const double hour = thermal::hour_of_day(t);
  const std::size_t nb = buildings_.size();
  const std::size_t ns = shards_.size();

  // Sample every grid region once per tick, next to the weather sample —
  // the one read the whole tick (policies, accounting, gauges) shares.
  if (grid_) {
    for (std::size_t r = 0; r < grid_now_.size(); ++r) {
      grid_now_[r] = grid_->signal(r).sample(t);
    }
  }

  // Reduction + control state. The control phase replays the exact
  // accumulation order of the old interleaved loop (ledger adds and city
  // aggregates are floating-point order-sensitive) whatever the lane
  // count; the ledger accumulator keeps the four energy slots in registers
  // for the whole tick with the identical per-room add sequence.
  double city_demand_w = 0.0;
  double city_cores = 0.0;
  double temp_sum = 0.0;
  std::size_t room_count = 0;
  metrics::EnergyLedger::Accumulator energy(df_energy_);

  // --- Phase 1: fleet physics. Every building evolves only state it owns
  // (its fleet slice, servers, tank, comfort collectors), so the sweep can
  // fan out across threads; nothing here touches the event calendar, the
  // ledger, or another building. Bit-for-bit identical for any thread
  // count and scheduling order.
  //
  // --- Phase 2: control, in two stages (DESIGN.md §12). The *lane* stage
  // (control_building_math) makes every building-local control decision —
  // thermostat, regulate(), inlet feedback, quiet proof — and may fan out
  // one lane per district shard: within the conservative horizon
  // `now + Network::min_peer_latency()` no cross-cluster influence can
  // reach a lane, so lanes advance this tick instant independently. The
  // *boundary drain* (control_building_reduce) then replays everything
  // cross-cutting — ledger reduction, event re-arms, queue pumps, peer
  // hand-offs — serially in building-major order, the deterministic merge
  // of every lane's outbound effects.
  //
  // In the fully serial case all stages fuse per building: physics(b) and
  // math(b) only touch building-b state, the drain touches shared state in
  // building order either way, and peer views are pinned by the
  // pre-control lane snapshot — so the interleaving
  //   physics(0), math(0), reduce(0), physics(1), ...
  // performs the identical operation sequence on every accumulator and on
  // the event calendar as the staged
  //   physics(0..n), math(0..n), reduce(0..n)
  // — same bits, one pass over each server's cache lines instead of three.
  // Tick-phase scopes run on the *host* clock: every sub-phase of a tick
  // happens at one simulated instant, so only wall time gives the spans
  // extent. Trace content for these spans is machine-dependent by nature;
  // the simulated trajectory stays bit-identical (hooks observe only).
#ifndef DF3_OBS_DISABLED
  obs::Observability* const sink = obs::current();
  const bool phase_scopes = sink != nullptr && sink->tracing();
  double phase_mark_s = phase_scopes ? sink->trace().host_now_s() : 0.0;
  const auto close_phase = [&](obs::Phase p) {
    const double end_s = sink->trace().host_now_s();
    sink->host_span(this, "tick", p, phase_mark_s, end_s);
    phase_mark_s = end_s;
  };
#else
  constexpr obs::Observability* sink = nullptr;
  constexpr bool phase_scopes = false;
  const auto close_phase = [](obs::Phase) {};
#endif

  // The effective thread counts clamp to the shard/lane count: a fleet
  // with fewer districts than cores must not wake workers that would find
  // no work to claim.
  const std::size_t threads = std::min(physics_thread_count(), std::max<std::size_t>(1, ns));
  // Conservative-lookahead gate for the control lanes: parallel lane
  // advancement is licensed by every cross-cluster path carrying at least
  // min_peer_latency() of delay. A zero-latency link collapses the horizon
  // to the tick instant itself, so the control phase falls back to the
  // serial sweep instead of risking a same-instant cross-lane delivery.
  std::size_t ctrl = std::min(control_thread_count(), std::max<std::size_t>(1, ns));
  if (ctrl > 1 && !(network_->min_peer_latency().value() > 0.0)) {
    ctrl = 1;
    ++lane_fallback_ticks_;
  }

  // Pre-control peer snapshot: freeze the load signals PeerSelector views
  // read so a control-phase pump observes every peer as it stood at the
  // start of the conservative window, independent of lane interleaving.
  // Only needed when some cluster can actually pump this tick (non-empty
  // queue); the scan itself reads pre-control state in every mode.
  bool any_queued = false;
  for (const auto& b : buildings_) {
    if (b->cluster->queued() > 0) {
      any_queued = true;
      break;
    }
  }
  if (any_queued) {
    for (const auto& b : buildings_) b->cluster->arm_lane_snapshot();
  }

  if (threads > 1) {
    const std::size_t helpers = threads - 1;
    if (!physics_pool_ || physics_pool_->size() < helpers) {
      physics_pool_ = std::make_unique<util::ThreadPool>(helpers);
    }
    // One work item per shard. Workers only time-stamp their slices (the
    // trace ring is single-writer); the serial section emits the spans.
    physics_pool_->for_each_index(ns, [&](std::size_t s) {
      if (phase_scopes) shard_span_begin_s_[s] = sink->trace().host_now_s();
      physics_shard(s, t, t_out, seasonal, hour);
      if (phase_scopes) shard_span_end_s_[s] = sink->trace().host_now_s();
    });
    if (phase_scopes) {
      for (std::size_t s = 0; s < ns; ++s) {
        sink->host_span(&shard_track_name_[s], shard_track_name_[s],
                        obs::Phase::kShardPhysics, shard_span_begin_s_[s],
                        shard_span_end_s_[s]);
      }
      close_phase(obs::Phase::kPhysicsPhase);
    }
  } else if (ctrl > 1) {
    // Serial physics ahead of parallel control lanes (the fused serial
    // walk would interleave control into the physics pass).
    for (std::size_t s = 0; s < ns; ++s) physics_shard(s, t, t_out, seasonal, hour);
    if (phase_scopes) close_phase(obs::Phase::kPhysicsPhase);
  }

  if (threads > 1 || ctrl > 1) {
    if (ctrl > 1) {
      ++lane_parallel_ticks_;
      const std::size_t helpers = ctrl - 1;
      if (!physics_pool_ || physics_pool_->size() < helpers) {
        physics_pool_ = std::make_unique<util::ThreadPool>(helpers);
      }
      // Lane stage: one control lane per district shard on the shared
      // pool. Lane workers only time-stamp their spans; the serial
      // section emits them on per-lane tracks.
      physics_pool_->for_each_index(ns, [&](std::size_t s) {
        if (phase_scopes) lane_span_begin_s_[s] = sink->trace().host_now_s();
        const Shard& sh = shards_[s];
        for (std::size_t b = sh.bld_begin; b < sh.bld_end; ++b) {
          control_building_math(b, t_out.value(), lane_findings_[s]);
        }
        if (phase_scopes) lane_span_end_s_[s] = sink->trace().host_now_s();
      });
      if (phase_scopes) {
        for (std::size_t s = 0; s < ns; ++s) {
          sink->host_span(&lane_track_name_[s], lane_track_name_[s],
                          obs::Phase::kLaneControl, lane_span_begin_s_[s],
                          lane_span_end_s_[s]);
        }
      }
      // Boundary drain, building-major.
      for (std::size_t b = 0; b < nb; ++b) {
        control_building_reduce(b, energy, city_demand_w, city_cores, temp_sum, room_count);
      }
    } else {
      // Serial control after parallel physics: fuse the two control
      // stages per building (one pass over each building's cache lines).
      for (std::size_t s = 0; s < ns; ++s) {
        const Shard& sh = shards_[s];
        for (std::size_t b = sh.bld_begin; b < sh.bld_end; ++b) {
          control_building_math(b, t_out.value(), lane_findings_[s]);
          control_building_reduce(b, energy, city_demand_w, city_cores, temp_sum, room_count);
        }
      }
    }
    if (phase_scopes) close_phase(obs::Phase::kControlPhase);
  } else {
    // Fully serial mode fuses physics + both control stages per building
    // (one pass over each server's cache lines); the whole sweep is
    // reported as one physics-phase span.
    for (std::size_t s = 0; s < ns; ++s) {
      const Shard& sh = shards_[s];
      std::uint64_t run = 0;
      std::uint64_t skipped = 0;
      for (std::size_t b = sh.bld_begin; b < sh.bld_end; ++b) {
        const fleet::Substeps2R2C sub = physics_building(b, t, t_out, seasonal, hour);
        run += sub.full_steps_run;
        skipped += sub.full_steps_skipped;
        control_building_math(b, t_out.value(), lane_findings_[s]);
        control_building_reduce(b, energy, city_demand_w, city_cores, temp_sum, room_count);
      }
      shard_substeps_run_[s] = run;
      shard_substeps_skipped_[s] = skipped;
    }
    if (phase_scopes) close_phase(obs::Phase::kPhysicsPhase);
  }

  // Gated-replay findings (buffered per lane under kFull audit) report in
  // lane order — which is building order, since lanes cover contiguous
  // ascending building ranges — identically in every execution mode.
  if (auditor_.level() == metrics::AuditLevel::kFull) {
    for (auto& lane : lane_findings_) {
      for (auto& f : lane) auditor_.report(std::move(f));
      lane.clear();
    }
  }
  if (any_queued) {
    for (const auto& b : buildings_) b->cluster->disarm_lane_snapshot();
  }
  energy.commit();

  // Grid attribution (DESIGN.md §15), after the ledger commit so it reads
  // the same per-room deltas the reduction consumed. Each building's
  // facility joules this tick — IT plus its overhead share — accrue to its
  // region's account at the sample active *now*, which is what makes the
  // economics spend-time-weighted rather than end-of-run averages. A
  // separate pass over the scratch arrays: the existing ledger float
  // chains are untouched, so no-grid runs stay bit-for-bit identical.
  if (grid_) {
    for (std::size_t b = 0; b < nb; ++b) {
      const Building& bld = *buildings_[b];
      double bld_j = 0.0;
      for (std::size_t i = bld.room_begin; i < bld.room_end; ++i) bld_j += fleet_.delta_j[i];
      if (bld.tank_unit) bld_j += bld.tank_unit->scratch_delta_j;
      bld_j *= 1.0 + kDfOverheadFraction;
      const grid::GridSample& s = grid_now_[bld_region_[b]];
      RegionAccount& acct = grid_accounts_[bld_region_[b]];
      acct.energy_j += bld_j;
      const double kwh = bld_j / 3.6e6;
      acct.cost_eur += kwh * s.price_eur_per_kwh;
      acct.co2_g += kwh * s.carbon_gco2_per_kwh;
      df_energy_.add_grid_spend(util::Joules{bld_j}, s.price_eur_per_kwh,
                                s.carbon_gco2_per_kwh);
    }
    for (std::size_t r = 0; r < grid_accounts_.size(); ++r) {
      if (grid_->curtailed(r)) ++grid_accounts_[r].curtailed_ticks;
    }
  }

  // Gating & substep accounting: a district counts as gated only when
  // every one of its buildings took the fast path this tick.
  tick_gated_districts_ = 0;
  for (std::size_t s = 0; s < ns; ++s) {
    const Shard& sh = shards_[s];
    bool all_gated = sh.bld_end > sh.bld_begin;
    for (std::size_t b = sh.bld_begin; all_gated && b < sh.bld_end; ++b) {
      all_gated = bld_gated_[b] != 0;
    }
    if (all_gated) ++tick_gated_districts_;
    substeps_run_ += shard_substeps_run_[s];
    substeps_skipped_ += shard_substeps_skipped_[s];
  }
  district_ticks_ += ns;
  gated_district_ticks_ += tick_gated_districts_;

  const double room_mean =
      room_count > 0 ? temp_sum / static_cast<double>(room_count) : 0.0;
  temp_series_.add(t, room_mean);
  capacity_series_.add(t, city_cores);
  demand_series_.add(t, city_demand_w);
  outdoor_series_.add(t, t_out.value());
  if (sink != nullptr) feed_metrics(t, room_mean, city_cores, city_demand_w, t_out.value());

  // Heavyweight structural sweep (EDF lane order, busy-core consistency,
  // per-cluster conservation) once per physics tick at kFull only; the
  // default level keeps auditing to O(1) counter deltas per request.
  if (auditor_.level() == metrics::AuditLevel::kFull) {
    std::vector<std::string> findings;
    for (const auto& b : buildings_) b->cluster->audit(findings);
    for (auto& f : findings) auditor_.report(std::move(f));
    if (phase_scopes) {
      // Reported from the control/feed mark: the sweep span absorbs the
      // (sub-microsecond) series/feed work preceding it.
      close_phase(obs::Phase::kAuditSweep);
    }
  }
}

void Df3Platform::feed_metrics(sim::Time t, double room_mean_c, double city_cores,
                               double city_demand_w, double outdoor_c) {
#ifndef DF3_OBS_DISABLED
  auto& reg = obs_->registry();
  reg.at_gauge(feed_.room_mean_c).set(room_mean_c);
  reg.at_gauge(feed_.usable_cores).set(city_cores);
  reg.at_gauge(feed_.heat_demand_w).set(city_demand_w);
  reg.at_gauge(feed_.outdoor_c).set(outdoor_c);
  reg.at_gauge(feed_.gated_districts).set(static_cast<double>(tick_gated_districts_));
  reg.at_gauge(feed_.regulator_err).set(regulator_relative_error());
  reg.at_gauge(feed_.energy_it_j).set(df_energy_.it().value());
  reg.at_gauge(feed_.energy_useful_j).set(df_energy_.useful_heat().value());
  reg.at_gauge(feed_.energy_waste_j).set(df_energy_.waste_heat().value());
  reg.at_gauge(feed_.energy_overhead_j).set(df_energy_.overhead().value());
  reg.at_gauge(feed_.pue).set(df_energy_.pue());
  reg.at_gauge(feed_.heat_reuse).set(df_energy_.heat_reuse_fraction());
  // Empty vectors (and thus no loop) unless install_grid registered them.
  for (std::size_t r = 0; r < feed_.grid_carbon.size(); ++r) {
    reg.at_gauge(feed_.grid_carbon[r]).set(grid_now_[r].carbon_gco2_per_kwh);
    reg.at_gauge(feed_.grid_price[r]).set(grid_now_[r].price_eur_per_kwh);
    reg.at_gauge(feed_.grid_curtailed[r]).set(grid_->curtailed(r) ? 1.0 : 0.0);
  }

  std::uint64_t preempt = 0, horizontal = 0, vertical = 0, delays = 0;
  std::uint64_t placement = 0, peer = 0;
  for (const auto& b : buildings_) {
    const ClusterStats& s = b->cluster->stats();
    preempt += s.preemptions;
    horizontal += s.offloaded_horizontal_out;
    vertical += s.offloaded_vertical;
    delays += s.edge_delays;
    const Cluster::PolicyCounters& pc = b->cluster->policy_counters();
    placement += pc.placement_picks;
    peer += pc.peer_picks;
  }
  const auto bump = [&reg](obs::MetricId id, std::uint64_t& prev, std::uint64_t current) {
    reg.at_counter(id).add(current - prev);
    prev = current;
  };
  bump(feed_.preemptions, feed_.prev_preemptions, preempt);
  bump(feed_.offload_horizontal, feed_.prev_horizontal, horizontal);
  bump(feed_.offload_vertical, feed_.prev_vertical, vertical);
  bump(feed_.edge_delays, feed_.prev_delays, delays);
  bump(feed_.routing_picks, feed_.prev_routing_picks, routing_picks_);
  bump(feed_.placement_picks, feed_.prev_placement_picks, placement);
  bump(feed_.peer_picks, feed_.prev_peer_picks, peer);
  for (std::size_t i = 0; i < feed_.rung_ids.size(); ++i) {
    std::uint64_t hits = 0;
    for (const auto& b : buildings_) {
      const auto& rh = b->cluster->policy_counters().rung_hits;
      if (i < rh.size()) hits += rh[i];
    }
    bump(feed_.rung_ids[i], feed_.prev_rung_hits[i], hits);
  }
  const metrics::FlowMetrics::Slice& all = flow_metrics_.overall();
  bump(feed_.completed, feed_.prev_completed, all.completed);
  bump(feed_.deadline_missed, feed_.prev_missed, all.deadline_missed);
  bump(feed_.rejected, feed_.prev_rejected, all.rejected);
  bump(feed_.dropped, feed_.prev_dropped, all.dropped);

  // Staleness-bounded SLO gauges: a flow that has gone quiet for a full
  // window reports zero rather than a frozen last value.
  for (std::size_t f = 0; f < feed_.slo_miss_ratio.size(); ++f) {
    const obs::SloMonitor::FlowReport sr =
        obs_->slo().report(static_cast<std::uint32_t>(f), t);
    reg.at_gauge(feed_.slo_miss_ratio[f]).set(sr.stale ? 0.0 : sr.miss_ratio);
    reg.at_gauge(feed_.slo_p99_s[f]).set(sr.stale ? 0.0 : sr.p99_s);
  }

  reg.snapshot(t);
#else
  (void)t;
  (void)room_mean_c;
  (void)city_cores;
  (void)city_demand_w;
  (void)outdoor_c;
#endif
}

void Df3Platform::run(util::Seconds duration) {
  if (duration.value() < 0.0) throw std::invalid_argument("run: negative duration");
  ensure_peers_wired();
  if (!physics_) {
    physics_ = std::make_unique<sim::PeriodicProcess>(
        sim_, sim_.now() + config_.tick_s, config_.tick_s, [this](sim::Time t) { tick(t); });
  }
  // Scope this platform's telemetry sink to the event loop: every request /
  // network / fault hook in the process records here while (and only while)
  // this platform is the one running.
  [[maybe_unused]] obs::Install obs_scope(obs_.get());
  sim_.run_until(sim_.now() + duration.value());
}

double Df3Platform::regulator_relative_error() const {
  double err = 0.0, req = 0.0;
  for (const auto& b : buildings_) {
    for (std::size_t i = b->room_begin; i < b->room_end; ++i) {
      const HeatRegulator& reg = fleet_.regulator[i];
      req += reg.requested_total().value();
      err += reg.relative_error() * reg.requested_total().value();
    }
  }
  return req <= 0.0 ? 0.0 : err / req;
}

std::uint64_t Df3Platform::total_preemptions() const {
  std::uint64_t n = 0;
  for (const auto& b : buildings_) n += b->cluster->stats().preemptions;
  return n;
}

util::Celsius Df3Platform::room_temperature(std::size_t b, std::size_t r) const {
  const Building& bd = *buildings_.at(b);
  if (r >= bd.room_end - bd.room_begin) {
    throw std::out_of_range("Df3Platform::room_temperature: bad room index");
  }
  return util::Celsius{fleet_.temp_c[bd.room_begin + r]};
}

void Df3Platform::export_series_csv(std::ostream& os) const {
  os << "time_s,room_mean_c,usable_cores,heat_demand_w,outdoor_c\n";
  const auto old_precision = os.precision(10);
  // All four series are appended once per tick (the room column records 0.0
  // for cities without rooms), so rows index them in lockstep.
  for (std::size_t i = 0; i < capacity_series_.size(); ++i) {
    os << capacity_series_.times[i] << ',' << temp_series_.values[i] << ','
       << capacity_series_.values[i] << ',' << demand_series_.values[i] << ','
       << outdoor_series_.values[i] << '\n';
  }
  os.precision(old_precision);
}

util::Celsius Df3Platform::tank_temperature(std::size_t b) const {
  const auto& unit = buildings_.at(b)->tank_unit;
  if (!unit) throw std::logic_error("tank_temperature: not a boiler building");
  return unit->tank.temperature();
}

}  // namespace df3::core
