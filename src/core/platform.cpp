#include "df3/core/platform.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "df3/policy/registry.hpp"
#include "df3/thermal/calendar.hpp"

namespace df3::core {

namespace {
/// Network/PSU overhead attributed to DF servers, as a fraction of IT
/// energy. Calibrated so an always-busy DF fleet reports PUE ~1.026, the
/// figure CloudandHeat claims and the paper cites (section II-A).
constexpr double kDfOverheadFraction = 0.026;
}  // namespace

Df3Platform::Df3Platform(PlatformConfig config)
    : config_(std::move(config)),
      weather_(config_.climate, config_.seed ^ 0x5ca1ab1eULL),
      auditor_(config_.audit) {
  if (config_.tick_s <= 0.0) throw std::invalid_argument("Df3Platform: tick must be positive");
#ifndef DF3_OBS_DISABLED
  if (config_.obs.level != obs::TraceLevel::kOff) {
    obs_ = std::make_unique<obs::Observability>(config_.obs);
    // Register every instrument up front: the per-tick feed is pure
    // handle-indexed stores, no name hashing on the hot path.
    auto& reg = obs_->registry();
    feed_.room_mean_c = reg.gauge("city/room_mean_c");
    feed_.usable_cores = reg.gauge("city/usable_cores");
    feed_.heat_demand_w = reg.gauge("city/heat_demand_w");
    feed_.outdoor_c = reg.gauge("city/outdoor_c");
    feed_.regulator_err = reg.gauge("regulator/rel_error");
    feed_.energy_it_j = reg.gauge("energy/it_j");
    feed_.energy_useful_j = reg.gauge("energy/useful_heat_j");
    feed_.energy_waste_j = reg.gauge("energy/waste_heat_j");
    feed_.energy_overhead_j = reg.gauge("energy/overhead_j");
    feed_.pue = reg.gauge("energy/pue");
    feed_.heat_reuse = reg.gauge("energy/heat_reuse_fraction");
    feed_.preemptions = reg.counter("ladder/preemptions");
    feed_.offload_horizontal = reg.counter("ladder/offload_horizontal");
    feed_.offload_vertical = reg.counter("ladder/offload_vertical");
    feed_.edge_delays = reg.counter("ladder/edge_delays");
    feed_.completed = reg.counter("requests/completed");
    feed_.deadline_missed = reg.counter("requests/deadline_missed");
    feed_.rejected = reg.counter("requests/rejected");
    feed_.dropped = reg.counter("requests/dropped");
    feed_.response_s = reg.histogram("requests/response_s");
    // Decision-plane counters: one per seam plus one per configured ladder
    // rung (duplicate rung names intern to the same instrument and sum).
    feed_.routing_picks = reg.counter("policy/routing_picks");
    feed_.placement_picks = reg.counter("policy/placement_picks");
    feed_.peer_picks = reg.counter("policy/peer_picks");
    for (const std::string& rung : config_.cluster.edge_peak_ladder) {
      feed_.rung_ids.push_back(reg.counter("policy/rung/" + rung));
    }
    feed_.prev_rung_hits.assign(feed_.rung_ids.size(), 0);
  }
#endif
  routing_ = policy::Registry::global().make_routing("df-first");
  network_ = std::make_unique<net::Network>(sim_, "city-net");
  internet_node_ = network_->add_node("internet");
  if (config_.with_datacenter) {
    datacenter_ = std::make_unique<baselines::Datacenter>(sim_, config_.datacenter);
  }
  if (config_.start_time > 0.0) sim_.run_until(config_.start_time);
}

std::size_t Df3Platform::add_building(const BuildingConfig& cfg) {
  if (cfg.rooms <= 0) throw std::invalid_argument("add_building: rooms must be positive");
  auto b = std::make_unique<Building>();
  b->cfg = cfg;
  b->gateway_node = network_->add_node(cfg.name + "/gw");
  b->device_node = network_->add_node(cfg.name + "/dev");
  b->wifi_node = network_->add_node(cfg.name + "/wifi");
  network_->add_link(b->device_node, b->gateway_node, cfg.device_link);
  network_->add_link(b->wifi_node, b->gateway_node, cfg.wifi_link);
  network_->add_link(b->gateway_node, internet_node_, cfg.uplink);

  ClusterConfig ccfg = config_.cluster;
  ccfg.fabric_gbps = cfg.lan.bandwidth.value() / 1e9;
  b->cluster = std::make_unique<Cluster>(
      sim_, cfg.name, ccfg, *network_, b->gateway_node,
      [this](workload::CompletionRecord rec) { record_completion(rec); });
  if (datacenter_) b->cluster->set_datacenter(datacenter_.get());

  const util::Watts rating = cfg.server.rated_power();
  if (cfg.water_tank) {
    // Digital-boiler plant: one chassis charging the hot-water store.
    const net::NodeId node = network_->add_node(cfg.name + "/boiler");
    network_->add_link(b->gateway_node, node, cfg.lan);
    const std::size_t widx = b->cluster->add_worker(cfg.server, node);
    thermal::WaterTank tank(*cfg.water_tank, cfg.water_tank->setpoint);
    b->tank_unit.emplace(std::move(tank), HeatRegulator(config_.regulator), widx);
    b->tank_unit->server = &b->cluster->worker(widx).server();
    b->tank_unit->rating = rating;
    b->tank_unit->server->set_inlet_temperature(cfg.water_tank->setpoint);
    b->room_begin = b->room_end = fleet_.size();
    bld_target_c_.push_back(0.0);
    bld_season_.push_back(0);
    bld_demand_w_.push_back(0.0);
    buildings_.push_back(std::move(b));
    wire_peers();
    return buildings_.size() - 1;
  }
  // Validate the thermal/control parameters through the model constructors
  // (same exceptions as before the SoA refactor), then flatten the per-room
  // state into the contiguous fleet arrays.
  thermal::ModulatingThermostat thermostat(cfg.comfort.day_target, cfg.thermostat_gain_w_per_k,
                                           rating);
  (void)thermostat;
  b->room_begin = fleet_.size();
  for (int i = 0; i < cfg.rooms; ++i) {
    const net::NodeId node = network_->add_node(cfg.name + "/srv" + std::to_string(i));
    network_->add_link(b->gateway_node, node, cfg.lan);
    if (i == 0) {
      network_->add_link(b->device_node, node, cfg.device_link);
      network_->add_link(b->wifi_node, node, cfg.wifi_link);
    }
    const std::size_t widx = b->cluster->add_worker(cfg.server, node);
    hw::DfServer& server = b->cluster->worker(widx).server();
    // Servers start cold-set: inlet = initial room temperature.
    server.set_inlet_temperature(cfg.initial_temperature);

    fleet_.server.push_back(&server);
    fleet_.high_fidelity.push_back(cfg.high_fidelity_rooms ? 1 : 0);
    fleet_.dual_pipe.push_back(cfg.server.routing == hw::HeatRouting::kDualPipe ? 1 : 0);
    fleet_.kp_w_per_k.push_back(cfg.thermostat_gain_w_per_k);
    fleet_.rating_w.push_back(rating.value());
    if (cfg.high_fidelity_rooms) {
      const thermal::Room2R2C model(cfg.room_2r2c, cfg.initial_temperature);
      fleet_.gains_w.push_back(cfg.room_2r2c.internal_gains.value());
      fleet_.hold_r.push_back(cfg.room_2r2c.r_air_env_k_per_w + cfg.room_2r2c.r_env_out_k_per_w);
      fleet_.r1_resistance.push_back(0.0);
      fleet_.r1_decay.push_back(0.0);
      fleet_.r2_r_ae.push_back(cfg.room_2r2c.r_air_env_k_per_w);
      fleet_.r2_r_eo.push_back(cfg.room_2r2c.r_env_out_k_per_w);
      fleet_.r2_c_air.push_back(cfg.room_2r2c.c_air_j_per_k);
      fleet_.r2_c_env.push_back(cfg.room_2r2c.c_env_j_per_k);
      // Memoize the substep schedule for the fixed tick by replaying the
      // integrator's subtractive chain (bit-exact step sequence).
      const double max_step = model.max_step_s();
      double rem = config_.tick_s;
      std::uint32_t n_full = 0;
      while (rem > max_step) {
        ++n_full;
        rem -= max_step;
      }
      fleet_.r2_max_step.push_back(max_step);
      fleet_.r2_h_last.push_back(rem);
      fleet_.r2_n_full.push_back(n_full);
    } else {
      const thermal::Room model(cfg.room, cfg.initial_temperature);
      (void)model;
      fleet_.gains_w.push_back(cfg.room.internal_gains.value());
      fleet_.hold_r.push_back(cfg.room.resistance_k_per_w);
      fleet_.r1_resistance.push_back(cfg.room.resistance_k_per_w);
      fleet_.r1_decay.push_back(std::exp(-config_.tick_s / cfg.room.tau_s()));
      fleet_.r2_r_ae.push_back(0.0);
      fleet_.r2_r_eo.push_back(0.0);
      fleet_.r2_c_air.push_back(0.0);
      fleet_.r2_c_env.push_back(0.0);
      fleet_.r2_max_step.push_back(0.0);
      fleet_.r2_h_last.push_back(0.0);
      fleet_.r2_n_full.push_back(0);
    }
    fleet_.temp_c.push_back(cfg.initial_temperature.value());
    fleet_.env_c.push_back(cfg.initial_temperature.value());
    fleet_.last_demand_w.push_back(0.0);
    fleet_.last_season.push_back(1);
    fleet_.energy_mark_j.push_back(0.0);
    fleet_.regulator.emplace_back(config_.regulator);
    fleet_.delta_j.push_back(0.0);
    fleet_.useful_j.push_back(0.0);
    fleet_.indoors.push_back(0);
  }
  b->room_end = fleet_.size();
  bld_target_c_.push_back(0.0);
  bld_season_.push_back(0);
  bld_demand_w_.push_back(0.0);
  buildings_.push_back(std::move(b));
  wire_peers();
  return buildings_.size() - 1;
}

void Df3Platform::wire_peers() {
  const std::size_t n = buildings_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Cluster& c = *buildings_[i]->cluster;
    c.clear_peers();
    for (std::size_t k = 1; k < n; ++k) {
      c.add_peer(buildings_[(i + k) % n]->cluster.get());
    }
  }
}

void Df3Platform::add_edge_source(std::size_t b, workload::RequestFactory factory,
                                  double rate_per_s, bool direct, bool via_wifi) {
  add_edge_source(b, std::move(factory), std::make_unique<workload::PoissonArrivals>(rate_per_s),
                  direct, via_wifi);
}

void Df3Platform::add_edge_source(std::size_t b, workload::RequestFactory factory,
                                  std::unique_ptr<workload::ArrivalProcess> arrivals,
                                  bool direct, bool via_wifi) {
  if (b >= buildings_.size()) throw std::out_of_range("add_edge_source: bad building");
  const auto name = "edge-src-" + std::to_string(source_counter_++);
  sources_.push_back(std::make_unique<workload::WorkloadSource>(
      sim_, name, config_.seed, std::move(arrivals), std::move(factory),
      [this, b, direct, via_wifi](workload::Request r) {
        r.flow = direct ? workload::Flow::kEdgeDirect : workload::Flow::kEdgeIndirect;
        deliver_to_cluster(std::move(r), b, direct, via_wifi);
      }));
  sources_.back()->start();
}

void Df3Platform::add_cloud_source(workload::RequestFactory factory, double rate_per_s) {
  add_cloud_source(std::move(factory), std::make_unique<workload::PoissonArrivals>(rate_per_s));
}

void Df3Platform::add_cloud_source(workload::RequestFactory factory,
                                   std::unique_ptr<workload::ArrivalProcess> arrivals) {
  const auto name = "cloud-src-" + std::to_string(source_counter_++);
  sources_.push_back(std::make_unique<workload::WorkloadSource>(
      sim_, name, config_.seed, std::move(arrivals), std::move(factory),
      [this](workload::Request r) {
        r.flow = workload::Flow::kCloud;
        auditor_.on_submitted(r);
        Cluster* target = route_cloud_target();
        if (target == nullptr) {
          if (!datacenter_) {
            workload::CompletionRecord rec;
            rec.request = std::move(r);
            rec.outcome = workload::Outcome::kRejected;
            rec.completed_at = sim_.now();
            rec.served_by = "nowhere";
            record_completion(rec);
            return;
          }
          datacenter_->submit(std::move(r), internet_node_,
                              [this](workload::CompletionRecord rec) {
                                record_completion(rec);
                              });
          return;
        }
        // Pay the Internet -> gateway transport, then hand to the cluster.
        const auto gw = target->gateway_node();
        network_->send(
            net::Message{internet_node_, gw, r.input_size, r.id},
            [target, r, this](sim::Time) mutable { target->submit(std::move(r), internet_node_); },
            [this, r]() mutable {
              workload::CompletionRecord rec;
              rec.request = std::move(r);
              rec.outcome = workload::Outcome::kDropped;
              rec.completed_at = sim_.now();
              rec.served_by = "uplink-partition";
              record_completion(rec);
            });
      }));
  sources_.back()->start();
}

void Df3Platform::stop_sources() {
  for (auto& s : sources_) s->stop();
}

void Df3Platform::set_cloud_routing(const std::string& name) {
  routing_ = policy::Registry::global().make_routing(name);
}

void Df3Platform::set_routing_policy(std::unique_ptr<policy::RoutingPolicy> p) {
  if (!p) throw std::invalid_argument("set_routing_policy: null policy");
  routing_ = std::move(p);
}

Cluster* Df3Platform::route_cloud_target() {
  if (buildings_.empty()) return nullptr;
  policy::RoutingView view;
  view.cluster_count = buildings_.size();
  view.has_datacenter = datacenter_ != nullptr;
  // The view is filled lazily per the policy's declared needs so that the
  // cheap policies keep the per-arrival cost of the old enum dispatch.
  if (routing_->needs_season()) {
    view.seasonal_outdoor_c = weather_.seasonal_component(sim_.now()).value();
    view.heating_cutoff_c =
        buildings_.front()->cfg.comfort.heating_cutoff_outdoor.value();
  }
  if (routing_->needs_cluster_info()) {
    routing_scratch_.clear();
    for (std::size_t b = 0; b < buildings_.size(); ++b) {
      const Cluster& c = *buildings_[b]->cluster;
      const double cores = static_cast<double>(std::max(1, c.usable_cores()));
      routing_scratch_.push_back({c.queued_gigacycles() / cores, bld_demand_w_[b] / cores});
    }
    view.clusters = routing_scratch_;
  }
  const std::size_t pick = routing_->pick(view);
  ++routing_picks_;
  if (pick == policy::kRouteToDatacenter) return nullptr;
  if (pick >= buildings_.size()) {
    throw std::out_of_range("routing policy '" + std::string(routing_->name()) +
                            "' picked a cluster out of range");
  }
  return buildings_[pick]->cluster.get();
}

void Df3Platform::deliver_to_cluster(workload::Request r, std::size_t b, bool direct,
                                     bool via_wifi) {
  Building& building = *buildings_[b];
  auditor_.on_submitted(r);
  const net::NodeId origin = via_wifi ? building.wifi_node : building.device_node;
  const net::NodeId entry =
      direct ? building.cluster->worker(0).node() : building.cluster->gateway_node();
  network_->send(
      net::Message{origin, entry, r.input_size, r.id},
      [this, b, direct, origin, r](sim::Time) mutable {
        Building& bd = *buildings_[b];
        if (direct) {
          bd.cluster->submit_direct(std::move(r), origin, 0);
        } else {
          bd.cluster->submit(std::move(r), origin);
        }
      },
      [this, r]() mutable {
        workload::CompletionRecord rec;
        rec.request = std::move(r);
        rec.outcome = workload::Outcome::kDropped;
        rec.completed_at = sim_.now();
        rec.served_by = "lan-partition";
        record_completion(rec);
      });
}

namespace {
[[maybe_unused]] constexpr obs::Phase terminal_phase(workload::Outcome o) {
  switch (o) {
    case workload::Outcome::kCompleted: return obs::Phase::kCompleted;
    case workload::Outcome::kDeadlineMissed: return obs::Phase::kDeadlineMissed;
    case workload::Outcome::kRejected: return obs::Phase::kRejected;
    case workload::Outcome::kDropped: return obs::Phase::kDropped;
  }
  return obs::Phase::kCompleted;
}
}  // namespace

void Df3Platform::record_completion(const workload::CompletionRecord& rec) {
  auditor_.on_terminal(rec);
  flow_metrics_.record(rec);
  DF3_OBS_IF(o) {
    if (rec.outcome == workload::Outcome::kCompleted) {
      o->registry().at_histogram(feed_.response_s).observe(rec.response_time());
    }
    if (o->tracing()) {
      o->instant(this, "lifecycle", terminal_phase(rec.outcome), rec.completed_at,
                 rec.request.id);
    }
  }
}

std::vector<std::string> Df3Platform::audit_now() {
  std::vector<std::string> findings;
  for (const auto& b : buildings_) b->cluster->audit(findings);
  for (const auto& f : findings) auditor_.report(f);
  return findings;
}

void Df3Platform::physics_building(std::size_t b, sim::Time t, util::Celsius t_out,
                                   util::Celsius seasonal, double hour) {
  const double dt = config_.tick_s;
  const util::Seconds dts{dt};
  Building& bd = *buildings_[b];
  const bool heating_season = seasonal < bd.cfg.comfort.heating_cutoff_outdoor;
  const util::Celsius target = bd.cfg.comfort.target_at_hour(hour);
  bld_season_[b] = heating_season ? 1 : 0;
  bld_target_c_[b] = target.value();
  // Solar/occupancy gains ramp with the season (zero in deep winter);
  // identical for every room of the building.
  const double solar_frac = std::clamp((seasonal.value() - 5.0) / 12.0, 0.0, 1.0);
  const double solar_w = bd.cfg.solar_gain_peak_w * solar_frac;

  for (std::size_t i = bd.room_begin; i < bd.room_end; ++i) {
    hw::DfServer& server = *fleet_.server[i];
    const bool last_season = fleet_.last_season[i] != 0;

    // 1. Integrate the interval that just elapsed at the server's current
    //    operating point (piecewise-constant approximation at tick scale).
    server.advance(dts, last_season);
    const double delta_j = server.energy_consumed().value() - fleet_.energy_mark_j[i];
    fleet_.energy_mark_j[i] = server.energy_consumed().value();

    // 2. Heat the room with what was actually emitted indoors. The RC math
    //    mirrors Room/Room2R2C::advance term for term (bit-exact), with the
    //    decay factor / substep schedule precomputed at add_building.
    const double emitted_w = delta_j / dt;
    const bool indoors = fleet_.dual_pipe[i] == 0 || last_season;
    const double q_heat = (indoors ? emitted_w : 0.0) + solar_w;
    const double q_total = q_heat + fleet_.gains_w[i];
    if (fleet_.high_fidelity[i] == 0) {
      const double eq = t_out.value() + q_total * fleet_.r1_resistance[i];
      fleet_.temp_c[i] = eq + (fleet_.temp_c[i] - eq) * fleet_.r1_decay[i];
    } else {
      double t_air = fleet_.temp_c[i];
      double t_env = fleet_.env_c[i];
      const double r_ae = fleet_.r2_r_ae[i];
      const double r_eo = fleet_.r2_r_eo[i];
      const double c_air = fleet_.r2_c_air[i];
      const double c_env = fleet_.r2_c_env[i];
      const auto step = [&](double h) {
        const double flow_ae = (t_air - t_env) / r_ae;
        const double flow_eo = (t_env - t_out.value()) / r_eo;
        t_air += h * ((q_total - flow_ae) / c_air);
        t_env += h * ((flow_ae - flow_eo) / c_env);
      };
      const std::uint32_t n_full = fleet_.r2_n_full[i];
      for (std::uint32_t k = 0; k < n_full; ++k) step(fleet_.r2_max_step[i]);
      if (fleet_.r2_h_last[i] > 0.0) step(fleet_.r2_h_last[i]);
      fleet_.temp_c[i] = t_air;
      fleet_.env_c[i] = t_env;
    }

    // 3. Stage the energy split for the serial ledger reduction and track
    //    regulation fidelity / comfort (building-owned collectors).
    const double wanted_j = fleet_.last_demand_w[i] * dt;
    fleet_.delta_j[i] = delta_j;
    fleet_.useful_j[i] = std::min(delta_j, wanted_j);
    fleet_.indoors[i] = indoors ? 1 : 0;
    fleet_.regulator[i].record(dts, util::Watts{emitted_w},
                               util::Watts{fleet_.last_demand_w[i]});
    bd.comfort_metrics.sample(t, util::Celsius{fleet_.temp_c[i]}, target);
  }

  if (bd.tank_unit) {
    // Digital-boiler plant: the hot-water store is the "thermostat" and it
    // wants heat in every season.
    TankUnit& tu = *bd.tank_unit;
    hw::DfServer& server = *tu.server;
    server.advance(dts, /*heating_season=*/true);
    const double delta_j = server.energy_consumed().value() - tu.energy_mark.value();
    tu.energy_mark = server.energy_consumed();
    const util::Watts emitted{delta_j / dt};
    const double draw = thermal::hot_water_draw_lps(t, bd.cfg.daily_hot_water_l);
    tu.tank.advance(dts, emitted, draw);
    tu.regulator.record(dts, emitted, tu.last_demand);
    bd.comfort_metrics.sample(t, tu.tank.temperature(), tu.tank.params().setpoint);
    const util::Joules wanted = tu.last_demand * dts;
    tu.scratch_delta_j = delta_j;
    tu.scratch_useful_j = std::min(delta_j, wanted.value());
    tu.scratch_draw_lps = draw;
  }
}

std::size_t Df3Platform::physics_thread_count() const {
  // hardware_concurrency() is a sysconf query (~microseconds) — resolve it
  // once and reuse; the machine's core count does not change mid-run.
  if (physics_threads_resolved_ == 0) {
    physics_threads_resolved_ = config_.physics_threads != 0
                                    ? config_.physics_threads
                                    : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return physics_threads_resolved_;
}

void Df3Platform::tick(sim::Time t) {
  const util::Celsius t_out = weather_.outdoor_temperature(t);
  const util::Celsius seasonal = weather_.seasonal_component(t);
  const double hour = thermal::hour_of_day(t);
  const std::size_t nb = buildings_.size();

  // Serial reduction + control state. The control sweep replays the exact
  // accumulation order of the old interleaved loop (ledger adds and city
  // aggregates are floating-point order-sensitive), then closes the control
  // loop: thermostat -> regulator -> inlet feedback -> cluster speed sync.
  // The ledger accumulator keeps the four energy slots in registers for the
  // whole tick with the identical per-room add sequence.
  double city_demand_w = 0.0;
  double city_cores = 0.0;
  double temp_sum = 0.0;
  std::size_t room_count = 0;
  metrics::EnergyLedger::Accumulator energy(df_energy_);

  const auto control_building = [&](std::size_t b) {
    Building& bd = *buildings_[b];
    const bool heating_season = bld_season_[b] != 0;
    const double target_c = bld_target_c_[b];
    // Per-building demand accumulates separately from the city total so the
    // city_demand_w addition chain (and thus the golden digests) is
    // untouched; heat-aware routing reads this between ticks.
    double bld_demand_w = 0.0;
    for (std::size_t i = bd.room_begin; i < bd.room_end; ++i) {
      const util::Joules delta{fleet_.delta_j[i]};
      energy.add_it(delta);
      energy.add_overhead(delta * kDfOverheadFraction);
      const util::Joules useful{fleet_.useful_j[i]};
      if (fleet_.indoors[i] != 0) {
        energy.add_useful_heat(useful);
        energy.add_waste_heat(delta - useful);
      } else {
        energy.add_waste_heat(delta);
      }

      // Modulating thermostat (pure math, mirrored from
      // ModulatingThermostat::demand + holding_power of the room model).
      double demand_w = 0.0;
      if (heating_season) {
        const double needed =
            (target_c - t_out.value()) / fleet_.hold_r[i] - fleet_.gains_w[i];
        const double hold = std::max(0.0, needed);
        const double raw = hold + fleet_.kp_w_per_k[i] * (target_c - fleet_.temp_c[i]);
        demand_w = std::clamp(raw, 0.0, fleet_.rating_w[i]);
      }
      hw::DfServer& server = *fleet_.server[i];
      fleet_.regulator[i].regulate(server,
                                   thermal::HeatDemand{util::Watts{demand_w}, heating_season});
      server.set_inlet_temperature(util::Celsius{fleet_.temp_c[i]});
      fleet_.last_demand_w[i] = demand_w;
      fleet_.last_season[i] = heating_season ? 1 : 0;

      city_demand_w += demand_w;
      bld_demand_w += demand_w;
      temp_sum += fleet_.temp_c[i];
      ++room_count;
    }
    if (bd.tank_unit) {
      TankUnit& tu = *bd.tank_unit;
      const util::Joules delta{tu.scratch_delta_j};
      energy.add_it(delta);
      energy.add_overhead(delta * kDfOverheadFraction);
      const util::Joules useful{tu.scratch_useful_j};
      energy.add_useful_heat(useful);
      energy.add_waste_heat(delta - useful);
      const auto demand = tu.tank.demand(tu.scratch_draw_lps, tu.rating);
      tu.regulator.regulate(*tu.server, demand);
      // The immersion oil returns cooled from the tank heat exchanger:
      // inlet sits a design approach (~15 K) below the store, so a store
      // at setpoint keeps the boiler inside its thermal envelope while an
      // overheating store still triggers the throttle.
      tu.server->set_inlet_temperature(util::Celsius{tu.tank.temperature().value() - 15.0});
      tu.last_demand = demand.power;
      city_demand_w += demand.power.value();
      bld_demand_w += demand.power.value();
    }
    bld_demand_w_[b] = bld_demand_w;
    bd.cluster->sync_workers();
    city_cores += bd.cluster->usable_cores();
  };

  // --- Phase 1: fleet physics. Every building evolves only state it owns
  // (its fleet slice, servers, tank, comfort collectors), so the sweep can
  // fan out across threads; nothing here touches the event calendar, the
  // ledger, or another building. Bit-for-bit identical for any thread
  // count and scheduling order.
  //
  // --- Phase 2: serial reduction + control (control_building above), in
  // building order.
  //
  // In the serial case the two phases fuse per building: physics(b) only
  // reads/writes building-b state and control(b) touches shared state in
  // building order either way, so the interleaving
  //   physics(0), control(0), physics(1), control(1), ...
  // performs the identical operation sequence on every accumulator as
  //   physics(0..n), control(0..n)
  // — same bits, one pass over each server's cache lines instead of two.
  // Tick-phase scopes run on the *host* clock: every sub-phase of a tick
  // happens at one simulated instant, so only wall time gives the spans
  // extent. Trace content for these spans is machine-dependent by nature;
  // the simulated trajectory stays bit-identical (hooks observe only).
#ifndef DF3_OBS_DISABLED
  obs::Observability* const sink = obs::current();
  const bool phase_scopes = sink != nullptr && sink->tracing();
  double phase_mark_s = phase_scopes ? sink->trace().host_now_s() : 0.0;
  const auto close_phase = [&](obs::Phase p) {
    const double end_s = sink->trace().host_now_s();
    sink->host_span(this, "tick", p, phase_mark_s, end_s);
    phase_mark_s = end_s;
  };
#else
  constexpr obs::Observability* sink = nullptr;
  constexpr bool phase_scopes = false;
  const auto close_phase = [](obs::Phase) {};
#endif

  const std::size_t threads = physics_thread_count();
  if (threads > 1 && nb > 1) {
    if (!physics_pool_) physics_pool_ = std::make_unique<util::ThreadPool>(threads - 1);
    physics_pool_->for_each_index(
        nb, [&](std::size_t b) { physics_building(b, t, t_out, seasonal, hour); });
    if (phase_scopes) close_phase(obs::Phase::kPhysicsPhase);
    for (std::size_t b = 0; b < nb; ++b) control_building(b);
    if (phase_scopes) close_phase(obs::Phase::kControlPhase);
  } else {
    // Serial mode fuses physics + control per building; the whole sweep is
    // reported as one physics-phase span.
    for (std::size_t b = 0; b < nb; ++b) {
      physics_building(b, t, t_out, seasonal, hour);
      control_building(b);
    }
    if (phase_scopes) close_phase(obs::Phase::kPhysicsPhase);
  }
  energy.commit();

  const double room_mean =
      room_count > 0 ? temp_sum / static_cast<double>(room_count) : 0.0;
  temp_series_.add(t, room_mean);
  capacity_series_.add(t, city_cores);
  demand_series_.add(t, city_demand_w);
  outdoor_series_.add(t, t_out.value());
  if (sink != nullptr) feed_metrics(t, room_mean, city_cores, city_demand_w, t_out.value());

  // Heavyweight structural sweep (EDF lane order, busy-core consistency,
  // per-cluster conservation) once per physics tick at kFull only; the
  // default level keeps auditing to O(1) counter deltas per request.
  if (auditor_.level() == metrics::AuditLevel::kFull) {
    std::vector<std::string> findings;
    for (const auto& b : buildings_) b->cluster->audit(findings);
    for (auto& f : findings) auditor_.report(std::move(f));
    if (phase_scopes) {
      // Reported from the control/feed mark: the sweep span absorbs the
      // (sub-microsecond) series/feed work preceding it.
      close_phase(obs::Phase::kAuditSweep);
    }
  }
}

void Df3Platform::feed_metrics(sim::Time t, double room_mean_c, double city_cores,
                               double city_demand_w, double outdoor_c) {
#ifndef DF3_OBS_DISABLED
  auto& reg = obs_->registry();
  reg.at_gauge(feed_.room_mean_c).set(room_mean_c);
  reg.at_gauge(feed_.usable_cores).set(city_cores);
  reg.at_gauge(feed_.heat_demand_w).set(city_demand_w);
  reg.at_gauge(feed_.outdoor_c).set(outdoor_c);
  reg.at_gauge(feed_.regulator_err).set(regulator_relative_error());
  reg.at_gauge(feed_.energy_it_j).set(df_energy_.it().value());
  reg.at_gauge(feed_.energy_useful_j).set(df_energy_.useful_heat().value());
  reg.at_gauge(feed_.energy_waste_j).set(df_energy_.waste_heat().value());
  reg.at_gauge(feed_.energy_overhead_j).set(df_energy_.overhead().value());
  reg.at_gauge(feed_.pue).set(df_energy_.pue());
  reg.at_gauge(feed_.heat_reuse).set(df_energy_.heat_reuse_fraction());

  std::uint64_t preempt = 0, horizontal = 0, vertical = 0, delays = 0;
  std::uint64_t placement = 0, peer = 0;
  for (const auto& b : buildings_) {
    const ClusterStats& s = b->cluster->stats();
    preempt += s.preemptions;
    horizontal += s.offloaded_horizontal_out;
    vertical += s.offloaded_vertical;
    delays += s.edge_delays;
    const Cluster::PolicyCounters& pc = b->cluster->policy_counters();
    placement += pc.placement_picks;
    peer += pc.peer_picks;
  }
  const auto bump = [&reg](obs::MetricId id, std::uint64_t& prev, std::uint64_t current) {
    reg.at_counter(id).add(current - prev);
    prev = current;
  };
  bump(feed_.preemptions, feed_.prev_preemptions, preempt);
  bump(feed_.offload_horizontal, feed_.prev_horizontal, horizontal);
  bump(feed_.offload_vertical, feed_.prev_vertical, vertical);
  bump(feed_.edge_delays, feed_.prev_delays, delays);
  bump(feed_.routing_picks, feed_.prev_routing_picks, routing_picks_);
  bump(feed_.placement_picks, feed_.prev_placement_picks, placement);
  bump(feed_.peer_picks, feed_.prev_peer_picks, peer);
  for (std::size_t i = 0; i < feed_.rung_ids.size(); ++i) {
    std::uint64_t hits = 0;
    for (const auto& b : buildings_) {
      const auto& rh = b->cluster->policy_counters().rung_hits;
      if (i < rh.size()) hits += rh[i];
    }
    bump(feed_.rung_ids[i], feed_.prev_rung_hits[i], hits);
  }
  const metrics::FlowMetrics::Slice& all = flow_metrics_.overall();
  bump(feed_.completed, feed_.prev_completed, all.completed);
  bump(feed_.deadline_missed, feed_.prev_missed, all.deadline_missed);
  bump(feed_.rejected, feed_.prev_rejected, all.rejected);
  bump(feed_.dropped, feed_.prev_dropped, all.dropped);

  reg.snapshot(t);
#else
  (void)t;
  (void)room_mean_c;
  (void)city_cores;
  (void)city_demand_w;
  (void)outdoor_c;
#endif
}

void Df3Platform::run(util::Seconds duration) {
  if (duration.value() < 0.0) throw std::invalid_argument("run: negative duration");
  if (!physics_) {
    physics_ = std::make_unique<sim::PeriodicProcess>(
        sim_, sim_.now() + config_.tick_s, config_.tick_s, [this](sim::Time t) { tick(t); });
  }
  // Scope this platform's telemetry sink to the event loop: every request /
  // network / fault hook in the process records here while (and only while)
  // this platform is the one running.
  [[maybe_unused]] obs::Install obs_scope(obs_.get());
  sim_.run_until(sim_.now() + duration.value());
}

double Df3Platform::regulator_relative_error() const {
  double err = 0.0, req = 0.0;
  for (const auto& b : buildings_) {
    for (std::size_t i = b->room_begin; i < b->room_end; ++i) {
      const HeatRegulator& reg = fleet_.regulator[i];
      req += reg.requested_total().value();
      err += reg.relative_error() * reg.requested_total().value();
    }
  }
  return req <= 0.0 ? 0.0 : err / req;
}

std::uint64_t Df3Platform::total_preemptions() const {
  std::uint64_t n = 0;
  for (const auto& b : buildings_) n += b->cluster->stats().preemptions;
  return n;
}

util::Celsius Df3Platform::room_temperature(std::size_t b, std::size_t r) const {
  const Building& bd = *buildings_.at(b);
  if (r >= bd.room_end - bd.room_begin) {
    throw std::out_of_range("Df3Platform::room_temperature: bad room index");
  }
  return util::Celsius{fleet_.temp_c[bd.room_begin + r]};
}

void Df3Platform::export_series_csv(std::ostream& os) const {
  os << "time_s,room_mean_c,usable_cores,heat_demand_w,outdoor_c\n";
  const auto old_precision = os.precision(10);
  // All four series are appended once per tick (the room column records 0.0
  // for cities without rooms), so rows index them in lockstep.
  for (std::size_t i = 0; i < capacity_series_.size(); ++i) {
    os << capacity_series_.times[i] << ',' << temp_series_.values[i] << ','
       << capacity_series_.values[i] << ',' << demand_series_.values[i] << ','
       << outdoor_series_.values[i] << '\n';
  }
  os.precision(old_precision);
}

util::Celsius Df3Platform::tank_temperature(std::size_t b) const {
  const auto& unit = buildings_.at(b)->tank_unit;
  if (!unit) throw std::logic_error("tank_temperature: not a boiler building");
  return unit->tank.temperature();
}

}  // namespace df3::core
