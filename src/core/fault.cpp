#include "df3/core/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "df3/obs/obs.hpp"

namespace df3::core {

WorkerChurn::WorkerChurn(sim::Simulation& sim, std::string name, Cluster& cluster,
                         WorkerChurnConfig config, util::RngStream rng)
    : sim::Entity(sim, std::move(name)),
      cluster_(cluster),
      config_(std::move(config)),
      rng_(rng),
      next_(config_.workers.size()),
      down_(config_.workers.size(), false),
      down_since_(config_.workers.size(), 0.0) {
  if (config_.mean_up_s <= 0.0 || config_.mean_down_s <= 0.0) {
    throw std::invalid_argument("WorkerChurn: dwell means must be positive");
  }
  for (const std::size_t w : config_.workers) {
    if (w >= cluster_.worker_count()) {
      throw std::out_of_range("WorkerChurn: worker index out of range");
    }
  }
}

void WorkerChurn::start() {
  if (running_) return;
  running_ = true;
  for (std::size_t slot = 0; slot < config_.workers.size(); ++slot) arm(slot);
}

void WorkerChurn::stop() {
  if (!running_) return;
  running_ = false;
  bool restored = false;
  for (std::size_t slot = 0; slot < config_.workers.size(); ++slot) {
    next_[slot].cancel();
    if (down_[slot]) {
      apply(config_.workers[slot], /*down=*/false);
      down_[slot] = false;
      restored = true;
      DF3_OBS_TRACE_IF(o) {
        o->span(this, name(), obs::Phase::kWorkerOutage, down_since_[slot], now(),
                config_.workers[slot]);
      }
    }
  }
  if (restored) cluster_.sync_workers();
}

void WorkerChurn::arm(std::size_t slot) {
  const double mean = down_[slot] ? config_.mean_down_s : config_.mean_up_s;
  const double dwell = rng_.exponential(1.0 / mean);
  const sim::Time at = std::max(now(), config_.start) + dwell;
  next_[slot] = sim().schedule_at(at, [this, slot] { toggle(slot); });
}

void WorkerChurn::force_toggle(std::size_t slot) {
  if (slot >= down_.size()) throw std::out_of_range("WorkerChurn: bad slot");
  down_[slot] = !down_[slot];
  if (down_[slot]) {
    ++outages_;
    down_since_[slot] = now();
    DF3_OBS_TRACE_IF(o) {
      o->instant(this, name(), obs::Phase::kWorkerChurn, now(), config_.workers[slot]);
    }
  } else {
    DF3_OBS_TRACE_IF(o) {
      o->span(this, name(), obs::Phase::kWorkerOutage, down_since_[slot], now(),
              config_.workers[slot]);
    }
  }
  apply(config_.workers[slot], down_[slot]);
  // Same sequence as the physics tick after a hardware change: settle shard
  // progress at the new speed, then pump the queue onto remaining capacity.
  cluster_.sync_workers();
}

void WorkerChurn::toggle(std::size_t slot) {
  force_toggle(slot);
  arm(slot);
}

void WorkerChurn::apply(std::size_t widx, bool down) {
  hw::DfServer& server = cluster_.worker(widx).server();
  switch (config_.kind) {
    case OutageKind::kPowerGate:
      server.set_powered(!down);
      break;
    case OutageKind::kThermalGate:
      server.set_inlet_temperature(
          util::Celsius{down ? config_.hot_inlet_c : config_.cool_inlet_c});
      break;
  }
}

}  // namespace df3::core
