#include "df3/core/cluster.hpp"

#include <algorithm>
#include <stdexcept>

#include "df3/grid/signal.hpp"
#include "df3/obs/obs.hpp"
#include "df3/policy/registry.hpp"

namespace df3::core {

namespace {
/// Journey-link attribute for arrival/terminal records: flow + 1, so 0 can
/// mean "unknown" in the analyzers (obs/journey.hpp).
constexpr std::uint32_t journey_flow_attr(workload::Flow f) {
  return static_cast<std::uint32_t>(f) + 1u;
}
}  // namespace

Cluster::Cluster(sim::Simulation& sim, std::string name, ClusterConfig config,
                 net::Network& network, net::NodeId gateway_node, CompletionSink sink)
    : sim::Entity(sim, std::move(name)),
      config_(std::move(config)),
      network_(network),
      gateway_node_(gateway_node),
      sink_(std::move(sink)),
      queue_(config_.discipline) {
  if (!sink_) throw std::invalid_argument("Cluster: null completion sink");
  if (config_.dedicated_edge_workers < 0) {
    throw std::invalid_argument("Cluster: negative dedicated_edge_workers");
  }
  if (config_.fabric_gbps <= 0.0 || config_.reference_fabric_gbps <= 0.0) {
    throw std::invalid_argument("Cluster: fabric bandwidths must be positive");
  }
  if (config_.preemption_overhead_gc < 0.0) {
    throw std::invalid_argument("Cluster: negative preemption overhead");
  }
  // Resolve the decision plane from the configured names; unknown names
  // throw here (listing the known ones) rather than silently defaulting.
  const auto& registry = policy::Registry::global();
  ladder_ = registry.make_ladder(config_.edge_peak_ladder);
  placement_ = registry.make_placement(config_.placement);
  peer_selector_ = registry.make_peer_selector(config_.peer_select);
  policy_counters_.rung_hits.assign(ladder_.size(), 0);
  for (const auto& rung : ladder_) ladder_needs_grid_ = ladder_needs_grid_ || rung->needs_grid();
  peer_needs_grid_ = peer_selector_->needs_grid();
}

void Cluster::add_peer(Cluster* peer) {
  if (peer == nullptr) throw std::invalid_argument("add_peer: null peer");
  if (peer == this) throw std::invalid_argument("add_peer: cluster cannot peer with itself");
  if (std::find(peers_.begin(), peers_.end(), peer) != peers_.end()) {
    throw std::invalid_argument("add_peer: duplicate peer " + peer->name());
  }
  peers_.push_back(peer);
}

std::size_t Cluster::add_worker(hw::ServerSpec spec, net::NodeId node) {
  const auto idx = workers_.size();
  workers_.push_back(std::make_unique<Worker>(
      sim(), name() + "/w" + std::to_string(idx), std::move(spec), node,
      [this](Task t) { on_task_done(std::move(t)); }));
  return idx;
}

int Cluster::free_cores() const {
  int n = 0;
  for (const auto& w : workers_) n += w->free_cores();
  return n;
}

double Cluster::slowdown_for(const workload::Request& r) const {
  if (r.comm_fraction <= 0.0 || r.tasks <= 1) return 1.0;
  // A coupled app written for the reference fabric spends comm_fraction of
  // its time communicating there; on our fabric that part stretches by the
  // bandwidth ratio.
  const double stretch = config_.reference_fabric_gbps / config_.fabric_gbps;
  return (1.0 - r.comm_fraction) + r.comm_fraction * stretch;
}

void Cluster::submit(workload::Request r, net::NodeId origin) {
  (workload::is_edge(r.flow) ? stats_.received_edge : stats_.received_cloud)++;
  DF3_OBS_TRACE_IF(o) {
    o->journey_instant(this, name(), obs::Phase::kArrival, now(), r.id, -1,
                       journey_flow_attr(r.flow));
  }
  // Hybrid-infrastructure relief valve: deep cloud backlog goes straight to
  // the datacenter (Qarnot processes surplus Internet requests in classic
  // datacenter nodes when heaters cannot absorb them).
  if (!workload::is_edge(r.flow) && datacenter_ != nullptr && !r.privacy_sensitive) {
    const int cores = std::max(1, usable_cores());
    const double backlog_per_core =
        (queue_.backlog_gigacycles() + r.total_work()) / static_cast<double>(cores);
    if (backlog_per_core > config_.cloud_offload_backlog_gc_per_core) {
      ++stats_.offloaded_vertical;
      DF3_OBS_TRACE_IF(o) {
        o->journey_span(this, name(), obs::Phase::kOffloadVertical, now(), now(), r.id);
      }
      datacenter_->submit(std::move(r), origin, sink_);
      return;
    }
  }
  stage_and_enqueue(std::move(r), origin, SIZE_MAX, /*foreign=*/false, sink_);
}

void Cluster::submit_direct(workload::Request r, net::NodeId origin, std::size_t widx) {
  if (widx >= workers_.size()) throw std::out_of_range("submit_direct: bad worker index");
  ++stats_.received_edge;
  DF3_OBS_TRACE_IF(o) {
    o->journey_instant(this, name(), obs::Phase::kArrival, now(), r.id, -1,
                       journey_flow_attr(r.flow));
  }
  // The device talked to the worker directly; input is already on it.
  auto state = std::make_shared<RequestState>(std::move(r));
  auto p = std::make_shared<Pending>();
  p->state = state;
  p->origin = origin;
  p->preferred_worker = widx;
  p->sink = sink_;
  pending_.emplace(state.get(), p);
  enqueue_ready(p);
}

void Cluster::run_pinned(workload::Request r, std::size_t widx, CompletionSink done) {
  if (widx >= workers_.size()) throw std::out_of_range("run_pinned: bad worker index");
  if (!done) throw std::invalid_argument("run_pinned: null completion callback");
  // Pinned execution bypasses the eligibility checks of regular placement,
  // so it can load a worker the regulators believed idle — invalidate any
  // activity gate watching this cluster.
  ++control_epoch_;
  ++stats_.received_pinned;
  // Journey root for pinned injections (the platform opens the journey at
  // intake). Composition stages share ids and are never opened, so this
  // emits nothing for them and their traces are unchanged.
  DF3_OBS_TRACE_IF(o) {
    o->journey_instant_if_open(this, name(), obs::Phase::kArrival, now(), r.id, -1,
                               journey_flow_attr(r.flow));
  }
  auto state = std::make_shared<RequestState>(std::move(r));
  auto p = std::make_shared<Pending>();
  p->state = state;
  p->origin = workers_[widx]->node();
  p->preferred_worker = widx;
  p->local_only = true;
  p->sink = std::move(done);
  pending_.emplace(state.get(), p);
  enqueue_ready(p);
}

void Cluster::submit_offloaded(workload::Request r, net::NodeId origin,
                               CompletionSink peer_sink) {
  ++stats_.offloaded_horizontal_in;
  DF3_OBS_TRACE_IF(o) {
    o->journey_instant(this, name(), obs::Phase::kArrival, now(), r.id, -1,
                       journey_flow_attr(r.flow));
  }
  stage_and_enqueue(std::move(r), origin, SIZE_MAX, /*foreign=*/true, std::move(peer_sink));
}

void Cluster::stage_and_enqueue(workload::Request r, net::NodeId origin, std::size_t preferred,
                                bool foreign, CompletionSink sink) {
  if (workers_.empty()) {
    ++stats_.rejected;
    workload::CompletionRecord rec;
    rec.request = std::move(r);
    rec.outcome = workload::Outcome::kRejected;
    rec.completed_at = now();
    rec.served_by = name() + ":no-workers";
    sink(std::move(rec));
    return;
  }
  auto state = std::make_shared<RequestState>(std::move(r));
  auto p = std::make_shared<Pending>();
  p->state = state;
  p->origin = origin;
  p->preferred_worker = preferred;
  p->foreign = foreign;
  p->sink = std::move(sink);
  pending_.emplace(state.get(), p);
  // Stage the input from the gateway to the storage-head worker over the
  // cluster LAN; shards become schedulable on delivery.
  const net::NodeId staging =
      workers_[preferred == SIZE_MAX ? 0 : preferred]->node();
  network_.send(
      net::Message{gateway_node_, staging, state->request.input_size, state->request.id},
      [this, p, sent = now()](sim::Time at) {
        DF3_OBS_TRACE_IF(o) {
          o->journey_span(this, name(), obs::Phase::kStaging, sent, at, p->state->request.id);
        }
        enqueue_ready(p);
      },
      [this, p] {
        // Partitioned from our own workers: the request is lost.
        pending_.erase(p->state.get());
        ++stats_.dropped;
        workload::CompletionRecord rec;
        rec.request = p->state->request;
        rec.outcome = workload::Outcome::kDropped;
        rec.completed_at = now();
        rec.served_by = name() + ":partition";
        p->sink(std::move(rec));
      });
}

void Cluster::enqueue_ready(const std::shared_ptr<Pending>& p) {
  for (Task& t : make_tasks(p->state, slowdown_for(p->state->request))) {
    t.enqueued_at = now();
    queue_.push(std::move(t));
  }
  pump();
}

bool Cluster::worker_eligible(std::size_t widx, Priority p) const {
  if (p == Priority::kEdge) return true;
  return widx >= static_cast<std::size_t>(config_.dedicated_edge_workers);
}

bool Cluster::place(Task& t) {
  const Priority prio = t.priority();
  // Honor direct-request affinity first.
  const auto it = pending_.find(t.request.get());
  if (it != pending_.end() && it->second->preferred_worker != SIZE_MAX) {
    const std::size_t w = it->second->preferred_worker;
    if (w < workers_.size() && workers_[w]->available() && workers_[w]->try_start(t)) {
      it->second->served_worker = w;
      return true;
    }
    // Pinned (local_only) stages are an execution contract, not a
    // preference: the composer selected *this* worker, computed its time
    // and energy there, and staged the input onto it. Falling through to
    // the shared scan would silently run the stage on a different chassis
    // — found by the model checker as a churn-during-composition
    // interleaving (DESIGN.md §13). The stage waits for its worker instead.
    if (it->second->local_only) return false;
  }
  // Edge shards draw candidates from the dedicated pool up; cloud shards
  // only from the shared pool. Candidates are offered to the placement
  // policy in ascending worker order, so "first-fit" (pick 0) replays the
  // historical inline scan exactly — including the retry after a try_start
  // refused by a thermal-gating race, which removes the candidate and asks
  // again.
  const std::size_t start =
      prio == Priority::kEdge ? 0 : static_cast<std::size_t>(config_.dedicated_edge_workers);
  place_scratch_.clear();
  for (std::size_t w = start; w < workers_.size(); ++w) {
    if (!worker_eligible(w, prio)) continue;
    if (workers_[w]->available()) place_scratch_.push_back({w, workers_[w]->free_cores()});
  }
  while (!place_scratch_.empty()) {
    const std::size_t pos = placement_->pick(policy::PlacementView{place_scratch_});
    ++policy_counters_.placement_picks;
    if (pos >= place_scratch_.size()) {
      throw std::out_of_range("placement policy '" + std::string(placement_->name()) +
                              "' picked a candidate out of range");
    }
    const std::size_t w = place_scratch_[pos].worker;
    if (workers_[w]->try_start(t)) {
      if (it != pending_.end()) it->second->served_worker = w;
      return true;
    }
    place_scratch_.erase(place_scratch_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return false;
}

bool Cluster::handle_unplaceable_edge(Task t) {
  // Lazy RungView fill: only a ladder that declared needs_grid() pays the
  // lookup, and only when a plane is bound (grid_valid stays false so
  // grid-aware rungs decline cleanly on no-grid runs).
  policy::RungView view;
  if (ladder_needs_grid_ && grid_now_ != nullptr) {
    ++policy_counters_.rung_grid_fills;
    view.grid_valid = true;
    view.curtailment_active = grid_plane_->curtailed(grid_region_);
    view.carbon_gco2_per_kwh = grid_now_->carbon_gco2_per_kwh;
    view.price_eur_per_kwh = grid_now_->price_eur_per_kwh;
  }
  for (std::size_t i = 0; i < ladder_.size(); ++i) {
    switch (ladder_[i]->apply(*this, t, view)) {
      case policy::RungOutcome::kNoOp:
        continue;  // this rung could not help; try the next one
      case policy::RungOutcome::kResolved:
        ++policy_counters_.rung_hits[i];
        return true;
      case policy::RungOutcome::kParked:
        ++policy_counters_.rung_hits[i];
        return false;
    }
  }
  // Ladder exhausted: the request waits anyway (equivalent to a delay rung).
  ++stats_.edge_delays;
  DF3_OBS_TRACE_IF(o) {
    o->journey_span(this, name(), obs::Phase::kDelay, now(), now(), t.request->request.id,
                    t.shard_index);
  }
  queue_.push_front(std::move(t));
  return false;
}

policy::RungOutcome Cluster::relieve_by_preemption(Task& t) {
  // A pinned stage may only take a core on its own worker: preempting a
  // victim elsewhere would start the stage on a chassis the composer never
  // selected (same contract as place()).
  const auto pin = pending_.find(t.request.get());
  const bool pinned = pin != pending_.end() && pin->second->local_only;
  for (std::size_t wi = 0; wi < workers_.size(); ++wi) {
    if (pinned && wi != pin->second->preferred_worker) continue;
    Worker& w = *workers_[wi];
    if (w.running_below(Priority::kEdge) == 0) continue;
    auto victim = w.preempt_one(Priority::kEdge);
    if (!victim) continue;
    ++stats_.preemptions;
    DF3_OBS_TRACE_IF(o) {
      o->journey_span(this, name(), obs::Phase::kPreempt, now(), now(), t.request->request.id,
                      t.shard_index);
    }
    victim->remaining_gigacycles += config_.preemption_overhead_gc;
    victim->enqueued_at = now();
    queue_.push_front(std::move(*victim));
    if (w.try_start(t)) {
      const auto pit = pending_.find(t.request.get());
      if (pit != pending_.end()) pit->second->served_worker = wi;
      return policy::RungOutcome::kResolved;
    }
    // Freed core vanished (thermal gating race): wait instead.
    queue_.push_front(std::move(t));
    return policy::RungOutcome::kParked;
  }
  return policy::RungOutcome::kNoOp;  // nothing preemptible
}

policy::RungOutcome Cluster::relieve_by_horizontal(Task& t) {
  const auto it = pending_.find(t.request.get());
  // local_only: a pinned composition stage must not leave its worker, let
  // alone the cluster — the composer owns its transfers and expects the
  // stage to run where it staged the input. The model checker flushed this
  // as a depth-1 interleaving (pinned stage arriving at a saturated
  // cluster was silently shipped to a peer, DESIGN.md §13).
  if (peers_.empty() || it == pending_.end() || it->second->foreign ||
      it->second->local_only) {
    return policy::RungOutcome::kNoOp;
  }
  if (t.request->request.tasks != 1) {
    return policy::RungOutcome::kNoOp;  // only whole single-shard requests move
  }
  Cluster* const peer = select_peer();
  auto p = it->second;
  pending_.erase(it);
  ++stats_.offloaded_horizontal_out;
  DF3_OBS_TRACE_IF(o) {
    // The shard never reached a core here: its local queue time would
    // otherwise vanish from the journey, so close the gap before the
    // offload decision record.
    if (t.enqueued_at >= 0.0) {
      o->journey_span_if_open(this, name(), obs::Phase::kQueueWait, t.enqueued_at, now(),
                              t.request->request.id, t.shard_index,
                              static_cast<std::uint32_t>(t.shard_index));
    }
    o->journey_span(this, name(), obs::Phase::kOffloadHorizontal, now(), now(),
                    t.request->request.id, t.shard_index);
  }
  const std::string via = "horizontal:" + peer->name();
  auto wrap = [sink = p->sink, via](workload::CompletionRecord rec) {
    rec.served_by = via;
    sink(std::move(rec));
  };
  // Pay the gateway-to-gateway hop, then hand over.
  workload::Request moved = p->state->request;
  moved.work_gigacycles = t.remaining_gigacycles;  // keep any progress
  network_.send(
      net::Message{gateway_node_, peer->gateway_node(), moved.input_size, moved.id,
                   obs::HopKind::kHandoff},
      [peer, moved, origin = p->origin, wrap](sim::Time) mutable {
        peer->submit_offloaded(std::move(moved), origin, wrap);
      },
      [moved, sink = p->sink, this]() mutable {
        // No counter here: responsibility already left this cluster
        // when offloaded_horizontal_out was incremented above, and
        // bumping `rejected` as well would double-count the request
        // in the conservation identity. The platform still sees the
        // loss through the kDropped record.
        //
        // Report straight through the original sink, not `wrap`: the
        // peer never saw this request, so a record claiming it was
        // served "horizontal:<peer>" misattributes the loss in every
        // served_by metric slice. Flushed by the model checker as a
        // flap-before-hand-off interleaving (DESIGN.md §13).
        workload::CompletionRecord rec;
        rec.request = std::move(moved);
        rec.outcome = workload::Outcome::kDropped;
        rec.completed_at = now();
        rec.served_by = name() + ":partition";
        sink(std::move(rec));
      });
  return policy::RungOutcome::kResolved;
}

Cluster* Cluster::select_peer() {
  peer_scratch_.clear();
  // Control-phase picks read the pre-control lane snapshot (DESIGN.md
  // §12): one consistent per-tick view regardless of how many control
  // lanes run or how the sweep interleaves with peer regulation.
  // Event-time picks (arrivals, completions) see live state as before.
  // The platform arms every building cluster together, so our own flag
  // answers for the peers too.
  if (lane_snapshot_armed_) {
    for (const Cluster* p : peers_) {
      peer_scratch_.push_back({p->lane_backlog_per_core_, p->lane_free_cores_});
    }
  } else {
    for (Cluster* const p : peers_) {
      const double cores = static_cast<double>(std::max(1, p->usable_cores()));
      peer_scratch_.push_back({p->queued_gigacycles() / cores, p->free_cores()});
    }
  }
  policy::PeerView view{peer_scratch_};
  // Lazy PeerView fill, same contract as the RungView above. Peers are
  // bound to the plane together by the platform, so each peer's own sample
  // pointer carries its region's signal.
  if (peer_needs_grid_ && grid_now_ != nullptr) {
    ++policy_counters_.peer_grid_fills;
    view.grid_valid = true;
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      peer_scratch_[i].carbon_gco2_per_kwh =
          peers_[i]->grid_now_ != nullptr ? peers_[i]->grid_now_->carbon_gco2_per_kwh : 0.0;
    }
  }
  const std::size_t pos = peer_selector_->pick(view);
  ++policy_counters_.peer_picks;
  if (pos >= peers_.size()) {
    throw std::out_of_range("peer selector '" + std::string(peer_selector_->name()) +
                            "' picked a peer out of range");
  }
  return peers_[pos];
}

policy::RungOutcome Cluster::relieve_by_vertical(Task& t) {
  const auto it = pending_.find(t.request.get());
  // local_only: same pinned-stage contract as relieve_by_horizontal.
  if (datacenter_ == nullptr || it == pending_.end() || it->second->local_only) {
    return policy::RungOutcome::kNoOp;
  }
  if (t.request->request.privacy_sensitive) {
    return policy::RungOutcome::kNoOp;  // must stay local
  }
  if (t.request->request.tasks != 1) return policy::RungOutcome::kNoOp;
  auto p = it->second;
  pending_.erase(it);
  ++stats_.offloaded_vertical;
  DF3_OBS_TRACE_IF(o) {
    if (t.enqueued_at >= 0.0) {
      o->journey_span_if_open(this, name(), obs::Phase::kQueueWait, t.enqueued_at, now(),
                              t.request->request.id, t.shard_index,
                              static_cast<std::uint32_t>(t.shard_index));
    }
    o->journey_span(this, name(), obs::Phase::kOffloadVertical, now(), now(),
                    t.request->request.id, t.shard_index);
  }
  workload::Request moved = p->state->request;
  moved.work_gigacycles = t.remaining_gigacycles;
  datacenter_->submit(std::move(moved), p->origin, p->sink);
  return policy::RungOutcome::kResolved;
}

policy::RungOutcome Cluster::relieve_by_delay(Task& t) {
  ++stats_.edge_delays;
  DF3_OBS_TRACE_IF(o) {
    o->journey_span(this, name(), obs::Phase::kDelay, now(), now(), t.request->request.id,
                    t.shard_index);
  }
  queue_.push_front(std::move(t));
  return policy::RungOutcome::kParked;
}

void Cluster::pump() {
  if (pumping_) return;  // completions re-enter; the outer loop continues
  pumping_ = true;
  while (!queue_.empty()) {
    Task t = *queue_.pop();
    // Abandon expired real-time work at dispatch: running an alarm whose
    // deadline passed wastes a core and hides the miss from the metrics.
    if (t.priority() == Priority::kEdge && t.request->request.tasks == 1) {
      const auto dl = t.deadline();
      if (dl && *dl < now()) {
        abandon_expired(std::move(t));
        continue;
      }
    }
    if (place(t)) continue;
    if (t.priority() == Priority::kEdge) {
      // Returns false when the shard ended up waiting in the queue — no
      // capacity exists anywhere, so stop scanning.
      if (!handle_unplaceable_edge(std::move(t))) break;
      continue;
    }
    // Cloud shard and no shared core free: wait for a completion.
    queue_.push_front(std::move(t));
    break;
  }
  pumping_ = false;
}

void Cluster::abandon_expired(Task t) {
  const auto it = pending_.find(t.request.get());
  if (it == pending_.end()) return;  // already resolved elsewhere
  auto p = it->second;
  pending_.erase(it);
  ++stats_.deadline_missed;
  // The shard dies in the queue; record the wait so the journey tiles up to
  // the deadline-missed terminal (emitted by the sink at this same instant).
  DF3_OBS_TRACE_IF(o) {
    if (t.enqueued_at >= 0.0) {
      o->journey_span_if_open(this, name(), obs::Phase::kQueueWait, t.enqueued_at, now(),
                              t.request->request.id, t.shard_index,
                              static_cast<std::uint32_t>(t.shard_index));
    }
  }
  auto state = t.request;
  sim().schedule_in(0.0, [p, state, this] {
    workload::CompletionRecord rec;
    rec.request = state->request;
    rec.completed_at = now();
    rec.outcome = workload::Outcome::kDeadlineMissed;
    rec.served_by = name() + ":expired";
    p->sink(std::move(rec));
  });
}

void Cluster::on_task_done(Task t) {
  auto state = t.request;
  --state->shards_remaining;
  if (state->shards_remaining == 0) complete(state);
  pump();
}

void Cluster::complete(const std::shared_ptr<RequestState>& state) {
  const auto it = pending_.find(state.get());
  if (it == pending_.end()) return;  // already resolved (offloaded mid-flight)
  auto p = it->second;
  pending_.erase(it);
  ++stats_.completed;
  if (p->foreign) stats_.foreign_gigacycles += state->request.total_work();
  if (p->local_only) {
    // Composition stage: the caller owns all transfers.
    sim().schedule_in(0.0, [p, state, this] {
      workload::CompletionRecord rec;
      rec.request = state->request;
      rec.completed_at = now();
      const auto deadline = state->request.absolute_deadline();
      rec.outcome = (deadline && rec.completed_at > *deadline)
                        ? workload::Outcome::kDeadlineMissed
                        : workload::Outcome::kCompleted;
      rec.served_by = name() + ":pinned";
      p->sink(std::move(rec));
    });
    return;
  }
  // Ship the result back to the origin: straight from the serving worker
  // for direct requests, relayed via the gateway otherwise. The serving
  // worker can differ from the preferred one — placement falls through to
  // the shared scan when the preferred worker is busy or gated — and the
  // result lives where the work ran, not where the device first connected.
  const net::NodeId from = (p->preferred_worker != SIZE_MAX && p->served_worker < workers_.size())
                               ? workers_[p->served_worker]->node()
                               : gateway_node_;
  const std::string via = name() + (p->foreign ? ":foreign" : ":local");
  network_.send(
      net::Message{from, p->origin, state->request.output_size, state->request.id,
                   obs::HopKind::kReturn},
      [p, state, via](sim::Time delivered) {
        workload::CompletionRecord rec;
        rec.request = state->request;
        rec.completed_at = delivered;
        const auto deadline = state->request.absolute_deadline();
        rec.outcome = (deadline && delivered > *deadline) ? workload::Outcome::kDeadlineMissed
                                                          : workload::Outcome::kCompleted;
        rec.served_by = via;
        p->sink(std::move(rec));
      },
      [p, state, via, this] {
        // The work was done (stats_.completed already counted it); only
        // the result transport was lost, so no further cluster counter.
        workload::CompletionRecord rec;
        rec.request = state->request;
        rec.completed_at = now();
        rec.outcome = workload::Outcome::kDropped;
        rec.served_by = via + ":return-partition";
        p->sink(std::move(rec));
      });
}

void Cluster::audit(std::vector<std::string>& out) const {
  const std::uint64_t intake = stats_.intake();
  const std::uint64_t terminal = stats_.terminal();
  const auto in_flight = static_cast<std::uint64_t>(pending_.size());
  if (intake != terminal + in_flight) {
    out.push_back(name() + ": conservation violated — intake " + std::to_string(intake) +
                  " != terminal " + std::to_string(terminal) + " + in_flight " +
                  std::to_string(in_flight));
  }
  queue_.audit(out, name() + "/queue");
  for (const auto& w : workers_) w->audit(out);
}

}  // namespace df3::core
