#include "df3/core/worker.hpp"

#include <algorithm>
#include <stdexcept>

#include "df3/obs/obs.hpp"

namespace df3::core {

Worker::Worker(sim::Simulation& sim, std::string name, hw::ServerSpec spec, net::NodeId node,
               TaskDone on_task_done)
    : sim::Entity(sim, std::move(name)),
      server_(std::move(spec)),
      node_(node),
      on_task_done_(std::move(on_task_done)) {
  if (!on_task_done_) throw std::invalid_argument("Worker: null completion callback");
}

int Worker::free_cores() const {
  return std::max(0, server_.usable_cores() - busy_cores());
}

double Worker::busy_core_seconds() const {
  return busy_core_seconds_ + busy_cores() * (now() - busy_accum_mark_);
}

void Worker::settle(Running& r) {
  const double elapsed = now() - r.started_at;
  if (elapsed > 0.0 && r.speed_gcps > 0.0) {
    const double progressed = elapsed * r.speed_gcps / r.task.slowdown;
    r.task.remaining_gigacycles = std::max(0.0, r.task.remaining_gigacycles - progressed);
  }
  r.started_at = now();
}

void Worker::arm_completion(Running& r) {
  r.completion.cancel();
  if (r.speed_gcps <= 0.0) return;  // paused: gated off or thermally shut down
  const double duration = r.task.remaining_gigacycles * r.task.slowdown / r.speed_gcps;
  const int shard = r.task.shard_index;
  const auto* state = r.task.request.get();
  r.completion = sim().schedule_in(duration, [this, state, shard] {
    for (std::size_t i = 0; i < running_.size(); ++i) {
      if (running_[i].task.request.get() == state && running_[i].task.shard_index == shard) {
        finish(i);
        return;
      }
    }
  });
}

bool Worker::try_start(Task task) {
  if (free_cores() <= 0) return false;
  busy_core_seconds_ = busy_core_seconds();
  busy_accum_mark_ = now();
  DF3_OBS_TRACE_IF(o) {
    if (task.enqueued_at >= 0.0) {
      o->journey_span(this, name(), obs::Phase::kQueueWait, task.enqueued_at, now(),
                      task.request->request.id, task.shard_index,
                      static_cast<std::uint32_t>(task.shard_index));
    }
  }
  Running r;
  r.task = std::move(task);
  r.started_at = now();
  r.dispatched_at = now();
  r.speed_gcps = server_.core_speed_gcps();
  running_.push_back(std::move(r));
  server_.set_busy_cores(busy_cores());
  if (running_.back().task.request->first_dispatch < 0.0) {
    running_.back().task.request->first_dispatch = now();
  }
  arm_completion(running_.back());
  return true;
}

void Worker::finish(std::size_t idx) {
  busy_core_seconds_ = busy_core_seconds();
  busy_accum_mark_ = now();
  Running r = std::move(running_[idx]);
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(idx));
  settle(r);
  r.task.remaining_gigacycles = 0.0;
  sync_busy_cores();
  ++completed_;
  DF3_OBS_TRACE_IF(o) {
    o->journey_span(this, name(), obs::Phase::kRun, r.dispatched_at, now(),
                    r.task.request->request.id, r.task.shard_index,
                    static_cast<std::uint32_t>(r.task.shard_index));
  }
  on_task_done_(std::move(r.task));
}

std::optional<Task> Worker::preempt_one(Priority min_keep) {
  std::size_t best = running_.size();
  double most_remaining = -1.0;
  for (std::size_t i = 0; i < running_.size(); ++i) {
    Running& r = running_[i];
    if (r.task.priority() >= min_keep || !r.task.preemptible()) continue;
    settle(r);  // refresh remaining work before comparing
    if (r.task.remaining_gigacycles > most_remaining) {
      most_remaining = r.task.remaining_gigacycles;
      best = i;
    }
  }
  if (best == running_.size()) return std::nullopt;
  busy_core_seconds_ = busy_core_seconds();
  busy_accum_mark_ = now();
  Running victim = std::move(running_[best]);
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(best));
  victim.completion.cancel();
  settle(victim);
  sync_busy_cores();
  ++preempted_;
  // The partial execution segment still shows up in the trace; the ladder
  // records the preemption event itself on the cluster track.
  DF3_OBS_TRACE_IF(o) {
    o->journey_span(this, name(), obs::Phase::kRun, victim.dispatched_at, now(),
                    victim.task.request->request.id, victim.task.shard_index,
                    static_cast<std::uint32_t>(victim.task.shard_index));
  }
  return std::move(victim.task);
}

void Worker::audit(std::vector<std::string>& out) const {
  const int expect = std::min(busy_cores(), server_.usable_cores());
  if (server_.busy_cores() != expect) {
    out.push_back(name() + ": server busy-core count " + std::to_string(server_.busy_cores()) +
                  " inconsistent with running set (" + std::to_string(busy_cores()) +
                  " running, " + std::to_string(server_.usable_cores()) + " usable)");
  }
  for (const auto& r : running_) {
    if (r.task.remaining_gigacycles < 0.0) {
      out.push_back(name() + ": running shard " + std::to_string(r.task.shard_index) +
                    " of request id " + std::to_string(r.task.request->request.id) +
                    " has negative remaining work");
    }
  }
}

int Worker::running_below(Priority p) const {
  int n = 0;
  for (const auto& r : running_) {
    if (r.task.priority() < p && r.task.preemptible()) ++n;
  }
  return n;
}

double Worker::backlog_gigacycles() const {
  double total = 0.0;
  for (const auto& r : running_) total += r.task.remaining_gigacycles;
  return total;
}

}  // namespace df3::core
