#include "df3/metrics/audit.hpp"

namespace df3::metrics {

namespace {
std::string describe(const workload::CompletionRecord& rec, const char* what) {
  return std::string(what) + " terminal for request id " + std::to_string(rec.request.id) +
         " (app " + rec.request.app + ", outcome " + workload::outcome_name(rec.outcome) +
         ", served_by " + rec.served_by + ")";
}
}  // namespace

void LifecycleAuditor::on_submitted(const workload::Request& r) {
  if (level_ == AuditLevel::kOff) return;
  ++submitted_;
  if (level_ == AuditLevel::kFull) {
    const auto [it, inserted] = lifecycle_.emplace(r.id, false);
    if (!inserted) {
      // A re-submitted id would make exactly-once accounting ambiguous;
      // ids are unique by construction (source hash | sequence), so flag it.
      report("duplicate submission for request id " + std::to_string(r.id));
    }
  }
}

void LifecycleAuditor::on_terminal(const workload::CompletionRecord& rec) {
  if (level_ == AuditLevel::kOff) return;
  ++terminals_;
  switch (rec.outcome) {
    case workload::Outcome::kCompleted: ++completed_; break;
    case workload::Outcome::kRejected: ++rejected_; break;
    case workload::Outcome::kDropped: ++dropped_; break;
    case workload::Outcome::kDeadlineMissed: ++deadline_missed_; break;
  }
  if (level_ != AuditLevel::kFull) return;
  const auto it = lifecycle_.find(rec.request.id);
  if (it == lifecycle_.end()) {
    ++unknowns_;
    report(describe(rec, "unknown"));
    return;
  }
  if (it->second) {
    ++duplicates_;
    report(describe(rec, "duplicate"));
    return;
  }
  it->second = true;
}

void LifecycleAuditor::reset() {
  submitted_ = 0;
  terminals_ = 0;
  completed_ = 0;
  rejected_ = 0;
  dropped_ = 0;
  deadline_missed_ = 0;
  duplicates_ = 0;
  unknowns_ = 0;
  violation_count_ = 0;
  violations_.clear();
  lifecycle_.clear();
}

void LifecycleAuditor::report(std::string what) {
  ++violation_count_;
  if (violations_.size() < kMaxStoredViolations) violations_.push_back(std::move(what));
}

std::uint64_t LifecycleAuditor::open_requests() const {
  if (level_ == AuditLevel::kFull) {
    std::uint64_t open = 0;
    for (const auto& [id, resolved] : lifecycle_) {
      if (!resolved) ++open;
    }
    return open;
  }
  // Counter arithmetic: exact as long as no duplicates slipped through
  // (which kCounters cannot detect — that is what kFull is for).
  return terminals_ >= submitted_ ? 0 : submitted_ - terminals_;
}

std::vector<std::string> LifecycleAuditor::check_quiescent() const {
  std::vector<std::string> out = violations_;
  if (level_ == AuditLevel::kOff) return out;
  if (level_ == AuditLevel::kFull) {
    std::size_t named = 0;
    for (const auto& [id, resolved] : lifecycle_) {
      if (resolved) continue;
      if (named < 8) {
        out.push_back("request id " + std::to_string(id) + " never reached a terminal outcome");
      }
      ++named;
    }
    if (named > 8) {
      out.push_back("... and " + std::to_string(named - 8) + " more unresolved requests");
    }
  } else if (terminals_ != submitted_) {
    out.push_back("conservation: submitted " + std::to_string(submitted_) + " != terminals " +
                  std::to_string(terminals_));
  }
  return out;
}

}  // namespace df3::metrics
