#include "df3/metrics/collectors.hpp"

#include <cmath>
#include <stdexcept>

namespace df3::metrics {

const FlowMetrics::Slice FlowMetrics::kEmpty{};

namespace {
void record_into(FlowMetrics::Slice& s, const workload::CompletionRecord& rec) {
  switch (rec.outcome) {
    case workload::Outcome::kCompleted:
      ++s.completed;
      s.response_s.add(rec.response_time());
      break;
    case workload::Outcome::kDeadlineMissed:
      ++s.deadline_missed;
      break;
    case workload::Outcome::kRejected:
      ++s.rejected;
      break;
    case workload::Outcome::kDropped:
      ++s.dropped;
      break;
  }
}
}  // namespace

void FlowMetrics::record(const workload::CompletionRecord& rec) {
  record_into(overall_, rec);
  record_into(by_flow_[rec.request.flow], rec);
  record_into(by_app_[rec.request.app], rec);
  ++served_by_[rec.served_by];
}

const FlowMetrics::Slice& FlowMetrics::by_flow(workload::Flow f) const {
  const auto it = by_flow_.find(f);
  return it == by_flow_.end() ? kEmpty : it->second;
}

const FlowMetrics::Slice& FlowMetrics::by_app(const std::string& app) const {
  const auto it = by_app_.find(app);
  return it == by_app_.end() ? kEmpty : it->second;
}

std::uint64_t FlowMetrics::served_by_prefix(const std::string& prefix) const {
  std::uint64_t n = 0;
  for (const auto& [key, count] : served_by_) {
    if (key.rfind(prefix, 0) == 0) n += count;
  }
  return n;
}

namespace {
void add_checked(util::Joules& slot, util::Joules e, const char* what) {
  if (e.value() < 0.0) throw std::invalid_argument(std::string("EnergyLedger: negative ") + what);
  slot += e;
}
}  // namespace

void EnergyLedger::add_it(util::Joules e) { add_checked(it_, e, "IT energy"); }
void EnergyLedger::add_overhead(util::Joules e) { add_checked(overhead_, e, "overhead"); }
void EnergyLedger::add_cooling(util::Joules e) { add_checked(cooling_, e, "cooling"); }
void EnergyLedger::add_useful_heat(util::Joules e) { add_checked(useful_heat_, e, "useful heat"); }
void EnergyLedger::add_waste_heat(util::Joules e) { add_checked(waste_heat_, e, "waste heat"); }

double EnergyLedger::pue() const {
  if (it_.value() <= 0.0) return 1.0;
  return facility_total().value() / it_.value();
}

double EnergyLedger::heat_reuse_fraction() const {
  const double total = facility_total().value();
  return total <= 0.0 ? 0.0 : useful_heat_.value() / total;
}

void EnergyLedger::merge(const EnergyLedger& other) {
  it_ += other.it_;
  overhead_ += other.overhead_;
  cooling_ += other.cooling_;
  useful_heat_ += other.useful_heat_;
  waste_heat_ += other.waste_heat_;
}

void ComfortMetrics::sample(double t, util::Celsius room, util::Celsius target) {
  abs_dev_.record(t, std::abs(room.value() - target.value()));
  temp_.record(t, room.value());
}

double ComfortMetrics::mean_abs_deviation_k(double until) const {
  return abs_dev_.empty() ? 0.0 : abs_dev_.mean_until(until);
}

double ComfortMetrics::mean_temperature_c(double until) const {
  return temp_.empty() ? 0.0 : temp_.mean_until(until);
}

}  // namespace df3::metrics
