#include "df3/metrics/collectors.hpp"

#include <cmath>
#include <stdexcept>

namespace df3::metrics {

const FlowMetrics::Slice FlowMetrics::kEmpty{};

namespace {
void record_into(FlowMetrics::Slice& s, const workload::CompletionRecord& rec) {
  switch (rec.outcome) {
    case workload::Outcome::kCompleted:
      ++s.completed;
      s.response_s.add(rec.response_time());
      break;
    case workload::Outcome::kDeadlineMissed:
      ++s.deadline_missed;
      break;
    case workload::Outcome::kRejected:
      ++s.rejected;
      break;
    case workload::Outcome::kDropped:
      ++s.dropped;
      break;
  }
}
}  // namespace

void FlowMetrics::record(const workload::CompletionRecord& rec) {
  record_into(overall_, rec);
  record_into(by_flow_[rec.request.flow], rec);
  record_into(by_app_[rec.request.app], rec);
  ++served_by_[rec.served_by];
}

const FlowMetrics::Slice& FlowMetrics::by_flow(workload::Flow f) const {
  const auto it = by_flow_.find(f);
  return it == by_flow_.end() ? kEmpty : it->second;
}

const FlowMetrics::Slice& FlowMetrics::by_app(const std::string& app) const {
  const auto it = by_app_.find(app);
  return it == by_app_.end() ? kEmpty : it->second;
}

std::uint64_t FlowMetrics::served_by_prefix(const std::string& prefix) const {
  std::uint64_t n = 0;
  for (const auto& [key, count] : served_by_) {
    if (key.rfind(prefix, 0) == 0) n += count;
  }
  return n;
}

void EnergyLedger::throw_negative(const char* what) {
  throw std::invalid_argument(std::string("EnergyLedger: negative ") + what);
}

double EnergyLedger::pue() const {
  if (it_.value() <= 0.0) return 1.0;
  return facility_total().value() / it_.value();
}

double EnergyLedger::heat_reuse_fraction() const {
  const double total = facility_total().value();
  return total <= 0.0 ? 0.0 : useful_heat_.value() / total;
}

void EnergyLedger::merge(const EnergyLedger& other) {
  it_ += other.it_;
  overhead_ += other.overhead_;
  cooling_ += other.cooling_;
  useful_heat_ += other.useful_heat_;
  waste_heat_ += other.waste_heat_;
  grid_cost_eur_ += other.grid_cost_eur_;
  grid_co2_g_ += other.grid_co2_g_;
}


double ComfortMetrics::mean_abs_deviation_k(double until) const {
  return abs_dev_.empty() ? 0.0 : abs_dev_.mean_until(until);
}

double ComfortMetrics::mean_temperature_c(double until) const {
  return temp_.empty() ? 0.0 : temp_.mean_until(until);
}

}  // namespace df3::metrics
