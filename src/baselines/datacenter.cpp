#include "df3/baselines/datacenter.hpp"

#include <stdexcept>

#include "df3/obs/obs.hpp"

namespace df3::baselines {

namespace {
/// Flow attribute on journey arrival links: 0 = unknown, else flow+1
/// (mirrors the cluster-side encoding in cluster.cpp).
[[maybe_unused]] constexpr std::uint32_t journey_flow_attr(workload::Flow f) {
  return static_cast<std::uint32_t>(f) + 1;
}
}  // namespace

Datacenter::Datacenter(sim::Simulation& sim, DatacenterConfig config)
    : sim::Entity(sim, config.label), config_(std::move(config)) {
  if (config_.cores <= 0) throw std::invalid_argument("Datacenter: cores must be positive");
  if (config_.core_speed_gcps <= 0.0) {
    throw std::invalid_argument("Datacenter: core speed must be positive");
  }
  if (config_.cooling_fraction < 0.0 || config_.overhead_fraction < 0.0) {
    throw std::invalid_argument("Datacenter: negative energy fractions");
  }
  energy_mark_ = now();
}

void Datacenter::settle_energy() {
  const double dt = now() - energy_mark_;
  if (dt <= 0.0) return;
  energy_mark_ = now();
  busy_core_seconds_ += busy_cores_ * dt;
  const double idle_cores = static_cast<double>(config_.cores - busy_cores_);
  const util::Joules it = (config_.power_per_busy_core * static_cast<double>(busy_cores_) +
                           config_.power_per_idle_core * idle_cores) *
                          util::Seconds{dt};
  ledger_.add_it(it);
  ledger_.add_overhead(it * config_.overhead_fraction);
  ledger_.add_cooling(it * config_.cooling_fraction);
  // Everything an air-cooled facility consumes is rejected as waste heat.
  ledger_.add_waste_heat(it * (1.0 + config_.cooling_fraction));
}

void Datacenter::submit(workload::Request r, net::NodeId origin, Done done) {
  if (!done) throw std::invalid_argument("Datacenter::submit: null completion callback");
  const double uplink =
      config_.wan.one_hop_delay(r.input_size).value() + config_.extra_latency_s;
  // Journey segments are `_if_open`: the WAN is modelled as a point delay
  // (no net::Network hop), so the facility emits its own uplink/downlink
  // spans — but only for requests whose journey the platform opened, so
  // traces of non-journey traffic are unchanged.
  DF3_OBS_TRACE_IF(o) {
    o->journey_span_if_open(this, config_.label, obs::Phase::kNetHop, now(), now() + uplink, r.id,
                            -1, static_cast<std::uint32_t>(obs::HopKind::kDcUplink));
  }
  sim().schedule_in(uplink, [this, r = std::move(r), origin, done = std::move(done)]() mutable {
    auto job = std::make_shared<Job>(
        Job{std::move(r), origin, std::move(done), 0, now()});
    job->shards_left = job->request.tasks;
    DF3_OBS_TRACE_IF(o) {
      o->journey_instant_if_open(this, config_.label, obs::Phase::kArrival, now(),
                                 job->request.id, -1, journey_flow_attr(job->request.flow));
    }
    for (int i = 0; i < job->request.tasks; ++i) {
      queue_.push_back(Shard{job, job->request.work_gigacycles});
    }
    dispatch();
  });
}

void Datacenter::dispatch() {
  while (!queue_.empty() && busy_cores_ < config_.cores) {
    settle_energy();
    Shard s = std::move(queue_.front());
    queue_.pop_front();
    ++busy_cores_;
    if (s.job->first_start < 0.0) {
      s.job->first_start = now();
      DF3_OBS_TRACE_IF(o) {
        o->journey_span_if_open(this, config_.label, obs::Phase::kQueueWait,
                                s.job->arrived_at_dc, now(), s.job->request.id, 0, 0);
      }
    }
    const double duration = s.gigacycles / config_.core_speed_gcps;
    sim().schedule_in(duration, [this, job = s.job] {
      settle_energy();
      --busy_cores_;
      finish_shard(job);
      dispatch();
    });
  }
}

void Datacenter::finish_shard(const std::shared_ptr<Job>& job) {
  if (--job->shards_left > 0) return;
  ++completed_;
  const double downlink =
      config_.wan.one_hop_delay(job->request.output_size).value() + config_.extra_latency_s;
  DF3_OBS_TRACE_IF(o) {
    // One run segment per job: first shard dispatch to last shard finish.
    o->journey_span_if_open(this, config_.label, obs::Phase::kRun, job->first_start, now(),
                            job->request.id, 0, 0);
    o->journey_span_if_open(this, config_.label, obs::Phase::kNetHop, now(), now() + downlink,
                            job->request.id, -1,
                            static_cast<std::uint32_t>(obs::HopKind::kDcDownlink));
  }
  sim().schedule_in(downlink, [this, job] {
    workload::CompletionRecord rec;
    rec.request = job->request;
    rec.completed_at = now();
    const auto deadline = job->request.absolute_deadline();
    rec.outcome = (deadline && rec.completed_at > *deadline)
                      ? workload::Outcome::kDeadlineMissed
                      : workload::Outcome::kCompleted;
    rec.served_by = "vertical:" + config_.label;
    job->done(std::move(rec));
  });
}

const metrics::EnergyLedger& Datacenter::energy() {
  settle_energy();
  return ledger_;
}

double Datacenter::mean_utilization() const {
  const double elapsed = now();
  if (elapsed <= 0.0) return 0.0;
  const double current = busy_core_seconds_ + busy_cores_ * (now() - energy_mark_);
  return current / (elapsed * static_cast<double>(config_.cores));
}

DatacenterConfig micro_datacenter_config() {
  DatacenterConfig c;
  c.label = "micro-datacenter";
  c.cores = 64;
  c.cooling_fraction = 0.25;  // small room units, partial free cooling
  c.overhead_fraction = 0.08; // worse PSU/network amortization at small scale
  c.extra_latency_s = 0.002;  // in-city
  return c;
}

DatacenterConfig cdn_pop_config() {
  DatacenterConfig c;
  c.label = "cdn-pop";
  c.cores = 16;
  c.cooling_fraction = 0.35;
  c.overhead_fraction = 0.08;
  c.extra_latency_s = 0.001;  // carrier hotel in the same metro
  return c;
}

}  // namespace df3::baselines
