#include "df3/baselines/desktop_grid.hpp"

#include <algorithm>
#include <stdexcept>

#include "df3/thermal/calendar.hpp"

namespace df3::baselines {

DesktopGrid::DesktopGrid(sim::Simulation& sim, DesktopGridConfig config, std::uint64_t seed)
    : sim::Entity(sim, config.label),
      config_(std::move(config)),
      rng_(seed, this->name()) {
  if (config_.hosts <= 0 || config_.cores_per_host <= 0) {
    throw std::invalid_argument("DesktopGrid: hosts and cores must be positive");
  }
  if (config_.core_speed_gcps <= 0.0) {
    throw std::invalid_argument("DesktopGrid: core speed must be positive");
  }
  hosts_.resize(static_cast<std::size_t>(config_.hosts));
  energy_mark_ = now();
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    hosts_[h].available = rng_.bernoulli(0.6);
    arm_flip(h);
  }
}

void DesktopGrid::arm_flip(std::size_t h) {
  Host& host = hosts_[h];
  double mean;
  if (host.available) {
    mean = config_.mean_available_s;
  } else {
    // Owners reclaim far less at night: reclaimed spells are shorter.
    const double hour = thermal::hour_of_day(now());
    const bool night = hour >= 22.0 || hour < 7.0;
    mean = night ? config_.mean_reclaimed_s / 4.0 : config_.mean_reclaimed_s;
  }
  const double sojourn = rng_.exponential(1.0 / mean);
  host.flip = sim().schedule_in(sojourn, [this, h] {
    if (hosts_[h].available) {
      reclaim(h);
    } else {
      release(h);
    }
    arm_flip(h);
  });
}

void DesktopGrid::reclaim(std::size_t h) {
  settle_energy();
  Host& host = hosts_[h];
  host.available = false;
  // Kill every running shard: no checkpoints in classic volunteer
  // computing; full gigacycles go back to the queue.
  for (auto& slot : host.slots) {
    if (!slot->live) continue;
    slot->completion.cancel();
    slot->live = false;
    ++restarts_;
    queue_.emplace_back(slot->job, slot->gigacycles);
  }
  host.slots.clear();
  host.busy_cores = 0;
  dispatch();  // restarted shards may fit elsewhere right now
}

void DesktopGrid::release(std::size_t h) {
  settle_energy();
  hosts_[h].available = true;
  dispatch();
}

int DesktopGrid::available_hosts() const {
  int n = 0;
  for (const auto& host : hosts_) n += host.available ? 1 : 0;
  return n;
}

void DesktopGrid::settle_energy() {
  const double dt = now() - energy_mark_;
  if (dt <= 0.0) return;
  energy_mark_ = now();
  double busy = 0.0, idle_hosts = 0.0;
  for (const auto& host : hosts_) {
    busy += host.busy_cores;
    if (host.available) idle_hosts += 1.0;
  }
  const util::Joules it = (config_.power_per_busy_core * busy +
                           config_.power_per_idle_host * idle_hosts) *
                          util::Seconds{dt};
  ledger_.add_it(it);
  // Desktop heat lands in homes but is not *requested* heat: waste.
  ledger_.add_waste_heat(it);
}

void DesktopGrid::submit(workload::Request r, net::NodeId /*origin*/, Done done) {
  if (!done) throw std::invalid_argument("DesktopGrid::submit: null completion callback");
  const double uplink = config_.wan.one_hop_delay(r.input_size).value();
  sim().schedule_in(uplink, [this, r = std::move(r), done = std::move(done)]() mutable {
    auto job = std::make_shared<Job>(Job{std::move(r), std::move(done), 0});
    job->shards_left = job->request.tasks;
    for (int i = 0; i < job->request.tasks; ++i) {
      queue_.emplace_back(job, job->request.work_gigacycles);
    }
    dispatch();
  });
}

void DesktopGrid::dispatch() {
  while (!queue_.empty()) {
    // First fit over available hosts with a free core.
    std::size_t target = hosts_.size();
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      if (hosts_[h].available && hosts_[h].busy_cores < config_.cores_per_host) {
        target = h;
        break;
      }
    }
    if (target == hosts_.size()) return;  // nothing free: wait for release
    settle_energy();
    auto [job, gigacycles] = queue_.front();
    queue_.pop_front();
    Host& host = hosts_[target];
    ++host.busy_cores;
    auto slot = std::make_shared<Host::Slot>();
    slot->job = job;
    slot->gigacycles = gigacycles;
    const double duration = gigacycles / config_.core_speed_gcps;
    slot->completion = sim().schedule_in(duration, [this, target, slot] {
      if (!slot->live) return;
      settle_energy();
      slot->live = false;
      Host& h = hosts_[target];
      h.busy_cores = std::max(0, h.busy_cores - 1);
      h.slots.erase(std::remove(h.slots.begin(), h.slots.end(), slot), h.slots.end());
      finish_job(slot->job);
      dispatch();
    });
    host.slots.push_back(std::move(slot));
  }
}

void DesktopGrid::finish_job(const std::shared_ptr<Job>& job) {
  if (--job->shards_left > 0) return;
  ++completed_;
  const double downlink = config_.wan.one_hop_delay(job->request.output_size).value();
  sim().schedule_in(downlink, [this, job] {
    workload::CompletionRecord rec;
    rec.request = job->request;
    rec.completed_at = now();
    const auto deadline = job->request.absolute_deadline();
    rec.outcome = (deadline && rec.completed_at > *deadline)
                      ? workload::Outcome::kDeadlineMissed
                      : workload::Outcome::kCompleted;
    rec.served_by = "grid:" + config_.label;
    job->done(std::move(rec));
  });
}

const metrics::EnergyLedger& DesktopGrid::energy() {
  settle_energy();
  return ledger_;
}

}  // namespace df3::baselines
