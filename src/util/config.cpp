#include "df3/util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace df3::util {

namespace {
std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

KeyValueConfig KeyValueConfig::parse(std::istream& is) {
  KeyValueConfig out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string body = trim(line);
    if (body.empty()) continue;
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config line " + std::to_string(lineno) + ": expected key=value");
    }
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument("config line " + std::to_string(lineno) + ": empty key");
    }
    if (!out.values_.emplace(key, value).second) {
      throw std::invalid_argument("config line " + std::to_string(lineno) + ": duplicate key '" +
                                  key + "'");
    }
  }
  return out;
}

KeyValueConfig KeyValueConfig::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  return parse(in);
}

bool KeyValueConfig::has(const std::string& key) const {
  accessed_.insert(key);
  return values_.contains(key);
}

std::string KeyValueConfig::get_string(const std::string& key,
                                       const std::string& fallback) const {
  accessed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double KeyValueConfig::get_double(const std::string& key, double fallback) const {
  accessed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "': not a number: " + it->second);
  }
}

long KeyValueConfig::get_int(const std::string& key, long fallback) const {
  accessed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const long v = std::stol(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "': not an integer: " + it->second);
  }
}

bool KeyValueConfig::get_bool(const std::string& key, bool fallback) const {
  accessed_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string v = lower(it->second);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("config key '" + key + "': not a boolean: " + it->second);
}

std::vector<std::string> KeyValueConfig::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::vector<std::string> KeyValueConfig::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (!accessed_.contains(k)) out.push_back(k);
  }
  return out;
}

std::size_t KeyValueConfig::warn_unused(std::ostream& os) const {
  const auto unused = unused_keys();
  for (const auto& k : unused) {
    os << "warning: unrecognized config key '" << k << "' was ignored\n";
  }
  return unused.size();
}

void KeyValueConfig::check_exhausted() const {
  const auto unused = unused_keys();
  if (unused.empty()) return;
  std::string msg = "unrecognized config key(s):";
  for (const auto& k : unused) msg += " '" + k + "'";
  throw std::invalid_argument(msg);
}

}  // namespace df3::util
