#include "df3/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::util {


double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void PercentileSampler::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  summary_.add(x);
}

double PercentileSampler::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p outside [0,100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void PercentileSampler::merge(const PercentileSampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
  summary_.merge(other.summary_);
}

void PercentileSampler::clear() {
  samples_.clear();
  sorted_ = true;
  summary_ = StreamingStats{};
}


double TimeWeightedValue::mean_until(double t) const {
  if (!started_ || t <= first_t_) return started_ ? last_value_ : 0.0;
  return integral_until(t) / (t - first_t_);
}

double TimeWeightedValue::integral_until(double t) const {
  if (!started_) return 0.0;
  if (t < last_t_) throw std::invalid_argument("TimeWeightedValue: query before last record");
  return weighted_sum_ + last_value_ * (t - last_t_);
}

double TimeSeries::mean_in_window(double t0, double t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (times[i] >= t0 && times[i] < t1) {
      sum += values[i];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

LinearFit fit_linear(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("fit_linear: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("fit_linear: need at least 2 points");
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  LinearFit fit;
  fit.n = xs.size();
  if (sxx == 0.0) {  // vertical data: fall back to the mean predictor
    fit.intercept = my;
    fit.slope = 0.0;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto fit = fit_linear(xs, ys);
  const double sign = fit.slope >= 0.0 ? 1.0 : -1.0;
  return sign * std::sqrt(fit.r_squared);
}

}  // namespace df3::util
