#include "df3/util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace df3::util {

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(engine_());
  }
  // Rejection sampling over the largest multiple of `span` to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              (std::numeric_limits<std::uint64_t>::max() % span);
  std::uint64_t r = engine_();
  while (r >= limit) r = engine_();
  return lo + static_cast<std::int64_t>(r % span);
}

double RngStream::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("exponential: lambda must be positive");
  // -log(1 - U): 1 - U in (0, 1], so log never sees zero.
  return -std::log1p(-uniform01()) / lambda;
}

double RngStream::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

double RngStream::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double RngStream::bounded_pareto(double alpha, double lo, double hi) {
  if (alpha <= 0.0 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("bounded_pareto: require alpha>0 and 0<lo<hi");
  }
  const double u = uniform01();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  // Inverse CDF of the bounded Pareto distribution.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::int64_t RngStream::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 60.0) {
    // Knuth multiplication method.
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the large
  // aggregate counts (requests/day) we use it for.
  const double sample = normal(mean, std::sqrt(mean));
  return sample < 0.0 ? 0 : static_cast<std::int64_t>(sample + 0.5);
}

std::size_t RngStream::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_index: weights sum to zero");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: land on the last bucket
}

}  // namespace df3::util
