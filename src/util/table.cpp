#include "df3/util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace df3::util {

Table::Table(std::vector<std::string> headers, std::string title)
    : title_(std::move(title)), headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* i = std::get_if<std::int64_t>(&c)) {
    os << *i;
  } else {
    os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto line = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << ' ';
    }
    os << "|\n";
  };
  line();
  print_row(headers_);
  line();
  for (const auto& r : rendered) print_row(r);
  line();
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << headers_[c] << (c + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << render_cell(row[c]) << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace df3::util
