#include "df3/util/thread_pool.hpp"

#include <algorithm>

namespace df3::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Shared by value with every helper task: a worker that loses the race
  // for the last index may still touch the batch after the caller has been
  // released, so the state must outlive the caller's stack frame.
  struct Batch {
    const std::function<void(std::size_t)>* fn;
    std::size_t n;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::exception_ptr error;
    std::mutex m;
    std::condition_variable cv;
  };
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  const auto drain = [](const std::shared_ptr<Batch>& b) {
    for (;;) {
      const std::size_t i = b->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= b->n) return;
      try {
        (*b->fn)(i);
      } catch (...) {
        std::lock_guard lock(b->m);
        if (!b->error) b->error = std::current_exception();
      }
      if (b->done.fetch_add(1, std::memory_order_acq_rel) + 1 == b->n) {
        std::lock_guard lock(b->m);
        b->cv.notify_all();
      }
    }
  };
  const std::size_t helpers = std::min(workers_.size(), n - 1);
  if (helpers > 0) {
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: for_each_index after shutdown");
      for (std::size_t i = 0; i < helpers; ++i) {
        queue_.emplace([batch, drain] { drain(batch); });
      }
    }
    // One wakeup per enqueued helper: a batch narrower than the pool (e.g.
    // a tick with fewer shards than workers) must not stampede the idle
    // threads just to have them find an empty queue.
    for (std::size_t i = 0; i < helpers; ++i) cv_.notify_one();
  }
  drain(batch);
  {
    std::unique_lock lock(batch->m);
    batch->cv.wait(lock, [&] { return batch->done.load(std::memory_order_acquire) == n; });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace df3::util
