#include "df3/workload/generators.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace df3::workload {

RequestFactory alarm_detection_factory(Flow flow) {
  return [flow](util::RngStream& rng) {
    Request r;
    r.flow = flow;
    r.app = "alarm-detection";
    r.work_gigacycles = rng.uniform(0.4, 1.2);
    r.tasks = 1;
    r.input_size = util::kibibytes(16.0);   // 1 s of compressed audio
    r.output_size = util::bytes(256.0);     // classification result
    r.deadline_s = 2.0;
    r.preemptible = false;
    return r;
  };
}

RequestFactory map_serving_factory(Flow flow) {
  return [flow](util::RngStream& rng) {
    Request r;
    r.flow = flow;
    r.app = "map-serving";
    r.work_gigacycles = rng.uniform(0.2, 0.6);
    r.input_size = util::bytes(512.0);
    r.output_size = util::kibibytes(100.0);
    r.deadline_s = 1.0;
    r.preemptible = false;
    return r;
  };
}

RequestFactory traffic_estimation_factory(Flow flow) {
  return [flow](util::RngStream& rng) {
    Request r;
    r.flow = flow;
    r.app = "traffic-estimation";
    r.work_gigacycles = rng.uniform(2.0, 6.0);
    r.input_size = util::kibibytes(256.0);
    r.output_size = util::kibibytes(8.0);
    r.deadline_s = 5.0;
    r.preemptible = false;
    return r;
  };
}

RequestFactory fall_detection_factory(Flow flow) {
  return [flow](util::RngStream& rng) {
    Request r;
    r.flow = flow;
    r.app = "fall-detection";
    r.work_gigacycles = rng.uniform(0.1, 0.3);
    r.input_size = util::kibibytes(4.0);
    r.output_size = util::bytes(64.0);
    r.deadline_s = 0.5;
    r.preemptible = false;
    r.privacy_sensitive = true;
    return r;
  };
}

RequestFactory telemetry_factory(Flow flow) {
  return [flow](util::RngStream& rng) {
    Request r;
    r.flow = flow;
    r.app = "telemetry";
    r.work_gigacycles = rng.uniform(0.01, 0.05);  // parse + aggregate + store
    r.input_size = util::bytes(160.0);            // one sensor frame
    r.output_size = util::bytes(64.0);
    r.deadline_s = 30.0;                          // freshness bound
    r.preemptible = false;
    return r;
  };
}

RequestFactory render_batch_factory(int min_frames, int max_frames) {
  if (min_frames <= 0 || max_frames < min_frames) {
    throw std::invalid_argument("render_batch_factory: bad frame range");
  }
  return [min_frames, max_frames](util::RngStream& rng) {
    Request r;
    r.flow = Flow::kCloud;
    r.app = "render";
    r.tasks = static_cast<int>(rng.uniform_int(min_frames, max_frames));
    // Heavy-tailed per-frame cost: 2 min .. 2 h on a 3 GHz core.
    r.work_gigacycles = rng.bounded_pareto(1.3, 360.0, 21600.0);
    r.input_size = util::mebibytes(rng.uniform(5.0, 50.0));   // scene assets
    r.output_size = util::mebibytes(rng.uniform(2.0, 10.0));  // frames
    r.preemptible = true;
    return r;
  };
}

RequestFactory risk_simulation_factory() {
  return [](util::RngStream& rng) {
    Request r;
    r.flow = Flow::kCloud;
    r.app = "risk-simulation";
    r.tasks = static_cast<int>(rng.uniform_int(32, 128));
    r.work_gigacycles = rng.lognormal(std::log(600.0), 0.5);  // ~3 min median
    r.input_size = util::mebibytes(1.0);
    r.output_size = util::kibibytes(64.0);
    r.preemptible = true;
    return r;
  };
}

RequestFactory coupled_solver_factory(int tasks, double comm_fraction) {
  if (tasks <= 1) throw std::invalid_argument("coupled_solver_factory: need tasks > 1");
  if (comm_fraction < 0.0 || comm_fraction >= 1.0) {
    throw std::invalid_argument("coupled_solver_factory: comm_fraction outside [0,1)");
  }
  return [tasks, comm_fraction](util::RngStream& rng) {
    Request r;
    r.flow = Flow::kCloud;
    r.app = "coupled-solver";
    r.tasks = tasks;
    r.comm_fraction = comm_fraction;
    r.work_gigacycles = rng.lognormal(std::log(1800.0), 0.4);
    r.input_size = util::mebibytes(20.0);
    r.output_size = util::mebibytes(20.0);
    r.preemptible = false;  // checkpointing a coupled solver is impractical here
    return r;
  };
}

RequestFactory storage_request_factory() {
  return [](util::RngStream& rng) {
    Request r;
    r.flow = Flow::kCloud;
    r.app = "storage";
    r.work_gigacycles = 0.05;  // checksum + index update
    r.input_size = util::mebibytes(rng.uniform(50.0, 500.0));
    r.output_size = util::bytes(256.0);
    r.preemptible = true;
    return r;
  };
}

WorkloadSource::WorkloadSource(sim::Simulation& sim, std::string name, std::uint64_t seed,
                               std::unique_ptr<ArrivalProcess> arrivals, RequestFactory factory,
                               Sink sink)
    : sim::Entity(sim, std::move(name)),
      rng_(seed, this->name()),
      arrivals_(std::move(arrivals)),
      factory_(std::move(factory)),
      sink_(std::move(sink)) {
  if (!arrivals_) throw std::invalid_argument("WorkloadSource: null arrival process");
  if (!factory_) throw std::invalid_argument("WorkloadSource: null factory");
  if (!sink_) throw std::invalid_argument("WorkloadSource: null sink");
}

void WorkloadSource::start() {
  if (running_) return;
  running_ = true;
  arm(now());
}

void WorkloadSource::stop() {
  running_ = false;
  next_.cancel();
}

void WorkloadSource::arm(sim::Time from) {
  const sim::Time t = arrivals_->next_after(from, rng_);
  next_ = sim().schedule_at(t, [this, t] {
    if (!running_) return;
    Request r = factory_(rng_);
    r.id = (util::fnv1a64(name()) & 0xffffffff00000000ULL) | emitted_;
    r.arrival = t;
    ++emitted_;
    sink_(std::move(r));
    if (running_) arm(t);
  });
}

}  // namespace df3::workload
