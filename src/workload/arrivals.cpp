#include "df3/workload/arrivals.hpp"

#include <cmath>
#include <stdexcept>

#include "df3/thermal/calendar.hpp"

namespace df3::workload {

PoissonArrivals::PoissonArrivals(double rate_per_s) : rate_(rate_per_s) {
  if (rate_ <= 0.0) throw std::invalid_argument("PoissonArrivals: rate must be positive");
}

sim::Time PoissonArrivals::next_after(sim::Time t, util::RngStream& rng) {
  return t + rng.exponential(rate_);
}

MmppArrivals::MmppArrivals(double rate_low, double rate_high, double mean_low_sojourn_s,
                           double mean_high_sojourn_s)
    : rate_low_(rate_low),
      rate_high_(rate_high),
      mean_low_s_(mean_low_sojourn_s),
      mean_high_s_(mean_high_sojourn_s) {
  if (rate_low_ < 0.0 || rate_high_ <= 0.0 || rate_high_ < rate_low_) {
    throw std::invalid_argument("MmppArrivals: need 0 <= rate_low <= rate_high, rate_high > 0");
  }
  if (mean_low_s_ <= 0.0 || mean_high_s_ <= 0.0) {
    throw std::invalid_argument("MmppArrivals: sojourn means must be positive");
  }
}

void MmppArrivals::advance_state(sim::Time t, util::RngStream& rng) {
  if (!initialised_) {
    initialised_ = true;
    in_high_ = false;
    state_until_ = t + rng.exponential(1.0 / mean_low_s_);
  }
  while (state_until_ <= t) {
    in_high_ = !in_high_;
    state_until_ += rng.exponential(1.0 / (in_high_ ? mean_high_s_ : mean_low_s_));
  }
}

sim::Time MmppArrivals::next_after(sim::Time t, util::RngStream& rng) {
  // Piecewise-homogeneous sampling: draw within the current state's
  // remaining sojourn; on overrun, continue from the state switch.
  sim::Time cur = t;
  for (;;) {
    advance_state(cur, rng);
    const double rate = in_high_ ? rate_high_ : rate_low_;
    if (rate <= 0.0) {
      cur = state_until_;
      continue;
    }
    const double gap = rng.exponential(rate);
    if (cur + gap <= state_until_) return cur + gap;
    cur = state_until_;
  }
}

double MmppArrivals::mean_rate() const {
  const double total = mean_low_s_ + mean_high_s_;
  return (rate_low_ * mean_low_s_ + rate_high_ * mean_high_s_) / total;
}

FixedIntervalArrivals::FixedIntervalArrivals(double period_s, double phase_s)
    : period_(period_s), phase_(phase_s) {
  if (period_ <= 0.0) throw std::invalid_argument("FixedIntervalArrivals: period must be positive");
  if (phase_ < 0.0) throw std::invalid_argument("FixedIntervalArrivals: negative phase");
}

sim::Time FixedIntervalArrivals::next_after(sim::Time t, util::RngStream&) {
  // The first tick at or after `t` (strictly after if t is exactly a tick).
  const double k = std::floor((t - phase_) / period_) + 1.0;
  return phase_ + std::max(0.0, k) * period_;
}

ModulatedArrivals::ModulatedArrivals(std::function<double(sim::Time)> rate_fn, double rate_max,
                                     double mean_rate_hint)
    : rate_fn_(std::move(rate_fn)), rate_max_(rate_max), mean_rate_hint_(mean_rate_hint) {
  if (!rate_fn_) throw std::invalid_argument("ModulatedArrivals: empty rate function");
  if (rate_max_ <= 0.0) throw std::invalid_argument("ModulatedArrivals: rate_max must be positive");
}

sim::Time ModulatedArrivals::next_after(sim::Time t, util::RngStream& rng) {
  // Lewis-Shedler thinning against the dominating constant rate_max.
  sim::Time cur = t;
  for (;;) {
    cur += rng.exponential(rate_max_);
    const double r = rate_fn_(cur);
    if (r < 0.0 || r > rate_max_ * (1.0 + 1e-9)) {
      throw std::logic_error("ModulatedArrivals: rate function escaped [0, rate_max]");
    }
    if (rng.uniform01() * rate_max_ < r) return cur;
  }
}

std::unique_ptr<ModulatedArrivals> business_hours_arrivals(double base_rate,
                                                           double business_factor) {
  if (base_rate <= 0.0 || business_factor < 1.0) {
    throw std::invalid_argument("business_hours_arrivals: need base_rate > 0, factor >= 1");
  }
  auto fn = [base_rate, business_factor](sim::Time t) {
    return thermal::is_business_hours(t) ? base_rate * business_factor : base_rate;
  };
  // 50 h of 168 are business hours.
  const double mean = base_rate * ((118.0 + 50.0 * business_factor) / 168.0);
  return std::make_unique<ModulatedArrivals>(fn, base_rate * business_factor, mean);
}

std::unique_ptr<ModulatedArrivals> diurnal_arrivals(double base_rate, double depth,
                                                    double peak_hour) {
  if (base_rate <= 0.0 || depth < 0.0 || depth > 1.0) {
    throw std::invalid_argument("diurnal_arrivals: need base_rate > 0, depth in [0,1]");
  }
  constexpr double kPi = 3.14159265358979323846;
  auto fn = [base_rate, depth, peak_hour](sim::Time t) {
    const double h = thermal::hour_of_day(t);
    return base_rate * (1.0 + depth * std::cos(2.0 * kPi * (h - peak_hour) / 24.0));
  };
  return std::make_unique<ModulatedArrivals>(fn, base_rate * (1.0 + depth), base_rate);
}

}  // namespace df3::workload
