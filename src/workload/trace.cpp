#include "df3/workload/trace.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace df3::workload {

namespace {
constexpr char kHeader[] =
    "id,flow,arrival,app,work_gigacycles,tasks,comm_fraction,input_bytes,output_bytes,"
    "deadline_s,preemptible,privacy_sensitive";

Flow flow_from_name(const std::string& s) {
  if (s == "cloud") return Flow::kCloud;
  if (s == "edge-direct") return Flow::kEdgeDirect;
  if (s == "edge-indirect") return Flow::kEdgeIndirect;
  throw std::invalid_argument("Trace: unknown flow '" + s + "'");
}
}  // namespace

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
  for (std::size_t i = 1; i < requests_.size(); ++i) {
    if (requests_[i].arrival < requests_[i - 1].arrival) {
      throw std::invalid_argument("Trace: arrivals must be nondecreasing");
    }
  }
}

void Trace::add(Request r) {
  if (!requests_.empty() && r.arrival < requests_.back().arrival) {
    throw std::invalid_argument("Trace::add: arrival precedes the last request");
  }
  requests_.push_back(std::move(r));
}

double Trace::total_work() const {
  double total = 0.0;
  for (const auto& r : requests_) total += r.total_work();
  return total;
}

void Trace::save(std::ostream& os) const {
  // max_digits10 keeps the round trip bit-exact for doubles.
  const auto old_precision = os.precision(std::numeric_limits<double>::max_digits10);
  os << kHeader << '\n';
  for (const auto& r : requests_) {
    os << r.id << ',' << flow_name(r.flow) << ',' << r.arrival << ',' << r.app << ','
       << r.work_gigacycles << ',' << r.tasks << ',' << r.comm_fraction << ','
       << r.input_size.value() << ',' << r.output_size.value() << ','
       << (r.deadline_s ? std::to_string(*r.deadline_s) : std::string("-")) << ','
       << (r.preemptible ? 1 : 0) << ',' << (r.privacy_sensitive ? 1 : 0) << '\n';
  }
  os.precision(old_precision);
}

Trace Trace::load(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::invalid_argument("Trace::load: missing or wrong header");
  }
  std::vector<Request> requests;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ls, field, ',')) fields.push_back(field);
    if (fields.size() != 12) {
      throw std::invalid_argument("Trace::load: line " + std::to_string(lineno) +
                                  ": expected 12 fields");
    }
    try {
      Request r;
      r.id = std::stoull(fields[0]);
      r.flow = flow_from_name(fields[1]);
      r.arrival = std::stod(fields[2]);
      r.app = fields[3];
      r.work_gigacycles = std::stod(fields[4]);
      r.tasks = std::stoi(fields[5]);
      r.comm_fraction = std::stod(fields[6]);
      r.input_size = util::Bytes{std::stod(fields[7])};
      r.output_size = util::Bytes{std::stod(fields[8])};
      if (fields[9] != "-") r.deadline_s = std::stod(fields[9]);
      r.preemptible = fields[10] == "1";
      r.privacy_sensitive = fields[11] == "1";
      requests.push_back(std::move(r));
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("Trace::load: line " + std::to_string(lineno) +
                                  ": malformed field");
    }
  }
  return Trace(std::move(requests));
}

TraceReplayer::TraceReplayer(sim::Simulation& sim, std::string name, Trace trace, Sink sink)
    : sim::Entity(sim, std::move(name)), trace_(std::move(trace)), sink_(std::move(sink)) {
  if (!sink_) throw std::invalid_argument("TraceReplayer: null sink");
}

void TraceReplayer::start() {
  if (started_) throw std::logic_error("TraceReplayer::start: already started");
  started_ = true;
  remaining_ = trace_.size();
  for (const Request& r : trace_.requests()) {
    const sim::Time at = std::max(r.arrival, now());
    sim().schedule_at(at, [this, r] {
      --remaining_;
      sink_(r);
    });
  }
}

}  // namespace df3::workload
