#include "df3/grid/signal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace df3::grid {

void GridSignal::add_point(double time_s, GridSample s) {
  if (std::isnan(time_s) || std::isnan(s.carbon_gco2_per_kwh) || std::isnan(s.price_eur_per_kwh) ||
      std::isnan(s.renewable_fraction)) {
    throw std::invalid_argument("GridSignal: NaN in breakpoint");
  }
  if (!times_.empty() && time_s <= times_.back()) {
    throw std::invalid_argument("GridSignal: breakpoint times must be strictly increasing");
  }
  times_.push_back(time_s);
  samples_.push_back(s);
}

void GridSignal::set_period(double period_s) {
  if (std::isnan(period_s) || period_s < 0.0) {
    throw std::invalid_argument("GridSignal: period must be >= 0");
  }
  if (period_s > 0.0 && !times_.empty() && period_s <= times_.back()) {
    throw std::invalid_argument("GridSignal: period must cover the last breakpoint");
  }
  period_s_ = period_s;
}

GridSample GridSignal::sample(double t) const {
  if (times_.empty()) return {};
  if (period_s_ > 0.0) {
    t = std::fmod(t, period_s_);
    if (t < 0.0) t += period_s_;
  }
  // Last breakpoint at or before t; queries before the series starts hold
  // the first sample (a series is a state recording, not an event log).
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return samples_.front();
  return samples_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

std::size_t GridPlane::add_region(std::string name, GridSignal signal) {
  if (name.empty()) throw std::invalid_argument("GridPlane: empty region name");
  for (const auto& n : names_) {
    if (n == name) throw std::invalid_argument("GridPlane: duplicate region '" + name + "'");
  }
  if (signal.size() == 0) {
    throw std::invalid_argument("GridPlane: region '" + name + "' has an empty signal");
  }
  names_.push_back(std::move(name));
  signals_.push_back(std::move(signal));
  curtailed_.push_back(0);
  return names_.size() - 1;
}

std::size_t GridPlane::region_index(std::string_view name) const {
  for (std::size_t r = 0; r < names_.size(); ++r) {
    if (names_[r] == name) return r;
  }
  std::string known;
  for (const auto& n : names_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw std::invalid_argument("GridPlane: unknown region '" + std::string(name) +
                              "' (known: " + (known.empty() ? "<none>" : known) + ")");
}

namespace {

[[noreturn]] void row_error(std::string_view origin, std::size_t line, const std::string& what) {
  throw std::invalid_argument("grid csv " + std::string(origin) + ":" + std::to_string(line) +
                              ": " + what);
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

double parse_field(const std::string& field, const char* name, std::string_view origin,
                   std::size_t line) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    row_error(origin, line, std::string("bad ") + name + " '" + field + "'");
  }
  if (std::isnan(v)) row_error(origin, line, std::string("NaN ") + name);
  return v;
}

}  // namespace

GridPlane load_signals_csv(std::istream& is, std::string_view origin) {
  // Build per-region signals in first-appearance order, then assemble the
  // plane. Monotonicity is enforced per region at append time so the error
  // can name the exact offending row.
  std::vector<std::string> names;
  std::vector<GridSignal> signals;
  std::vector<double> last_time;
  double period_s = 0.0;
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '#') {
      // Optional `# period_s = 86400` directive: repeat every signal.
      const auto eq = t.find('=');
      if (eq != std::string::npos && t.find("period_s") != std::string::npos) {
        period_s = parse_field(trim(t.substr(eq + 1)), "period_s", origin, lineno);
      }
      continue;
    }
    // Split on commas into exactly 5 fields.
    std::vector<std::string> fields;
    std::stringstream ss(t);
    std::string f;
    while (std::getline(ss, f, ',')) fields.push_back(trim(f));
    if (fields.size() != 5) {
      row_error(origin, lineno, "expected 5 fields (region,time_s,carbon,price,renewable), got " +
                                    std::to_string(fields.size()));
    }
    if (!saw_header) {
      saw_header = true;
      if (fields[0] == "region") continue;  // header row
      row_error(origin, lineno,
                "missing header row 'region,time_s,carbon_gco2_per_kwh,"
                "price_eur_per_kwh,renewable_fraction'");
    }
    const std::string& region = fields[0];
    if (region.empty()) row_error(origin, lineno, "empty region name");
    const double time_s = parse_field(fields[1], "time_s", origin, lineno);
    GridSample s;
    s.carbon_gco2_per_kwh = parse_field(fields[2], "carbon_gco2_per_kwh", origin, lineno);
    s.price_eur_per_kwh = parse_field(fields[3], "price_eur_per_kwh", origin, lineno);
    s.renewable_fraction = parse_field(fields[4], "renewable_fraction", origin, lineno);
    std::size_t r = names.size();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == region) {
        r = i;
        break;
      }
    }
    if (r == names.size()) {
      names.push_back(region);
      signals.emplace_back();
      last_time.push_back(-1.0);
    }
    if (!(last_time[r] < time_s) && signals[r].size() > 0) {
      row_error(origin, lineno,
                "non-monotonic time_s " + fields[1] + " for region '" + region +
                    "' (previous breakpoint at " + std::to_string(last_time[r]) + ")");
    }
    signals[r].add_point(time_s, s);
    last_time[r] = time_s;
  }
  if (names.empty()) {
    throw std::invalid_argument("grid csv " + std::string(origin) + ": no data rows");
  }
  GridPlane plane;
  for (std::size_t r = 0; r < names.size(); ++r) {
    if (period_s > 0.0) signals[r].set_period(period_s);
    plane.add_region(std::move(names[r]), std::move(signals[r]));
  }
  return plane;
}

GridPlane load_signals_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read grid csv: " + path);
  return load_signals_csv(in, path);
}

GridPlane two_region_demo_plane() {
  // Hydro-backed "green" vs fossil-heavy "dirty": green is strictly
  // cheaper and cleaner at every hour, with a midday renewable peak; both
  // repeat daily. Values are in the range of real ENTSO-E feeds.
  GridSignal green;
  green.add_point(0.0, {110.0, 0.16, 0.62});
  green.add_point(6.0 * 3600.0, {80.0, 0.11, 0.74});
  green.add_point(12.0 * 3600.0, {40.0, 0.07, 0.93});
  green.add_point(18.0 * 3600.0, {95.0, 0.14, 0.68});
  green.set_period(24.0 * 3600.0);
  GridSignal dirty;
  dirty.add_point(0.0, {430.0, 0.24, 0.12});
  dirty.add_point(6.0 * 3600.0, {380.0, 0.21, 0.18});
  dirty.add_point(12.0 * 3600.0, {350.0, 0.26, 0.22});
  dirty.add_point(18.0 * 3600.0, {470.0, 0.31, 0.09});
  dirty.set_period(24.0 * 3600.0);
  GridPlane plane;
  plane.add_region("green", std::move(green));
  plane.add_region("dirty", std::move(dirty));
  return plane;
}

}  // namespace df3::grid
