#include "df3/hw/cpu.hpp"

#include <stdexcept>

namespace df3::hw {

CpuModel::CpuModel(CpuSpec spec) : spec_(std::move(spec)) {
  if (spec_.pstates.empty()) throw std::invalid_argument("CpuModel: need at least one P-state");
  if (spec_.cores <= 0) throw std::invalid_argument("CpuModel: cores must be positive");
  for (std::size_t i = 1; i < spec_.pstates.size(); ++i) {
    if (spec_.pstates[i].freq_ghz <= spec_.pstates[i - 1].freq_ghz) {
      throw std::invalid_argument("CpuModel: P-states must be sorted by ascending frequency");
    }
  }
  for (const auto& ps : spec_.pstates) {
    if (ps.freq_ghz <= 0.0 || ps.voltage_v <= 0.0) {
      throw std::invalid_argument("CpuModel: P-state values must be positive");
    }
  }
  // Freeze the frequency/voltage ratios: the ladder never changes after
  // construction, so power() reduces to one fused multiply-add.
  const PState& top = spec_.pstates.back();
  dyn_coeff_.reserve(spec_.pstates.size());
  for (const auto& ps : spec_.pstates) {
    const double f_ratio = ps.freq_ghz / top.freq_ghz;
    const double v_ratio = ps.voltage_v / top.voltage_v;
    dyn_coeff_.push_back(spec_.dynamic_power_max.value() * f_ratio * v_ratio * v_ratio);
  }
}

double CpuModel::max_throughput_gcps(std::size_t ps) const {
  return core_speed_gcps(ps) * static_cast<double>(spec_.cores);
}

bool CpuModel::highest_pstate_within(util::Watts cap, std::size_t& out_ps) const {
  for (std::size_t i = spec_.pstates.size(); i-- > 0;) {
    if (power(i, 1.0) <= cap) {
      out_ps = i;
      return true;
    }
  }
  return false;
}

double CpuModel::efficiency_gc_per_joule(std::size_t ps) const {
  return max_throughput_gcps(ps) / power(ps, 1.0).value();
}

CpuSpec qrad_cpu_spec() {
  CpuSpec s;
  s.model = "qrad-i7";
  s.cores = 4;
  s.pstates = {{1.2, 0.80}, {1.6, 0.90}, {2.0, 1.00}, {2.6, 1.10}, {3.2, 1.20}};
  s.static_power = util::Watts{10.0};
  // 4 CPUs x ~125 W = 500 W chassis rating, per the Q.rad datasheet figures.
  s.dynamic_power_max = util::Watts{115.0};
  return s;
}

CpuSpec boiler_cpu_spec() {
  CpuSpec s;
  s.model = "boiler-xeon";
  s.cores = 8;
  s.pstates = {{1.0, 0.75}, {1.4, 0.85}, {1.9, 0.95}, {2.4, 1.05}, {2.9, 1.15}};
  s.static_power = util::Watts{15.0};
  // 200 CPUs x ~100 W = 20 kW, matching the Asperitas AIC24 figures.
  s.dynamic_power_max = util::Watts{85.0};
  return s;
}

CpuSpec crypto_gpu_spec() {
  CpuSpec s;
  s.model = "crypto-gpu";
  s.cores = 1;  // treated as one wide device
  s.pstates = {{0.8, 0.85}, {1.1, 0.95}, {1.4, 1.05}};
  s.static_power = util::Watts{30.0};
  // 2 GPUs x ~325 W = ~650 W chassis (Qarnot crypto-heater QC1).
  s.dynamic_power_max = util::Watts{295.0};
  return s;
}

}  // namespace df3::hw
