#include "df3/hw/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::hw {

util::Watts ServerSpec::rated_power() const {
  const CpuModel model(cpu);
  return model.power(cpu.top_pstate(), 1.0) * static_cast<double>(cpu_count);
}

ServerSpec qrad_spec() {
  ServerSpec s;
  s.family = "qrad";
  s.cpu = qrad_cpu_spec();
  s.cpu_count = 4;
  s.standby_power = util::Watts{4.0};
  s.routing = HeatRouting::kIndoor;
  return s;
}

ServerSpec eradiator_spec() {
  ServerSpec s;
  s.family = "eradiator";
  s.cpu = qrad_cpu_spec();
  s.cpu_count = 8;  // ~1000 W chassis
  s.standby_power = util::Watts{6.0};
  s.routing = HeatRouting::kDualPipe;
  return s;
}

ServerSpec crypto_heater_spec() {
  ServerSpec s;
  s.family = "crypto-heater";
  s.cpu = crypto_gpu_spec();
  s.cpu_count = 2;
  s.standby_power = util::Watts{8.0};
  s.routing = HeatRouting::kIndoor;
  return s;
}

ServerSpec asperitas_boiler_spec() {
  ServerSpec s;
  s.family = "asperitas-aic24";
  s.cpu = boiler_cpu_spec();
  s.cpu_count = 200;
  s.standby_power = util::Watts{120.0};
  s.routing = HeatRouting::kWaterLoop;
  // Immersion cooling tolerates far hotter loops than room air.
  s.throttle_start = util::Celsius{45.0};
  s.shutdown_temp = util::Celsius{55.0};
  return s;
}

ServerSpec stimergy_boiler_spec() {
  ServerSpec s;
  s.family = "stimergy-boiler";
  s.cpu = boiler_cpu_spec();
  s.cpu_count = 40;  // ~4 kW oil bath
  s.standby_power = util::Watts{40.0};
  s.routing = HeatRouting::kWaterLoop;
  s.throttle_start = util::Celsius{45.0};
  s.shutdown_temp = util::Celsius{55.0};
  return s;
}

DfServer::DfServer(ServerSpec spec) : spec_(std::move(spec)), cpu_model_(spec_.cpu) {
  if (spec_.cpu_count <= 0) throw std::invalid_argument("DfServer: cpu_count must be positive");
  if (spec_.shutdown_temp <= spec_.throttle_start) {
    throw std::invalid_argument("DfServer: shutdown_temp must exceed throttle_start");
  }
  // Mirror the spec scalars the per-tick path reads into the hot block.
  aging_reference_c_ = spec_.aging_reference_junction.value();
  standby_power_w_ = spec_.standby_power.value();
  throttle_start_c_ = spec_.throttle_start.value();
  shutdown_temp_c_ = spec_.shutdown_temp.value();
  static_power_w_ = spec_.cpu.static_power.value();
  total_cores_ = spec_.total_cores();
  cpu_count_ = spec_.cpu_count;
  routing_ = spec_.routing;
  pstate_ = spec_.cpu.top_pstate();

  const auto n = spec_.cpu.pstates.size();
  n_pstates_ = n;
  tables_.resize(5 * n);
  for (std::size_t ps = 0; ps < n; ++ps) {
    tables_[ps] = cpu_model_.power(ps, 1.0).value() * static_cast<double>(spec_.cpu_count);
    tables_[n + ps] = cpu_model_.power(ps, 0.0).value() * static_cast<double>(spec_.cpu_count);
    tables_[2 * n + ps] = cpu_model_.core_speed_gcps(ps) /
                          cpu_model_.core_speed_gcps(spec_.cpu.top_pstate());
    tables_[3 * n + ps] = cpu_model_.dyn_coeff(ps);
    tables_[4 * n + ps] = cpu_model_.core_speed_gcps(ps);
  }
  refresh_thermal();
  refresh_operating();
}

util::Watts DfServer::apply_power_cap(util::Watts cap, bool allow_gating) {
  const double per_cpu_cap = cap.value() / static_cast<double>(spec_.cpu_count);
  std::size_t ps = 0;
  if (cpu_model_.highest_pstate_within(util::Watts{per_cpu_cap}, ps)) {
    set_powered(true);
    set_pstate(ps);
    return max_power_now();
  }
  if (allow_gating) {
    set_powered(false);
    return spec_.standby_power;
  }
  set_powered(true);
  set_pstate(0);
  return max_power_now();
}

}  // namespace df3::hw
