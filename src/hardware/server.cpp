#include "df3/hw/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace df3::hw {

util::Watts ServerSpec::rated_power() const {
  const CpuModel model(cpu);
  return model.power(cpu.top_pstate(), 1.0) * static_cast<double>(cpu_count);
}

ServerSpec qrad_spec() {
  ServerSpec s;
  s.family = "qrad";
  s.cpu = qrad_cpu_spec();
  s.cpu_count = 4;
  s.standby_power = util::Watts{4.0};
  s.routing = HeatRouting::kIndoor;
  return s;
}

ServerSpec eradiator_spec() {
  ServerSpec s;
  s.family = "eradiator";
  s.cpu = qrad_cpu_spec();
  s.cpu_count = 8;  // ~1000 W chassis
  s.standby_power = util::Watts{6.0};
  s.routing = HeatRouting::kDualPipe;
  return s;
}

ServerSpec crypto_heater_spec() {
  ServerSpec s;
  s.family = "crypto-heater";
  s.cpu = crypto_gpu_spec();
  s.cpu_count = 2;
  s.standby_power = util::Watts{8.0};
  s.routing = HeatRouting::kIndoor;
  return s;
}

ServerSpec asperitas_boiler_spec() {
  ServerSpec s;
  s.family = "asperitas-aic24";
  s.cpu = boiler_cpu_spec();
  s.cpu_count = 200;
  s.standby_power = util::Watts{120.0};
  s.routing = HeatRouting::kWaterLoop;
  // Immersion cooling tolerates far hotter loops than room air.
  s.throttle_start = util::Celsius{45.0};
  s.shutdown_temp = util::Celsius{55.0};
  return s;
}

ServerSpec stimergy_boiler_spec() {
  ServerSpec s;
  s.family = "stimergy-boiler";
  s.cpu = boiler_cpu_spec();
  s.cpu_count = 40;  // ~4 kW oil bath
  s.standby_power = util::Watts{40.0};
  s.routing = HeatRouting::kWaterLoop;
  s.throttle_start = util::Celsius{45.0};
  s.shutdown_temp = util::Celsius{55.0};
  return s;
}

DfServer::DfServer(ServerSpec spec)
    : spec_(std::move(spec)), cpu_model_(spec_.cpu), pstate_(spec_.cpu.top_pstate()) {
  if (spec_.cpu_count <= 0) throw std::invalid_argument("DfServer: cpu_count must be positive");
  if (spec_.shutdown_temp <= spec_.throttle_start) {
    throw std::invalid_argument("DfServer: shutdown_temp must exceed throttle_start");
  }
}

void DfServer::set_powered(bool on) {
  powered_ = on;
  if (!on) {
    busy_cores_ = 0;
    filler_cores_ = 0;
  }
}

void DfServer::set_pstate(std::size_t ps) {
  if (ps >= spec_.cpu.pstates.size()) throw std::out_of_range("DfServer::set_pstate");
  pstate_ = ps;
}

void DfServer::set_busy_cores(int cores) {
  if (cores < 0 || cores > spec_.total_cores()) {
    throw std::invalid_argument("DfServer::set_busy_cores: out of range");
  }
  busy_cores_ = cores;
}

void DfServer::set_filler_cores(int cores) {
  if (cores < 0 || cores > spec_.total_cores()) {
    throw std::invalid_argument("DfServer::set_filler_cores: out of range");
  }
  filler_cores_ = cores;
}

int DfServer::loaded_cores() const {
  if (!powered_ || thermally_shut_down()) return 0;
  return std::min(spec_.total_cores(), busy_cores_ + filler_cores_);
}

void DfServer::set_inlet_temperature(util::Celsius t) {
  inlet_ = t;
  if (thermally_shut_down()) {
    busy_cores_ = 0;
    filler_cores_ = 0;
  }
}

bool DfServer::thermally_shut_down() const { return inlet_ >= spec_.shutdown_temp; }

std::size_t DfServer::effective_pstate() const {
  if (inlet_ <= spec_.throttle_start) return pstate_;
  if (thermally_shut_down()) return 0;
  // Linear derating across the throttle window: the available fraction of
  // the P-state ladder shrinks as the inlet approaches shutdown.
  const double window = spec_.shutdown_temp.value() - spec_.throttle_start.value();
  const double excess = inlet_.value() - spec_.throttle_start.value();
  const double fraction = 1.0 - excess / window;
  const auto ladder = static_cast<double>(spec_.cpu.pstates.size() - 1);
  const auto cap = static_cast<std::size_t>(std::floor(ladder * fraction));
  return std::min(pstate_, cap);
}

int DfServer::usable_cores() const {
  if (!powered_ || thermally_shut_down()) return 0;
  return spec_.total_cores();
}

double DfServer::core_speed_gcps() const {
  if (usable_cores() == 0) return 0.0;
  return cpu_model_.core_speed_gcps(effective_pstate());
}

util::Watts DfServer::power() const {
  if (!powered_) return spec_.standby_power;
  if (thermally_shut_down()) return spec_.standby_power;
  const double util_frac =
      static_cast<double>(loaded_cores()) / static_cast<double>(spec_.total_cores());
  return cpu_model_.power(effective_pstate(), util_frac) * static_cast<double>(spec_.cpu_count);
}

util::Watts DfServer::max_power_now() const {
  if (usable_cores() == 0) return spec_.standby_power;
  return cpu_model_.power(effective_pstate(), 1.0) * static_cast<double>(spec_.cpu_count);
}

util::Watts DfServer::idle_power() const {
  if (usable_cores() == 0) return spec_.standby_power;
  return cpu_model_.power(effective_pstate(), 0.0) * static_cast<double>(spec_.cpu_count);
}

util::Watts DfServer::apply_power_cap(util::Watts cap, bool allow_gating) {
  const double per_cpu_cap = cap.value() / static_cast<double>(spec_.cpu_count);
  std::size_t ps = 0;
  if (cpu_model_.highest_pstate_within(util::Watts{per_cpu_cap}, ps)) {
    set_powered(true);
    set_pstate(ps);
    return max_power_now();
  }
  if (allow_gating) {
    set_powered(false);
    return spec_.standby_power;
  }
  set_powered(true);
  set_pstate(0);
  return max_power_now();
}

void DfServer::advance(util::Seconds dt, bool heating_season) {
  if (dt.value() < 0.0) throw std::invalid_argument("DfServer::advance: negative dt");
  const util::Joules e = power() * dt;
  energy_ += e;
  switch (spec_.routing) {
    case HeatRouting::kIndoor:
    case HeatRouting::kWaterLoop:
      heat_indoor_ += e;
      break;
    case HeatRouting::kDualPipe:
      (heating_season ? heat_indoor_ : heat_outdoor_) += e;
      break;
  }
  // Arrhenius-style stress accumulation: doubles per +10 K of junction
  // temperature over the reference.
  const double tj = junction_temperature().value();
  const double accel = std::pow(2.0, (tj - spec_.aging_reference_junction.value()) / 10.0);
  stress_hours_ += accel * dt.value() / 3600.0;
}

util::Celsius DfServer::junction_temperature() const {
  if (usable_cores() == 0 || !powered_) return inlet_;
  const double util_frac =
      static_cast<double>(loaded_cores()) / static_cast<double>(spec_.total_cores());
  // Free-cooled parts run hot: ~25 K rise at idle clocks, up to ~45 K at
  // full load and top frequency.
  const double freq_ratio = cpu_model_.core_speed_gcps(effective_pstate()) /
                            cpu_model_.core_speed_gcps(spec_.cpu.top_pstate());
  return util::Celsius{inlet_.value() + 25.0 + 20.0 * util_frac * freq_ratio};
}

}  // namespace df3::hw
