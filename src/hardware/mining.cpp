#include "df3/hw/mining.hpp"

#include <stdexcept>

namespace df3::hw {

double hash_rate(const DfServer& server, const MiningConfig& config) {
  const double total = server.power().value();
  const double idle = server.powered() && !server.thermally_shut_down()
                          ? server.idle_power().value()
                          : total;
  const double dynamic_w = std::max(0.0, total - idle);
  return dynamic_w * config.hashes_per_joule;
}

MiningLedger::MiningLedger(MiningConfig config) : config_(config) {
  if (config_.hashes_per_joule <= 0.0 || config_.reward_per_hash < 0.0 ||
      config_.electricity_per_kwh < 0.0 || config_.heat_value_per_kwh < 0.0) {
    throw std::invalid_argument("MiningLedger: invalid config");
  }
}

void MiningLedger::advance(const DfServer& server, util::Seconds dt, bool heat_wanted) {
  if (dt.value() < 0.0) throw std::invalid_argument("MiningLedger::advance: negative dt");
  const double h = hash_rate(server, config_) * dt.value();
  hashes_ += h;
  coin_revenue_ += h * config_.reward_per_hash;
  const util::Joules energy = server.power() * dt;
  electricity_cost_ += energy.kwh() * config_.electricity_per_kwh;
  if (heat_wanted) heat_value_ += energy.kwh() * config_.heat_value_per_kwh;
}

}  // namespace df3::hw
