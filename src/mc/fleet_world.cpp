#include "df3/mc/fleet_world.hpp"

#include <algorithm>
#include <stdexcept>

#include "df3/mc/snapshot.hpp"

namespace df3::mc {

namespace {

/// Id namespace for checker-injected requests: top 16 bits "MC", so they
/// can never collide with WorkloadSource ids (which tag the top 32 bits
/// with a name hash and are not attached in this fixture anyway).
constexpr std::uint64_t kIdTag = 0x4d43ULL << 48;

/// add_building wires links in a fixed order (see Df3Platform::add_building):
/// dev-gw, wifi-gw, gw-internet, then per room gw-srvN (+ dev-srv0/wifi-srv0
/// for room 0). With 2 rooms that is 7 links per building; the uplink is the
/// third.
constexpr std::size_t kLinksPerBuilding = 7;
constexpr std::size_t kUplinkOffset = 2;

}  // namespace

FleetWorld::FleetWorld(FleetWorldConfig config) : config_(std::move(config)) {
  if (config_.clusters < 2 || config_.clusters > 3) {
    throw std::invalid_argument("FleetWorld: clusters must be 2 or 3");
  }
}

FleetWorld::~FleetWorld() = default;

workload::Request FleetWorld::make_request(const char* app, double work_gc) {
  workload::Request r;
  r.id = kIdTag | next_id_++;
  r.app = app;
  r.work_gigacycles = work_gc;
  r.tasks = 1;
  r.input_size = util::Bytes{2048.0};
  r.output_size = util::Bytes{1024.0};
  return r;
}

void FleetWorld::reset() {
  // Tear down the previous branch first: the injectors hold references
  // into the old platform.
  actions_.clear();
  churn_.clear();
  flapper_.reset();
  city_.reset();
  next_id_ = 0;

  core::PlatformConfig pc;
  pc.seed = config_.seed;
  pc.tick_s = config_.tick_s;
  pc.with_datacenter = true;
  pc.audit = metrics::AuditLevel::kFull;
  pc.cluster.discipline = core::QueueDiscipline::kEdf;
  pc.cluster.edge_peak_ladder = {"preempt", "horizontal", "vertical", "delay"};
  city_ = std::make_unique<core::Df3Platform>(pc);

  // Single-core chassis: one shard saturates a worker, so every placement,
  // preemption and escalation decision is individually observable.
  hw::ServerSpec spec;
  spec.family = "mc-1core";
  spec.cpu = hw::qrad_cpu_spec();
  spec.cpu.cores = 1;
  spec.cpu_count = 1;

  for (std::size_t c = 0; c < config_.clusters; ++c) {
    core::BuildingConfig bc;
    bc.name = "b" + std::to_string(c);
    bc.rooms = 2;
    bc.server = spec;
    city_->add_building(bc);
  }

  // Injectors: wired but never start()ed — every toggle is an enumerated
  // choice point via force_toggle, not an RNG arrival.
  net::LinkFlapConfig fc;
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    fc.links.push_back(c * kLinksPerBuilding + kUplinkOffset);
  }
  flapper_ = std::make_unique<net::LinkFlapper>(city_->simulation(), "mc-flap", city_->network(),
                                                fc, util::RngStream(config_.seed, "mc-flap"));
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    core::WorkerChurnConfig wc;
    wc.workers = {0};
    wc.kind = core::OutageKind::kPowerGate;
    const auto name = "mc-churn-b" + std::to_string(c);
    churn_.push_back(std::make_unique<core::WorkerChurn>(
        city_->simulation(), name, city_->cluster(c), wc, util::RngStream(config_.seed, name)));
  }

  // Settle the physics loop (first tick fires, regulators power the fleet
  // for the January heat demand), then declare the branch epoch: the
  // auditor forgets the warm-up so every branch audits exactly the traffic
  // of its own interleaving plus the background load below.
  city_->run(util::Seconds{1.0});
  city_->auditor().reset();

  // Background load pinning the root state (see header). b0: two
  // non-preemptible cloud fillers. Others: one preemptible victim (worker
  // 0 by first-fit) + one non-preemptible filler (worker 1).
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    auto victim = make_request("mc-bg", config_.background_work_gc);
    victim.preemptible = (c != 0);
    city_->inject_cloud_at(c, std::move(victim));
    auto filler = make_request("mc-bg", config_.background_work_gc);
    filler.preemptible = false;
    city_->inject_cloud_at(c, std::move(filler));
  }
  city_->run(util::Seconds{2.0});

  // The whole fixture depends on every core being pinned at the root;
  // fail loudly if staging/placement did not land as designed.
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    const core::Cluster& cc = city_->cluster(c);
    for (std::size_t w = 0; w < cc.worker_count(); ++w) {
      if (cc.worker(w).busy_cores() != 1) {
        throw std::runtime_error("FleetWorld: background load failed to pin b" +
                                 std::to_string(c) + "/w" + std::to_string(w));
      }
    }
  }

  build_actions();
}

void FleetWorld::build_actions() {
  std::vector<std::pair<std::string, std::function<void()>>> all;
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    all.emplace_back("edge(b" + std::to_string(c) + ")", [this, c] {
      auto r = make_request("mc-edge", 5.0);
      r.deadline_s = 30.0;
      city_->inject_edge(c, std::move(r));
    });
  }
  all.emplace_back("edge2(b1)", [this] {
    auto r = make_request("mc-edge2", 5.0);
    r.deadline_s = 30.0;
    r.tasks = 2;
    city_->inject_edge(1, std::move(r));
  });
  all.emplace_back("cloud_dl(b1)", [this] {
    auto r = make_request("mc-cloud-dl", 5.0);
    r.deadline_s = 120.0;
    city_->inject_cloud_at(1, std::move(r));
  });
  all.emplace_back("pinned(b0/w0)", [this] {
    city_->inject_pinned(0, 0, make_request("mc-pinned", 5.0));
  });
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    all.emplace_back("flap(up-b" + std::to_string(c) + ")",
                     [this, c] { flapper_->force_toggle(c); });
  }
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    all.emplace_back("gate(b" + std::to_string(c) + "/w0)",
                     [this, c] { churn_[c]->force_toggle(0); });
  }
  all.emplace_back("step", [this] { city_->run(util::Seconds{config_.step_s}); });
  all.emplace_back("tick", [this] { city_->run(util::Seconds{config_.tick_s}); });

  if (config_.alphabet.empty()) {
    actions_ = std::move(all);
    return;
  }
  for (const auto& want : config_.alphabet) {
    if (std::none_of(all.begin(), all.end(),
                     [&](const auto& a) { return a.first == want; })) {
      throw std::invalid_argument("FleetWorld: unknown action '" + want + "'");
    }
  }
  // Canonical order regardless of how the restriction was listed.
  for (auto& a : all) {
    if (std::find(config_.alphabet.begin(), config_.alphabet.end(), a.first) !=
        config_.alphabet.end()) {
      actions_.push_back(std::move(a));
    }
  }
}

std::vector<std::string> FleetWorld::enabled() {
  std::vector<std::string> out;
  out.reserve(actions_.size());
  for (const auto& [label, thunk] : actions_) out.push_back(label);
  return out;
}

void FleetWorld::apply(const std::string& action) {
  for (auto& [label, thunk] : actions_) {
    if (label == action) {
      thunk();
      return;
    }
  }
  throw std::invalid_argument("FleetWorld: unknown action '" + action + "'");
}

std::vector<std::string> FleetWorld::check() { return city_->audit_now(); }

std::vector<std::string> FleetWorld::finalize() {
  std::vector<std::string> out;
  // Heal every injected fault so the drain can complete: links up, workers
  // powered. force_toggle keeps the normal accounting, so coverage still
  // sees the earlier outages.
  for (std::size_t s = 0; s < flapper_->slot_count(); ++s) {
    if (flapper_->is_down(s)) flapper_->force_toggle(s);
  }
  for (auto& ch : churn_) {
    for (std::size_t s = 0; s < ch->slot_count(); ++s) {
      if (ch->is_down(s)) ch->force_toggle(s);
    }
  }
  // Drain to quiescence: background fillers finish, delayed/preempted
  // shards place and complete, offloads round-trip.
  int guard = 0;
  while (city_->auditor().open_requests() != 0 && guard++ < 40) {
    city_->run(util::Seconds{600.0});
  }
  if (city_->auditor().open_requests() != 0) {
    out.push_back("drain: " + std::to_string(city_->auditor().open_requests()) +
                  " request(s) still open after 24000 s of quiescence drain");
  }
  // Fold a final structural sweep into the auditor, then collect the full
  // conservation verdict (stored violations + unresolved ids).
  (void)city_->audit_now();
  for (auto& v : city_->auditor().check_quiescent()) out.push_back(std::move(v));
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    const core::Cluster& cc = city_->cluster(c);
    if (cc.in_flight() != 0) {
      out.push_back("b" + std::to_string(c) + ": " + std::to_string(cc.in_flight()) +
                    " request(s) still in flight after drain");
    }
    if (cc.queued() != 0) {
      out.push_back("b" + std::to_string(c) + ": " + std::to_string(cc.queued()) +
                    " shard(s) still queued after drain");
    }
  }
  return out;
}

std::uint64_t FleetWorld::digest() {
  StateDigest d;
  d.mix_f64(city_->now());
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    const core::Cluster& cc = city_->cluster(c);
    const core::ClusterStats& st = cc.stats();
    d.mix_u64(st.received_edge);
    d.mix_u64(st.received_cloud);
    d.mix_u64(st.received_pinned);
    d.mix_u64(st.completed);
    d.mix_u64(st.preemptions);
    d.mix_u64(st.edge_delays);
    d.mix_u64(st.offloaded_vertical);
    d.mix_u64(st.offloaded_horizontal_out);
    d.mix_u64(st.offloaded_horizontal_in);
    d.mix_u64(st.rejected);
    d.mix_u64(st.dropped);
    d.mix_u64(st.deadline_missed);
    d.mix_f64(st.foreign_gigacycles);
    // Queue, in pop order (deterministic deque walk).
    d.mix_u64(cc.queued());
    cc.task_queue().for_each([&](const core::Task& t, core::Priority p) {
      d.mix_u64(t.request->request.id);
      d.mix_u64(static_cast<std::uint64_t>(t.shard_index));
      d.mix_f64(t.remaining_gigacycles);
      d.mix_byte(static_cast<std::uint8_t>(p));
    });
    // Pending map: unordered container, canonicalized by request id.
    std::vector<core::Cluster::PendingView> pending;
    cc.for_each_pending([&](const core::Cluster::PendingView& p) { pending.push_back(p); });
    std::sort(pending.begin(), pending.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    d.mix_u64(pending.size());
    for (const auto& p : pending) {
      d.mix_u64(p.id);
      d.mix_u64(p.preferred_worker);
      d.mix_u64(p.served_worker);
      d.mix_bool(p.foreign);
      d.mix_bool(p.local_only);
    }
    // Workers: chassis control state + running set in core-acquisition
    // order (deterministic vector walk).
    for (std::size_t w = 0; w < cc.worker_count(); ++w) {
      const core::Worker& wk = cc.worker(w);
      d.mix_bool(wk.server().powered());
      d.mix_u64(wk.server().effective_pstate());
      d.mix_u64(static_cast<std::uint64_t>(wk.busy_cores()));
      wk.for_each_running([&](const core::Task& t, double speed) {
        d.mix_u64(t.request->request.id);
        d.mix_u64(static_cast<std::uint64_t>(t.shard_index));
        d.mix_f64(t.remaining_gigacycles);
        d.mix_f64(speed);
      });
    }
  }
  // Injector state.
  d.mix_u64(flapper_->flaps());
  for (std::size_t s = 0; s < flapper_->slot_count(); ++s) d.mix_bool(flapper_->is_down(s));
  for (const auto& ch : churn_) {
    d.mix_u64(ch->outages());
    for (std::size_t s = 0; s < ch->slot_count(); ++s) d.mix_bool(ch->is_down(s));
  }
  // Auditor counters (branch-scoped since the epoch reset).
  const metrics::LifecycleAuditor& a = city_->auditor();
  d.mix_u64(a.submitted());
  d.mix_u64(a.terminals());
  d.mix_u64(a.completed());
  d.mix_u64(a.rejected());
  d.mix_u64(a.dropped());
  d.mix_u64(a.deadline_missed());
  d.mix_u64(a.violation_count());
  return d.value();
}

std::vector<std::pair<std::string, std::uint64_t>> FleetWorld::coverage() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  // Rung firings, summed across clusters; rung_hits is parallel to the
  // configured ladder.
  const std::vector<std::string> ladder = {"preempt", "horizontal", "vertical", "delay"};
  std::vector<std::uint64_t> rung(ladder.size(), 0);
  std::uint64_t handoffs = 0, verticals = 0, preemptions = 0, delays = 0, pinned = 0,
                completed = 0;
  for (std::size_t c = 0; c < config_.clusters; ++c) {
    const core::Cluster& cc = city_->cluster(c);
    const auto& hits = cc.policy_counters().rung_hits;
    for (std::size_t i = 0; i < ladder.size() && i < hits.size(); ++i) rung[i] += hits[i];
    handoffs += cc.stats().offloaded_horizontal_out;
    verticals += cc.stats().offloaded_vertical;
    preemptions += cc.stats().preemptions;
    delays += cc.stats().edge_delays;
    pinned += cc.stats().received_pinned;
    completed += cc.stats().completed;
  }
  // Partition losses via the auditor, not cluster stats: a hand-off dropped
  // on a flapped link is deliberately *not* a cluster-side drop (the
  // sender's responsibility ended at offloaded_horizontal_out), but every
  // kDropped terminal record reaches the platform auditor.
  const std::uint64_t dropped = city_->auditor().dropped();
  for (std::size_t i = 0; i < ladder.size(); ++i) out.emplace_back("rung:" + ladder[i], rung[i]);
  out.emplace_back("handoffs", handoffs);
  out.emplace_back("vertical-offloads", verticals);
  out.emplace_back("preemptions", preemptions);
  out.emplace_back("delays", delays);
  out.emplace_back("drops", dropped);
  out.emplace_back("pinned", pinned);
  out.emplace_back("completed", completed);
  std::uint64_t outages = 0;
  for (const auto& ch : churn_) outages += ch->outages();
  out.emplace_back("flaps", flapper_->flaps());
  out.emplace_back("outages", outages);
  return out;
}

}  // namespace df3::mc
