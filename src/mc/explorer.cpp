#include "df3/mc/explorer.hpp"

#include <deque>
#include <unordered_set>

namespace df3::mc {

ExploreResult Explorer::run(World& world) const {
  ExploreResult res;
  // BFS frontier of action prefixes. Depth order guarantees the first
  // witness of any defect is a shortest one.
  std::deque<std::vector<std::string>> frontier;
  frontier.emplace_back();
  std::unordered_set<std::uint64_t> seen;

  const auto record = [&](std::vector<std::string> witness, std::vector<std::string> messages) {
    ++res.violation_count;
    if (res.violations.size() < config_.max_stored_violations) {
      res.violations.push_back({std::move(witness), std::move(messages)});
    }
  };

  while (!frontier.empty()) {
    if (config_.max_states != 0 && res.states_explored >= config_.max_states) {
      res.truncated = true;
      break;
    }
    const std::vector<std::string> prefix = std::move(frontier.front());
    frontier.pop_front();

    // Replay-based restore: rebuild the root, re-apply the prefix.
    world.reset();
    for (const auto& a : prefix) world.apply(a);
    ++res.states_explored;
    if (prefix.size() > res.max_depth_reached) res.max_depth_reached = prefix.size();

    if (config_.progress_every != 0 && config_.on_progress &&
        res.states_explored % config_.progress_every == 0) {
      config_.on_progress(res.states_explored, frontier.size());
    }

    // Mid-branch structural sweep. Shorter prefixes were checked at their
    // own nodes (every prefix is a node), so only the state after the last
    // action needs inspecting here.
    auto bad = world.check();
    if (!bad.empty()) {
      record(prefix, std::move(bad));
      continue;  // prune: extensions only lengthen the same witness
    }

    bool expand = prefix.size() < config_.max_depth;
    if (config_.dedup && !seen.insert(world.digest()).second) {
      ++res.states_deduped;
      expand = false;
    }
    // Capture the alphabet before finalize() consumes the state.
    std::vector<std::string> actions;
    if (expand) actions = world.enabled();

    // Every node also proves the end-to-end conservation identity: heal
    // faults, drain, check quiescence. The state is sacrificed, but the
    // next node replays from the root regardless.
    auto drained = world.finalize();
    for (const auto& [key, count] : world.coverage()) res.coverage[key] += count;
    if (!drained.empty()) {
      auto witness = prefix;
      witness.emplace_back("<drain>");
      record(std::move(witness), std::move(drained));
      continue;
    }

    if (expand) {
      for (const auto& a : actions) {
        auto child = prefix;
        child.push_back(a);
        frontier.push_back(std::move(child));
      }
    }
  }
  return res;
}

std::string format_witness(const std::vector<std::string>& witness) {
  if (witness.empty()) return "<root>";
  std::string out;
  for (std::size_t i = 0; i < witness.size(); ++i) {
    if (i != 0) out += " -> ";
    out += witness[i];
  }
  return out;
}

}  // namespace df3::mc
