// Tests for the economics extensions: seasonal spot pricing, SLA portfolio
// and crypto-heater mining.
#include <gtest/gtest.h>

#include "df3/analytics/pricing.hpp"
#include "df3/hw/mining.hpp"

namespace an = df3::analytics;
namespace hw = df3::hw;
namespace u = df3::util;

// ---------------------------------------------------------------- pricing ---

TEST(SpotPrice, FloorsCapsAndMonotonicity) {
  an::SpotPriceModel m(an::SpotPriceConfig{});
  const auto& cfg = m.config();
  // Abundant winter supply: price at the floor.
  EXPECT_NEAR(m.price(1000.0, 10.0), cfg.floor_price, 1e-4);
  // Scarcity: capped at the datacenter alternative.
  EXPECT_DOUBLE_EQ(m.price(10.0, 1000.0), cfg.dc_price);
  // No supply at all: DC price.
  EXPECT_DOUBLE_EQ(m.price(0.0, 50.0), cfg.dc_price);
  // Monotone in demand, antitone in supply.
  EXPECT_LT(m.price(100.0, 20.0), m.price(100.0, 80.0));
  EXPECT_GT(m.price(50.0, 60.0), m.price(200.0, 60.0));
  EXPECT_THROW((void)m.price(-1.0, 1.0), std::invalid_argument);
}

TEST(SpotPrice, ConfigValidation) {
  an::SpotPriceConfig bad;
  bad.floor_price = bad.dc_price + 1.0;
  EXPECT_THROW(an::SpotPriceModel{bad}, std::invalid_argument);
  bad = {};
  bad.elasticity = 0.0;
  EXPECT_THROW(an::SpotPriceModel{bad}, std::invalid_argument);
}

namespace {
/// Stylized year: high winter capacity, zero summer capacity; flat demand.
void seasonal_series(u::TimeSeries& supply, u::TimeSeries& demand) {
  for (int month = 0; month < 12; ++month) {
    const bool winter = month <= 3 || month >= 10;
    supply.add(month, winter ? 400.0 : (month == 4 || month == 9 ? 100.0 : 0.0));
    demand.add(month, 150.0);
  }
}
}  // namespace

TEST(SpotMarket, WinterCheapSummerAtCap) {
  an::SpotPriceModel m(an::SpotPriceConfig{});
  u::TimeSeries supply, demand;
  seasonal_series(supply, demand);
  const auto result = an::run_spot_market(m, supply, demand, 3600.0);
  ASSERT_EQ(result.price.size(), 12u);
  EXPECT_LT(result.price.values[0], 0.02);                    // January: cheap
  EXPECT_DOUBLE_EQ(result.price.values[6], m.config().dc_price);  // July: cap
  EXPECT_GT(result.revenue, 0.0);
  EXPECT_GT(result.unserved_core_hours, 0.0);  // summer demand walked
  EXPECT_THROW((void)an::run_spot_market(m, supply, u::TimeSeries{}, 3600.0),
               std::invalid_argument);
}

TEST(SlaPortfolio, BackstopCoversSummerGuarantees) {
  u::TimeSeries supply, guaranteed, seasonal;
  seasonal_series(supply, guaranteed);  // guaranteed demand flat 150
  for (int month = 0; month < 12; ++month) seasonal.add(month, 100.0);
  an::SlaConfig cfg;
  const auto r = an::run_sla_portfolio(cfg, supply, guaranteed, seasonal, 3600.0);
  // Revenue always accrues for the guaranteed class; backstop is paid in
  // the months DF cannot cover it.
  EXPECT_GT(r.revenue, 0.0);
  EXPECT_GT(r.backstop_cost, 0.0);
  EXPECT_GT(r.profit(), 0.0);  // premium over the DC price keeps it viable
  // The seasonal class only rides winter leftovers.
  EXPECT_GT(r.seasonal_availability, 0.3);
  EXPECT_LT(r.seasonal_availability, 0.9);
}

TEST(SlaPortfolio, FullSupplyMeansFullSeasonalAvailability) {
  u::TimeSeries supply, guaranteed, seasonal;
  for (int i = 0; i < 4; ++i) {
    supply.add(i, 500.0);
    guaranteed.add(i, 100.0);
    seasonal.add(i, 100.0);
  }
  const auto r = an::run_sla_portfolio(an::SlaConfig{}, supply, guaranteed, seasonal, 3600.0);
  EXPECT_DOUBLE_EQ(r.seasonal_availability, 1.0);
  EXPECT_DOUBLE_EQ(r.backstop_cost, 0.0);
}

// ----------------------------------------------------------------- mining ---

TEST(Mining, HashRateFollowsDynamicPower) {
  hw::DfServer rig(hw::crypto_heater_spec());
  const hw::MiningConfig cfg;
  rig.set_busy_cores(0);
  EXPECT_DOUBLE_EQ(hw::hash_rate(rig, cfg), 0.0);  // idle: static power only
  rig.set_busy_cores(rig.spec().total_cores());
  const double full = hw::hash_rate(rig, cfg);
  EXPECT_GT(full, 0.0);
  // Half load: half the dynamic power, half the hash rate.
  rig.set_busy_cores(rig.spec().total_cores() / 2);
  EXPECT_NEAR(hw::hash_rate(rig, cfg), full / 2.0, full * 1e-9);
  // Gated off: nothing.
  rig.set_powered(false);
  EXPECT_DOUBLE_EQ(hw::hash_rate(rig, cfg), 0.0);
}

TEST(Mining, DownclockedMiningIsMoreCoinPerKwhButLessPerHour) {
  const hw::MiningConfig cfg;
  hw::DfServer fast(hw::crypto_heater_spec());
  hw::DfServer slow(hw::crypto_heater_spec());
  fast.set_busy_cores(fast.spec().total_cores());
  slow.set_pstate(0);
  slow.set_busy_cores(slow.spec().total_cores());
  hw::MiningLedger lf(cfg), ls(cfg);
  lf.advance(fast, u::hours(1.0), true);
  ls.advance(slow, u::hours(1.0), true);
  EXPECT_GT(lf.hashes(), ls.hashes());                        // raw speed
  EXPECT_GT(lf.electricity_cost(), ls.electricity_cost());    // and cost
}

TEST(Mining, QarnotModelBeatsStandaloneMinerInWinter) {
  // Winter: the host wanted the heat, so the system earns coins AND the
  // displaced heating value. A standalone miner only earns the coins.
  const hw::MiningConfig cfg;
  hw::DfServer rig(hw::crypto_heater_spec());
  rig.set_busy_cores(rig.spec().total_cores());
  hw::MiningLedger winter(cfg), summer(cfg);
  winter.advance(rig, u::days(1.0), /*heat_wanted=*/true);
  summer.advance(rig, u::days(1.0), /*heat_wanted=*/false);
  EXPECT_GT(winter.system_value(), winter.miner_profit());
  EXPECT_DOUBLE_EQ(summer.heat_value(), 0.0);
  EXPECT_DOUBLE_EQ(winter.miner_profit(), summer.miner_profit());
  // With default 2026-ish parameters, bare mining at retail electricity is
  // marginal; the heating credit is what carries the crypto-heater.
  EXPECT_GT(winter.system_value(), 0.0);
}

TEST(Mining, Validation) {
  hw::MiningConfig bad;
  bad.hashes_per_joule = 0.0;
  EXPECT_THROW(hw::MiningLedger{bad}, std::invalid_argument);
  hw::MiningLedger ledger{hw::MiningConfig{}};
  hw::DfServer rig(hw::crypto_heater_spec());
  EXPECT_THROW(ledger.advance(rig, u::seconds(-1.0), true), std::invalid_argument);
}
