// Tests for the network substrate: protocol profiles, routing, queuing,
// partitions.
#include <gtest/gtest.h>

#include "df3/net/network.hpp"
#include "df3/net/protocol.hpp"

namespace net = df3::net;
namespace u = df3::util;
using df3::sim::Simulation;

// ------------------------------------------------------------- profiles ---

TEST(LinkProfile, SerializationIncludesOverheadAndFragmentation) {
  const auto eth = net::ethernet_lan();
  // 1 frame: (1000 + 66) bytes at 1 Gb/s.
  EXPECT_NEAR(eth.serialization_time(u::bytes(1000.0)).value(), 1066.0 * 8.0 / 1e9, 1e-12);
  // 100 KiB fragments into ceil(102400/65536) = 2 frames.
  EXPECT_NEAR(eth.serialization_time(u::kibibytes(100.0)).value(),
              (102400.0 + 2 * 66.0) * 8.0 / 1e9, 1e-12);
}

TEST(LinkProfile, DutyCycleThrottlesLora) {
  const auto l = net::lora();
  const auto raw_like = net::LinkProfile{"lora-raw", l.bandwidth, l.base_latency, l.max_payload,
                                         l.frame_overhead, 1.0};
  EXPECT_NEAR(l.serialization_time(u::bytes(100.0)).value(),
              raw_like.serialization_time(u::bytes(100.0)).value() * 100.0, 1e-9);
}

TEST(LinkProfile, LatencyOrderingAcrossTechnologies) {
  // For a small edge payload the protocol ordering the paper relies on
  // must hold: LAN < ZigBee < LoRa < Sigfox.
  const auto payload = u::bytes(64.0);
  const double lan = net::ethernet_lan().one_hop_delay(payload).value();
  const double zb = net::zigbee().one_hop_delay(payload).value();
  const double lr = net::lora().one_hop_delay(payload).value();
  const double sf = net::sigfox().one_hop_delay(payload).value();
  EXPECT_LT(lan, zb);
  EXPECT_LT(zb, lr);
  EXPECT_LT(lr, sf);
}

TEST(LinkProfile, ZeroByteMessageStillPaysOneFrame) {
  const auto zb = net::zigbee();
  EXPECT_GT(zb.serialization_time(u::bytes(0.0)).value(), 0.0);
}

TEST(LinkProfile, RejectsInvalid) {
  net::LinkProfile p = net::ethernet_lan();
  EXPECT_THROW((void)p.serialization_time(u::bytes(-1.0)), std::invalid_argument);
  p.duty_cycle = 0.0;
  EXPECT_THROW((void)p.serialization_time(u::bytes(1.0)), std::invalid_argument);
}

// -------------------------------------------------------------- network ---

namespace {
/// Small fixture: device --zigbee-- gateway --lan-- worker --fiber-- cloud.
struct Chain {
  Simulation sim;
  net::Network netw{sim, "chain"};
  net::NodeId device, gateway, worker, cloud;
  std::size_t l_dev, l_lan, l_wan;

  Chain() {
    device = netw.add_node("device");
    gateway = netw.add_node("gateway");
    worker = netw.add_node("worker");
    cloud = netw.add_node("cloud");
    l_dev = netw.add_link(device, gateway, net::zigbee());
    l_lan = netw.add_link(gateway, worker, net::ethernet_lan());
    l_wan = netw.add_link(worker, cloud, net::fiber_wan());
  }
};
}  // namespace

TEST(Network, NodeLookup) {
  Chain c;
  EXPECT_EQ(c.netw.node("device"), c.device);
  EXPECT_EQ(c.netw.node_name(c.cloud), "cloud");
  EXPECT_EQ(c.netw.node_count(), 4u);
  EXPECT_THROW((void)c.netw.node("nope"), std::out_of_range);
  EXPECT_THROW((void)c.netw.add_node("device"), std::invalid_argument);
}

TEST(Network, RouteFollowsChain) {
  Chain c;
  const auto path = c.netw.route(c.device, c.cloud, u::bytes(64.0));
  EXPECT_EQ(path, (std::vector<std::size_t>{c.l_dev, c.l_lan, c.l_wan}));
  EXPECT_TRUE(c.netw.route(c.device, c.device, u::bytes(1.0)).empty());
}

TEST(Network, UnloadedDelayIsSumOfHops) {
  Chain c;
  const auto size = u::bytes(64.0);
  const auto d = c.netw.unloaded_delay(c.device, c.worker, size);
  ASSERT_TRUE(d.has_value());
  const double expect = net::zigbee().one_hop_delay(size).value() +
                        net::ethernet_lan().one_hop_delay(size).value();
  EXPECT_NEAR(d->value(), expect, 1e-12);
}

TEST(Network, DeliveryEventMatchesUnloadedDelayWhenIdle) {
  Chain c;
  const net::Message m{c.device, c.worker, u::bytes(64.0), 1};
  double delivered_at = -1.0;
  c.netw.send(m, [&](double t) { delivered_at = t; });
  c.sim.run();
  const auto d = c.netw.unloaded_delay(c.device, c.worker, m.size);
  EXPECT_NEAR(delivered_at, d->value(), 1e-12);
  EXPECT_EQ(c.netw.messages_sent(), 1u);
}

TEST(Network, QueuingDelaysBackToBackMessages) {
  Chain c;
  // Two large messages on the slow zigbee hop: the second queues behind
  // the first's serialization.
  const net::Message m{c.device, c.gateway, u::kibibytes(10.0), 0};
  std::vector<double> deliveries;
  c.netw.send(m, [&](double t) { deliveries.push_back(t); });
  c.netw.send(m, [&](double t) { deliveries.push_back(t); });
  c.sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const double ser = net::zigbee().serialization_time(m.size).value();
  EXPECT_NEAR(deliveries[1] - deliveries[0], ser, 1e-9);
}

TEST(Network, DirectionsDoNotContend) {
  Chain c;
  const net::Message fwd{c.device, c.gateway, u::kibibytes(10.0), 0};
  const net::Message rev{c.gateway, c.device, u::kibibytes(10.0), 0};
  std::vector<double> deliveries;
  c.netw.send(fwd, [&](double t) { deliveries.push_back(t); });
  c.netw.send(rev, [&](double t) { deliveries.push_back(t); });
  c.sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_NEAR(deliveries[0], deliveries[1], 1e-9);  // full duplex
}

TEST(Network, LoopbackDeliversImmediately) {
  Chain c;
  double delivered_at = -1.0;
  c.netw.send({c.device, c.device, u::mebibytes(10.0), 0}, [&](double t) { delivered_at = t; });
  c.sim.run();
  EXPECT_DOUBLE_EQ(delivered_at, 0.0);
}

TEST(Network, PartitionDropsAndRestores) {
  Chain c;
  c.netw.set_link_up(c.l_lan, false);
  bool dropped = false;
  double delivered_at = -1.0;
  c.netw.send({c.device, c.cloud, u::bytes(64.0), 0}, [&](double t) { delivered_at = t; },
              [&] { dropped = true; });
  c.sim.run();
  EXPECT_TRUE(dropped);
  EXPECT_DOUBLE_EQ(delivered_at, -1.0);
  EXPECT_EQ(c.netw.messages_dropped(), 1u);

  c.netw.set_link_up(c.l_lan, true);
  c.netw.send({c.device, c.cloud, u::bytes(64.0), 0}, [&](double t) { delivered_at = t; });
  c.sim.run();
  EXPECT_GT(delivered_at, 0.0);
}

TEST(Network, RoutePrefersFasterPath) {
  Simulation sim;
  net::Network n(sim, "tri");
  const auto a = n.add_node("a");
  const auto b = n.add_node("b");
  const auto cnode = n.add_node("c");
  n.add_link(a, b, net::lora());  // slow direct
  const auto fast1 = n.add_link(a, cnode, net::ethernet_lan());
  const auto fast2 = n.add_link(cnode, b, net::ethernet_lan());
  const auto path = n.route(a, b, u::bytes(64.0));
  EXPECT_EQ(path, (std::vector<std::size_t>{fast1, fast2}));
}

TEST(Network, StatsAccumulate) {
  Chain c;
  const net::Message m{c.device, c.gateway, u::bytes(100.0), 0};
  c.netw.send(m, [](double) {});
  c.netw.send(m, [](double) {});
  c.sim.run();
  const auto& st = c.netw.stats(c.l_dev);
  EXPECT_EQ(st.messages, 2u);
  EXPECT_DOUBLE_EQ(st.bytes, 200.0);
  EXPECT_GT(st.busy_seconds, 0.0);
}

TEST(Network, Validation) {
  Simulation sim;
  net::Network n(sim, "v");
  const auto a = n.add_node("a");
  EXPECT_THROW((void)n.add_link(a, a, net::ethernet_lan()), std::invalid_argument);
  EXPECT_THROW((void)n.add_link(a, 42, net::ethernet_lan()), std::out_of_range);
  EXPECT_THROW(n.send({a, a, u::bytes(1.0), 0}, nullptr), std::invalid_argument);
  EXPECT_THROW((void)n.route(a, 42, u::bytes(1.0)), std::out_of_range);
}

TEST(Network, SegmentedVsSharedLanContention) {
  // E10 micro-version: an edge message behind a bulk DCC transfer on a
  // shared LAN waits; on a segmented (dedicated) LAN it does not.
  Simulation sim;
  net::Network shared(sim, "shared");
  const auto s_src = shared.add_node("src");
  const auto s_dst = shared.add_node("dst");
  shared.add_link(s_src, s_dst, net::ethernet_lan());
  double bulk_done = -1.0, edge_done = -1.0;
  shared.send({s_src, s_dst, u::mebibytes(500.0), 0}, [&](double t) { bulk_done = t; });
  shared.send({s_src, s_dst, u::bytes(200.0), 0}, [&](double t) { edge_done = t; });
  sim.run();
  EXPECT_GT(edge_done, 1.0);  // ~4 s stuck behind the bulk transfer

  Simulation sim2;
  net::Network seg(sim2, "segmented");
  const auto e_src = seg.add_node("src");
  const auto e_dst = seg.add_node("dst");
  seg.add_link(e_src, e_dst, net::ethernet_lan());
  double edge_done2 = -1.0;
  seg.send({e_src, e_dst, u::bytes(200.0), 0}, [&](double t) { edge_done2 = t; });
  sim2.run();
  EXPECT_LT(edge_done2, 0.001);
}
