// Tests for the workload substrate: arrival processes, request factories,
// workload sources, trace persistence and replay.
#include <gtest/gtest.h>

#include <sstream>

#include "df3/thermal/calendar.hpp"
#include "df3/util/stats.hpp"
#include "df3/workload/arrivals.hpp"
#include "df3/workload/generators.hpp"
#include "df3/workload/trace.hpp"

namespace wl = df3::workload;
namespace th = df3::thermal;
namespace u = df3::util;
using df3::sim::Simulation;

// ------------------------------------------------------------- arrivals ---

TEST(PoissonArrivals, MeanRateMatches) {
  wl::PoissonArrivals p(0.5);
  u::RngStream rng(1, "poisson");
  double t = 0.0;
  int count = 0;
  while (t < 100000.0) {
    t = p.next_after(t, rng);
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / 100000.0, 0.5, 0.02);
  EXPECT_DOUBLE_EQ(p.mean_rate(), 0.5);
  EXPECT_THROW(wl::PoissonArrivals(0.0), std::invalid_argument);
}

TEST(PoissonArrivals, StrictlyIncreasing) {
  wl::PoissonArrivals p(100.0);
  u::RngStream rng(2, "poisson2");
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double nxt = p.next_after(t, rng);
    EXPECT_GT(nxt, t);
    t = nxt;
  }
}

TEST(MmppArrivals, LongRunRateMatchesWeightedMean) {
  // low 0.1/s for mean 600 s, high 2.0/s for mean 200 s.
  wl::MmppArrivals m(0.1, 2.0, 600.0, 200.0);
  EXPECT_NEAR(m.mean_rate(), (0.1 * 600 + 2.0 * 200) / 800.0, 1e-12);
  u::RngStream rng(3, "mmpp");
  double t = 0.0;
  int count = 0;
  while (t < 500000.0) {
    t = m.next_after(t, rng);
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / 500000.0, m.mean_rate(), 0.05);
}

TEST(MmppArrivals, BurstsAreBursty) {
  // Compare squared-CV of inter-arrivals: MMPP must exceed Poisson (=1).
  wl::MmppArrivals m(0.05, 5.0, 1000.0, 100.0);
  u::RngStream rng(4, "mmpp2");
  u::StreamingStats gaps;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double nxt = m.next_after(t, rng);
    gaps.add(nxt - t);
    t = nxt;
  }
  const double cv2 = gaps.variance() / (gaps.mean() * gaps.mean());
  EXPECT_GT(cv2, 2.0);
}

TEST(MmppArrivals, Validation) {
  EXPECT_THROW(wl::MmppArrivals(2.0, 1.0, 10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(wl::MmppArrivals(0.1, 1.0, 0.0, 10.0), std::invalid_argument);
}

TEST(ModulatedArrivals, BusinessHoursSkew) {
  auto a = wl::business_hours_arrivals(0.01, 10.0);
  u::RngStream rng(5, "bh");
  int business = 0, off = 0;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t = a->next_after(t, rng);
    (th::is_business_hours(t) ? business : off)++;
  }
  // 50 business hours/week at 10x rate vs 118 off-hours at 1x:
  // expected ratio business/off = 500/118 ~ 4.2.
  EXPECT_GT(static_cast<double>(business) / static_cast<double>(off), 3.0);
}

TEST(ModulatedArrivals, DiurnalPeaksAtRequestedHour) {
  auto a = wl::diurnal_arrivals(0.02, 0.8, 19.0);
  u::RngStream rng(6, "di");
  std::array<int, 24> by_hour{};
  double t = 0.0;
  for (int i = 0; i < 40000; ++i) {
    t = a->next_after(t, rng);
    ++by_hour[static_cast<std::size_t>(th::hour_of_day(t))];
  }
  int peak_hour = 0;
  for (int h = 0; h < 24; ++h) {
    if (by_hour[static_cast<std::size_t>(h)] > by_hour[static_cast<std::size_t>(peak_hour)]) {
      peak_hour = h;
    }
  }
  EXPECT_NEAR(peak_hour, 19, 2);
  // Trough near 07:00 must be well below the peak.
  EXPECT_LT(by_hour[7] * 3, by_hour[19] * 2);
}

TEST(ModulatedArrivals, ThrowsWhenRateEscapesBound) {
  wl::ModulatedArrivals bad([](double) { return 5.0; }, 1.0, 1.0);
  u::RngStream rng(7, "bad");
  EXPECT_THROW((void)bad.next_after(0.0, rng), std::logic_error);
}

// -------------------------------------------------------------- factories ---

TEST(Factories, EdgeRequestsHaveDeadlinesAndSmallWork) {
  u::RngStream rng(8, "fac");
  for (const auto& factory :
       {wl::alarm_detection_factory(), wl::map_serving_factory(),
        wl::traffic_estimation_factory(), wl::fall_detection_factory()}) {
    for (int i = 0; i < 100; ++i) {
      const auto r = factory(rng);
      EXPECT_TRUE(wl::is_edge(r.flow));
      ASSERT_TRUE(r.deadline_s.has_value());
      EXPECT_LE(*r.deadline_s, 5.0);
      EXPECT_LE(r.work_gigacycles, 10.0);
      EXPECT_EQ(r.tasks, 1);
      EXPECT_FALSE(r.preemptible);
    }
  }
}

TEST(Factories, FallDetectionIsPrivacySensitive) {
  u::RngStream rng(9, "fd");
  const auto r = wl::fall_detection_factory()(rng);
  EXPECT_TRUE(r.privacy_sensitive);
  EXPECT_EQ(r.flow, wl::Flow::kEdgeDirect);
}

TEST(Factories, RenderBatchesAreWideAndHeavyTailed) {
  u::RngStream rng(10, "rb");
  auto factory = wl::render_batch_factory(8, 64);
  u::StreamingStats work;
  for (int i = 0; i < 500; ++i) {
    const auto r = factory(rng);
    EXPECT_EQ(r.flow, wl::Flow::kCloud);
    EXPECT_GE(r.tasks, 8);
    EXPECT_LE(r.tasks, 64);
    EXPECT_FALSE(r.deadline_s.has_value());
    EXPECT_TRUE(r.preemptible);
    EXPECT_GE(r.work_gigacycles, 360.0);
    EXPECT_LE(r.work_gigacycles, 21600.0);
    work.add(r.work_gigacycles);
  }
  // Heavy tail: max far above mean.
  EXPECT_GT(work.max(), work.mean() * 4.0);
  EXPECT_THROW(wl::render_batch_factory(0, 4), std::invalid_argument);
}

TEST(Factories, CoupledSolverCommunicates) {
  u::RngStream rng(11, "cs");
  const auto r = wl::coupled_solver_factory(16, 0.35)(rng);
  EXPECT_EQ(r.tasks, 16);
  EXPECT_DOUBLE_EQ(r.comm_fraction, 0.35);
  EXPECT_FALSE(r.preemptible);
  EXPECT_THROW(wl::coupled_solver_factory(1, 0.1), std::invalid_argument);
  EXPECT_THROW(wl::coupled_solver_factory(4, 1.0), std::invalid_argument);
}

TEST(Factories, StorageIsColdAndBulky) {
  u::RngStream rng(12, "st");
  const auto r = wl::storage_request_factory()(rng);
  EXPECT_LT(r.work_gigacycles, 0.1);
  EXPECT_GT(r.input_size.value(), 1e6);
}

TEST(RequestModel, TotalWorkAndDeadline) {
  wl::Request r;
  r.arrival = 100.0;
  r.work_gigacycles = 10.0;
  r.tasks = 4;
  EXPECT_DOUBLE_EQ(r.total_work(), 40.0);
  EXPECT_FALSE(r.absolute_deadline().has_value());
  r.deadline_s = 2.5;
  ASSERT_TRUE(r.absolute_deadline().has_value());
  EXPECT_DOUBLE_EQ(*r.absolute_deadline(), 102.5);
}

// ---------------------------------------------------------------- source ---

TEST(WorkloadSource, EmitsAtArrivalInstants) {
  Simulation sim;
  std::vector<wl::Request> got;
  wl::WorkloadSource src(sim, "edge-src", 42, std::make_unique<wl::PoissonArrivals>(1.0),
                         wl::alarm_detection_factory(),
                         [&](wl::Request r) { got.push_back(std::move(r)); });
  src.start();
  sim.run_until(1000.0);
  src.stop();
  EXPECT_NEAR(static_cast<double>(got.size()), 1000.0, 120.0);
  EXPECT_EQ(src.emitted(), got.size());
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_GT(got[i].arrival, got[i - 1].arrival);
    EXPECT_NE(got[i].id, got[i - 1].id);
  }
}

TEST(WorkloadSource, StopCancelsFutureEmissions) {
  Simulation sim;
  int count = 0;
  wl::WorkloadSource src(sim, "s", 1, std::make_unique<wl::PoissonArrivals>(10.0),
                         wl::map_serving_factory(), [&](wl::Request) { ++count; });
  src.start();
  sim.run_until(10.0);
  const int at_stop = count;
  src.stop();
  sim.run_until(100.0);
  EXPECT_EQ(count, at_stop);
}

TEST(WorkloadSource, TwoSourcesAreDecoupled) {
  // Adding a second source must not change what the first one emits
  // (common-random-numbers requirement).
  auto run = [](bool with_second) {
    Simulation sim;
    std::vector<double> arrivals_a;
    wl::WorkloadSource a(sim, "src-a", 7, std::make_unique<wl::PoissonArrivals>(1.0),
                         wl::map_serving_factory(),
                         [&](wl::Request r) { arrivals_a.push_back(r.arrival); });
    a.start();
    std::unique_ptr<wl::WorkloadSource> b;
    if (with_second) {
      b = std::make_unique<wl::WorkloadSource>(
          sim, "src-b", 7, std::make_unique<wl::PoissonArrivals>(5.0),
          wl::alarm_detection_factory(), [](wl::Request) {});
      b->start();
    }
    sim.run_until(200.0);
    return arrivals_a;
  };
  EXPECT_EQ(run(false), run(true));
}

// ----------------------------------------------------------------- trace ---

TEST(Trace, RoundTripThroughCsv) {
  u::RngStream rng(13, "trace");
  wl::Trace trace;
  auto edge = wl::alarm_detection_factory();
  auto cloud = wl::render_batch_factory();
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    t += rng.exponential(0.1);
    auto r = (i % 2 == 0) ? edge(rng) : cloud(rng);
    r.id = static_cast<std::uint64_t>(i);
    r.arrival = t;
    trace.add(std::move(r));
  }
  std::stringstream ss;
  trace.save(ss);
  const wl::Trace back = wl::Trace::load(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    const auto& a = trace.requests()[i];
    const auto& b = back.requests()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.flow, b.flow);
    EXPECT_EQ(a.app, b.app);
    EXPECT_NEAR(a.arrival, b.arrival, 1e-6 * std::max(1.0, a.arrival));
    EXPECT_NEAR(a.work_gigacycles, b.work_gigacycles, 1e-6 * a.work_gigacycles);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_EQ(a.deadline_s.has_value(), b.deadline_s.has_value());
    EXPECT_EQ(a.preemptible, b.preemptible);
    EXPECT_EQ(a.privacy_sensitive, b.privacy_sensitive);
  }
  EXPECT_NEAR(back.total_work(), trace.total_work(), trace.total_work() * 1e-6);
}

TEST(Trace, RejectsOutOfOrderAndMalformed) {
  wl::Trace trace;
  wl::Request r;
  r.arrival = 10.0;
  trace.add(r);
  r.arrival = 5.0;
  EXPECT_THROW(trace.add(r), std::invalid_argument);

  std::stringstream bad("not,a,header\n");
  EXPECT_THROW((void)wl::Trace::load(bad), std::invalid_argument);
}

TEST(TraceReplayer, DeliversEveryRequestAtItsArrival) {
  wl::Trace trace;
  for (int i = 0; i < 10; ++i) {
    wl::Request r;
    r.id = static_cast<std::uint64_t>(i);
    r.arrival = i * 10.0;
    trace.add(r);
  }
  Simulation sim;
  std::vector<std::pair<double, std::uint64_t>> got;
  wl::TraceReplayer rep(sim, "rep", trace, [&](wl::Request r) {
    got.emplace_back(sim.now(), r.id);
  });
  rep.start();
  sim.run();
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(rep.remaining(), 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(i)].first, i * 10.0);
    EXPECT_EQ(got[static_cast<std::size_t>(i)].second, static_cast<std::uint64_t>(i));
  }
  EXPECT_THROW(rep.start(), std::logic_error);
}
