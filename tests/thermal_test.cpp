// Tests for the thermal substrate: calendar, weather, RC rooms,
// thermostats, urban heat ledger.
#include <gtest/gtest.h>

#include <cmath>

#include "df3/thermal/calendar.hpp"
#include "df3/thermal/room.hpp"
#include "df3/thermal/thermostat.hpp"
#include "df3/thermal/urban.hpp"
#include "df3/thermal/weather.hpp"
#include "df3/util/stats.hpp"

namespace th = df3::thermal;
namespace u = df3::util;

// ------------------------------------------------------------- calendar ---

TEST(Calendar, MonthBoundaries) {
  EXPECT_EQ(th::month_of(0.0), 0);                                     // Jan 1
  EXPECT_EQ(th::month_of(30.9 * th::kSecondsPerDay), 0);               // Jan 31
  EXPECT_EQ(th::month_of(31.0 * th::kSecondsPerDay), 1);               // Feb 1
  EXPECT_EQ(th::month_of(364.5 * th::kSecondsPerDay), 11);             // Dec 31
  EXPECT_EQ(th::month_of(365.0 * th::kSecondsPerDay), 0);              // wraps
  EXPECT_EQ(th::month_of(th::start_of_month(10)), 10);                 // Nov 1
  EXPECT_EQ(th::month_of(th::start_of_month(4, 1)), 4);                // May 1, year 1
}

TEST(Calendar, HourAndDayOfWeek) {
  EXPECT_DOUBLE_EQ(th::hour_of_day(0.0), 0.0);
  EXPECT_DOUBLE_EQ(th::hour_of_day(3600.0 * 25.0), 1.0);
  EXPECT_EQ(th::day_of_week(0.0), 0);                           // Jan 1 == Monday
  EXPECT_EQ(th::day_of_week(5.0 * th::kSecondsPerDay), 5);      // Saturday
  EXPECT_EQ(th::day_of_week(7.0 * th::kSecondsPerDay), 0);
}

TEST(Calendar, BusinessHours) {
  const double monday_10am = 10.0 * 3600.0;
  const double monday_7am = 7.0 * 3600.0;
  const double saturday_noon = 5.0 * th::kSecondsPerDay + 12.0 * 3600.0;
  EXPECT_TRUE(th::is_business_hours(monday_10am));
  EXPECT_FALSE(th::is_business_hours(monday_7am));
  EXPECT_FALSE(th::is_business_hours(saturday_noon));
}

TEST(Calendar, MonthNames) {
  EXPECT_EQ(th::month_name(0), "Jan");
  EXPECT_EQ(th::month_name(11), "Dec");
  EXPECT_THROW((void)th::month_name(12), std::out_of_range);
}

// -------------------------------------------------------------- weather ---

TEST(Weather, SeasonalShapeWinterColdSummerWarm) {
  const th::WeatherModel w(th::ClimateNormals{}, 1);
  const auto jan = w.seasonal_component(th::start_of_month(0) + 15 * th::kSecondsPerDay);
  const auto jul = w.seasonal_component(th::start_of_month(6) + 15 * th::kSecondsPerDay);
  EXPECT_LT(jan.value(), 7.0);
  EXPECT_GT(jul.value(), 18.0);
}

TEST(Weather, SeasonalMatchesNormalsAtMidMonth) {
  th::ClimateNormals normals;
  const th::WeatherModel w(normals, 1);
  for (int m = 0; m < 12; ++m) {
    const double mid = th::start_of_month(m) +
                       th::kDaysInMonth[static_cast<std::size_t>(m)] / 2.0 * th::kSecondsPerDay;
    EXPECT_NEAR(w.seasonal_component(mid).value(),
                normals.monthly_mean_c[static_cast<std::size_t>(m)], 0.35)
        << "month " << m;
  }
}

TEST(Weather, DiurnalExtremes) {
  const th::WeatherModel w(th::ClimateNormals{}, 1);
  // Minimum near 05:00, maximum near 17:00.
  EXPECT_NEAR(w.diurnal_component(5.0 * 3600.0).value(), -4.0, 0.01);
  EXPECT_NEAR(w.diurnal_component(17.0 * 3600.0).value(), 4.0, 0.01);
  EXPECT_NEAR(w.diurnal_component(11.0 * 3600.0).value(), 0.0, 0.01);
}

TEST(Weather, NoiseIsReproducibleAndOrderIndependent) {
  const th::WeatherModel w(th::ClimateNormals{}, 77);
  const double t1 = 1000.0 * 3600.0, t2 = 2000.0 * 3600.0;
  const double a2 = w.noise_component(t2).value();
  const double a1 = w.noise_component(t1).value();
  const th::WeatherModel w2(th::ClimateNormals{}, 77);
  EXPECT_DOUBLE_EQ(w2.noise_component(t1).value(), a1);  // queried in other order
  EXPECT_DOUBLE_EQ(w2.noise_component(t2).value(), a2);
}

TEST(Weather, NoiseMarginalStdDevMatchesSpec) {
  th::ClimateNormals normals;
  normals.noise_stddev_k = 2.0;
  const th::WeatherModel w(normals, 5);
  u::StreamingStats s;
  for (int h = 0; h < 8760; ++h) s.add(w.noise_component(h * 3600.0).value());
  EXPECT_NEAR(s.mean(), 0.0, 0.35);
  EXPECT_NEAR(s.stddev(), 2.0, 0.5);
}

TEST(Weather, NoiseIsPersistent) {
  // AR(1) with phi=0.97: adjacent hours must correlate strongly.
  const th::WeatherModel w(th::ClimateNormals{}, 5);
  std::vector<double> a, b;
  for (int h = 0; h < 4000; ++h) {
    a.push_back(w.noise_component(h * 3600.0).value());
    b.push_back(w.noise_component((h + 1) * 3600.0).value());
  }
  EXPECT_GT(u::pearson(a, b), 0.9);
}

TEST(Weather, DifferentSeedsDiffer) {
  const th::WeatherModel w1(th::ClimateNormals{}, 1);
  const th::WeatherModel w2(th::ClimateNormals{}, 2);
  EXPECT_NE(w1.noise_component(3600.0).value(), w2.noise_component(3600.0).value());
}

TEST(Weather, ZeroNoiseConfig) {
  th::ClimateNormals normals;
  normals.noise_stddev_k = 0.0;
  const th::WeatherModel w(normals, 1);
  EXPECT_DOUBLE_EQ(w.noise_component(12345.0).value(), 0.0);
}

// ----------------------------------------------------------------- room ---

TEST(Room, ConvergesToEquilibrium) {
  th::Room room(th::RoomParams{}, u::celsius(10.0));
  const auto t_out = u::celsius(0.0);
  const auto q = u::watts(500.0);
  const auto eq = room.equilibrium(q, t_out);
  for (int i = 0; i < 600; ++i) room.advance(u::hours(1.0), q, t_out);
  EXPECT_NEAR(room.temperature().value(), eq.value(), 1e-6);
}

TEST(Room, ExactIntegrationIsStepSizeInvariant) {
  th::Room a(th::RoomParams{}, u::celsius(15.0));
  th::Room b(th::RoomParams{}, u::celsius(15.0));
  const auto t_out = u::celsius(2.0);
  const auto q = u::watts(400.0);
  a.advance(u::hours(6.0), q, t_out);
  for (int i = 0; i < 360; ++i) b.advance(u::minutes(1.0), q, t_out);
  EXPECT_NEAR(a.temperature().value(), b.temperature().value(), 1e-9);
}

TEST(Room, CoolsWithoutHeat) {
  th::RoomParams p;
  p.internal_gains = u::watts(0.0);
  th::Room room(p, u::celsius(20.0));
  room.advance(u::hours(24.0), u::watts(0.0), u::celsius(0.0));
  EXPECT_LT(room.temperature().value(), 10.0);
  EXPECT_GT(room.temperature().value(), 0.0);  // never below outdoor
}

TEST(Room, HoldingPowerHoldsTemperature) {
  th::Room room(th::RoomParams{}, u::celsius(21.0));
  const auto t_out = u::celsius(3.0);
  const auto q = room.holding_power(u::celsius(21.0), t_out);
  room.advance(u::hours(48.0), q, t_out);
  EXPECT_NEAR(room.temperature().value(), 21.0, 1e-6);
}

TEST(Room, HoldingPowerClampedAtZero) {
  th::Room room(th::RoomParams{}, u::celsius(20.0));
  EXPECT_DOUBLE_EQ(room.holding_power(u::celsius(18.0), u::celsius(25.0)).value(), 0.0);
}

TEST(Room, QradHoldsComfortInWinterSizing) {
  // Design check tying the defaults together: one 500 W Q.rad at full power
  // overshoots the 20-21 degC comfort band at 5 degC outside (sizing
  // margin), while ~60-75% of rating holds it — so the thermostat can both
  // recover quickly and modulate down to the target.
  th::Room room(th::RoomParams{}, u::celsius(20.0));
  EXPECT_GT(room.equilibrium(u::watts(500.0), u::celsius(5.0)).value(), 23.0);
  const auto holding = room.holding_power(u::celsius(20.5), u::celsius(5.0));
  EXPECT_GT(holding.value(), 250.0);
  EXPECT_LT(holding.value(), 450.0);
}

TEST(Room, RejectsBadParams) {
  th::RoomParams p;
  p.resistance_k_per_w = 0.0;
  EXPECT_THROW(th::Room(p, u::celsius(20.0)), std::invalid_argument);
  EXPECT_THROW(
      th::Room(th::RoomParams{}, u::celsius(20.0)).advance(u::seconds(-1.0), u::watts(0.0), u::celsius(0.0)),
      std::invalid_argument);
}

TEST(Room2R2C, ConvergesToSeriesEquilibrium) {
  th::Room2R2C room(th::Room2R2CParams{}, u::celsius(10.0));
  const auto q = u::watts(400.0);
  const auto t_out = u::celsius(0.0);
  const auto eq = room.equilibrium(q, t_out);
  for (int i = 0; i < 24 * 30; ++i) room.advance(u::hours(1.0), q, t_out);
  EXPECT_NEAR(room.air_temperature().value(), eq.value(), 0.05);
}

TEST(Room2R2C, EnvelopeLagsAir) {
  th::Room2R2C room(th::Room2R2CParams{}, u::celsius(10.0));
  room.advance(u::hours(2.0), u::watts(800.0), u::celsius(0.0));
  // After a short burn the light air node leads the heavy envelope node.
  EXPECT_GT(room.air_temperature().value(), room.envelope_temperature().value());
}

TEST(Room2R2C, StableOverLongSteps) {
  th::Room2R2C room(th::Room2R2CParams{}, u::celsius(18.0));
  room.advance(u::days(10.0), u::watts(300.0), u::celsius(5.0));
  EXPECT_GT(room.air_temperature().value(), 5.0);
  EXPECT_LT(room.air_temperature().value(), 40.0);
}

// ----------------------------------------------------------- thermostat ---

TEST(HysteresisThermostat, SwitchesWithDeadband) {
  th::HysteresisThermostat t(u::celsius(20.0), u::kelvin(0.5), u::watts(500.0));
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(19.0)).power.value(), 500.0);  // cold -> on
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(20.2)).power.value(), 500.0);  // inside band: stays on
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(20.6)).power.value(), 0.0);    // above band -> off
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(19.8)).power.value(), 0.0);    // inside band: stays off
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(19.4)).power.value(), 500.0);  // below band -> on
}

TEST(HysteresisThermostat, RegulatesRoomNearTarget) {
  th::Room room(th::RoomParams{}, u::celsius(17.0));
  th::HysteresisThermostat t(u::celsius(20.0), u::kelvin(0.5), u::watts(500.0));
  u::StreamingStats temps;
  for (int i = 0; i < 24 * 60; ++i) {  // 24 h at 1-minute control
    const auto d = t.demand(room.temperature());
    room.advance(u::minutes(1.0), d.power, u::celsius(5.0));
    if (i > 12 * 60) temps.add(room.temperature().value());  // after warmup
  }
  EXPECT_NEAR(temps.mean(), 20.0, 0.7);
  EXPECT_GT(temps.min(), 18.8);
  EXPECT_LT(temps.max(), 21.2);
}

TEST(ModulatingThermostat, DemandTracksErrorAndFeedForward) {
  th::ModulatingThermostat t(u::celsius(20.0), 200.0, u::watts(500.0));
  const auto hold = u::watts(300.0);
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(20.0), hold).power.value(), 300.0);
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(19.0), hold).power.value(), 500.0);  // clamped
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(21.5), hold).power.value(), 0.0);    // clamped at 0
  EXPECT_DOUBLE_EQ(t.demand(u::celsius(20.5), hold).power.value(), 200.0);
}

TEST(ModulatingThermostat, HoldsRoomTightly) {
  th::Room room(th::RoomParams{}, u::celsius(18.0));
  th::ModulatingThermostat t(u::celsius(20.0), 300.0, u::watts(500.0));
  const auto t_out = u::celsius(5.0);  // holding power ~440 W, within rating
  for (int i = 0; i < 48 * 60; ++i) {
    const auto d = t.demand(room.temperature(), room.holding_power(t.target(), t_out));
    room.advance(u::minutes(1.0), d.power, t_out);
  }
  EXPECT_NEAR(room.temperature().value(), 20.0, 0.1);
}

TEST(ComfortProfile, DayNightTargets) {
  th::ComfortProfile p;
  EXPECT_EQ(p.target_at_hour(12.0), p.day_target);
  EXPECT_EQ(p.target_at_hour(23.0), p.night_target);
  EXPECT_EQ(p.target_at_hour(3.0), p.night_target);
  EXPECT_EQ(p.target_at_hour(7.0), p.day_target);
}

// ---------------------------------------------------------------- urban ---

TEST(UrbanHeatLedger, FluxAndIntensity) {
  th::UrbanHeatLedger ledger(1.0e6, 0.02);  // 1 km2 district
  const auto boiler = ledger.add_source("always-on-boiler");
  const auto qrad = ledger.add_source("qrad");
  // Boiler rejects 100 kW for a day outdoors; Q.rads deliver 100 kW indoors.
  ledger.record_outdoor(boiler, u::watts(100e3) * u::days(1.0));
  ledger.record_indoor(qrad, u::watts(100e3) * u::days(1.0));
  EXPECT_NEAR(ledger.outdoor_flux_w_per_m2(u::days(1.0)), 0.1, 1e-9);
  EXPECT_NEAR(ledger.uhi_intensity(u::days(1.0)).value(), 0.002, 1e-9);
  EXPECT_NEAR(ledger.useful_heat_fraction(), 0.5, 1e-12);
}

TEST(UrbanHeatLedger, AllUsefulWhenNothingRejected) {
  th::UrbanHeatLedger ledger(1000.0);
  const auto s = ledger.add_source("qrad");
  ledger.record_indoor(s, u::kilowatt_hours(10.0));
  EXPECT_DOUBLE_EQ(ledger.useful_heat_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(ledger.uhi_intensity(u::hours(1.0)).value(), 0.0);
}

TEST(UrbanHeatLedger, RejectsInvalidInput) {
  EXPECT_THROW(th::UrbanHeatLedger(0.0), std::invalid_argument);
  th::UrbanHeatLedger ledger(100.0);
  const auto s = ledger.add_source("x");
  EXPECT_THROW(ledger.record_indoor(s, u::joules(-1.0)), std::invalid_argument);
  EXPECT_THROW(ledger.record_outdoor(s + 1, u::joules(1.0)), std::out_of_range);
  EXPECT_THROW((void)ledger.outdoor_flux_w_per_m2(u::seconds(0.0)), std::invalid_argument);
}
