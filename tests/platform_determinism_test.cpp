/// \file platform_determinism_test.cpp
/// \brief Golden-hash pin of the fleet-physics kernel (DESIGN.md).
///
/// Two invariants, both bit-for-bit:
///  1. The SoA phase-split tick reproduces the original per-object sweep
///     exactly. The golden constants below were captured from the
///     pre-refactor implementation (commit d2cd04c) over a simulated week
///     of every bundled scenario; any float reassociation in the kernel
///     shows up here as a hash mismatch.
///  2. The parallel physics phase is schedule-independent: 1, 2 and 8
///     physics threads produce identical telemetry and end state, because
///     each building's physics touches only building-owned state and the
///     order-sensitive reductions replay serially.

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "df3/df3.hpp"

namespace df3 {
namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

struct Digest {
  std::uint64_t csv_hash;
  std::uint64_t raw_hash;
};

// Golden values from the pre-refactor serial implementation.
constexpr Digest kWinterGolden{0xfe042866dfbd421dULL, 0x6e074eaca1700288ULL};
constexpr Digest kBoilerGolden{0x1eb523add7ae3c8cULL, 0x7497ea34bee83b0fULL};
constexpr Digest kSummerGolden{0x9914fb3a47381825ULL, 0x9e1211637984f73dULL};

// Scenario builders mirror scenarios/*.cfg through the df3run key mapping.
// Df3Platform is populated in place (its event sources capture `this`).

core::PlatformConfig winter_city_config() {
  core::PlatformConfig pc;
  pc.seed = 2016;
  pc.start_time = thermal::start_of_month(0);
  pc.climate = thermal::paris_climate();
  pc.regulator.gating = core::GatingPolicy::kKeepWarm;
  return pc;
}

void populate_winter_city(core::Df3Platform& city) {
  for (int i = 0; i < 4; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = 4;
    city.add_building(b);
  }
  city.set_cloud_routing("df-first");
  city.add_edge_source(0, workload::alarm_detection_factory(), 0.02);
  city.add_edge_source(0, workload::telemetry_factory(),
                       std::make_unique<workload::FixedIntervalArrivals>(30.0));
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 900.0);
}

core::PlatformConfig boiler_plant_config() {
  core::PlatformConfig pc;
  pc.seed = 9;
  pc.start_time = thermal::start_of_month(6);
  pc.climate = thermal::dresden_climate();
  pc.regulator.gating = core::GatingPolicy::kAggressive;
  return pc;
}

void populate_boiler_plant(core::Df3Platform& city) {
  core::BuildingConfig b;
  b.name = "b0";
  b.server = hw::stimergy_boiler_spec();
  thermal::WaterTankParams tank;
  tank.volume_l = 2500.0;
  tank.setpoint = util::celsius(58.0);
  b.water_tank = tank;
  b.daily_hot_water_l = 1500.0;
  city.add_building(b);
  city.set_cloud_routing("df-first");
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 600.0);
}

core::PlatformConfig summer_city_config() {
  core::PlatformConfig pc;
  pc.seed = 2016;
  pc.start_time = thermal::start_of_month(6);
  pc.climate = thermal::paris_climate();
  pc.regulator.gating = core::GatingPolicy::kKeepWarm;
  return pc;
}

void populate_summer_city(core::Df3Platform& city) {
  for (int i = 0; i < 4; ++i) {
    core::BuildingConfig b;
    b.name = "b" + std::to_string(i);
    b.rooms = 4;
    city.add_building(b);
  }
  city.set_cloud_routing("season-aware");
  city.add_edge_source(0, workload::alarm_detection_factory(), 0.02);
  city.add_cloud_source(workload::risk_simulation_factory(), 1.0 / 900.0);
}

template <class Populate>
Digest run_scenario(core::PlatformConfig pc, Populate populate, std::size_t physics_threads,
                    obs::TraceLevel obs_level = obs::TraceLevel::kOff) {
  pc.physics_threads = physics_threads;
  pc.obs.level = obs_level;
  core::Df3Platform city(pc);
  populate(city);
  city.run(util::days(7.0));

  std::ostringstream csv;
  city.export_series_csv(csv);

  // Raw end-state digest: exact double bits of every room and tank
  // temperature plus the energy ledger — resolves divergence below the
  // CSV's 10 significant digits.
  std::string raw;
  const auto put = [&raw](double v) {
    raw.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (std::size_t b = 0; b < city.building_count(); ++b) {
    for (std::size_t r = 0; r < 64; ++r) {
      try {
        put(city.room_temperature(b, r).value());
      } catch (const std::out_of_range&) {
        break;
      }
    }
    try {
      put(city.tank_temperature(b).value());
    } catch (const std::logic_error&) {
    }
  }
  put(city.df_energy().it().value());
  put(city.regulator_relative_error());
  return Digest{fnv1a(csv.str()), fnv1a(raw)};
}

template <class Populate>
void expect_golden_across_threads(const char* name, core::PlatformConfig (*config)(),
                                  Populate populate, Digest golden) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(std::string(name) + " physics_threads=" + std::to_string(threads));
    const Digest d = run_scenario(config(), populate, threads);
    EXPECT_EQ(d.csv_hash, golden.csv_hash);
    EXPECT_EQ(d.raw_hash, golden.raw_hash);
  }
}

TEST(PlatformDeterminism, WinterCityMatchesGoldenAtAnyThreadCount) {
  expect_golden_across_threads("winter_city", winter_city_config, populate_winter_city,
                               kWinterGolden);
}

TEST(PlatformDeterminism, BoilerPlantMatchesGoldenAtAnyThreadCount) {
  expect_golden_across_threads("boiler_plant", boiler_plant_config, populate_boiler_plant,
                               kBoilerGolden);
}

TEST(PlatformDeterminism, SummerCityMatchesGoldenAtAnyThreadCount) {
  expect_golden_across_threads("summer_city", summer_city_config, populate_summer_city,
                               kSummerGolden);
}

// Observation must not perturb the simulation: recording metrics or a full
// trace reproduces the golden digests bit-for-bit at every thread count
// (DESIGN.md section 10, "observation-only" contract).
TEST(PlatformDeterminism, ObservabilityLevelsPreserveGoldensAtAnyThreadCount) {
  for (const obs::TraceLevel level : {obs::TraceLevel::kCounters, obs::TraceLevel::kFull}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(std::string("winter_city obs=") + obs::trace_level_name(level) +
                   " physics_threads=" + std::to_string(threads));
      const Digest d = run_scenario(winter_city_config(), populate_winter_city, threads, level);
      EXPECT_EQ(d.csv_hash, kWinterGolden.csv_hash);
      EXPECT_EQ(d.raw_hash, kWinterGolden.raw_hash);
    }
    SCOPED_TRACE(std::string("obs=") + obs::trace_level_name(level));
    const Digest boiler = run_scenario(boiler_plant_config(), populate_boiler_plant, 2, level);
    EXPECT_EQ(boiler.csv_hash, kBoilerGolden.csv_hash);
    EXPECT_EQ(boiler.raw_hash, kBoilerGolden.raw_hash);
    const Digest summer = run_scenario(summer_city_config(), populate_summer_city, 2, level);
    EXPECT_EQ(summer.csv_hash, kSummerGolden.csv_hash);
    EXPECT_EQ(summer.raw_hash, kSummerGolden.raw_hash);
  }
}

// More physics threads than buildings must degrade gracefully (the pool
// simply has idle lanes) and still match.
TEST(PlatformDeterminism, ThreadsExceedingBuildingsStillMatch) {
  const Digest d = run_scenario(boiler_plant_config(), populate_boiler_plant, 8);
  EXPECT_EQ(d.csv_hash, kBoilerGolden.csv_hash);
  EXPECT_EQ(d.raw_hash, kBoilerGolden.raw_hash);
}

}  // namespace
}  // namespace df3
